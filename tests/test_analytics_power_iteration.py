"""Incremental power iteration (Section 5.3's p = 1 instance)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analytics import (
    IncrementalPowerIteration,
    reference_dominant_eigenpair,
)


def gapped_matrix(rng, n, gap=3.0):
    """Symmetric matrix with a well-separated dominant eigenvalue."""
    q, _ = np.linalg.qr(rng.normal(size=(n, n)))
    values = np.concatenate([[gap], rng.uniform(0.1, 0.9, size=n - 1)])
    return (q * values) @ q.T


class TestReferenceEigenpair:
    def test_diagonal_case(self):
        val, vec = reference_dominant_eigenpair(np.diag([3.0, 1.0, 2.0]))
        assert val == pytest.approx(3.0)
        np.testing.assert_allclose(vec, [1.0, 0.0, 0.0], atol=1e-12)

    def test_magnitude_dominance(self):
        val, _ = reference_dominant_eigenpair(np.diag([-5.0, 2.0]))
        assert val == pytest.approx(-5.0)


class TestIncrementalPowerIteration:
    def test_initial_estimate_converges(self, rng):
        a = gapped_matrix(rng, 8)
        pi = IncrementalPowerIteration(a, k=48)
        val, vec = reference_dominant_eigenpair(a)
        assert pi.eigenvalue() == pytest.approx(val, rel=1e-6)
        np.testing.assert_allclose(pi.eigenvector(), vec, atol=1e-5)

    def test_residual_reflects_quality(self, rng):
        a = gapped_matrix(rng, 8)
        few = IncrementalPowerIteration(a, k=4)
        many = IncrementalPowerIteration(a, k=64)
        assert many.residual() <= few.residual() + 1e-12

    def test_update_tracks_moving_eigenpair(self, rng):
        a = gapped_matrix(rng, 8)
        pi = IncrementalPowerIteration(a, k=48)
        for _ in range(4):
            u = 0.05 * rng.normal(size=(8, 1))
            pi.refresh(u, u)  # symmetric perturbation
        val, vec = reference_dominant_eigenpair(pi.a)
        assert pi.eigenvalue() == pytest.approx(val, rel=1e-4)
        np.testing.assert_allclose(pi.eigenvector(), vec, atol=1e-3)

    def test_iterate_is_unnormalized_power(self, rng):
        a = gapped_matrix(rng, 6)
        x0 = rng.normal(size=(6, 1))
        pi = IncrementalPowerIteration(a, k=8, x0=x0)
        expected = np.linalg.matrix_power(a, 8) @ x0
        np.testing.assert_allclose(pi.iterate(), expected, atol=1e-8)

    def test_strategies_agree(self, rng):
        a = gapped_matrix(rng, 6)
        u = 0.1 * rng.normal(size=(6, 1))
        v = 0.1 * rng.normal(size=(6, 1))
        iterates = {}
        for strategy in ("REEVAL", "INCR", "HYBRID"):
            pi = IncrementalPowerIteration(a, k=16, strategy=strategy)
            pi.refresh(u, v)
            iterates[strategy] = pi.iterate()
        np.testing.assert_allclose(iterates["REEVAL"], iterates["HYBRID"],
                                   atol=1e-7)
        np.testing.assert_allclose(iterates["REEVAL"], iterates["INCR"],
                                   atol=1e-7)

    def test_rejects_non_square(self, rng):
        with pytest.raises(ValueError, match="square"):
            IncrementalPowerIteration(rng.normal(size=(3, 4)))

    def test_zero_iterate_raises(self):
        a = np.zeros((3, 3))
        pi = IncrementalPowerIteration(a, k=4)
        with pytest.raises(ArithmeticError, match="collapsed"):
            pi.eigenvector()

    def test_sign_convention_stable(self, rng):
        a = gapped_matrix(rng, 7)
        pi = IncrementalPowerIteration(a, k=32)
        vec = pi.eigenvector()
        assert vec[int(np.argmax(np.abs(vec)))] >= 0

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=9999))
    def test_property_rayleigh_quotient_bounded_by_spectrum(self, seed):
        rng = np.random.default_rng(seed)
        a = gapped_matrix(rng, 6)
        pi = IncrementalPowerIteration(a, k=16)
        values = np.linalg.eigvalsh(a)
        assert values.min() - 1e-9 <= pi.eigenvalue() <= values.max() + 1e-9
