"""OLS analytics: incremental estimator vs re-evaluation and lstsq."""

import numpy as np
import pytest

from repro.analytics import IncrementalOLS, ReevalOLS
from repro.cost import Counter
from repro.delta import SingularUpdateError
from repro.workloads import regression_data, row_update_factors


def _updates(rng, m, n, count, scale=0.1):
    return list(row_update_factors(rng, m, n, count, scale))


class TestCorrectness:
    def test_initial_estimate_matches_lstsq(self, rng):
        x, y, _ = regression_data(rng, 30, 8, 2)
        model = IncrementalOLS(x, y)
        expected = np.linalg.lstsq(x, y, rcond=None)[0]
        np.testing.assert_allclose(model.beta, expected, atol=1e-8)

    @pytest.mark.parametrize("method", ["sherman-morrison", "woodbury"])
    def test_stream_matches_reeval(self, method, rng):
        x, y, _ = regression_data(rng, 25, 7, 2)
        incr = IncrementalOLS(x, y, method=method)
        reeval = ReevalOLS(x, y)
        for u, v in _updates(rng, 25, 7, 10):
            incr.refresh(u, v)
            reeval.refresh(u, v)
        for attr in ("z", "w", "c", "beta"):
            np.testing.assert_allclose(
                getattr(incr, attr), getattr(reeval, attr),
                rtol=1e-6, atol=1e-8, err_msg=attr,
            )

    def test_recovers_true_parameters(self, rng):
        x, y, beta_true = regression_data(rng, 200, 5, 1, noise=0.001)
        model = IncrementalOLS(x, y)
        np.testing.assert_allclose(model.beta, beta_true, atol=0.01)

    def test_long_stream_drift_bounded(self, rng):
        x, y, _ = regression_data(rng, 30, 6, 1)
        model = IncrementalOLS(x, y)
        for u, v in _updates(rng, 30, 6, 100, scale=0.05):
            model.refresh(u, v)
        assert model.revalidate() < 1e-6

    def test_methods_agree(self, rng):
        x, y, _ = regression_data(rng, 20, 6, 1)
        sm = IncrementalOLS(x, y, method="sherman-morrison")
        wb = IncrementalOLS(x, y, method="woodbury")
        for u, v in _updates(rng, 20, 6, 5):
            sm.refresh(u, v)
            wb.refresh(u, v)
        np.testing.assert_allclose(sm.beta, wb.beta, rtol=1e-8)

    def test_unknown_method_rejected(self, rng):
        x, y, _ = regression_data(rng, 10, 4, 1)
        with pytest.raises(ValueError, match="unknown method"):
            IncrementalOLS(x, y, method="magic")

    def test_vector_y_normalized(self, rng):
        x, y, _ = regression_data(rng, 15, 5, 1)
        model = IncrementalOLS(x, y.reshape(-1))
        assert model.beta.shape == (5, 1)


class TestSingularity:
    def test_singular_update_raises(self):
        # X = I, update u = -e0, v = e0 zeroes the first row: X'X singular.
        x = np.eye(4)
        y = np.ones((4, 1))
        model = IncrementalOLS(x, y)
        e0 = np.zeros((4, 1)); e0[0, 0] = 1.0
        with pytest.raises(SingularUpdateError):
            model.refresh(-e0, e0)


class TestCosts:
    def test_incr_flops_scale_quadratically(self):
        """Section 5.1: INCR O(n^2 + mn) vs REEVAL O(n^3 + mn^2)."""
        flops = {}
        for n in (16, 32, 64):
            rng = np.random.default_rng(0)
            x, y, _ = regression_data(rng, 2 * n, n, 1)
            incr_counter, reeval_counter = Counter(), Counter()
            incr = IncrementalOLS(x, y, counter=incr_counter)
            reeval = ReevalOLS(x, y, counter=reeval_counter)
            incr_counter.reset(); reeval_counter.reset()
            u = 0.1 * rng.normal(size=(2 * n, 1))
            v = 0.1 * rng.normal(size=(n, 1))
            incr.refresh(u, v)
            reeval.refresh(u, v)
            flops[n] = (incr_counter.total_flops, reeval_counter.total_flops)
        incr_growth = flops[64][0] / flops[16][0]
        reeval_growth = flops[64][1] / flops[16][1]
        assert incr_growth < 25        # ~quadratic
        assert reeval_growth > 40      # ~cubic
        assert flops[64][1] > 10 * flops[64][0]

    def test_memory_footprints_comparable(self, rng):
        x, y, _ = regression_data(rng, 20, 8, 1)
        incr = IncrementalOLS(x, y)
        reeval = ReevalOLS(x, y)
        assert incr.memory_bytes() == reeval.memory_bytes()


class TestQRIncrementalOLS:
    """The Section 4.2 QR hook applied to the Section 5.1 workload."""

    def test_beta_matches_lstsq(self, rng):
        from repro.analytics import QRIncrementalOLS

        x = rng.normal(size=(20, 6))
        y = rng.normal(size=20)
        model = QRIncrementalOLS(x, y)
        expected, *_ = np.linalg.lstsq(x, y.reshape(-1, 1), rcond=None)
        np.testing.assert_allclose(model.beta, expected, atol=1e-9)

    def test_tracks_update_stream(self, rng):
        from repro.analytics import QRIncrementalOLS

        x = rng.normal(size=(16, 5))
        y = rng.normal(size=(16, 1))
        model = QRIncrementalOLS(x, y)
        for _ in range(20):
            u = 0.1 * rng.normal(size=(16, 1))
            v = 0.1 * rng.normal(size=(5, 1))
            model.refresh(u, v)
        assert model.revalidate() < 1e-8

    def test_agrees_with_sherman_morrison_route(self, rng):
        from repro.analytics import IncrementalOLS, QRIncrementalOLS
        from repro.workloads import well_conditioned_design

        n = 24
        x = well_conditioned_design(rng, n, n, ridge=2.0)
        y = rng.normal(size=(n, 1))
        qr_model = QRIncrementalOLS(x, y)
        sm_model = IncrementalOLS(x, y)
        for seed in range(5):
            gen = np.random.default_rng(seed)
            u = np.zeros((n, 1))
            u[gen.integers(n), 0] = 1.0
            v = 0.01 * gen.standard_normal((n, 1))
            qr_model.refresh(u, v)
            sm_model.refresh(u, v)
        np.testing.assert_allclose(qr_model.beta, sm_model.beta, atol=1e-6)

    def test_survives_near_collinear_design(self, rng):
        # Nearly collinear columns: X'X has condition ~1e16 and the
        # normal-equation route loses all digits; unpivoted QR works on
        # the original X (condition ~1e8) and keeps the residual optimal.
        from repro.analytics import QRIncrementalOLS

        base = rng.normal(size=12)
        x = np.column_stack([base, base + 1e-8 * rng.normal(size=12),
                             rng.normal(size=12)])
        y = rng.normal(size=(12, 1))
        model = QRIncrementalOLS(x, y)
        residual = np.linalg.norm(x @ model.beta - y)
        expected, *_ = np.linalg.lstsq(x, y, rcond=None)
        assert residual <= np.linalg.norm(x @ expected - y) * (1 + 1e-6)

    def test_memory_accounts_square_q(self, rng):
        from repro.analytics import QRIncrementalOLS

        model = QRIncrementalOLS(rng.normal(size=(10, 4)), rng.normal(size=10))
        # Full Q (m x m) + R (m x n) + y.
        assert model.memory_bytes() == (10 * 10 + 10 * 4 + 10) * 8
