"""Workload generators: determinism, shapes, Zipf properties."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads import (
    dense_matrix,
    random_adjacency,
    regression_data,
    row_update_factors,
    sample_rows,
    spectral_normalized,
    update_stream,
    well_conditioned_design,
    zipf_batch,
    zipf_batch_update,
    zipf_probabilities,
)


class TestGenerators:
    def test_seeded_reproducibility(self):
        a = dense_matrix(np.random.default_rng(5), 6, 7)
        b = dense_matrix(np.random.default_rng(5), 6, 7)
        np.testing.assert_array_equal(a, b)

    def test_spectral_normalization(self, rng):
        a = spectral_normalized(rng, 40, radius=0.9)
        top = max(abs(np.linalg.eigvals(a)))
        assert top < 1.0  # contractive: powers stay bounded

    def test_well_conditioned_design_invertible(self, rng):
        x = well_conditioned_design(rng, 30, 10)
        cond = np.linalg.cond(x.T @ x)
        assert cond < 1e4

    def test_design_requires_tall(self, rng):
        with pytest.raises(ValueError):
            well_conditioned_design(rng, 5, 10)

    def test_regression_data_shapes(self, rng):
        x, y, beta = regression_data(rng, 20, 6, 3)
        assert x.shape == (20, 6)
        assert y.shape == (20, 3)
        assert beta.shape == (6, 3)

    def test_adjacency_no_self_loops_no_dangling(self, rng):
        adj = random_adjacency(rng, 25)
        assert np.trace(adj) == 0.0
        assert (adj.sum(axis=0) > 0).all()


class TestStreams:
    def test_row_updates_touch_one_row(self, rng):
        for u, v in row_update_factors(rng, 10, 8, 5):
            dense = u @ v.T
            touched = np.nonzero(np.abs(dense).sum(axis=1))[0]
            assert len(touched) == 1

    def test_stream_determinism(self):
        first = [
            (u.copy(), v.copy())
            for u, v in row_update_factors(np.random.default_rng(9), 6, 6, 4)
        ]
        second = list(row_update_factors(np.random.default_rng(9), 6, 6, 4))
        for (u1, v1), (u2, v2) in zip(first, second):
            np.testing.assert_array_equal(u1, u2)
            np.testing.assert_array_equal(v1, v2)

    def test_update_stream_events(self, rng):
        events = list(update_stream(rng, "A", 8, 8, 3))
        assert len(events) == 3
        assert all(e.target == "A" and e.rank == 1 for e in events)


class TestZipf:
    def test_probabilities_normalized(self):
        p = zipf_probabilities(100, 2.0)
        assert abs(p.sum() - 1.0) < 1e-12
        assert (p >= 0).all()

    def test_theta_zero_is_uniform(self):
        p = zipf_probabilities(10, 0.0)
        np.testing.assert_allclose(p, 0.1 * np.ones(10))

    def test_probabilities_decreasing_in_rank(self):
        p = zipf_probabilities(50, 1.5)
        assert (np.diff(p) <= 0).all()

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            zipf_probabilities(0, 1.0)
        with pytest.raises(ValueError):
            zipf_probabilities(10, -1.0)

    def test_skew_shrinks_distinct_rows(self):
        """Table 4's driver: higher theta -> fewer distinct rows hit."""
        distinct = {}
        for theta in (0.0, 2.0, 5.0):
            rng = np.random.default_rng(11)
            rows, _ = zipf_batch(rng, 1000, 16, batch_size=1000, theta=theta)
            distinct[theta] = len(rows)
        assert distinct[5.0] < distinct[2.0] < distinct[0.0]
        assert distinct[5.0] < 20  # extremely concentrated

    def test_batch_merges_duplicates(self, rng):
        rows, deltas = zipf_batch(rng, 50, 8, batch_size=500, theta=3.0)
        assert len(rows) == len(set(rows.tolist()))
        assert deltas.shape == (len(rows), 8)

    def test_batch_update_event_rank(self, rng):
        event = zipf_batch_update(rng, "A", 100, 100, batch_size=200, theta=2.0)
        assert event.target == "A"
        assert event.rank == event.u_block.shape[1]
        assert event.rank <= 200

    def test_batch_value_equals_sum_of_row_updates(self):
        """The merged rank-k batch equals applying every hit one by one."""
        rng = np.random.default_rng(3)
        n_rows, n_cols, batch = 30, 6, 100
        probabilities = zipf_probabilities(n_rows, 1.0)
        permutation = rng.permutation(n_rows)
        ranks = rng.choice(n_rows, size=batch, p=probabilities)
        hits = permutation[ranks]
        changes = rng.standard_normal((batch, n_cols))
        dense = np.zeros((n_rows, n_cols))
        for row, change in zip(hits, changes):
            dense[row] += change
        rng2 = np.random.default_rng(3)
        rows, deltas = zipf_batch(rng2, n_rows, n_cols, batch, 1.0, scale=1.0)
        rebuilt = np.zeros((n_rows, n_cols))
        rebuilt[rows] = deltas
        np.testing.assert_allclose(rebuilt, dense, atol=1e-12)


@settings(max_examples=30, deadline=None)
@given(
    theta=st.floats(0.0, 5.0),
    n=st.integers(2, 200),
    seed=st.integers(0, 2**31 - 1),
)
def test_sampled_rows_in_range(theta, n, seed):
    rng = np.random.default_rng(seed)
    rows = sample_rows(rng, n, 50, theta)
    assert ((rows >= 0) & (rows < n)).all()
