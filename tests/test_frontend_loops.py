"""Frontend ``for`` loops: parse-time unrolling with target versioning."""

import numpy as np
import pytest

from repro.frontend import ParseError, parse_program
from repro.runtime import evaluate


def run_program(program, env, dims=None):
    env = dict(env)
    for stmt in program.statements:
        env[stmt.target.name] = evaluate(stmt.expr, env, dims)
    return {name: env[name] for name in program.outputs}


class TestUnrolling:
    def test_matrix_power_via_loop(self, rng):
        program = parse_program("""
            input A(n, n);
            T := A;
            for i in 1..3 { T := A * T; }
            output T;
        """)
        a = rng.normal(size=(6, 6))
        result = run_program(program, {"A": a}, {"n": 6})
        np.testing.assert_allclose(
            result[program.outputs[0]], np.linalg.matrix_power(a, 4),
            atol=1e-9,
        )

    def test_versioned_statement_names(self):
        program = parse_program("""
            input A(n, n);
            T := A;
            for i in 1..2 { T := A * T; }
            output T;
        """)
        assert [s.target.name for s in program.statements] == [
            "T", "T__v2", "T__v3"
        ]
        assert program.outputs == ("T__v3",)

    def test_range_is_inclusive(self):
        program = parse_program("""
            input A(n, n);
            T := A;
            for i in 2..2 { T := A * T; }
            output T;
        """)
        # 2..2 runs exactly once.
        assert len(program.statements) == 2

    def test_multiple_statements_in_body(self, rng):
        program = parse_program("""
            input A(n, n);
            S := A;
            P := A;
            for i in 1..2 {
                P := P * A;
                S := S + P;
            }
            output S;
        """)
        a = rng.normal(size=(5, 5))
        result = run_program(program, {"A": a}, {"n": 5})
        expected = a + a @ a + a @ a @ a
        np.testing.assert_allclose(result[program.outputs[0]], expected,
                                   atol=1e-9)

    def test_nested_loops(self, rng):
        # Inner loop squares twice per outer pass: ((T^2)^2)^2... with
        # 1 outer x 2 inner = T^4 starting from A.
        program = parse_program("""
            input A(n, n);
            T := A;
            for i in 1..1 { for j in 1..2 { T := T * T; } }
            output T;
        """)
        a = 0.5 * rng.normal(size=(4, 4))
        result = run_program(program, {"A": a}, {"n": 4})
        np.testing.assert_allclose(
            result[program.outputs[0]], np.linalg.matrix_power(a, 4),
            atol=1e-9,
        )

    def test_loop_then_more_statements(self, rng):
        program = parse_program("""
            input A(n, n);
            T := A;
            for i in 1..2 { T := A * T; }
            final := T + T';
            output final;
        """)
        a = rng.normal(size=(4, 4))
        t = np.linalg.matrix_power(a, 3)
        result = run_program(program, {"A": a}, {"n": 4})
        np.testing.assert_allclose(result["final"], t + t.T, atol=1e-9)

    def test_compiles_through_algorithm_one(self):
        from repro.compiler import compile_program

        program = parse_program("""
            input A(n, n);
            T := A;
            for i in 1..3 { T := A * T; }
            output T;
        """)
        trigger = compile_program(program)["A"]
        # One update statement per view (input + 4 versions of T).
        assert len(trigger.updates) == 5


class TestErrors:
    def test_reassignment_outside_loop_still_rejected(self):
        with pytest.raises(ParseError, match="redefinition"):
            parse_program("""
                input A(n, n);
                T := A;
                T := A * T;
                output T;
            """)

    def test_empty_range_rejected(self):
        with pytest.raises(ParseError, match="empty loop range"):
            parse_program("""
                input A(n, n);
                T := A;
                for i in 3..1 { T := A * T; }
                output T;
            """)

    def test_loop_variable_not_a_matrix(self):
        with pytest.raises(ParseError, match="undefined matrix 'i'"):
            parse_program("""
                input A(n, n);
                T := A;
                for i in 1..2 { T := A * i; }
                output T;
            """)

    def test_loop_variable_shadowing_rejected(self):
        with pytest.raises(ParseError, match="shadows a matrix"):
            parse_program("""
                input A(n, n);
                for A in 1..2 { B := A; }
                output B;
            """)

    def test_fractional_bounds_rejected(self):
        with pytest.raises(ParseError, match="integer"):
            parse_program("""
                input A(n, n);
                T := A;
                for i in 1.5..3 { T := A * T; }
                output T;
            """)

    def test_missing_braces_rejected(self):
        with pytest.raises(ParseError, match="expected '.'"):
            parse_program("""
                input A(n, n);
                T := A;
                for i in 1..2 T := A * T;
                output T;
            """)

    def test_declarations_in_body_rejected(self):
        with pytest.raises(ParseError, match="statement or nested"):
            parse_program("""
                input A(n, n);
                for i in 1..2 { input B(n, n); }
                output A;
            """)
