"""Sums-of-powers maintainers (Section 5.2.3)."""

import numpy as np
import pytest

from repro.cost import Counter
from repro.iterative import IncrementalPowerSums, Model, ReevalPowerSums
from repro.workloads import row_update_factors, spectral_normalized

MODELS = [Model.linear(), Model.exponential(), Model.skip(2),
          Model.skip(4), Model.skip(8)]


def truth_sum(a, k):
    n = a.shape[0]
    total = np.eye(n)
    power = np.eye(n)
    for _ in range(k - 1):
        power = power @ a
        total = total + power
    return total


@pytest.mark.parametrize("model", MODELS, ids=lambda m: m.name)
class TestCorrectness:
    def test_initial_value(self, model, rng):
        a = spectral_normalized(rng, 9)
        for maintainer in (ReevalPowerSums(a, 16, model),
                           IncrementalPowerSums(a, 16, model)):
            np.testing.assert_allclose(
                maintainer.result(), truth_sum(a, 16), atol=1e-9
            )

    def test_stream_of_updates(self, model, rng):
        n, k = 9, 16
        a = spectral_normalized(rng, n)
        reeval = ReevalPowerSums(a, k, model)
        incr = IncrementalPowerSums(a, k, model)
        current = a.copy()
        for u, v in row_update_factors(rng, n, n, 5, scale=0.05):
            current = current + u @ v.T
            reeval.refresh(u, v)
            incr.refresh(u, v)
        expected = truth_sum(current, k)
        np.testing.assert_allclose(reeval.result(), expected, atol=1e-8)
        np.testing.assert_allclose(incr.result(), expected, atol=1e-8)

    def test_all_scheduled_sums_maintained(self, model, rng):
        n, k = 8, 16
        a = spectral_normalized(rng, n)
        incr = IncrementalPowerSums(a, k, model)
        u = np.zeros((n, 1)); u[1, 0] = 1.0
        v = 0.1 * rng.normal(size=(n, 1))
        incr.refresh(u, v)
        new_a = a + u @ v.T
        for i in incr.schedule:
            np.testing.assert_allclose(
                incr.sums[i], truth_sum(new_a, i), atol=1e-9,
                err_msg=f"S_{i} wrong under {model.name}",
            )


class TestSharedPowers:
    def test_shared_powers_not_double_applied(self, rng):
        from repro.iterative import IncrementalPowers

        n, k = 8, 16
        a = spectral_normalized(rng, n)
        powers = IncrementalPowers(a, 8, Model.exponential())
        sums = IncrementalPowerSums(a, k, Model.exponential(), powers=powers)
        assert not sums.owns_powers
        u = np.zeros((n, 1)); u[0, 0] = 1.0
        v = 0.1 * rng.normal(size=(n, 1))
        pf = powers.compute_factors(u, v)
        sf = sums.compute_factors(u, v, pf)
        sums.apply_factors(sf, pf)
        powers.apply_factors(pf)
        new_a = a + u @ v.T
        np.testing.assert_allclose(sums.result(), truth_sum(new_a, k), atol=1e-9)
        np.testing.assert_allclose(
            powers.result(), np.linalg.matrix_power(new_a, 8), atol=1e-9
        )

    def test_refresh_forbidden_with_shared_powers(self, rng):
        from repro.iterative import IncrementalPowers

        a = spectral_normalized(rng, 8)
        powers = IncrementalPowers(a, 8, Model.exponential())
        sums = IncrementalPowerSums(a, 16, Model.exponential(), powers=powers)
        with pytest.raises(RuntimeError, match="shared powers"):
            sums.refresh(np.ones((8, 1)), np.ones((8, 1)))

    def test_insufficient_shared_powers_rejected(self, rng):
        from repro.iterative import IncrementalPowers

        a = spectral_normalized(rng, 8)
        shallow = IncrementalPowers(a, 2, Model.exponential())
        with pytest.raises(ValueError, match="lacks"):
            IncrementalPowerSums(a, 16, Model.exponential(), powers=shallow)


class TestCosts:
    def test_incr_beats_reeval_in_flops(self, rng):
        n, k = 40, 16
        a = spectral_normalized(rng, n)
        reeval_counter, incr_counter = Counter(), Counter()
        reeval = ReevalPowerSums(a, k, Model.exponential(), reeval_counter)
        incr = IncrementalPowerSums(a, k, Model.exponential(), incr_counter)
        reeval_counter.reset(); incr_counter.reset()
        u = np.zeros((n, 1)); u[0, 0] = 1.0
        v = 0.01 * np.ones((n, 1))
        reeval.refresh(u, v)
        incr.refresh(u, v)
        assert incr_counter.total_flops < reeval_counter.total_flops / 2

    def test_memory_reeval_vs_incr(self, rng):
        a = spectral_normalized(rng, 10)
        reeval = ReevalPowerSums(a, 16, Model.exponential())
        incr = IncrementalPowerSums(a, 16, Model.exponential())
        assert incr.memory_bytes() > reeval.memory_bytes()
