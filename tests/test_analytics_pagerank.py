"""Incremental PageRank on evolving graphs, checked against networkx."""

import networkx as nx
try:
    import scipy  # noqa: F401
except ImportError:
    scipy = None

import numpy as np
import pytest

from repro.analytics import (
    IncrementalPageRank,
    reference_pagerank,
    transition_matrix,
)
from repro.iterative import Model
from repro.workloads import random_adjacency

STRATS = ["REEVAL", "INCR", "HYBRID"]


class TestTransitionMatrix:
    def test_columns_stochastic(self, rng):
        adj = random_adjacency(rng, 20)
        m = transition_matrix(adj)
        np.testing.assert_allclose(m.sum(axis=0), np.ones(20), atol=1e-12)

    def test_dangling_column_uniform(self):
        adj = np.zeros((4, 4))
        adj[1, 0] = 1.0  # only node 0 has an out-edge
        m = transition_matrix(adj)
        np.testing.assert_allclose(m[:, 2], 0.25 * np.ones(4))


class TestAgainstNetworkx:
    # networkx's pagerank itself runs on scipy sparse matrices.
    pytestmark = pytest.mark.skipif(
        scipy is None,
        reason="networkx pagerank needs scipy")

    def test_ranks_match_networkx(self, rng):
        adj = random_adjacency(rng, 25)
        pr = IncrementalPageRank(adj, k=128, strategy="HYBRID")
        graph = nx.DiGraph()
        graph.add_nodes_from(range(25))
        sources, targets = np.nonzero(adj.T)  # adj[t, s] = 1 => edge s->t
        graph.add_edges_from(zip(sources, targets))
        nx_ranks = nx.pagerank(graph, alpha=0.85, tol=1e-12, max_iter=500)
        mine = pr.ranks.reshape(-1)
        for node in range(25):
            assert abs(mine[node] - nx_ranks[node]) < 1e-6

    def test_ranks_match_networkx_after_edge_churn(self, rng):
        adj = random_adjacency(rng, 15)
        pr = IncrementalPageRank(adj, k=128, strategy="INCR",
                                 model=Model.linear())
        pr.add_edge(0, 7)
        pr.add_edge(3, 9)
        pr.remove_edge(0, 7)
        pr.add_edge(11, 2)
        graph = nx.DiGraph()
        graph.add_nodes_from(range(15))
        sources, targets = np.nonzero(pr.adjacency.T)
        graph.add_edges_from(zip(sources, targets))
        nx_ranks = nx.pagerank(graph, alpha=0.85, tol=1e-12, max_iter=500)
        mine = pr.ranks.reshape(-1)
        for node in range(15):
            assert abs(mine[node] - nx_ranks[node]) < 1e-6


class TestIncrementalMaintenance:
    @pytest.mark.parametrize("strategy", STRATS)
    def test_strategies_match_reference(self, strategy, rng):
        adj = random_adjacency(rng, 20)
        pr = IncrementalPageRank(adj, k=64, strategy=strategy,
                                 model=Model.linear())
        pr.add_edge(1, 2)
        pr.add_edge(5, 9)
        pr.remove_edge(1, 2)
        expected = reference_pagerank(pr.adjacency, iterations=64)
        np.testing.assert_allclose(pr.ranks, expected, atol=1e-10)

    def test_ranks_sum_to_one(self, rng):
        adj = random_adjacency(rng, 20)
        pr = IncrementalPageRank(adj, k=64)
        pr.add_edge(0, 3)
        assert abs(pr.ranks.sum() - 1.0) < 1e-9

    def test_duplicate_edge_is_noop(self, rng):
        adj = random_adjacency(rng, 10)
        src, dst = np.nonzero(adj.T)[0][0], np.nonzero(adj.T)[1][0]
        pr = IncrementalPageRank(adj, k=32)
        before = pr.ranks.copy()
        pr.add_edge(int(src), int(dst))  # already present
        np.testing.assert_array_equal(pr.ranks, before)

    def test_missing_edge_removal_is_noop(self, rng):
        adj = random_adjacency(rng, 10)
        zero = np.argwhere(adj.T == 0)
        src, dst = (int(z) for z in zero[0])
        pr = IncrementalPageRank(adj, k=32)
        before = pr.ranks.copy()
        pr.remove_edge(src, dst)
        np.testing.assert_array_equal(pr.ranks, before)

    def test_edge_to_dangling_node(self):
        """Adding the first out-edge of a dangling node is still rank-1."""
        adj = np.zeros((5, 5))
        adj[1, 0] = 1.0
        adj[2, 1] = 1.0
        adj[0, 2] = 1.0  # nodes 3, 4 dangling
        pr = IncrementalPageRank(adj, k=128, strategy="INCR",
                                 model=Model.linear())
        pr.add_edge(3, 0)
        expected = reference_pagerank(pr.adjacency, iterations=128)
        np.testing.assert_allclose(pr.ranks, expected, atol=1e-10)
        assert pr.revalidate() < 1e-10

    def test_top_nodes_ordering(self, rng):
        adj = random_adjacency(rng, 30)
        # make node 7 popular
        adj[7, :] = 1.0
        adj[7, 7] = 0.0
        pr = IncrementalPageRank(adj, k=64)
        top = pr.top(3)
        assert top[0][0] == 7
        scores = [score for _, score in top]
        assert scores == sorted(scores, reverse=True)

    def test_long_churn_drift_bounded(self, rng):
        adj = random_adjacency(rng, 15)
        pr = IncrementalPageRank(adj, k=64, strategy="INCR",
                                 model=Model.linear())
        for i in range(40):
            src = int(rng.integers(0, 15))
            dst = int(rng.integers(0, 15))
            if src == dst:
                continue
            if pr.adjacency[dst, src]:
                pr.remove_edge(src, dst)
            else:
                pr.add_edge(src, dst)
        assert pr.revalidate() < 1e-8
