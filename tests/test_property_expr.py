"""Whole-pipeline properties on random well-shaped expression trees.

Each property runs the same random tree through a different pair of
pipeline stages and demands agreement: printer vs parser, simplifier vs
evaluator, delta derivation vs finite differences, compiler vs
re-evaluation.  Together they pin the contract every stage must honour:
*all representations of an expression denote the same matrix function*.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from tests.exprgen import ExprPool, expr_with_env, shaped_expr
from repro.delta import FactoredDelta, compute_delta
from repro.expr import MatrixSymbol
from repro.expr.printer import to_string
from repro.expr.simplify import simplify
from repro.frontend import parse_program
from repro.runtime import evaluate
import pytest

pytestmark = pytest.mark.slow

SETTINGS = dict(max_examples=60, deadline=None)


class TestPrinterParserRoundTrip:
    @settings(**SETTINGS)
    @given(data=expr_with_env(), seed=st.integers(0, 9999))
    def test_round_trip_preserves_value(self, data, seed):
        expr, pool = data
        if not pool.symbols:
            return  # pure-identity tree: nothing to declare
        decls = "\n".join(
            f"input {name}({sym.shape.rows}, {sym.shape.cols});"
            for name, sym in pool.symbols.items()
        )
        source = f"{decls}\nresult := {to_string(expr)};\noutput result;"
        program = parse_program(source)
        env = pool.env(seed)
        reparsed = program.statements[-1].expr
        np.testing.assert_allclose(
            evaluate(reparsed, env), evaluate(expr, env), atol=1e-8
        )

    @settings(**SETTINGS)
    @given(data=expr_with_env())
    def test_round_trip_is_structural_identity(self, data):
        expr, pool = data
        if not pool.symbols:
            return
        decls = "\n".join(
            f"input {name}({sym.shape.rows}, {sym.shape.cols});"
            for name, sym in pool.symbols.items()
        )
        source = f"{decls}\nresult := {to_string(expr)};\noutput result;"
        program = parse_program(source)
        assert program.statements[-1].expr == expr


class TestSimplifySemantics:
    @settings(**SETTINGS)
    @given(data=expr_with_env(), seed=st.integers(0, 9999))
    def test_simplify_preserves_value(self, data, seed):
        expr, pool = data
        simplified = simplify(expr)
        env = pool.env(seed)
        np.testing.assert_allclose(
            evaluate(simplified, env), evaluate(expr, env), atol=1e-8
        )

    @settings(**SETTINGS)
    @given(data=expr_with_env())
    def test_simplify_is_idempotent(self, data):
        expr, _ = data
        once = simplify(expr)
        assert simplify(once) == once


class TestDeltaFiniteDifference:
    @settings(**SETTINGS)
    @given(data=expr_with_env(), seed=st.integers(0, 9999))
    def test_delta_equals_difference(self, data, seed):
        expr, pool = data
        if not pool.symbols:
            return
        env = pool.env(seed)
        rng = np.random.default_rng(seed + 1)
        # Update the first generated symbol by a rank-1 change.
        name, sym = next(iter(pool.symbols.items()))
        rows, cols = sym.shape.rows, sym.shape.cols
        u_sym = MatrixSymbol("du", rows, 1)
        v_sym = MatrixSymbol("dv", cols, 1)
        env["du"] = rng.normal(size=(rows, 1))
        env["dv"] = rng.normal(size=(cols, 1))
        delta = compute_delta(expr, {name: FactoredDelta.rank_one(u_sym, v_sym)})

        old = evaluate(expr, env)
        new_env = dict(env)
        new_env[name] = env[name] + env["du"] @ env["dv"].T
        new = evaluate(expr, new_env)
        if delta.is_zero:
            np.testing.assert_allclose(new, old, atol=1e-8)
            return
        np.testing.assert_allclose(
            evaluate(delta.to_expr(), env), new - old, atol=1e-7
        )


class TestCompilerAgainstReevaluation:
    @settings(max_examples=30, deadline=None)
    @given(
        seed=st.integers(0, 9999),
        n=st.sampled_from([3, 4]),
        depth=st.integers(1, 2),
        data=st.data(),
    )
    def test_trigger_equals_reevaluation(self, seed, n, depth, data):
        from repro.compiler import Program, Statement
        from repro.runtime import IVMSession, row_update

        pool = ExprPool()
        a = pool.symbol(n, n, 0)
        # One random statement over A, then one over both A and B.
        e1 = data.draw(shaped_expr(pool, n, n, depth))
        program_symbols = dict(pool.symbols)
        b = MatrixSymbol("B", n, n)
        e2 = b @ a
        program = Program(
            list(program_symbols.values()),
            [Statement(b, e1), Statement(MatrixSymbol("C", n, n), e2)],
        )

        rng = np.random.default_rng(seed)
        env = pool.env(seed)
        session = IVMSession(program, env)
        update = row_update(a.name, n, int(rng.integers(n)),
                            rng.normal(size=(n, 1)))
        session.apply_update(update)
        assert session.revalidate() < 1e-7
