"""Whole-pipeline properties on random well-shaped expression trees.

Each property runs the same random tree through a different pair of
pipeline stages and demands agreement: printer vs parser, simplifier vs
evaluator, delta derivation vs finite differences, compiler vs
re-evaluation.  Together they pin the contract every stage must honour:
*all representations of an expression denote the same matrix function*.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from tests.exprgen import ExprPool, expr_with_env, shaped_expr
from repro.delta import FactoredDelta, compute_delta
from repro.expr import (
    MatrixSymbol,
    canonicalize,
    structural_equal,
    structural_fingerprint,
    structural_key,
)
from repro.expr.printer import to_string
from repro.expr.simplify import simplify
from repro.frontend import parse_program
from repro.runtime import evaluate
import pytest

pytestmark = pytest.mark.slow

SETTINGS = dict(max_examples=60, deadline=None)


class TestPrinterParserRoundTrip:
    @settings(**SETTINGS)
    @given(data=expr_with_env(), seed=st.integers(0, 9999))
    def test_round_trip_preserves_value(self, data, seed):
        expr, pool = data
        if not pool.symbols:
            return  # pure-identity tree: nothing to declare
        decls = "\n".join(
            f"input {name}({sym.shape.rows}, {sym.shape.cols});"
            for name, sym in pool.symbols.items()
        )
        source = f"{decls}\nresult := {to_string(expr)};\noutput result;"
        program = parse_program(source)
        env = pool.env(seed)
        reparsed = program.statements[-1].expr
        np.testing.assert_allclose(
            evaluate(reparsed, env), evaluate(expr, env), atol=1e-8
        )

    @settings(**SETTINGS)
    @given(data=expr_with_env())
    def test_round_trip_is_structural_identity(self, data):
        expr, pool = data
        if not pool.symbols:
            return
        decls = "\n".join(
            f"input {name}({sym.shape.rows}, {sym.shape.cols});"
            for name, sym in pool.symbols.items()
        )
        source = f"{decls}\nresult := {to_string(expr)};\noutput result;"
        program = parse_program(source)
        assert program.statements[-1].expr == expr


class TestSimplifySemantics:
    @settings(**SETTINGS)
    @given(data=expr_with_env(), seed=st.integers(0, 9999))
    def test_simplify_preserves_value(self, data, seed):
        expr, pool = data
        simplified = simplify(expr)
        env = pool.env(seed)
        np.testing.assert_allclose(
            evaluate(simplified, env), evaluate(expr, env), atol=1e-8
        )

    @settings(**SETTINGS)
    @given(data=expr_with_env())
    def test_simplify_is_idempotent(self, data):
        expr, _ = data
        once = simplify(expr)
        assert simplify(once) == once


class TestStructuralHashing:
    """The catalog's sharing key: hash equality ⇔ canonical-form equality."""

    @settings(**SETTINGS)
    @given(data=expr_with_env(), other=expr_with_env())
    def test_key_equality_iff_canonical_equality(self, data, other):
        left, _ = data
        right, _ = other
        same_canon = canonicalize(left) == canonicalize(right)
        assert structural_equal(left, right) == same_canon
        assert (structural_key(left) == structural_key(right)) == same_canon

    @settings(**SETTINGS)
    @given(data=expr_with_env())
    def test_key_stable_across_simplifier_round_trips(self, data):
        expr, _ = data
        once = simplify(expr)
        assert structural_key(once) == structural_key(expr)
        assert structural_key(simplify(once)) == structural_key(expr)
        assert structural_fingerprint(once) == structural_fingerprint(expr)

    @settings(**SETTINGS)
    @given(data=expr_with_env(), seed=st.integers(0, 9999))
    def test_equal_keys_denote_equal_values(self, data, seed):
        """Soundness: colliding keys may only ever merge expressions
        that evaluate identically (what the catalog's exactness rides on)."""
        expr, pool = data
        canon = canonicalize(expr)
        if structural_key(canon) == structural_key(expr):
            env = pool.env(seed)
            np.testing.assert_allclose(
                evaluate(canon, env), evaluate(expr, env), atol=1e-8)

    def test_no_collisions_across_generated_corpus(self):
        """Distinct canonical forms must get distinct keys over a corpus
        far larger than any real catalog's node population."""
        corpus = {}
        pool = ExprPool()
        # Deterministic sweep over the generator's shapes and operators
        # at depth <= 2 via seeded draws.
        for seed in range(400):
            local = np.random.default_rng(seed)
            expr = _random_expr(pool, local, depth=int(local.integers(0, 3)))
            key = structural_key(expr)
            fingerprint = structural_fingerprint(expr)
            if key in corpus:
                assert corpus[key] == fingerprint, (
                    f"collision: {fingerprint!r} vs {corpus[key]!r}")
            corpus[key] = fingerprint
        assert len(corpus) > 50  # the sweep really covered distinct forms


def _random_expr(pool, rng, depth):
    """A seeded random square tree mirroring ``shaped_expr``'s grammar."""
    from repro.expr import Identity, add, matmul, scalar_mul, transpose

    n = int(rng.choice([2, 3, 4]))

    def build(rows, cols, depth):
        if depth <= 0:
            return pool.symbol(rows, cols, int(rng.integers(0, 3)))
        choice = rng.integers(0, 5)
        if choice == 0:
            return pool.symbol(rows, cols, int(rng.integers(0, 3)))
        if choice == 1:
            return add(build(rows, cols, depth - 1),
                       build(rows, cols, depth - 1))
        if choice == 2:
            mid = int(rng.choice([2, 3, 4]))
            return matmul(build(rows, mid, depth - 1),
                          build(mid, cols, depth - 1))
        if choice == 3:
            return transpose(build(cols, rows, depth - 1))
        if rows == cols and rng.integers(0, 2):
            return Identity(rows)
        return scalar_mul(float(rng.choice([2.0, 3.0, 0.5, -2.0])),
                          build(rows, cols, depth - 1))

    return build(n, n, depth)


class TestDeltaFiniteDifference:
    @settings(**SETTINGS)
    @given(data=expr_with_env(), seed=st.integers(0, 9999))
    def test_delta_equals_difference(self, data, seed):
        expr, pool = data
        if not pool.symbols:
            return
        env = pool.env(seed)
        rng = np.random.default_rng(seed + 1)
        # Update the first generated symbol by a rank-1 change.
        name, sym = next(iter(pool.symbols.items()))
        rows, cols = sym.shape.rows, sym.shape.cols
        u_sym = MatrixSymbol("du", rows, 1)
        v_sym = MatrixSymbol("dv", cols, 1)
        env["du"] = rng.normal(size=(rows, 1))
        env["dv"] = rng.normal(size=(cols, 1))
        delta = compute_delta(expr, {name: FactoredDelta.rank_one(u_sym, v_sym)})

        old = evaluate(expr, env)
        new_env = dict(env)
        new_env[name] = env[name] + env["du"] @ env["dv"].T
        new = evaluate(expr, new_env)
        if delta.is_zero:
            np.testing.assert_allclose(new, old, atol=1e-8)
            return
        np.testing.assert_allclose(
            evaluate(delta.to_expr(), env), new - old, atol=1e-7
        )


class TestCompilerAgainstReevaluation:
    @settings(max_examples=30, deadline=None)
    @given(
        seed=st.integers(0, 9999),
        n=st.sampled_from([3, 4]),
        depth=st.integers(1, 2),
        data=st.data(),
    )
    def test_trigger_equals_reevaluation(self, seed, n, depth, data):
        from repro.compiler import Program, Statement
        from repro.runtime import IVMSession, row_update

        pool = ExprPool()
        a = pool.symbol(n, n, 0)
        # One random statement over A, then one over both A and B.
        e1 = data.draw(shaped_expr(pool, n, n, depth))
        program_symbols = dict(pool.symbols)
        b = MatrixSymbol("B", n, n)
        e2 = b @ a
        program = Program(
            list(program_symbols.values()),
            [Statement(b, e1), Statement(MatrixSymbol("C", n, n), e2)],
        )

        rng = np.random.default_rng(seed)
        env = pool.env(seed)
        session = IVMSession(program, env)
        update = row_update(a.name, n, int(rng.integers(n)),
                            rng.normal(size=(n, 1)))
        session.apply_update(update)
        assert session.revalidate() < 1e-7
