"""Iterative models: schedules, predecessors, validation (Section 3.2)."""

import pytest

from repro.iterative import Model, is_power_of_two, parse_model


class TestPowerOfTwo:
    def test_powers(self):
        assert all(is_power_of_two(x) for x in (1, 2, 4, 8, 1024))

    def test_non_powers(self):
        assert not any(is_power_of_two(x) for x in (0, 3, 6, 12, -4))


class TestConstruction:
    def test_linear(self):
        assert Model.linear().name == "LIN"

    def test_exponential(self):
        assert Model.exponential().name == "EXP"

    def test_skip(self):
        assert Model.skip(4).name == "SKIP-4"

    def test_skip_requires_power_of_two(self):
        with pytest.raises(ValueError):
            Model.skip(3)

    def test_skip_requires_positive(self):
        with pytest.raises(ValueError):
            Model.skip(0)

    def test_non_skip_rejects_s(self):
        with pytest.raises(ValueError):
            Model(Model.LINEAR, 2)

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            Model("quadratic")

    def test_equality_and_hash(self):
        assert Model.skip(4) == Model.skip(4)
        assert Model.skip(4) != Model.skip(8)
        assert len({Model.linear(), Model.linear(), Model.exponential()}) == 2

    def test_parse_model_labels(self):
        assert parse_model("LIN") == Model.linear()
        assert parse_model("exp") == Model.exponential()
        assert parse_model("SKIP-8") == Model.skip(8)
        with pytest.raises(ValueError):
            parse_model("CUBIC")


class TestSchedules:
    def test_linear_schedule(self):
        assert Model.linear().schedule(5) == [1, 2, 3, 4, 5]

    def test_exponential_schedule(self):
        assert Model.exponential().schedule(16) == [1, 2, 4, 8, 16]

    def test_skip_schedule(self):
        # Paper Section 3.2: s=8, k=32 -> exp to 8, then every 8th.
        assert Model.skip(8).schedule(32) == [1, 2, 4, 8, 16, 24, 32]

    def test_skip4_schedule(self):
        assert Model.skip(4).schedule(16) == [1, 2, 4, 8, 12, 16]

    def test_skip_one_is_linear(self):
        assert Model.skip(1).schedule(6) == Model.linear().schedule(6)

    def test_skip_k_is_exponential(self):
        assert Model.skip(16).schedule(16) == Model.exponential().schedule(16)

    def test_all_schedules_end_at_k(self):
        for model in (Model.linear(), Model.exponential(), Model.skip(4)):
            assert model.schedule(16)[-1] == 16

    def test_exponential_rejects_non_power(self):
        with pytest.raises(ValueError):
            Model.exponential().schedule(12)

    def test_skip_rejects_non_divisible(self):
        with pytest.raises(ValueError):
            Model.skip(4).schedule(18)

    def test_skip_rejects_k_below_s(self):
        with pytest.raises(ValueError):
            Model.skip(8).schedule(4)

    def test_k_must_be_positive(self):
        with pytest.raises(ValueError):
            Model.linear().schedule(0)


class TestPredecessor:
    def test_linear(self):
        assert Model.linear().predecessor(5) == 4

    def test_exponential(self):
        assert Model.exponential().predecessor(16) == 8

    def test_skip_exponential_phase(self):
        assert Model.skip(8).predecessor(8) == 4

    def test_skip_skip_phase(self):
        assert Model.skip(8).predecessor(24) == 16

    def test_iteration_one_has_no_predecessor(self):
        with pytest.raises(ValueError):
            Model.linear().predecessor(1)

    def test_predecessors_stay_in_schedule(self):
        for model in (Model.linear(), Model.exponential(),
                      Model.skip(2), Model.skip(4), Model.skip(8)):
            schedule = model.schedule(16)
            for i in schedule[1:]:
                assert model.predecessor(i) in schedule
