"""Traversal, substitution and analysis utilities."""

from repro.expr import (
    Inverse,
    MatrixSymbol,
    NamedDim,
    add,
    contains_inverse,
    count_nodes,
    depth,
    inverse,
    matmul,
    matrix_symbols,
    references,
    substitute,
    substitute_symbol,
    transform,
    transpose,
    walk,
)

n = NamedDim("n")
A = MatrixSymbol("A", n, n)
B = MatrixSymbol("B", n, n)
C = MatrixSymbol("C", n, n)


class TestWalk:
    def test_preorder_root_first(self):
        expr = matmul(A, B)
        nodes = list(walk(expr))
        assert nodes[0] is expr
        assert A in nodes and B in nodes

    def test_count_nodes(self):
        assert count_nodes(A) == 1
        assert count_nodes(matmul(A, B)) == 3
        assert count_nodes(add(matmul(A, B), C)) == 5

    def test_depth(self):
        assert depth(A) == 1
        assert depth(matmul(A, B)) == 2
        assert depth(transpose(matmul(A, B))) == 3


class TestAnalysis:
    def test_matrix_symbols(self):
        expr = add(matmul(A, B), transpose(A))
        assert matrix_symbols(expr) == {A, B}

    def test_references(self):
        expr = matmul(A, transpose(B))
        assert references(expr, "A")
        assert references(expr, "B")
        assert not references(expr, "C")

    def test_contains_inverse(self):
        assert contains_inverse(inverse(A))
        assert contains_inverse(matmul(A, inverse(add(A, B))))
        assert not contains_inverse(matmul(A, B))


class TestSubstitute:
    def test_symbol_substitution(self):
        expr = matmul(A, B)
        result = substitute_symbol(expr, "A", C)
        assert result == matmul(C, B)

    def test_substitution_inside_transpose(self):
        expr = transpose(A)
        result = substitute_symbol(expr, "A", add(A, B))
        assert result == transpose(add(A, B))

    def test_substitution_inside_inverse(self):
        expr = inverse(A)
        result = substitute_symbol(expr, "A", add(A, B))
        assert isinstance(result, Inverse)
        assert result.child == add(A, B)

    def test_whole_subexpression_substitution(self):
        expr = add(matmul(A, B), C)
        result = substitute(expr, {matmul(A, B): C})
        assert result == add(C, C)

    def test_no_match_returns_equal_tree(self):
        expr = matmul(A, B)
        assert substitute(expr, {C: A}) == expr

    def test_substitution_triggers_normalization(self):
        from repro.expr import ZeroMatrix

        expr = add(A, B)
        result = substitute(expr, {B: ZeroMatrix(n, n)})
        assert result == A  # zero term dropped by the rebuild


class TestTransform:
    def test_bottom_up_rewrite(self):
        def rename(node):
            if isinstance(node, MatrixSymbol) and node.name == "A":
                return B
            return node

        assert transform(matmul(A, A), rename) == matmul(B, B)

    def test_transform_preserves_untouched(self):
        expr = add(A, matmul(B, C))
        assert transform(expr, lambda x: x) == expr
