"""CLI extensions: spark backend, --dims chain ordering, advise command."""

import pytest

from repro.cli import main

A4_SOURCE = """
input A(n, n);
B := A * A;
C := B * B;
output C;
"""

CHAIN_SOURCE = """
input A(n, n);
input v(n, 1);
w := A * A * v;
output w;
"""


@pytest.fixture
def a4_file(tmp_path):
    path = tmp_path / "a4.lvw"
    path.write_text(A4_SOURCE)
    return str(path)


@pytest.fixture
def chain_file(tmp_path):
    path = tmp_path / "chain.lvw"
    path.write_text(CHAIN_SOURCE)
    return str(path)


class TestSparkBackend:
    def test_emits_scala_trigger(self, a4_file, capsys):
        assert main(["compile", a4_file, "--backend", "spark"]) == 0
        out = capsys.readouterr().out
        assert "def onUpdateA(" in out
        assert "sc.broadcast(u_A)" in out
        assert "blockwiseAdd" in out

    def test_spark_with_optimizer(self, a4_file, capsys):
        assert main(["compile", a4_file, "--backend", "spark",
                     "--optimize"]) == 0
        assert "def onUpdateA(" in capsys.readouterr().out


class TestDimsChainOrdering:
    def test_dims_accepted(self, chain_file, capsys):
        assert main(["compile", chain_file, "--dims", "n=512"]) == 0
        assert "ON UPDATE" in capsys.readouterr().out

    def test_malformed_dims_rejected(self, chain_file, capsys):
        assert main(["compile", chain_file, "--dims", "n:512"]) == 2
        assert "NAME=SIZE" in capsys.readouterr().err

    def test_unbound_dim_reported(self, chain_file, capsys):
        assert main(["compile", chain_file, "--dims", "m=4"]) == 2
        assert "unbound dimension" in capsys.readouterr().err

    def test_dims_reassociates_vector_chain(self, chain_file, capsys):
        # The w view's reconstruction references A * A * v; with dims
        # bound the update statement for w must keep matrix-vector
        # association (no bare "A * A" subchain).
        assert main(["compile", chain_file, "--dims", "n=512",
                     "--backend", "octave"]) == 0
        out = capsys.readouterr().out
        assert "A*(A*" in out.replace(" ", "") or "A*A" not in out.replace(" ", "")


class TestAdvise:
    def test_powers_recommendation(self, capsys):
        assert main(["advise", "powers", "--n", "10000", "--k", "16"]) == 0
        out = capsys.readouterr().out
        assert out.splitlines()[2].split()[1] == "INCR-EXP"
        assert "predicted gain" in out

    def test_general_p1_recommends_hybrid(self, capsys):
        assert main(["advise", "general", "--n", "30000", "--p", "1",
                     "--k", "16"]) == 0
        out = capsys.readouterr().out
        assert "HYBRID" in out.splitlines()[2]

    def test_memory_budget_flag(self, capsys):
        assert main(["advise", "powers", "--n", "1000", "--k", "16",
                     "--memory-budget", "3000000"]) == 0
        out = capsys.readouterr().out
        assert "REEVAL" in out.splitlines()[2]

    def test_impossible_budget_errors(self, capsys):
        assert main(["advise", "powers", "--n", "1000", "--k", "16",
                     "--memory-budget", "10"]) == 2
        assert "no configuration fits" in capsys.readouterr().err

    def test_top_limits_rows(self, capsys):
        assert main(["advise", "powers", "--n", "100", "--k", "16",
                     "--top", "2"]) == 0
        out = capsys.readouterr().out
        ranked_rows = [line for line in out.splitlines()
                       if line and line[0].isdigit()]
        assert len(ranked_rows) == 2

    def test_gamma_changes_reeval_cost(self, capsys):
        # With gamma -> 2 (hypothetical optimal matmul), re-evaluation
        # catches up; the advisor must reflect that.
        assert main(["advise", "powers", "--n", "100", "--k", "64",
                     "--gamma", "2.0"]) == 0
        out = capsys.readouterr().out
        assert out.splitlines()[2].split()[1].startswith("REEVAL")
