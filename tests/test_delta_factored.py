"""FactoredDelta representation: widths, algebra, materialization."""

import numpy as np
import pytest

from repro.delta import FactoredDelta
from repro.expr import MatrixSymbol, NamedDim, Shape, ZeroMatrix

n = NamedDim("n")
A = MatrixSymbol("A", n, n)
u = MatrixSymbol("u", n, 1)
v = MatrixSymbol("v", n, 1)
U2 = MatrixSymbol("U2", n, 2)
V2 = MatrixSymbol("V2", n, 2)


class TestConstruction:
    def test_zero_delta(self):
        d = FactoredDelta.zero(Shape(n, n))
        assert d.is_zero
        assert d.width == 0

    def test_rank_one(self):
        d = FactoredDelta.rank_one(u, v)
        assert not d.is_zero
        assert d.width == 1
        assert d.shape == Shape(n, n)

    def test_rank_one_rectangular(self):
        w = MatrixSymbol("w", 3, 1)
        d = FactoredDelta.rank_one(u, w)
        assert d.shape == Shape(n, 3)

    def test_block_widths_add(self):
        d = FactoredDelta(Shape(n, n), [(u, v), (U2, V2)])
        assert d.width == 3

    def test_zero_factor_terms_dropped(self):
        d = FactoredDelta(Shape(n, n), [(ZeroMatrix(n, 1), v), (u, v)])
        assert d.width == 1

    def test_mismatched_factor_widths_rejected(self):
        with pytest.raises(ValueError):
            FactoredDelta(Shape(n, n), [(u, V2)])

    def test_mismatched_rows_rejected(self):
        w = MatrixSymbol("w", 3, 1)
        with pytest.raises(ValueError):
            FactoredDelta(Shape(n, n), [(w, v)])

    def test_immutable(self):
        d = FactoredDelta.rank_one(u, v)
        with pytest.raises(AttributeError):
            d.terms = ()  # type: ignore[misc]


class TestExpressions:
    def test_single_term_expr(self):
        d = FactoredDelta.rank_one(u, v)
        assert repr(d.to_expr()) == "u * v'"

    def test_multi_term_stacks(self):
        d = FactoredDelta(Shape(n, n), [(u, v), (U2, V2)])
        assert repr(d.u_expr) == "[u, U2]"
        assert repr(d.v_expr) == "[v, V2]"
        assert repr(d.to_expr()) == "[u, U2] * [v, V2]'"

    def test_zero_expr(self):
        d = FactoredDelta.zero(Shape(n, 2))
        assert d.to_expr().is_zero

    def test_zero_has_no_factors(self):
        d = FactoredDelta.zero(Shape(n, n))
        with pytest.raises(ValueError):
            _ = d.u_expr


class TestAlgebra:
    def test_plus_concatenates(self):
        d = FactoredDelta.rank_one(u, v).plus(FactoredDelta.rank_one(u, v))
        assert d.width == 2
        assert len(d.terms) == 2

    def test_plus_zero_is_noop(self):
        d = FactoredDelta.rank_one(u, v)
        assert d.plus(FactoredDelta.zero(d.shape)).terms == d.terms

    def test_plus_shape_mismatch(self):
        d1 = FactoredDelta.rank_one(u, v)
        d2 = FactoredDelta.rank_one(u, MatrixSymbol("w", 3, 1))
        with pytest.raises(ValueError):
            d1.plus(d2)

    def test_scale(self):
        d = FactoredDelta.rank_one(u, v).scale(2.0)
        assert repr(d.to_expr()) == "2 * (u * v')"

    def test_scale_by_zero_is_zero(self):
        assert FactoredDelta.rank_one(u, v).scale(0.0).is_zero

    def test_negate_then_negate(self, rng):
        d = FactoredDelta.rank_one(u, v)
        env = {"u": rng.normal(size=(5, 1)), "v": rng.normal(size=(5, 1))}
        orig = d.to_dense(env, dims={"n": 5})
        back = d.negate().negate().to_dense(env, dims={"n": 5})
        np.testing.assert_allclose(back, orig)

    def test_transposed_swaps_factors(self, rng):
        d = FactoredDelta(Shape(n, n), [(u, v), (U2, V2)])
        env = {
            "u": rng.normal(size=(5, 1)),
            "v": rng.normal(size=(5, 1)),
            "U2": rng.normal(size=(5, 2)),
            "V2": rng.normal(size=(5, 2)),
        }
        dense = d.to_dense(env, dims={"n": 5})
        dense_t = d.transposed().to_dense(env, dims={"n": 5})
        np.testing.assert_allclose(dense_t, dense.T)

    def test_left_mul(self, rng):
        d = FactoredDelta.rank_one(u, v).left_mul(A)
        env = {
            "A": rng.normal(size=(5, 5)),
            "u": rng.normal(size=(5, 1)),
            "v": rng.normal(size=(5, 1)),
        }
        expected = env["A"] @ (env["u"] @ env["v"].T)
        np.testing.assert_allclose(d.to_dense(env, dims={"n": 5}), expected)

    def test_right_mul(self, rng):
        d = FactoredDelta.rank_one(u, v).right_mul(A)
        env = {
            "A": rng.normal(size=(5, 5)),
            "u": rng.normal(size=(5, 1)),
            "v": rng.normal(size=(5, 1)),
        }
        expected = (env["u"] @ env["v"].T) @ env["A"]
        np.testing.assert_allclose(d.to_dense(env, dims={"n": 5}), expected)

    def test_dense_equals_sum_of_outer_products(self, rng):
        d = FactoredDelta(Shape(n, n), [(u, v), (U2, V2)])
        env = {
            "u": rng.normal(size=(4, 1)),
            "v": rng.normal(size=(4, 1)),
            "U2": rng.normal(size=(4, 2)),
            "V2": rng.normal(size=(4, 2)),
        }
        expected = env["u"] @ env["v"].T + env["U2"] @ env["V2"].T
        np.testing.assert_allclose(d.to_dense(env, dims={"n": 4}), expected)


class TestApplyTo:
    """PR 4: deltas refresh views through the in-place update kernel."""

    def test_dense_target_mutates_in_place(self, rng):
        d = FactoredDelta(Shape(n, n), [(u, v), (U2, V2)])
        env = {
            "u": rng.normal(size=(4, 1)),
            "v": rng.normal(size=(4, 1)),
            "U2": rng.normal(size=(4, 2)),
            "V2": rng.normal(size=(4, 2)),
        }
        target = rng.normal(size=(4, 4))
        expected = target + d.to_dense(env, dims={"n": 4})
        result = d.apply_to(target, env, dims={"n": 4})
        assert result is target, "dense apply must accumulate in place"
        np.testing.assert_allclose(result, expected, atol=1e-12)

    def test_zero_delta_returns_target_untouched(self, rng):
        d = FactoredDelta.zero(Shape(n, n))
        target = rng.normal(size=(4, 4))
        before = target.copy()
        assert d.apply_to(target, {}, dims={"n": 4}) is target
        np.testing.assert_array_equal(target, before)

    def test_sparse_backend_apply(self, rng):
        pytest.importorskip("scipy")
        from repro.backends import get_backend

        be = get_backend("sparse")
        d = FactoredDelta(Shape(n, n), [(u, v)])
        env = {
            "u": rng.normal(size=(80, 1)),
            "v": rng.normal(size=(80, 1)),
        }
        target = be.asarray((rng.random((80, 80)) < 0.02) * 1.0)
        dense_before = be.materialize(target)
        result = d.apply_to(target, env, dims={"n": 80}, backend=be)
        np.testing.assert_allclose(
            be.materialize(result),
            dense_before + env["u"] @ env["v"].T,
            atol=1e-12,
        )
