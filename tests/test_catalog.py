"""Shared-vs-independent differential harness for the multi-view catalog.

The ISSUE 10 headline proof: N tenant programs registered on one
:class:`~repro.catalog.ViewCatalog` must be indistinguishable from N
independent sessions — bitwise for the first registrant and for every
identically-spelled shared statement, allclose for canonical-collision
aliases — across generated overlapping-program families
(:func:`exprgen.shared_family`) x Zipf/uniform streams x backend x
(strategy, mode); while the catalog's maintenance work scales with
*distinct* subexpressions, not with tenant count.  Eviction under a
``memory_budget`` demotes nodes to exact REEVAL-on-demand
(bitwise-equal to re-evaluating against the maintained state) and
re-admits them once demand charges out-price admission — mid-stream,
without ever losing allclose parity.
"""

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from exprgen import shared_family
from stream_helpers import zipf_row_updates

from repro.catalog import (
    Catalog,
    CatalogError,
    CatalogInputMismatchError,
    NODE_PREFIX,
    ViewCatalog,
)
from repro.cost.counters import Counter
from repro.frontend import parse_program
from repro.runtime import FactoredUpdate, IVMSession, ReevalSession, open_session


def _sparse_available() -> bool:
    try:
        import scipy  # noqa: F401

        return True
    except ImportError:
        return False


BACKENDS = ("dense",) + (("sparse",) if _sparse_available() else ())

#: (strategy, mode) cells the catalog's inner session supports.
CATALOG_CONFIGS = (
    ("INCR", "interpret"),
    ("INCR", "codegen"),
    ("REEVAL", "interpret"),
)


def _independent(program, inputs, strategy, mode, backend):
    inputs = {name: arr.copy() for name, arr in inputs.items()}
    if strategy == "REEVAL":
        return ReevalSession(program, inputs, backend=backend)
    return IVMSession(program, inputs, mode=mode, backend=backend)


def _clone(update):
    return FactoredUpdate(update.target, update.u_block.copy(),
                          update.v_block.copy())


def _chain_program():
    return parse_program("input A(n, n); B := A * A; C := B * B; output C;")


def _chain_inputs(rng, n=6):
    return n, {"A": 0.4 * rng.standard_normal((n, n)) / np.sqrt(n)}


class TestSharedVsIndependentDifferential:
    """Generated tenant families: catalog vs N private sessions."""

    @settings(max_examples=25, deadline=None)
    @given(data=st.data())
    def test_parity_across_family_stream_backend_mode(self, data):
        programs, n, inputs = data.draw(shared_family())
        theta = data.draw(st.sampled_from([0.0, 2.0]))
        backend = data.draw(st.sampled_from(BACKENDS))
        strategy, mode = data.draw(st.sampled_from(CATALOG_CONFIGS))
        count = data.draw(st.integers(4, 12))
        rng = np.random.default_rng(data.draw(st.integers(0, 2 ** 16)))
        updates = zipf_row_updates(rng, n, count, theta)

        catalog = ViewCatalog(strategy=strategy, mode=mode, backend=backend)
        tenants = [catalog.open(program, inputs if i == 0 else None)
                   for i, program in enumerate(programs)]
        independents = [
            _independent(program, inputs, strategy, mode, backend)
            for program in programs
        ]

        for update in updates:
            catalog.apply_update(_clone(update))
            for session in independents:
                session.apply_update(_clone(update))

        for index, (program, tenant, session) in enumerate(
                zip(programs, tenants, independents)):
            for name in program.input_names + program.view_names:
                got = np.asarray(tenant[name])
                want = np.asarray(session[name])
                scale = max(1.0, float(np.max(np.abs(want))))
                np.testing.assert_allclose(
                    got, want, rtol=1e-7, atol=1e-8 * scale,
                    err_msg=f"tenant {index} view {name} diverged")
            if index == 0:
                # The first registrant created every node it reads with
                # its own statement spellings: exactness is bitwise.
                for name in program.input_names + program.view_names:
                    np.testing.assert_array_equal(
                        np.asarray(tenants[0][name]),
                        np.asarray(session[name]),
                        err_msg=f"first registrant {name} not bitwise")

    @settings(max_examples=25, deadline=None)
    @given(data=st.data())
    def test_identically_spelled_prefix_is_bitwise_for_all(self, data):
        """The common chain prefix is spelled the same by every tenant,
        so *every* tenant's prefix reads are bitwise-equal to its own
        independent session, whatever else the family registered."""
        programs, n, inputs = data.draw(shared_family())
        backend = data.draw(st.sampled_from(BACKENDS))
        strategy, mode = data.draw(st.sampled_from(CATALOG_CONFIGS))
        rng = np.random.default_rng(data.draw(st.integers(0, 2 ** 16)))
        updates = zipf_row_updates(rng, n, 6, 1.5)

        catalog = ViewCatalog(strategy=strategy, mode=mode, backend=backend)
        tenants = [catalog.open(program, inputs if i == 0 else None)
                   for i, program in enumerate(programs)]
        independents = [
            _independent(program, inputs, strategy, mode, backend)
            for program in programs
        ]
        for update in updates:
            catalog.apply_update(_clone(update))
            for session in independents:
                session.apply_update(_clone(update))

        prefix = [name for name in programs[0].view_names
                  if name.startswith("V")]
        for index, (tenant, session) in enumerate(
                zip(tenants, independents)):
            for name in prefix:
                np.testing.assert_array_equal(
                    np.asarray(tenant[name]), np.asarray(session[name]),
                    err_msg=f"tenant {index} prefix view {name} not bitwise")

    def test_aliases_share_nodes_without_new_state(self, rng):
        n, inputs = _chain_inputs(rng)
        catalog = ViewCatalog()
        t1 = catalog.open(_chain_program(), inputs, dims={"n": n})
        alias = parse_program("input A(n, n); B := A * A; F := B; output F;")
        t2 = catalog.open(alias, None, dims={"n": n})
        assert catalog.distinct_nodes == 2  # A*A and (A*A)*(A*A), no F node
        for update in zipf_row_updates(rng, n, 5, 0.0):
            catalog.apply_update(update)
        np.testing.assert_array_equal(t2["F"], t2["B"])
        np.testing.assert_array_equal(t2["F"], t1["B"])


class TestWorkScalesWithDistinctSubexpressions:
    """The headline counter: shared work is flat in tenant count."""

    def _run_shared(self, rng_seed, tenants, updates=12, n=8):
        rng = np.random.default_rng(rng_seed)
        n, inputs = _chain_inputs(rng, n)
        counter = Counter()
        catalog = ViewCatalog(counter=counter)
        handles = [catalog.open(_chain_program(),
                                inputs if i == 0 else None, dims={"n": n})
                   for i in range(tenants)]
        counter.reset()
        for update in zipf_row_updates(rng, n, updates, 0.0):
            catalog.apply_update(update)
        catalog.flush()
        assert len(handles) == tenants
        return catalog, counter.total_flops

    def test_node_refreshes_flat_in_tenant_count(self):
        results = {}
        for tenants in (1, 2, 4, 8):
            catalog, flops = self._run_shared(7, tenants)
            results[tenants] = (catalog.stats.node_refreshes, flops)
            # Exactly one refresh per distinct admitted node per update.
            assert (catalog.stats.node_refreshes
                    == catalog.distinct_nodes * catalog.stats.updates)
            assert catalog.distinct_nodes == 2
        # Fully-overlapping tenants: identical work regardless of N.
        assert results[1] == results[8]

    def test_shared_hits_count_deduplicated_registrations(self):
        catalog, _ = self._run_shared(7, 5)
        # 5 tenants x 2 statements; 4 later tenants hit both nodes.
        assert catalog.stats.registered_views == 10
        assert catalog.stats.shared_hits == 8
        assert catalog.stats.tenants == 5

    def test_independent_flops_scale_with_n_shared_do_not(self, rng):
        n, inputs = _chain_inputs(rng, 8)
        program = _chain_program()
        updates = zipf_row_updates(rng, n, 12, 0.0)

        _, shared_flops = self._run_shared(7, 8)
        counter = Counter()
        sessions = [
            IVMSession(program,
                       {k: v.copy() for k, v in inputs.items()},
                       dims={"n": n}, counter=counter)
            for _ in range(8)
        ]
        counter.reset()
        for update in updates:
            for session in sessions:
                session.apply_update(_clone(update))
        independent_flops = counter.total_flops
        # The acceptance bar: >= 3x at N = 8 fully-overlapping tenants.
        assert independent_flops >= 3 * shared_flops


class TestEvictionAndReadmission:
    """Cache-aside under memory_budget, mid-stream, without losing parity."""

    def test_mid_stream_eviction_keeps_parity(self, rng):
        n, inputs = _chain_inputs(rng)
        program = _chain_program()
        budget = n * n * 8  # room for exactly one admitted node
        catalog = ViewCatalog(memory_budget=budget)
        tenant = catalog.open(program, inputs, dims={"n": n})
        oracle = _independent(program, inputs, "INCR", "interpret", None)
        assert catalog.stats.evictions >= 1  # over budget at registration

        for update in zipf_row_updates(rng, n, 8, 0.0):
            catalog.apply_update(_clone(update))
            oracle.apply_update(_clone(update))
            for name in ("B", "C"):
                got, want = tenant[name], oracle[name]
                scale = max(1.0, float(np.max(np.abs(want))))
                np.testing.assert_allclose(
                    got, want, rtol=1e-7, atol=1e-8 * scale,
                    err_msg=f"{name} diverged under eviction")
        assert catalog.stats.demand_reads >= 1
        # Hot demand reads priced the frontier node back in mid-stream.
        assert catalog.stats.readmissions >= 1
        assert catalog.memory_bytes() <= budget + n * n * 8

    def test_evicted_read_is_exact_reevaluation(self, rng):
        n, inputs = _chain_inputs(rng)
        catalog = ViewCatalog(memory_budget=n * n * 8)
        tenant = catalog.open(_chain_program(), inputs, dims={"n": n})
        for update in zipf_row_updates(rng, n, 2, 0.0):
            catalog.apply_update(update)
        evicted = [name for name in catalog.nodes
                   if not catalog.nodes[name].admitted]
        assert evicted, "budget of one node must leave the chain top evicted"
        # The exactness contract: an evicted read IS re-evaluation of
        # the node's expression against the maintained admitted state.
        want = np.asarray(tenant["B"]) @ np.asarray(tenant["B"])
        np.testing.assert_array_equal(tenant["C"], want)

    def test_flush_first_eviction_lands_pending_deltas(self, rng):
        """Evicting immediately after updates must not lose their effect:
        the budget-enforcement pass flushes before demoting."""
        n, inputs = _chain_inputs(rng)
        program = _chain_program()
        catalog = ViewCatalog()
        tenant = catalog.open(program, inputs, dims={"n": n})
        oracle = _independent(program, inputs, "INCR", "interpret", None)
        for update in zipf_row_updates(rng, n, 5, 0.0):
            catalog.apply_update(_clone(update))
            oracle.apply_update(_clone(update))
        # Shrink the budget post-hoc and force an enforcement pass via a
        # new registration: the evicted node's on-demand value must
        # reflect every update applied above.
        catalog.memory_budget = n * n * 8
        catalog.open(parse_program("input A(n, n); B := A * A; output B;"),
                     None, dims={"n": n})
        assert catalog.stats.evictions >= 1
        scale = max(1.0, float(np.max(np.abs(oracle["C"]))))
        np.testing.assert_allclose(tenant["C"], oracle["C"],
                                   rtol=1e-7, atol=1e-8 * scale)

    def test_readmission_pins_value_and_resumes_incrementally(self, rng):
        n, inputs = _chain_inputs(rng)
        catalog = ViewCatalog(memory_budget=n * n * 8)
        tenant = catalog.open(_chain_program(), inputs, dims={"n": n})
        stream = zipf_row_updates(rng, n, 10, 0.0)
        for update in stream[:6]:
            catalog.apply_update(update)
            tenant["C"]  # demand-read pressure prices C back in
        assert catalog.stats.readmissions >= 1
        node = next(n_ for n_ in catalog.nodes.values()
                    if n_.name != f"{NODE_PREFIX}0")
        assert node.admitted
        pinned = np.array(tenant["C"])
        # Re-admitted: an immediate re-read serves the pinned value...
        np.testing.assert_array_equal(tenant["C"], pinned)
        before = catalog.stats.demand_reads
        tenant["C"]
        assert catalog.stats.demand_reads == before  # ...not on demand
        for update in stream[6:]:
            catalog.apply_update(update)
        assert np.isfinite(tenant["C"]).all()


class TestRegistration:
    """Typed errors and mid-stream tenancy changes."""

    def test_mid_stream_registration_joins_current_state(self, rng):
        n, inputs = _chain_inputs(rng)
        program = _chain_program()
        catalog = ViewCatalog()
        t1 = catalog.open(program, inputs, dims={"n": n})
        stream = zipf_row_updates(rng, n, 10, 0.0)
        for update in stream[:5]:
            catalog.apply_update(update)
        # A tenant arriving mid-stream shares from here on out.
        t2 = catalog.open(
            parse_program("input A(n, n); G := A * A; H := G * A; output H;"),
            None, dims={"n": n})
        for update in stream[5:]:
            catalog.apply_update(update)
        np.testing.assert_array_equal(t2["G"], t1["B"])  # same node
        a = np.asarray(catalog.read("A"))
        scale = max(1.0, float(np.max(np.abs(a))))
        np.testing.assert_allclose(t2["H"], (a @ a) @ a,
                                   rtol=1e-7, atol=1e-8 * scale)

    def test_conflicting_input_value_rejected(self, rng):
        n, inputs = _chain_inputs(rng)
        catalog = ViewCatalog()
        catalog.open(_chain_program(), inputs, dims={"n": n})
        with pytest.raises(CatalogInputMismatchError, match="bitwise"):
            catalog.open(_chain_program(),
                         {"A": inputs["A"] + 1.0}, dims={"n": n})

    def test_conflicting_input_shape_rejected(self, rng):
        catalog = ViewCatalog()
        catalog.open(_chain_program(),
                     {"A": rng.standard_normal((4, 4))}, dims={"n": 4})
        other = parse_program("input A(m, m); B := A * A; output B;")
        with pytest.raises(CatalogInputMismatchError, match="declared"):
            catalog.open(other, {"A": rng.standard_normal((5, 5))},
                         dims={"m": 5})

    def test_missing_new_input_rejected(self):
        catalog = ViewCatalog()
        with pytest.raises(CatalogError, match="missing initial value"):
            catalog.open(_chain_program(), {}, dims={"n": 4})

    def test_unknown_update_target_rejected(self, rng):
        n, inputs = _chain_inputs(rng)
        catalog = ViewCatalog()
        catalog.open(_chain_program(), inputs, dims={"n": n})
        with pytest.raises(KeyError, match="no catalog input"):
            catalog.apply_update(FactoredUpdate("Z", np.ones((n, 1)),
                                                np.ones((n, 1))))

    def test_matching_input_value_accepted(self, rng):
        n, inputs = _chain_inputs(rng)
        catalog = ViewCatalog()
        catalog.open(_chain_program(), inputs, dims={"n": n})
        # Registering with the catalog's own current value is the
        # documented way to assert agreement explicitly.
        catalog.open(_chain_program(), {"A": catalog.read("A")},
                     dims={"n": n})
        assert catalog.stats.tenants == 2

    def test_open_session_catalog_path(self, rng):
        n, inputs = _chain_inputs(rng)
        catalog = Catalog()
        session = open_session(_chain_program(), inputs, dims={"n": n},
                               catalog=catalog)
        assert session.catalog is catalog
        for update in zipf_row_updates(rng, n, 3, 0.0):
            session.apply_update(update)
        assert session.update_count == 3
        assert catalog.stats.updates == 3
        assert np.isfinite(session["C"]).all()

    def test_canonical_collision_shares_across_spellings(self, rng):
        """``A + A`` and ``2 * A`` are one node: canonical-form identity,
        not surface syntax, decides sharing."""
        n, inputs = _chain_inputs(rng)
        catalog = ViewCatalog()
        t1 = catalog.open(
            parse_program("input A(n, n); S := A + A; output S;"),
            inputs, dims={"n": n})
        t2 = catalog.open(
            parse_program("input A(n, n); D := 2 * A; output D;"),
            None, dims={"n": n})
        assert catalog.distinct_nodes == 1
        assert catalog.stats.shared_hits == 1
        for update in zipf_row_updates(rng, n, 4, 0.0):
            catalog.apply_update(update)
        np.testing.assert_array_equal(t1["S"], t2["D"])
        a = np.asarray(catalog.read("A"))
        scale = max(1.0, float(np.max(np.abs(a))))
        np.testing.assert_allclose(t1["S"], a + a,
                                   rtol=1e-7, atol=1e-8 * scale)


class TestCatalogCLI:
    """``repro catalog`` and ``repro run --tenants --share`` smoke."""

    @pytest.fixture
    def program_file(self, tmp_path):
        path = tmp_path / "chain.lvw"
        path.write_text(
            "input A(n, n);\nB := A * A;\nC := B * B;\noutput C;\n")
        return str(path)

    def test_catalog_command_reports_sharing(self, program_file, capsys):
        from repro.cli import main

        code = main(["catalog", program_file, "--tenants", "3",
                     "--dims", "n=12", "--updates", "5", "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["tenants"] == 3
        assert payload["distinct_nodes"] == 2
        assert payload["stats"]["shared_hits"] == 4
        assert payload["stats"]["node_refreshes"] == 10
        assert len(payload["lineage"]) == 2
        assert all(rec["name"].startswith(NODE_PREFIX)
                   for rec in payload["lineage"])

    def test_catalog_command_human_output(self, program_file, capsys):
        from repro.cli import main

        code = main(["catalog", program_file, "--dims", "n=8",
                     "--updates", "3", "--memory-budget", "4096"])
        assert code == 0
        out = capsys.readouterr().out
        assert "lineage DAG:" in out
        assert "distinct nodes" in out

    def test_run_share_beats_independent(self, program_file, capsys):
        from repro.cli import main

        code = main(["run", program_file, "--dims", "n=16", "--updates", "8",
                     "--tenants", "4", "--share", "--json"])
        assert code == 0
        shared = json.loads(capsys.readouterr().out)
        code = main(["run", program_file, "--dims", "n=16", "--updates", "8",
                     "--tenants", "4", "--json"])
        assert code == 0
        independent = json.loads(capsys.readouterr().out)
        assert shared["share"] and not independent["share"]
        assert shared["distinct_nodes"] == 2
        assert independent["total_flops"] >= 3 * shared["total_flops"]

    def test_catalog_command_rejects_bad_args(self, program_file, capsys):
        from repro.cli import main

        assert main(["catalog", program_file, "--updates", "0"]) == 2
        assert main(["catalog", "missing.lvw"]) == 2
        assert main(["catalog", program_file, "--dims", "bogus"]) == 2
        capsys.readouterr()
