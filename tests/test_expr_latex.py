"""LaTeX rendering of expressions and triggers."""

import pytest

from repro.compiler import Program, Statement, compile_program
from repro.expr import (
    Identity,
    MatrixSymbol,
    NamedDim,
    ZeroMatrix,
    hstack,
    matmul,
    scalar_mul,
    sub,
    transpose,
    vstack,
)
from repro.expr.latex import to_latex, trigger_to_latex

n = NamedDim("n")
A = MatrixSymbol("A", n, n)
B = MatrixSymbol("B", n, n)
u = MatrixSymbol("u_A", n, 1)
v = MatrixSymbol("v_A", n, 1)


class TestExpressions:
    def test_symbol(self):
        assert to_latex(A) == "A"

    def test_subscripted_symbol(self):
        assert to_latex(u) == "u_{A}"

    def test_product(self):
        assert to_latex(matmul(A, B)) == "A \\, B"

    def test_sum_and_difference(self):
        assert to_latex(A + B) == "A + B"
        assert to_latex(sub(A, B)) == "A - B"

    def test_transpose(self):
        assert to_latex(transpose(A)) == "A^{\\top}"

    def test_transpose_of_product_parenthesized(self):
        assert to_latex(transpose(matmul(A, B))) == "(A \\, B)^{\\top}"

    def test_inverse(self):
        assert to_latex(A.inv) == "A^{-1}"

    def test_gram_inverse(self):
        expr = matmul(transpose(A), A).inv
        assert to_latex(expr) == "(A^{\\top} \\, A)^{-1}"

    def test_scalar(self):
        assert to_latex(scalar_mul(2.0, A)) == "2 \\, A"
        assert to_latex(scalar_mul(-1.0, A)) == "-A"

    def test_identity_and_zero(self):
        assert to_latex(Identity(n)) == "I_{n}"
        assert to_latex(ZeroMatrix(n, 1)) == "0_{n \\times 1}"

    def test_sum_inside_product_parenthesized(self):
        assert to_latex(matmul(A + B, A)) == "(A + B) \\, A"

    def test_stacks_render_bmatrix(self):
        assert to_latex(hstack([u, v])) == (
            "\\begin{bmatrix} u_{A} & v_{A} \\end{bmatrix}"
        )
        assert to_latex(vstack([transpose(u), transpose(v)])) == (
            "\\begin{bmatrix} u_{A}^{\\top} \\\\ v_{A}^{\\top} "
            "\\end{bmatrix}"
        )

    def test_factored_delta_shape(self):
        # The Section 4.2 delta: u (v' A) — matrix-vector association.
        expr = matmul(u, matmul(transpose(v), A))
        assert to_latex(expr) == "u_{A} \\, (v_{A}^{\\top} \\, A)"


class TestTrigger:
    @pytest.fixture
    def trigger(self):
        b = MatrixSymbol("B", n, n)
        c = MatrixSymbol("C", n, n)
        program = Program([A], [Statement(b, matmul(A, A)),
                                Statement(c, matmul(b, b))])
        return compile_program(program)["A"]

    def test_align_environment(self, trigger):
        out = trigger_to_latex(trigger)
        assert out.startswith("\\begin{align*}")
        assert out.endswith("\\end{align*}")

    def test_assignments_and_updates_present(self, trigger):
        out = trigger_to_latex(trigger)
        assert "U_{B} &:=" in out
        assert "V_{C} &:=" in out
        assert "A &\\mathrel{+}=" in out
        assert "C &\\mathrel{+}=" in out

    def test_one_statement_per_line(self, trigger):
        out = trigger_to_latex(trigger)
        body = out.split("\n")[1:-1]
        assert len(body) == len(trigger.assigns) + len(trigger.updates)
        assert all(line.endswith("\\\\") for line in body)
