"""Trigger optimizer: CSE, copy propagation, dead code elimination."""

import numpy as np

from repro.compiler import (
    Assign,
    Program,
    Statement,
    Trigger,
    Update,
    compile_program,
    eliminate_common_subexpressions,
    eliminate_dead_code,
    optimize_trigger,
    propagate_copies,
)
from repro.cost import Counter
from repro.expr import MatrixSymbol, NamedDim, add, inverse, matmul, transpose
from repro.runtime import FactoredUpdate, IVMSession, ReevalSession

n = NamedDim("n")
m = NamedDim("m")
A = MatrixSymbol("A", n, n)
B = MatrixSymbol("B", n, n)
u = MatrixSymbol("u", n, 1)
v = MatrixSymbol("v", n, 1)


def _make_trigger(assigns, updates):
    return Trigger("A", (u, v), assigns, updates)


class TestCSE:
    def test_hoists_repeated_subexpression(self):
        t1 = MatrixSymbol("T_a", n, 1)
        t2 = MatrixSymbol("T_b", n, 1)
        common = matmul(A, u)
        trigger = _make_trigger(
            [Assign(t1, add(common, u)), Assign(t2, add(common, v))],
            [Update(A, matmul(t1, transpose(t2)))],
        )
        optimized = eliminate_common_subexpressions(trigger)
        bodies = [a.expr for a in optimized.assigns]
        assert common in bodies  # hoisted once
        assert sum(1 for e in bodies if _contains(e, common)) == 1

    def test_repeats_within_one_statement_hoisted(self):
        t1 = MatrixSymbol("T_a", n, 1)
        common = matmul(A, u)
        trigger = _make_trigger(
            [Assign(t1, add(common, common))],
            [Update(A, matmul(t1, transpose(v)))],
        )
        optimized = eliminate_common_subexpressions(trigger)
        assert len(optimized.assigns) == 2

    def test_no_repeats_no_change(self):
        t1 = MatrixSymbol("T_a", n, 1)
        trigger = _make_trigger(
            [Assign(t1, matmul(A, u))],
            [Update(A, matmul(t1, transpose(v)))],
        )
        optimized = eliminate_common_subexpressions(trigger)
        assert [a.expr for a in optimized.assigns] == [a.expr for a in trigger.assigns]


class TestCopyPropagation:
    def test_alias_removed_and_uses_rewritten(self):
        t1 = MatrixSymbol("T_a", n, n)
        trigger = _make_trigger(
            [Assign(t1, A)],
            [Update(A, matmul(t1, t1))],
        )
        optimized = propagate_copies(trigger)
        assert not optimized.assigns
        assert optimized.updates[0].expr == matmul(A, A)

    def test_chained_aliases(self):
        t1 = MatrixSymbol("T_a", n, n)
        t2 = MatrixSymbol("T_b", n, n)
        trigger = _make_trigger(
            [Assign(t1, A), Assign(t2, t1)],
            [Update(A, matmul(t2, t2))],
        )
        optimized = propagate_copies(trigger)
        assert not optimized.assigns
        assert optimized.updates[0].expr == matmul(A, A)


class TestDeadCode:
    def test_unused_assign_removed(self):
        live = MatrixSymbol("T_live", n, 1)
        dead = MatrixSymbol("T_dead", n, 1)
        trigger = _make_trigger(
            [Assign(live, matmul(A, u)), Assign(dead, matmul(A, v))],
            [Update(A, matmul(live, transpose(v)))],
        )
        optimized = eliminate_dead_code(trigger)
        assert [a.target.name for a in optimized.assigns] == ["T_live"]

    def test_transitively_live_kept(self):
        t1 = MatrixSymbol("T_a", n, 1)
        t2 = MatrixSymbol("T_b", n, 1)
        trigger = _make_trigger(
            [Assign(t1, matmul(A, u)), Assign(t2, matmul(A, t1))],
            [Update(A, matmul(t2, transpose(v)))],
        )
        optimized = eliminate_dead_code(trigger)
        assert len(optimized.assigns) == 2


class TestPipeline:
    def _ols_program(self):
        x = MatrixSymbol("X", m, n)
        z = MatrixSymbol("Z", n, n)
        w = MatrixSymbol("W", n, n)
        return Program(
            [x],
            [Statement(z, matmul(transpose(x), x)), Statement(w, inverse(z))],
        )

    def test_cse_reduces_flops_on_ols_trigger(self, rng):
        """X'u appears twice in dZ; CSE must make the trigger cheaper."""
        program = self._ols_program()
        sizes = {"m": 20, "n": 8}
        design = rng.normal(size=(20, 8))
        design[:8] += np.eye(8)

        plain_counter, opt_counter = Counter(), Counter()
        plain = IVMSession(program, {"X": design}, dims=sizes,
                           counter=plain_counter)
        opt = IVMSession(program, {"X": design}, dims=sizes,
                         counter=opt_counter, optimize=True)
        plain_counter.reset()
        opt_counter.reset()
        update = FactoredUpdate("X", 0.1 * rng.normal(size=(20, 1)),
                                0.1 * rng.normal(size=(8, 1)))
        plain.apply_update(update)
        opt.apply_update(update)
        np.testing.assert_allclose(plain["W"], opt["W"], rtol=1e-8)
        assert opt_counter.total_flops < plain_counter.total_flops

    def test_optimized_trigger_streams_match_reeval(self, rng):
        program = self._ols_program()
        sizes = {"m": 16, "n": 6}
        design = rng.normal(size=(16, 6))
        design[:6] += np.eye(6)
        opt = IVMSession(program, {"X": design}, dims=sizes, optimize=True)
        reeval = ReevalSession(program, {"X": design}, dims=sizes)
        for _ in range(5):
            update = FactoredUpdate("X", 0.05 * rng.normal(size=(16, 1)),
                                    0.05 * rng.normal(size=(6, 1)))
            opt.apply_update(update)
            reeval.apply_update(update)
        np.testing.assert_allclose(opt["W"], reeval["W"], rtol=1e-6, atol=1e-8)

    def test_pipeline_idempotent(self):
        program = self._ols_program()
        trigger = compile_program(program)["X"]
        once = optimize_trigger(trigger)
        twice = optimize_trigger(once)
        assert repr(once) == repr(twice)


def _contains(expr, target):
    from repro.expr import walk

    return any(node == target for node in walk(expr))
