"""Cross-module integration: the full pipeline and cross-strategy accord."""

import numpy as np
import pytest

from repro.compiler import compile_program, generate_octave_trigger, optimize_trigger
from repro.frontend import parse_program
from repro.iterative import Model, make_general, make_powers, make_sums
from repro.runtime import IVMSession, ReevalSession
from repro.workloads import (
    random_adjacency,
    row_update_factors,
    spectral_normalized,
    update_stream,
    zipf_batch_update,
)

OLS_SOURCE = """
# Ordinary least squares (Section 5.1)
input X(m, n);
input Y(m, p);
Z := X' * X;
W := inv(Z);
C := X' * Y;
beta := W * C;
output beta;
"""


class TestFullPipeline:
    def test_parse_optimize_codegen_run(self, rng):
        """source -> AST -> triggers -> optimizer -> codegen -> stream."""
        program = parse_program(OLS_SOURCE)
        triggers = compile_program(program, dynamic_inputs=["X"])
        optimized = optimize_trigger(triggers["X"])
        octave = generate_octave_trigger(optimized)
        assert "function on_update_X" in octave

        sizes = {"m": 18, "n": 6, "p": 2}
        design = rng.normal(size=(18, 6))
        design[:6] += np.eye(6)
        inputs = {"X": design, "Y": rng.normal(size=(18, 2))}
        for mode in ("interpret", "codegen"):
            incr = IVMSession(program, inputs, dims=sizes, mode=mode,
                              optimize=True)
            reeval = ReevalSession(program, inputs, dims=sizes)
            for event in update_stream(rng, "X", 18, 6, 5, scale=0.05):
                incr.apply_update(event)
                reeval.apply_update(event)
            np.testing.assert_allclose(
                incr["beta"], reeval["beta"], rtol=1e-6, atol=1e-8
            )

    def test_zipf_batches_through_session(self, rng):
        program = parse_program("input A(n, n); B := A * A; output B;")
        size = 40
        a0 = spectral_normalized(rng, size)
        incr = IVMSession(program, {"A": a0}, dims={"n": size})
        reeval = ReevalSession(program, {"A": a0}, dims={"n": size})
        for theta in (3.0, 1.0):
            event = zipf_batch_update(rng, "A", size, size,
                                      batch_size=50, theta=theta)
            incr.apply_update(event)
            reeval.apply_update(event)
        np.testing.assert_allclose(incr["B"], reeval["B"], rtol=1e-7)


class TestCrossStrategyAccord:
    """DESIGN.md invariant 4: all strategies agree on all programs."""

    MODELS = [Model.linear(), Model.exponential(), Model.skip(4)]

    @pytest.mark.parametrize("model", MODELS, ids=lambda m: m.name)
    def test_powers_sums_general_agree(self, model, rng):
        n, p, k = 10, 2, 16
        a = spectral_normalized(rng, n)
        b = rng.normal(size=(n, p))
        t0 = rng.normal(size=(n, p))
        powers = [make_powers(s, a, k, model) for s in ("REEVAL", "INCR")]
        sums = [make_sums(s, a, k, model) for s in ("REEVAL", "INCR")]
        generals = [
            make_general(s, a, b, t0, k, model)
            for s in ("REEVAL", "INCR", "HYBRID")
        ]
        for u, v in row_update_factors(rng, n, n, 4, scale=0.05):
            for maintainer in powers + sums + generals:
                maintainer.refresh(u, v)
        np.testing.assert_allclose(powers[0].result(), powers[1].result(),
                                   atol=1e-9)
        np.testing.assert_allclose(sums[0].result(), sums[1].result(),
                                   atol=1e-9)
        for maintainer in generals[1:]:
            np.testing.assert_allclose(generals[0].result(),
                                       maintainer.result(), atol=1e-9)

    def test_models_agree_with_each_other(self, rng):
        """LIN, EXP and SKIP-s compute the same A^16 after updates."""
        n, k = 9, 16
        a = spectral_normalized(rng, n)
        maintainers = [
            make_powers("INCR", a, k, m)
            for m in (Model.linear(), Model.exponential(),
                      Model.skip(2), Model.skip(8))
        ]
        for u, v in row_update_factors(rng, n, n, 3, scale=0.05):
            for maintainer in maintainers:
                maintainer.refresh(u, v)
        for maintainer in maintainers[1:]:
            np.testing.assert_allclose(
                maintainers[0].result(), maintainer.result(), atol=1e-9
            )


class TestDistributedVsLocal:
    def test_distributed_matches_local_incremental(self, rng):
        from repro.distributed import (
            Cluster,
            ClusterConfig,
            DistributedIncrementalPowers,
        )
        from repro.iterative import IncrementalPowers

        n, k = 20, 8
        a = spectral_normalized(rng, n)
        local = IncrementalPowers(a, k, Model.exponential())
        dist = DistributedIncrementalPowers(
            a, k, Model.exponential(), Cluster(ClusterConfig(grid=2))
        )
        for u, v in row_update_factors(rng, n, n, 3, scale=0.05):
            local.refresh(u, v)
            dist.refresh(u, v)
        np.testing.assert_allclose(local.result(), dist.result(), atol=1e-9)


class TestAnalyticsOnGraphWorkloads:
    def test_pagerank_general_form_shapes(self, rng):
        from repro.analytics import IncrementalPageRank

        adj = random_adjacency(rng, 40, avg_out_degree=5)
        pr = IncrementalPageRank(adj, k=32, strategy="HYBRID",
                                 model=Model.linear())
        for _ in range(10):
            src = int(rng.integers(0, 40))
            dst = int(rng.integers(0, 40))
            if src != dst:
                pr.add_edge(src, dst)
        assert pr.revalidate() < 1e-9
        assert abs(pr.ranks.sum() - 1.0) < 1e-9
