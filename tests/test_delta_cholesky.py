"""Rank-1 Cholesky maintenance (the Section 4.2 factorization extension)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.delta import SingularUpdateError
from repro.delta.cholesky import (
    CholeskyView,
    cholesky_downdate,
    cholesky_update,
)


def spd_matrix(rng, n):
    a = rng.normal(size=(n, n))
    return a @ a.T + n * np.eye(n)


class TestRankOneUpdate:
    def test_update_matches_refactorization(self, rng):
        a = spd_matrix(rng, 9)
        l_factor = np.linalg.cholesky(a)
        v = rng.normal(size=9)
        got = cholesky_update(l_factor, v)
        expected = np.linalg.cholesky(a + np.outer(v, v))
        np.testing.assert_allclose(got, expected, atol=1e-10)

    def test_downdate_matches_refactorization(self, rng):
        a = spd_matrix(rng, 7)
        v = 0.3 * rng.normal(size=7)
        bumped = a + np.outer(v, v)
        l_factor = np.linalg.cholesky(bumped)
        got = cholesky_downdate(l_factor, v)
        np.testing.assert_allclose(got, np.linalg.cholesky(a), atol=1e-9)

    def test_update_then_downdate_roundtrip(self, rng):
        a = spd_matrix(rng, 8)
        l_factor = np.linalg.cholesky(a)
        v = rng.normal(size=8)
        back = cholesky_downdate(cholesky_update(l_factor, v), v)
        np.testing.assert_allclose(back, l_factor, atol=1e-9)

    def test_inputs_not_mutated(self, rng):
        a = spd_matrix(rng, 6)
        l_factor = np.linalg.cholesky(a)
        snapshot = l_factor.copy()
        v = rng.normal(size=6)
        v_snapshot = v.copy()
        cholesky_update(l_factor, v)
        np.testing.assert_array_equal(l_factor, snapshot)
        np.testing.assert_array_equal(v, v_snapshot)

    def test_indefinite_downdate_raises(self, rng):
        a = np.eye(4)
        l_factor = np.linalg.cholesky(a)
        v = np.zeros(4)
        v[0] = 2.0  # A - v v' has a negative eigenvalue
        with pytest.raises(SingularUpdateError):
            cholesky_downdate(l_factor, v)

    def test_shape_validation(self, rng):
        l_factor = np.linalg.cholesky(spd_matrix(rng, 5))
        with pytest.raises(ValueError):
            cholesky_update(l_factor, np.ones(4))
        with pytest.raises(ValueError):
            cholesky_update(np.ones((3, 4)), np.ones(3))


class TestCholeskyView:
    def test_maintained_matrix(self, rng):
        a = spd_matrix(rng, 8)
        view = CholeskyView(a)
        updates = [rng.normal(size=8) for _ in range(5)]
        current = a.copy()
        for v in updates:
            view.update(v)
            current += np.outer(v, v)
        np.testing.assert_allclose(view.matrix(), current, rtol=1e-9)

    def test_solve(self, rng):
        a = spd_matrix(rng, 8)
        view = CholeskyView(a)
        v = rng.normal(size=8)
        view.update(v)
        b = rng.normal(size=(8, 2))
        x = view.solve(b)
        np.testing.assert_allclose(
            (a + np.outer(v, v)) @ x, b, atol=1e-8
        )

    def test_non_spd_initial_rejected(self):
        with pytest.raises(SingularUpdateError):
            CholeskyView(-np.eye(3))


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(0, 2**31 - 1), n=st.integers(2, 12))
def test_update_property(seed, n):
    rng = np.random.default_rng(seed)
    a = spd_matrix(rng, n)
    l_factor = np.linalg.cholesky(a)
    v = rng.normal(size=n)
    got = cholesky_update(l_factor, v)
    np.testing.assert_allclose(
        got @ got.T, a + np.outer(v, v), rtol=1e-8, atol=1e-8
    )
    # The factor stays lower triangular with positive diagonal.
    assert np.allclose(got, np.tril(got))
    assert (np.diag(got) > 0).all()
