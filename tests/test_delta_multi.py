"""Multi-update deltas: the Section 4.4 sequential rule vs simultaneous."""

import numpy as np
import pytest

from repro.delta import FactoredDelta, compute_delta, compute_delta_sequential
from repro.expr import MatrixSymbol, NamedDim, add, matmul, transpose
from repro.runtime import evaluate

n = NamedDim("n")
A = MatrixSymbol("A", n, n)
B = MatrixSymbol("B", n, n)
uA = MatrixSymbol("uA", n, 1)
vA = MatrixSymbol("vA", n, 1)
uB = MatrixSymbol("uB", n, 1)
vB = MatrixSymbol("vB", n, 1)

DA = FactoredDelta.rank_one(uA, vA)
DB = FactoredDelta.rank_one(uB, vB)


def _env(rng, size=6):
    return {
        name: rng.normal(size=(size, size)) for name in ("A", "B")
    } | {
        name: rng.normal(size=(size, 1)) for name in ("uA", "vA", "uB", "vB")
    }


def _numeric(expr, env, size):
    before = evaluate(expr, env, dims={"n": size})
    bumped = dict(env)
    bumped["A"] = env["A"] + env["uA"] @ env["vA"].T
    bumped["B"] = env["B"] + env["uB"] @ env["vB"].T
    return evaluate(expr, bumped, dims={"n": size}) - before


EXPRESSIONS = [
    matmul(A, B),
    add(A, B),
    matmul(A, B, A),
    matmul(transpose(A), B),
    add(matmul(A, B), matmul(B, A)),
]


@pytest.mark.parametrize("expr", EXPRESSIONS, ids=[repr(e) for e in EXPRESSIONS])
class TestSimultaneousRule:
    def test_matches_numeric(self, expr, rng):
        size = 6
        env = _env(rng, size)
        delta = compute_delta(expr, {"A": DA, "B": DB})
        got = evaluate(delta.to_expr(), env, dims={"n": size})
        np.testing.assert_allclose(got, _numeric(expr, env, size), rtol=1e-8)

    def test_sequential_matches_numeric(self, expr, rng):
        size = 6
        env = _env(rng, size)
        delta = compute_delta_sequential(expr, {"A": DA, "B": DB})
        got = evaluate(delta.to_expr(), env, dims={"n": size})
        np.testing.assert_allclose(got, _numeric(expr, env, size), rtol=1e-8)

    def test_order_irrelevance(self, expr, rng):
        """The paper: "The order of applying the matrix updates is
        irrelevant."""
        size = 6
        env = _env(rng, size)
        d_ab = compute_delta_sequential(expr, {"A": DA, "B": DB}, order=["A", "B"])
        d_ba = compute_delta_sequential(expr, {"A": DA, "B": DB}, order=["B", "A"])
        np.testing.assert_allclose(
            evaluate(d_ab.to_expr(), env, dims={"n": size}),
            evaluate(d_ba.to_expr(), env, dims={"n": size}),
            rtol=1e-8,
        )


class TestExample45:
    def test_product_expansion(self, rng):
        """d_{A,B}(AB) = dA B + A dB + dA dB (Example 4.5)."""
        size = 5
        env = _env(rng, size)
        delta = compute_delta(matmul(A, B), {"A": DA, "B": DB})
        da = env["uA"] @ env["vA"].T
        db = env["uB"] @ env["vB"].T
        expected = da @ env["B"] + env["A"] @ db + da @ db
        got = evaluate(delta.to_expr(), env, dims={"n": size})
        np.testing.assert_allclose(got, expected, rtol=1e-8)

    def test_simultaneous_width_not_wider_than_sequential(self):
        simultaneous = compute_delta(matmul(A, B), {"A": DA, "B": DB})
        sequential = compute_delta_sequential(matmul(A, B), {"A": DA, "B": DB})
        assert simultaneous.width <= sequential.width


class TestValidation:
    def test_order_must_be_permutation(self):
        with pytest.raises(ValueError):
            compute_delta_sequential(matmul(A, B), {"A": DA}, order=["A", "B"])

    def test_empty_updates_give_zero(self):
        assert compute_delta(matmul(A, B), {}).is_zero
        assert compute_delta_sequential(matmul(A, B), {}).is_zero

    def test_partial_updates(self, rng):
        size = 5
        env = _env(rng, size)
        delta = compute_delta(matmul(A, B), {"B": DB})
        before = evaluate(matmul(A, B), env, dims={"n": size})
        bumped = dict(env)
        bumped["B"] = env["B"] + env["uB"] @ env["vB"].T
        expected = evaluate(matmul(A, B), bumped, dims={"n": size}) - before
        got = evaluate(delta.to_expr(), env, dims={"n": size})
        np.testing.assert_allclose(got, expected, rtol=1e-8)
