"""Bounded-hop reachability maintenance (Section 5.2 application)."""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analytics import ReachabilityIndex, reference_reachable_pairs
from repro.iterative import Model


def random_digraph(rng, n, density=0.2):
    adjacency = np.zeros((n, n))
    for src in range(n):
        for dst in range(n):
            if src != dst and rng.uniform() < density:
                adjacency[dst, src] = 1.0
    return adjacency


def nx_reachable(adjacency, src, dst, max_hops):
    """Ground truth via networkx shortest path length with a hop cutoff."""
    graph = nx.DiGraph()
    n = adjacency.shape[0]
    graph.add_nodes_from(range(n))
    for s in range(n):
        for d in range(n):
            if adjacency[d, s]:
                graph.add_edge(s, d)
    try:
        return nx.shortest_path_length(graph, src, dst) <= max_hops
    except nx.NetworkXNoPath:
        return False


class TestReferencePairs:
    def test_matches_networkx(self, rng):
        adjacency = random_digraph(rng, 8)
        k = 4
        pairs = reference_reachable_pairs(adjacency, k)
        for src in range(8):
            for dst in range(8):
                assert pairs[dst, src] == nx_reachable(
                    adjacency, src, dst, k - 1
                ), (src, dst)


class TestReachabilityIndex:
    def test_initial_state_matches_reference(self, rng):
        adjacency = random_digraph(rng, 10)
        index = ReachabilityIndex(adjacency, k=8)
        np.testing.assert_array_equal(
            index.reachable_pairs(), reference_reachable_pairs(adjacency, 8)
        )

    def test_add_edge_repairs_view(self, rng):
        adjacency = random_digraph(rng, 9, density=0.1)
        index = ReachabilityIndex(adjacency, k=8)
        free = [(s, d) for s in range(9) for d in range(9)
                if s != d and adjacency[d, s] == 0]
        for src, dst in free[:5]:
            index.add_edge(src, dst)
        np.testing.assert_array_equal(
            index.reachable_pairs(),
            reference_reachable_pairs(index.adjacency, 8),
        )

    def test_remove_edge_repairs_view(self, rng):
        adjacency = random_digraph(rng, 9, density=0.4)
        index = ReachabilityIndex(adjacency, k=8)
        present = [(s, d) for s in range(9) for d in range(9)
                   if adjacency[d, s] == 1]
        for src, dst in present[:4]:
            index.remove_edge(src, dst)
        np.testing.assert_array_equal(
            index.reachable_pairs(),
            reference_reachable_pairs(index.adjacency, 8),
        )

    def test_new_path_detected(self):
        # 0 -> 1, 2 -> 3 disconnected; adding 1 -> 2 links 0 to 3.
        adjacency = np.zeros((4, 4))
        adjacency[1, 0] = 1.0
        adjacency[3, 2] = 1.0
        index = ReachabilityIndex(adjacency, k=4)
        assert not index.reachable(0, 3)
        index.add_edge(1, 2)
        assert index.reachable(0, 3)
        assert index.reachable_set(0) == [0, 1, 2, 3]

    def test_path_loss_detected(self):
        adjacency = np.zeros((3, 3))
        adjacency[1, 0] = 1.0
        adjacency[2, 1] = 1.0
        index = ReachabilityIndex(adjacency, k=4)
        assert index.reachable(0, 2)
        index.remove_edge(1, 2)
        assert not index.reachable(0, 2)
        assert index.reachable(0, 1)

    def test_hop_bound_respected(self):
        # A 5-chain: 0 -> 1 -> 2 -> 3 -> 4 needs 4 hops.
        adjacency = np.zeros((5, 5))
        for i in range(4):
            adjacency[i + 1, i] = 1.0
        short = ReachabilityIndex(adjacency, k=4)   # < 4 hops
        assert not short.reachable(0, 4)
        long = ReachabilityIndex(adjacency, k=8)
        assert long.reachable(0, 4)

    def test_duplicate_edge_rejected(self):
        adjacency = np.zeros((3, 3))
        adjacency[1, 0] = 1.0
        index = ReachabilityIndex(adjacency, k=4)
        with pytest.raises(ValueError, match="already present"):
            index.add_edge(0, 1)
        with pytest.raises(ValueError, match="not present"):
            index.remove_edge(1, 2)

    def test_out_of_range_edge_rejected(self):
        index = ReachabilityIndex(np.zeros((3, 3)), k=4)
        with pytest.raises(IndexError):
            index.add_edge(0, 5)

    def test_non_power_of_two_k_uses_linear_model(self):
        index = ReachabilityIndex(np.zeros((3, 3)), k=5)
        assert index.model.kind == Model.LINEAR
        index.add_edge(0, 1)
        assert index.reachable(0, 1)

    def test_k_below_two_rejected(self):
        with pytest.raises(ValueError, match="at least 2"):
            ReachabilityIndex(np.zeros((3, 3)), k=1)

    def test_walk_counts_are_exact(self):
        # Triangle 0 -> 1 -> 2 -> 0: walks of length < 4 from 0 to 0:
        # the empty walk and the full cycle.
        adjacency = np.zeros((3, 3))
        adjacency[1, 0] = adjacency[2, 1] = adjacency[0, 2] = 1.0
        index = ReachabilityIndex(adjacency, k=4)
        counts = index.walk_counts()
        assert counts[0, 0] == pytest.approx(2.0)
        assert counts[1, 0] == pytest.approx(1.0)

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=9999))
    def test_property_random_edit_stream(self, seed):
        rng = np.random.default_rng(seed)
        adjacency = random_digraph(rng, 7, density=0.25)
        index = ReachabilityIndex(adjacency, k=4)
        for _ in range(6):
            src = int(rng.integers(7))
            dst = int(rng.integers(7))
            if src == dst:
                continue
            if index.adjacency[dst, src]:
                index.remove_edge(src, dst)
            else:
                index.add_edge(src, dst)
        np.testing.assert_array_equal(
            index.reachable_pairs(),
            reference_reachable_pairs(index.adjacency, 4),
        )
