"""Code generation: Python/NumPy backend and Octave backend."""

import numpy as np

from repro.compiler import (
    Program,
    Statement,
    compile_program,
    compile_trigger_function,
    generate_octave_trigger,
    generate_python_trigger,
)
from repro.compiler.codegen.octave_gen import emit_octave
from repro.compiler.codegen.python_gen import emit_expr
from repro.expr import (
    Identity,
    MatrixSymbol,
    NamedDim,
    ZeroMatrix,
    add,
    hstack,
    inverse,
    matmul,
    neg,
    scalar_mul,
    sub,
    transpose,
    vstack,
)

n = NamedDim("n")
A = MatrixSymbol("A", n, n)
B = MatrixSymbol("B", n, n)
C = MatrixSymbol("C", n, n)
u = MatrixSymbol("u", n, 1)
v = MatrixSymbol("v", n, 1)


def a4_program():
    return Program([A], [Statement(B, matmul(A, A)), Statement(C, matmul(B, B))])


class TestPythonEmission:
    def test_product(self):
        assert emit_expr(matmul(A, B)) == "A @ B"

    def test_sum_and_difference(self):
        assert emit_expr(add(A, B)) == "A + B"
        assert emit_expr(sub(A, B)) == "A - B"

    def test_transpose(self):
        assert emit_expr(transpose(A)) == "A.T"
        assert emit_expr(transpose(matmul(A, B))) == "(A @ B).T"

    def test_inverse(self):
        assert emit_expr(inverse(A)) == "np.linalg.inv(A)"

    def test_scalar_and_negation(self):
        assert emit_expr(neg(A)) == "-A"
        assert emit_expr(scalar_mul(2.0, A)) == "2.0 * A"

    def test_stacks(self):
        assert emit_expr(hstack([u, v])) == "np.hstack([u, v])"
        assert emit_expr(vstack([transpose(u), transpose(v)])) == (
            "np.vstack([u.T, v.T])"
        )

    def test_identity_uses_dims(self):
        assert emit_expr(Identity(n)) == "np.eye(dims['n'])"
        assert emit_expr(Identity(5)) == "np.eye(5)"

    def test_zeros(self):
        assert emit_expr(ZeroMatrix(n, 2)) == "np.zeros((dims['n'], 2))"

    def test_precedence_parens(self):
        assert emit_expr(matmul(add(A, B), C)) == "(A + B) @ C"
        assert emit_expr(add(matmul(A, B), C)) == "A @ B + C"

    def test_association_preserved(self):
        cheap = matmul(A, matmul(u, matmul(transpose(v), u)))
        assert emit_expr(cheap) == "A @ (u @ (v.T @ u))"


class TestPythonTrigger:
    def test_source_shape(self):
        trigger = compile_program(a4_program())["A"]
        source = generate_python_trigger(trigger)
        assert source.startswith("def on_update_A(views, u_A, v_A, dims=None):")
        assert "views['A'] = A + u_A @ v_A.T" in source
        assert "U_B = np.hstack([u_A, A @ u_A + u_A @ (v_A.T @ u_A)])" in source

    def test_compiled_function_matches_interpreter(self, rng):
        size = 8
        trigger = compile_program(a4_program())["A"]
        fn = compile_trigger_function(trigger)
        a0 = rng.normal(size=(size, size))
        views = {"A": a0.copy(), "B": a0 @ a0, "C": (a0 @ a0) @ (a0 @ a0)}
        uu = rng.normal(size=(size, 1))
        vv = rng.normal(size=(size, 1))
        fn(views, uu, vv)
        a_new = a0 + uu @ vv.T
        np.testing.assert_allclose(views["A"], a_new, rtol=1e-10)
        np.testing.assert_allclose(views["B"], a_new @ a_new, rtol=1e-8)
        np.testing.assert_allclose(
            views["C"], np.linalg.matrix_power(a_new, 4), rtol=1e-7
        )

    def test_source_attached_to_function(self):
        trigger = compile_program(a4_program())["A"]
        fn = compile_trigger_function(trigger)
        assert "def on_update_A" in fn.__source__

    def test_custom_function_name(self):
        trigger = compile_program(a4_program())["A"]
        source = generate_python_trigger(trigger, function_name="maintain")
        assert source.startswith("def maintain(")


class TestOctaveEmission:
    def test_product_and_transpose(self):
        assert emit_octave(matmul(A, B)) == "A*B"
        assert emit_octave(transpose(A)) == "A'"

    def test_inverse_and_eye(self):
        assert emit_octave(inverse(A)) == "inv(A)"
        assert emit_octave(Identity(n)) == "eye(n)"

    def test_stacks(self):
        assert emit_octave(hstack([u, v])) == "[u, v]"
        assert emit_octave(vstack([transpose(u), transpose(v)])) == "[u'; v']"

    def test_example_46_trigger_text(self):
        """Generated Octave matches the paper's published trigger."""
        trigger = compile_program(a4_program())["A"]
        source = generate_octave_trigger(trigger)
        assert "function on_update_A(u_A, v_A)" in source
        assert "U_B = [u_A, A*u_A + u_A*(v_A'*u_A)];" in source
        assert "V_B = [A'*v_A, v_A];" in source
        assert "U_C = [U_B, B*U_B + U_B*(V_B'*U_B)];" in source
        assert "V_C = [B'*V_B, V_B];" in source
        assert "A += u_A*v_A';" in source
        assert "B += U_B*V_B';" in source
        assert "C += U_C*V_C';" in source
        assert source.rstrip().endswith("end")

    def test_global_declaration_lists_views(self):
        trigger = compile_program(a4_program())["A"]
        source = generate_octave_trigger(trigger)
        assert "global A B C;" in source
