"""Program construction and validation."""

import pytest

from repro.compiler import Program, ProgramError, Statement
from repro.expr import MatrixSymbol, NamedDim, inverse, matmul, transpose

n = NamedDim("n")
m = NamedDim("m")
A = MatrixSymbol("A", n, n)
B = MatrixSymbol("B", n, n)
C = MatrixSymbol("C", n, n)
X = MatrixSymbol("X", m, n)


def a4_program():
    return Program([A], [Statement(B, matmul(A, A)), Statement(C, matmul(B, B))])


class TestStatement:
    def test_shape_must_match_target(self):
        with pytest.raises(ProgramError):
            Statement(MatrixSymbol("T", n, 1), matmul(A, A))

    def test_repr(self):
        assert repr(Statement(B, matmul(A, A))) == "B := A * A;"


class TestProgramValidation:
    def test_valid_program(self):
        program = a4_program()
        assert program.view_names == ("B", "C")
        assert program.outputs == ("C",)

    def test_empty_program_rejected(self):
        with pytest.raises(ProgramError):
            Program([A], [])

    def test_duplicate_inputs_rejected(self):
        with pytest.raises(ProgramError):
            Program([A, MatrixSymbol("A", n, n)], [Statement(B, matmul(A, A))])

    def test_duplicate_targets_rejected(self):
        with pytest.raises(ProgramError):
            Program(
                [A],
                [Statement(B, matmul(A, A)), Statement(B, matmul(A, A))],
            )

    def test_target_shadowing_input_rejected(self):
        with pytest.raises(ProgramError):
            Program([A], [Statement(MatrixSymbol("A", n, n), matmul(A, A))])

    def test_undefined_reference_rejected(self):
        with pytest.raises(ProgramError, match="undefined matrix"):
            Program([A], [Statement(C, matmul(A, B))])

    def test_forward_reference_rejected(self):
        with pytest.raises(ProgramError):
            Program(
                [A],
                [Statement(B, matmul(C, C)), Statement(C, matmul(A, A))],
            )

    def test_inconsistent_shape_use_rejected(self):
        wrong_a = MatrixSymbol("A", m, m)
        with pytest.raises(ProgramError, match="declared"):
            Program([A], [Statement(MatrixSymbol("D", m, m), matmul(wrong_a, wrong_a))])

    def test_unknown_output_rejected(self):
        with pytest.raises(ProgramError, match="unknown output"):
            Program([A], [Statement(B, matmul(A, A))], outputs=["Z"])

    def test_input_as_output_rejected(self):
        with pytest.raises(ProgramError, match="is an input"):
            Program([A], [Statement(B, matmul(A, A))], outputs=["A"])

    def test_default_output_is_last_statement(self):
        assert a4_program().outputs == ("C",)

    def test_explicit_outputs(self):
        program = Program(
            [A],
            [Statement(B, matmul(A, A)), Statement(C, matmul(B, B))],
            outputs=["B", "C"],
        )
        assert program.outputs == ("B", "C")


class TestProgramAccessors:
    def test_input_lookup(self):
        assert a4_program().input("A") == A
        with pytest.raises(KeyError):
            a4_program().input("Z")

    def test_statement_lookup(self):
        stmt = a4_program().statement_for("B")
        assert stmt.expr == matmul(A, A)
        with pytest.raises(KeyError):
            a4_program().statement_for("Z")

    def test_iteration_and_len(self):
        program = a4_program()
        assert len(program) == 2
        assert [s.target.name for s in program] == ["B", "C"]

    def test_repr_contains_statements(self):
        text = repr(a4_program())
        assert "B := A * A;" in text and "output: C" in text

    def test_rectangular_program(self):
        z = MatrixSymbol("Z", n, n)
        w = MatrixSymbol("W", n, n)
        program = Program(
            [X],
            [Statement(z, matmul(transpose(X), X)), Statement(w, inverse(z))],
        )
        assert program.view_names == ("Z", "W")
