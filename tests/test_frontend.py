"""Frontend: lexer, parser, error reporting, end-to-end compilation."""

import numpy as np
import pytest

from repro.expr import Identity, Inverse, MatMul, ScalarMul, Transpose
from repro.frontend import LexError, ParseError, parse_program, tokenize
from repro.runtime import FactoredUpdate, IVMSession, ReevalSession


class TestLexer:
    def test_token_kinds(self):
        tokens = tokenize("B := A * A';")
        kinds = [t.kind for t in tokens]
        assert kinds == ["IDENT", "ASSIGN", "IDENT", "STAR", "IDENT",
                         "TICK", "SEMI", "EOF"]

    def test_keywords_recognized(self):
        tokens = tokenize("input inv eye zeros output")
        assert all(t.kind == "KEYWORD" for t in tokens[:-1])

    def test_numbers(self):
        tokens = tokenize("2 3.5")
        assert [t.text for t in tokens[:-1]] == ["2", "3.5"]

    def test_comments_ignored(self):
        tokens = tokenize("# a comment\nA % trailing\n")
        assert [t.kind for t in tokens] == ["IDENT", "EOF"]

    def test_positions_tracked(self):
        tokens = tokenize("A\n  B")
        assert (tokens[0].line, tokens[0].column) == (1, 1)
        assert (tokens[1].line, tokens[1].column) == (2, 3)

    def test_unknown_character(self):
        with pytest.raises(LexError, match="unexpected character"):
            tokenize("A $ B")


class TestParser:
    def test_a4_program(self):
        program = parse_program(
            "input A(n, n); B := A * A; C := B * B; output C;"
        )
        assert program.input_names == ("A",)
        assert program.view_names == ("B", "C")
        assert program.outputs == ("C",)

    def test_precedence_mul_over_add(self):
        program = parse_program("input A(n, n); B := A + A * A;")
        expr = program.statements[0].expr
        assert isinstance(expr.children[1], MatMul)

    def test_transpose_postfix(self):
        program = parse_program("input A(n, n); B := A' * A;")
        expr = program.statements[0].expr
        assert isinstance(expr.children[0], Transpose)

    def test_double_transpose_folds(self):
        program = parse_program("input A(n, n); B := A'' * A;")
        assert repr(program.statements[0].expr) == "A * A"

    def test_scalar_coefficient(self):
        program = parse_program("input A(n, n); B := 2 * A;")
        expr = program.statements[0].expr
        assert isinstance(expr, ScalarMul) and expr.coeff == 2.0

    def test_unary_minus(self):
        program = parse_program("input A(n, n); B := -A + A;")
        assert program.statements[0].expr.is_zero is False or True  # parses

    def test_inv_eye_zeros(self):
        program = parse_program(
            "input A(n, n); W := inv(A); E := eye(n) + A; Z := zeros(n, n) + A;"
        )
        assert isinstance(program.statements[0].expr, Inverse)
        assert any(
            isinstance(node, Identity)
            for node in _walk(program.statements[1].expr)
        )

    def test_rectangular_ols(self):
        program = parse_program(
            """
            input X(m, n);
            input Y(m, p);
            Z := X' * X;
            W := inv(Z);
            C := X' * Y;
            beta := W * C;
            output beta;
            """
        )
        assert program.outputs == ("beta",)
        assert repr(program.statement_for("Z").expr) == "X' * X"

    def test_concrete_dimensions(self):
        program = parse_program("input A(4, 4); B := A * A;")
        assert program.input("A").shape.concrete() == (4, 4)

    def test_multiple_outputs(self):
        program = parse_program(
            "input A(n, n); B := A * A; C := B * B; output B, C;"
        )
        assert program.outputs == ("B", "C")

    def test_parenthesized_grouping(self):
        program = parse_program("input A(n, n); B := (A + A) * A;")
        expr = program.statements[0].expr
        assert isinstance(expr, MatMul)


class TestParserErrors:
    def test_undefined_reference(self):
        with pytest.raises(ParseError, match="undefined matrix"):
            parse_program("input A(n, n); B := A * Q;")

    def test_redefinition(self):
        with pytest.raises(ParseError, match="redefinition"):
            parse_program("input A(n, n); B := A; B := A * A;")

    def test_duplicate_input(self):
        with pytest.raises(ParseError, match="duplicate"):
            parse_program("input A(n, n); input A(n, n); B := A;")

    def test_missing_semicolon(self):
        with pytest.raises(ParseError, match="';'"):
            parse_program("input A(n, n); B := A * A")

    def test_fractional_dimension(self):
        with pytest.raises(ParseError, match="integers"):
            parse_program("input A(2.5, 2); B := A;")

    def test_bare_number_rejected(self):
        with pytest.raises(ParseError):
            parse_program("input A(n, n); B := A + 2;")

    def test_empty_program(self):
        with pytest.raises(ParseError, match="no statements"):
            parse_program("input A(n, n);")

    def test_shape_mismatch_surfaces(self):
        from repro.expr import ShapeError

        with pytest.raises(ShapeError):
            parse_program("input A(n, m); B := A * A;")

    def test_error_carries_position(self):
        try:
            parse_program("input A(n, n);\nB := A * Q;")
        except ParseError as exc:
            assert exc.line == 2
        else:
            pytest.fail("expected ParseError")


class TestEndToEnd:
    def test_parse_compile_maintain(self, rng):
        program = parse_program(
            "input A(n, n); B := A * A; C := B * B; output C;"
        )
        size = 7
        a0 = rng.normal(size=(size, size))
        incr = IVMSession(program, {"A": a0}, dims={"n": size})
        reeval = ReevalSession(program, {"A": a0}, dims={"n": size})
        for _ in range(4):
            update = FactoredUpdate("A", rng.normal(size=(size, 1)),
                                    rng.normal(size=(size, 1)))
            incr.apply_update(update)
            reeval.apply_update(update)
        np.testing.assert_allclose(incr["C"], reeval["C"], rtol=1e-7)


def _walk(expr):
    from repro.expr import walk

    return walk(expr)
