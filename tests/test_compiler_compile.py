"""Algorithm 1: trigger structure and end-to-end maintenance equivalence."""

import numpy as np
import pytest

from repro.compiler import Program, Statement, compile_program
from repro.expr import (
    MatrixSymbol,
    NamedDim,
    add,
    inverse,
    matmul,
    scalar_mul,
    transpose,
)
from repro.runtime import FactoredUpdate, IVMSession, ReevalSession

n = NamedDim("n")
m = NamedDim("m")
A = MatrixSymbol("A", n, n)
B = MatrixSymbol("B", n, n)
C = MatrixSymbol("C", n, n)
D = MatrixSymbol("D", n, n)


def a4_program():
    return Program([A], [Statement(B, matmul(A, A)), Statement(C, matmul(B, B))])


class TestTriggerStructure:
    def test_example_46_text(self):
        """The compiled A^4 trigger matches Example 4.6 statement for
        statement."""
        trigger = compile_program(a4_program())["A"]
        lines = repr(trigger).splitlines()
        assert lines[0] == "ON UPDATE A BY (u_A, v_A):"
        assert lines[1] == "  U_B := [u_A, A * u_A + u_A * (v_A' * u_A)];"
        assert lines[2] == "  V_B := [A' * v_A, v_A];"
        assert lines[3] == "  U_C := [U_B, B * U_B + U_B * (V_B' * U_B)];"
        assert lines[4] == "  V_C := [B' * V_B, V_B];"
        assert lines[5] == "  A += u_A * v_A';"
        assert lines[6] == "  B += U_B * V_B';"
        assert lines[7] == "  C += U_C * V_C';"

    def test_factor_widths_follow_section_43(self):
        program = Program(
            [A],
            [
                Statement(B, matmul(A, A)),
                Statement(C, matmul(B, B)),
                Statement(D, matmul(C, C)),
            ],
        )
        trigger = compile_program(program)["A"]
        widths = {a.target.name: a.target.shape.cols for a in trigger.assigns}
        assert widths["U_B"] == 2 and widths["U_C"] == 4 and widths["U_D"] == 8

    def test_unaffected_statements_skipped(self):
        x = MatrixSymbol("X", n, n)
        program = Program(
            [A, x],
            [Statement(B, matmul(A, A)), Statement(C, matmul(x, x))],
        )
        trigger = compile_program(program)["A"]
        assert "C" not in trigger.updated_views
        assert trigger.updated_views == ("A", "B")

    def test_one_trigger_per_dynamic_input(self):
        x = MatrixSymbol("X", n, n)
        program = Program([A, x], [Statement(B, matmul(A, x))])
        triggers = compile_program(program)
        assert set(triggers) == {"A", "X"}

    def test_dynamic_inputs_subset(self):
        x = MatrixSymbol("X", n, n)
        program = Program([A, x], [Statement(B, matmul(A, x))])
        triggers = compile_program(program, dynamic_inputs=["X"])
        assert set(triggers) == {"X"}

    def test_unknown_dynamic_input_rejected(self):
        with pytest.raises(KeyError):
            compile_program(a4_program(), dynamic_inputs=["Q"])

    def test_rank_k_parameters(self):
        trigger = compile_program(a4_program(), rank=4)["A"]
        u_param, v_param = trigger.params
        assert u_param.shape.cols == 4 and v_param.shape.cols == 4
        widths = {a.target.name: a.target.shape.cols for a in trigger.assigns}
        assert widths["U_B"] == 8  # 2 blocks of rank 4

    def test_inverse_statement_references_view(self):
        z = MatrixSymbol("Z", n, n)
        w = MatrixSymbol("W", n, n)
        program = Program(
            [A],
            [Statement(z, matmul(transpose(A), A)), Statement(w, inverse(z))],
        )
        trigger = compile_program(program)["A"]
        u_w = next(a for a in trigger.assigns if a.target.name == "U_W")
        from repro.expr import references

        assert references(u_w.expr, "W")
        assert not any(
            node.child.shape == w.shape
            for node in _inversions(u_w.expr)
        ), "must not re-invert the full n x n operand"


def _inversions(expr):
    from repro.expr import Inverse, walk

    return [node for node in walk(expr) if isinstance(node, Inverse)]


class TestMaintenanceEquivalence:
    """Invariant 3 of DESIGN.md: triggers == re-evaluation, always."""

    def _run_stream(self, program, inputs, dims, updates, **session_kw):
        incr = IVMSession(program, inputs, dims=dims, **session_kw)
        reeval = ReevalSession(program, inputs, dims=dims)
        for update in updates:
            incr.apply_update(update)
            reeval.apply_update(update)
        return incr, reeval

    def _assert_views_match(self, incr, reeval, atol=1e-8):
        for name in incr.program.view_names:
            np.testing.assert_allclose(
                incr[name], reeval[name], rtol=1e-6, atol=atol,
                err_msg=f"view {name} diverged",
            )

    def test_a4_stream(self, rng):
        size = 8
        updates = [
            FactoredUpdate("A", rng.normal(size=(size, 1)),
                           rng.normal(size=(size, 1)))
            for _ in range(6)
        ]
        incr, reeval = self._run_stream(
            a4_program(), {"A": rng.normal(size=(size, size))}, {"n": size}, updates
        )
        self._assert_views_match(incr, reeval)

    def test_mixed_operations_program(self, rng):
        size = 7
        program = Program(
            [A],
            [
                Statement(B, add(matmul(A, transpose(A)), scalar_mul(2.0, A))),
                Statement(C, sub_expr()),
            ],
        )
        updates = [
            FactoredUpdate("A", rng.normal(size=(size, 1)),
                           rng.normal(size=(size, 1)))
            for _ in range(5)
        ]
        incr, reeval = self._run_stream(
            program, {"A": rng.normal(size=(size, size))}, {"n": size}, updates
        )
        self._assert_views_match(incr, reeval)

    def test_multi_input_program(self, rng):
        size = 6
        x = MatrixSymbol("X", n, n)
        program = Program(
            [A, x],
            [Statement(B, matmul(A, x)), Statement(C, matmul(B, transpose(A)))],
        )
        inputs = {
            "A": rng.normal(size=(size, size)),
            "X": rng.normal(size=(size, size)),
        }
        updates = []
        for i in range(6):
            target = "A" if i % 2 == 0 else "X"
            updates.append(
                FactoredUpdate(target, rng.normal(size=(size, 1)),
                               rng.normal(size=(size, 1)))
            )
        incr, reeval = self._run_stream(program, inputs, {"n": size}, updates)
        self._assert_views_match(incr, reeval)

    def test_ols_program_with_inverse(self, rng):
        size_m, size_n = 14, 6
        x = MatrixSymbol("X", m, n)
        y = MatrixSymbol("Y", m, 1)
        z = MatrixSymbol("Z", n, n)
        w = MatrixSymbol("W", n, n)
        c = MatrixSymbol("Cv", n, 1)
        beta = MatrixSymbol("beta", n, 1)
        program = Program(
            [x, y],
            [
                Statement(z, matmul(transpose(x), x)),
                Statement(w, inverse(z)),
                Statement(c, matmul(transpose(x), y)),
                Statement(beta, matmul(w, c)),
            ],
        )
        design = rng.normal(size=(size_m, size_n))
        design[:size_n] += np.eye(size_n)
        inputs = {"X": design, "Y": rng.normal(size=(size_m, 1))}
        updates = [
            FactoredUpdate("X", 0.1 * rng.normal(size=(size_m, 1)),
                           0.1 * rng.normal(size=(size_n, 1)))
            for _ in range(5)
        ]
        incr, reeval = self._run_stream(
            program, inputs, {"m": size_m, "n": size_n}, updates
        )
        self._assert_views_match(incr, reeval, atol=1e-7)
        np.testing.assert_allclose(
            incr["beta"],
            np.linalg.lstsq(incr["X"], incr["Y"], rcond=None)[0],
            atol=1e-7,
        )

    def test_rank_k_batch_updates(self, rng):
        size, rank = 8, 3
        updates = [
            FactoredUpdate("A", rng.normal(size=(size, rank)),
                           rng.normal(size=(size, rank)))
            for _ in range(4)
        ]
        incr, reeval = self._run_stream(
            a4_program(), {"A": rng.normal(size=(size, size))}, {"n": size}, updates
        )
        self._assert_views_match(incr, reeval)

    def test_optimized_triggers_equivalent(self, rng):
        size = 8
        updates = [
            FactoredUpdate("A", rng.normal(size=(size, 1)),
                           rng.normal(size=(size, 1)))
            for _ in range(4)
        ]
        incr, reeval = self._run_stream(
            a4_program(), {"A": rng.normal(size=(size, size))}, {"n": size},
            updates, optimize=True,
        )
        self._assert_views_match(incr, reeval)


def sub_expr():
    """C := B' * B  (uses the previous view)."""
    return matmul(transpose(B), B)
