"""Machine calibration: measurement, caching, and planner integration."""

import json

import pytest

from repro import calibrate
from repro.backends import DENSE, get_backend
from repro.calibrate import (
    BackendCalibration,
    Calibration,
    cache_key,
    calibrated,
    load_calibration,
    run_calibration,
)


def synthetic(dense_overhead=50_000.0, sparse_overhead=16.0,
              update_overhead=256.0, spgemm_overhead=400.0) -> Calibration:
    """A hand-built calibration (no timing; deterministic tests)."""
    return Calibration(key=cache_key(), backends={
        "dense": BackendCalibration(
            backend="dense", flops_per_second=5e10,
            call_overhead_flops=dense_overhead,
        ),
        "sparse": BackendCalibration(
            backend="sparse", flops_per_second=5e10,
            call_overhead_flops=3.0 * dense_overhead,
            sparse_overhead=sparse_overhead,
            sparse_update_overhead=update_overhead,
            sparse_spgemm_overhead=spgemm_overhead,
        ),
    })


class TestRunCalibration:
    def test_dense_fit_is_sane(self):
        cal = run_calibration(backends=["dense"], repeats=1, quick=True)
        entry = cal.backends["dense"]
        assert entry.flops_per_second > 1e6
        lo, hi = calibrate.OVERHEAD_FLOPS_RANGE
        assert lo <= entry.call_overhead_flops <= hi
        assert entry.sparse_overhead is None
        assert entry.samples  # raw measurements kept for reporting

    def test_sparse_fit_within_clamps(self):
        pytest.importorskip("scipy")
        cal = run_calibration(repeats=1, quick=True)
        entry = cal.backends["sparse"]
        lo, hi = calibrate.SPARSE_OVERHEAD_RANGE
        assert lo <= entry.sparse_overhead <= hi
        lo, hi = calibrate.SPARSE_UPDATE_OVERHEAD_RANGE
        assert lo <= entry.sparse_update_overhead <= hi
        lo, hi = calibrate.SPARSE_SPGEMM_OVERHEAD_RANGE
        assert lo <= entry.sparse_spgemm_overhead <= hi

    def test_unknown_backend_skipped(self):
        cal = run_calibration(backends=["dense", "nope"], repeats=1,
                              quick=True)
        assert set(cal.backends) == {"dense"}


class TestCacheRoundTrip:
    def test_save_and_reload(self, tmp_path):
        cal = synthetic()
        path = cal.save(tmp_path / "calibration.json")
        loaded = load_calibration(path)
        assert loaded is not None
        assert loaded.key == cal.key
        for name in ("dense", "sparse"):
            assert (loaded.backends[name].call_overhead_flops
                    == cal.backends[name].call_overhead_flops)
        assert (loaded.backends["sparse"].sparse_update_overhead
                == cal.backends["sparse"].sparse_update_overhead)

    def test_stale_key_invalidates(self, tmp_path):
        path = tmp_path / "calibration.json"
        stale = Calibration(key="otherbox/Linux/3.0.0", backends={})
        data = stale.as_dict()
        data["backends"] = synthetic().as_dict()["backends"]
        path.write_text(json.dumps(data))
        assert load_calibration(path) is None

    def test_wrong_schema_invalidates(self, tmp_path):
        path = tmp_path / "calibration.json"
        data = synthetic().as_dict()
        data["schema"] = 999
        path.write_text(json.dumps(data))
        assert load_calibration(path) is None

    def test_corrupt_file_invalidates(self, tmp_path):
        path = tmp_path / "calibration.json"
        path.write_text("{not json")
        assert load_calibration(path) is None
        assert load_calibration(tmp_path / "missing.json") is None

    def test_env_off_disables_default_path(self, monkeypatch):
        monkeypatch.setenv(calibrate.CACHE_ENV, "off")
        assert calibrate.default_cache_path() is None
        with pytest.raises(ValueError, match="disabled"):
            synthetic().save()

    def test_env_path_used(self, tmp_path, monkeypatch):
        target = tmp_path / "nested" / "cal.json"
        monkeypatch.setenv(calibrate.CACHE_ENV, str(target))
        assert synthetic().save() == target
        assert load_calibration() is not None


class TestCalibratedResolution:
    def test_constants_applied_to_copy_not_singleton(self):
        cal = synthetic(dense_overhead=123_456.0)
        be = calibrated("dense", cal)
        assert be.est_call_overhead_flops == 123_456.0
        # The shared singleton keeps its class constant.
        assert DENSE.est_call_overhead_flops == 10_000.0
        assert be is not DENSE

    def test_sparse_constants_applied(self):
        pytest.importorskip("scipy")
        cal = synthetic()
        be = calibrated("sparse", cal)
        assert be.est_overhead == 16.0
        assert be.est_update_overhead == 256.0
        assert be.est_spgemm_overhead == 400.0
        # Fresh registry instances are untouched.
        assert get_backend("sparse").est_overhead == 4.0

    def test_none_keeps_class_constants(self):
        be = calibrated("dense", None)
        assert be.est_call_overhead_flops == 10_000.0

    def test_auto_without_cache_is_noop(self, monkeypatch):
        monkeypatch.setenv(calibrate.CACHE_ENV, "off")
        monkeypatch.setattr(calibrate, "_AUTOLOADED", False)
        assert calibrated("dense").est_call_overhead_flops == 10_000.0


class TestPlannerIntegration:
    def test_calibration_changes_boundary_decision(self, rng):
        """The acceptance shape: measured constants flip a boundary plan."""
        pytest.importorskip("scipy")
        from repro.frontend import parse_program
        from repro.planner import WorkloadStats, plan_program

        program = parse_program("input A(n, n); B := A * A; output B;")
        stats = WorkloadStats(n=1, refresh_count=200)
        n, density = 256, 0.05
        a = (rng.random((n, n)) < density) * rng.standard_normal((n, n))

        shipped = plan_program(program, {"A": a}, stats=stats,
                               calibration=None)
        # Near the boundary the shipped constants pick sparse; a machine
        # whose sparse kernels measure far above the shipped penalties
        # must flip the same workload to dense.
        slow_sparse = synthetic(sparse_overhead=64.0, update_overhead=512.0,
                                spgemm_overhead=1024.0)
        measured = plan_program(program, {"A": a}, stats=stats,
                                calibration=slow_sparse)
        assert shipped.backend == "sparse"
        assert measured.backend == "dense"

    def test_autoload_feeds_open_session(self, tmp_path, monkeypatch, rng):
        pytest.importorskip("scipy")
        from repro.frontend import parse_program
        from repro.runtime import open_session

        target = tmp_path / "cal.json"
        monkeypatch.setenv(calibrate.CACHE_ENV, str(target))
        monkeypatch.setattr(calibrate, "_AUTOLOADED", False)
        synthetic(sparse_overhead=64.0, update_overhead=512.0,
                  spgemm_overhead=1024.0).save()

        program = parse_program("input A(n, n); B := A * A; output B;")
        n = 256
        a = (rng.random((n, n)) < 0.05) * rng.standard_normal((n, n))
        session = open_session(program, {"A": a}, refresh_count=200)
        assert session.plan.backend == "dense"


class TestCalibrateCLI:
    def test_writes_cache_and_reports(self, tmp_path, capsys):
        from repro.cli import main

        target = tmp_path / "cal.json"
        assert main(["calibrate", "--quick", "--repeats", "1",
                     "--backend", "dense", "--output", str(target)]) == 0
        out = capsys.readouterr().out
        assert "call overhead" in out
        assert str(target) in out
        assert load_calibration(target) is not None

    def test_dry_run_writes_nothing(self, tmp_path, capsys):
        from repro.cli import main

        target = tmp_path / "cal.json"
        assert main(["calibrate", "--quick", "--repeats", "1",
                     "--backend", "dense", "--dry-run",
                     "--output", str(target)]) == 0
        assert not target.exists()
        assert "dry run" in capsys.readouterr().out

    def test_json_output(self, tmp_path, capsys):
        from repro.cli import main

        target = tmp_path / "cal.json"
        assert main(["calibrate", "--quick", "--repeats", "1",
                     "--backend", "dense", "--output", str(target),
                     "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["key"] == cache_key()
        assert "dense" in payload["backends"]
        assert payload["path"] == str(target)


class TestInPlaceAndConversionConstants:
    """PR 4: the in-place discount and switch-cost passes are calibrated."""

    def test_run_calibration_fits_new_constants(self):
        calibration = calibrate.run_calibration(quick=True, repeats=1)
        for entry in calibration.backends.values():
            assert entry.inplace_discount is not None
            lo, hi = calibrate.INPLACE_DISCOUNT_RANGE
            assert lo <= entry.inplace_discount <= hi
            assert entry.convert_passes_per_entry is not None
            lo, hi = calibrate.CONVERT_PASSES_RANGE
            assert lo <= entry.convert_passes_per_entry <= hi
            assert entry.compaction_factor is not None
            lo, hi = calibrate.COMPACTION_FACTOR_RANGE
            assert lo <= entry.compaction_factor <= hi

    def test_apply_overwrites_backend_constants(self):
        entry = BackendCalibration(
            backend="dense", flops_per_second=1e10,
            call_overhead_flops=12_345.0,
            inplace_discount=0.42, convert_passes_per_entry=3.5,
            compaction_factor=64.0,
        )
        be = entry.apply(get_backend("dense").__class__())
        assert be.est_inplace_discount == 0.42
        assert be.est_convert_passes_per_entry == 3.5
        assert be.est_compaction_factor == 64.0
        assert be.est_call_overhead(inplace=True) == pytest.approx(
            12_345.0 * 0.42)

    def test_compaction_factor_moves_the_batch_decision(self):
        """The fitted constant reprices compaction_cost end to end."""
        from repro.cost.estimate import compaction_cost

        cheap = BackendCalibration(
            backend="dense", flops_per_second=1e10,
            call_overhead_flops=10_000.0, compaction_factor=10.0,
        ).apply(get_backend("dense").__class__())
        dear = BackendCalibration(
            backend="dense", flops_per_second=1e10,
            call_overhead_flops=10_000.0, compaction_factor=5_000.0,
        ).apply(get_backend("dense").__class__())
        width = 32
        gap = compaction_cost(dear, 64, 64, width) - compaction_cost(
            cheap, 64, 64, width)
        assert gap == pytest.approx((5_000.0 - 10.0) * width ** 3)

    def test_new_fields_round_trip_through_json(self, tmp_path):
        entry = BackendCalibration(
            backend="dense", flops_per_second=1e10,
            call_overhead_flops=10_000.0,
            inplace_discount=0.6, convert_passes_per_entry=2.25,
            compaction_factor=48.0,
        )
        calibration = Calibration(key=cache_key(),
                                  backends={"dense": entry})
        path = tmp_path / "calibration.json"
        calibration.save(path)
        loaded = calibrate.load_calibration(path)
        assert loaded is not None
        restored = loaded.get("dense")
        assert restored.inplace_discount == 0.6
        assert restored.convert_passes_per_entry == 2.25
        assert restored.compaction_factor == 48.0

    def test_old_caches_without_new_fields_still_load(self, tmp_path):
        calibration = synthetic()
        payload = calibration.as_dict()
        for entry in payload["backends"].values():
            entry.pop("inplace_discount", None)
            entry.pop("convert_passes_per_entry", None)
        path = tmp_path / "calibration.json"
        path.write_text(json.dumps(payload))
        loaded = calibrate.load_calibration(path)
        assert loaded is not None
        entry = loaded.get("dense")
        assert entry.inplace_discount is None
        # Class defaults survive when the cache has no measurement.
        be = entry.apply(get_backend("dense").__class__())
        assert be.est_inplace_discount == type(be).est_inplace_discount
