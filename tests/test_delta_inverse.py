"""Sherman–Morrison / Woodbury incremental inversion."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.delta import (
    SingularUpdateError,
    sequential_sherman_morrison,
    sherman_morrison_apply,
    sherman_morrison_delta,
    woodbury_apply,
    woodbury_delta,
)


def well_conditioned(rng, size):
    a = rng.normal(size=(size, size))
    return a @ a.T + size * np.eye(size)


class TestShermanMorrison:
    def test_matches_direct_inverse(self, rng):
        e = well_conditioned(rng, 8)
        w = np.linalg.inv(e)
        u = rng.normal(size=(8, 1))
        v = rng.normal(size=(8, 1))
        got = sherman_morrison_apply(w, u, v)
        expected = np.linalg.inv(e + u @ v.T)
        np.testing.assert_allclose(got, expected, rtol=1e-8)

    def test_delta_is_rank_one(self, rng):
        e = well_conditioned(rng, 6)
        w = np.linalg.inv(e)
        p, q = sherman_morrison_delta(w, rng.normal(size=(6, 1)),
                                      rng.normal(size=(6, 1)))
        assert p.shape == (6, 1) and q.shape == (6, 1)
        assert np.linalg.matrix_rank(p @ q.T) == 1

    def test_accepts_flat_vectors(self, rng):
        e = well_conditioned(rng, 5)
        w = np.linalg.inv(e)
        got = sherman_morrison_apply(w, rng.normal(size=5), rng.normal(size=5))
        assert got.shape == (5, 5)

    def test_singular_update_detected(self):
        # E = I, u = -v with v'v = 1 makes 1 + v'Wu = 0.
        w = np.eye(4)
        v = np.zeros((4, 1))
        v[0, 0] = 1.0
        with pytest.raises(SingularUpdateError):
            sherman_morrison_delta(w, -v, v)

    def test_sequential_two_rank_ones(self, rng):
        e = well_conditioned(rng, 7)
        w = np.linalg.inv(e)
        pairs = [
            (rng.normal(size=(7, 1)), rng.normal(size=(7, 1))) for _ in range(2)
        ]
        got = sequential_sherman_morrison(w, pairs)
        total = sum(u @ v.T for u, v in pairs)
        np.testing.assert_allclose(got, np.linalg.inv(e + total), rtol=1e-7)


class TestWoodbury:
    def test_matches_direct_inverse_rank2(self, rng):
        e = well_conditioned(rng, 9)
        w = np.linalg.inv(e)
        u = rng.normal(size=(9, 2))
        v = rng.normal(size=(9, 2))
        got = woodbury_apply(w, u, v)
        np.testing.assert_allclose(got, np.linalg.inv(e + u @ v.T), rtol=1e-8)

    def test_rank1_equals_sherman_morrison(self, rng):
        e = well_conditioned(rng, 6)
        w = np.linalg.inv(e)
        u = rng.normal(size=(6, 1))
        v = rng.normal(size=(6, 1))
        np.testing.assert_allclose(
            woodbury_apply(w, u, v), sherman_morrison_apply(w, u, v), rtol=1e-10
        )

    def test_equals_sequential_sherman_morrison(self, rng):
        """One Woodbury step == outer products absorbed one at a time."""
        e = well_conditioned(rng, 8)
        w = np.linalg.inv(e)
        u = rng.normal(size=(8, 3))
        v = rng.normal(size=(8, 3))
        pairs = [(u[:, i:i + 1], v[:, i:i + 1]) for i in range(3)]
        np.testing.assert_allclose(
            woodbury_apply(w, u, v),
            sequential_sherman_morrison(w, pairs),
            rtol=1e-7,
        )

    def test_delta_factor_shapes(self, rng):
        e = well_conditioned(rng, 7)
        w = np.linalg.inv(e)
        p, q = woodbury_delta(w, rng.normal(size=(7, 3)), rng.normal(size=(7, 3)))
        assert p.shape == (7, 3) and q.shape == (7, 3)

    def test_singular_capacitance_detected(self):
        w = np.eye(4)
        u = np.zeros((4, 2))
        v = np.zeros((4, 2))
        u[0, 0] = -1.0
        v[0, 0] = 1.0
        u[1, 1] = -1.0
        v[1, 1] = 1.0
        with pytest.raises(SingularUpdateError):
            woodbury_delta(w, u, v)


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(0, 2**31 - 1), k=st.integers(1, 4))
def test_woodbury_property_random_ranks(seed, k):
    rng = np.random.default_rng(seed)
    size = 8
    e = well_conditioned(rng, size)
    w = np.linalg.inv(e)
    u = 0.5 * rng.normal(size=(size, k))
    v = 0.5 * rng.normal(size=(size, k))
    got = woodbury_apply(w, u, v)
    expected = np.linalg.inv(e + u @ v.T)
    np.testing.assert_allclose(got, expected, rtol=1e-6, atol=1e-9)


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(0, 2**31 - 1))
def test_sherman_morrison_inverse_identity_property(seed):
    """(E + uv')(W + dW) == I after the update."""
    rng = np.random.default_rng(seed)
    size = 6
    e = well_conditioned(rng, size)
    w = np.linalg.inv(e)
    u = rng.normal(size=(size, 1))
    v = rng.normal(size=(size, 1))
    updated = sherman_morrison_apply(w, u, v)
    np.testing.assert_allclose(
        (e + u @ v.T) @ updated, np.eye(size), atol=1e-7
    )
