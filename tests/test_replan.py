"""Online re-planning: state conversion, plan switching, ReplanMonitor."""

import numpy as np
import pytest

from repro.frontend import parse_program
from repro.planner import MaintenancePlan
from repro.runtime import (
    FactoredUpdate,
    IVMSession,
    ReevalSession,
    ReplanMonitor,
    ViewStore,
    open_session,
)

A2_SOURCE = "input A(n, n); B := A * A; output B;"


def fill_updates(rng, n, count, fill=0.5, scale=0.05):
    """The shared fill-in stream as session events targeting ``A``."""
    from stream_helpers import fillin_factors

    return [FactoredUpdate("A", u, v)
            for u, v in fillin_factors(rng, n, count, fill, scale)]


def sparse_input(rng, n, density):
    return (rng.random((n, n)) < density) * (0.05 * rng.standard_normal((n, n)))


class TestViewStoreConverted:
    def test_dense_to_sparse_and_back(self, rng):
        pytest.importorskip("scipy")
        store = ViewStore({"n": 96}, backend="dense")
        low = sparse_input(rng, 96, 0.02)
        full = rng.standard_normal((96, 96))
        store.set("A", low)
        store.set("B", full)

        sparse = store.converted("sparse")
        assert not isinstance(sparse.get("A"), np.ndarray)  # CSR now
        assert isinstance(sparse.get("B"), np.ndarray)      # stays dense
        assert sparse.dims == store.dims

        back = sparse.converted("dense")
        np.testing.assert_allclose(back.get("A"), low)
        np.testing.assert_allclose(back.get("B"), full)

    def test_conversion_is_not_evaluation(self, rng):
        # Values carry over verbatim even if they are inconsistent with
        # any program — conversion must never recompute.
        store = ViewStore(backend="dense")
        store.set("X", np.full((4, 4), 7.0))
        assert float(store.converted("dense").get("X")[0, 0]) == 7.0


class TestWithPlan:
    def make_session(self, rng, n=64, density=0.03):
        pytest.importorskip("scipy")
        program = parse_program(A2_SOURCE)
        return IVMSession(program, {"A": sparse_input(rng, n, density)},
                          dims={"n": n}, backend="sparse"), program

    def test_backend_flip_preserves_state_and_counts(self, rng):
        pytest.importorskip("scipy")
        session, _ = self.make_session(rng)
        for update in fill_updates(rng, 64, 5):
            session.apply_update(update)
        before = session.output().copy()

        switched = session.with_plan(
            MaintenancePlan("INCR", backend="dense", mode="codegen"))
        assert switched.backend.name == "dense"
        assert switched.update_count == session.update_count
        np.testing.assert_allclose(switched.output(), before, atol=1e-12)

    def test_switched_session_keeps_maintaining_correctly(self, rng):
        pytest.importorskip("scipy")
        session, program = self.make_session(rng)
        stream = fill_updates(rng, 64, 12)
        for update in stream[:6]:
            session.apply_update(update)
        switched = session.with_plan(
            MaintenancePlan("INCR", backend="dense", mode="interpret"))
        for update in stream[6:]:
            switched.apply_update(update)
        expected = switched["A"] @ switched["A"]
        np.testing.assert_allclose(switched.output(), expected, atol=1e-9)

    def test_strategy_switch_to_reeval(self, rng):
        session, _ = self.make_session(rng)
        switched = session.with_plan(MaintenancePlan("REEVAL"))
        assert isinstance(switched, ReevalSession)
        update = fill_updates(rng, 64, 1)[0]
        switched.apply_update(update)
        expected = switched["A"] @ switched["A"]
        np.testing.assert_allclose(switched.output(), expected, atol=1e-9)

    def test_hybrid_rejected(self, rng):
        session, _ = self.make_session(rng)
        with pytest.raises(ValueError, match="HYBRID"):
            session.with_plan(MaintenancePlan("HYBRID"))


class TestReplanMonitor:
    def test_fillin_flips_sparse_to_dense_without_rebuild(self, rng):
        """The tentpole scenario: density drift swaps the backend."""
        pytest.importorskip("scipy")
        n = 128
        program = parse_program(A2_SOURCE)
        monitor = open_session(
            program, {"A": sparse_input(rng, n, 0.01)}, dims={"n": n},
            refresh_count=80, replan={"check_every": 5},
        )
        assert isinstance(monitor, ReplanMonitor)
        assert monitor.plan.backend == "sparse"

        for update in fill_updates(rng, n, 60):
            monitor.apply_update(update)

        assert monitor.switch_count >= 1
        assert monitor.session.backend.name == "dense"
        assert monitor.plan.backend == "dense"
        switch = next(e for e in monitor.replans if e.switched)
        assert "sparse" in switch.from_label and "dense" in switch.to_label
        assert switch.predicted_saving > switch.switch_cost
        assert switch.seconds_per_update > 0.0
        # State was converted, never rebuilt: the maintained view still
        # matches recomputation from the maintained input exactly.
        expected = monitor["A"] @ monitor["A"]
        np.testing.assert_allclose(monitor.output(), expected, atol=1e-9)
        assert monitor.refreshes == 60
        assert monitor.update_count == 60  # carried across the switch

    def test_stable_workload_never_switches(self, rng):
        n = 64
        program = parse_program(A2_SOURCE)
        monitor = open_session(
            program, {"A": rng.standard_normal((n, n)) / n}, dims={"n": n},
            refresh_count=40, replan={"check_every": 5},
        )
        for update in fill_updates(rng, n, 20, fill=0.02):
            monitor.apply_update(update)
        assert monitor.switch_count == 0

    def test_switch_margin_hysteresis(self, rng):
        # An enormous margin requirement blocks otherwise-justified
        # switches; the event is still recorded as considered.
        pytest.importorskip("scipy")
        n = 128
        program = parse_program(A2_SOURCE)
        monitor = open_session(
            program, {"A": sparse_input(rng, n, 0.01)}, dims={"n": n},
            refresh_count=80,
            replan={"check_every": 5, "switch_margin": 1e12},
        )
        for update in fill_updates(rng, n, 60):
            monitor.apply_update(update)
        assert monitor.switch_count == 0
        assert any(not e.switched for e in monitor.replans)

    def test_option_validation(self, rng):
        n = 16
        program = parse_program(A2_SOURCE)
        session = open_session(program, {"A": np.eye(n)}, dims={"n": n})
        with pytest.raises(ValueError, match="switch_margin"):
            ReplanMonitor(session, switch_margin=0.0)
        with pytest.raises(ValueError, match="probe_every"):
            ReplanMonitor(session, probe_every=0)

    def test_drift_options_fold_into_probe_schedule(self, rng):
        n = 32
        program = parse_program(A2_SOURCE)
        monitor = open_session(
            program, {"A": rng.standard_normal((n, n)) / n}, dims={"n": n},
            plan="incr", replan={"check_every": 50},
            drift={"check_every": 4, "tolerance": 1e-30, "action": "raise"},
        )
        assert monitor.probe_every == 4
        assert monitor.tolerance == 1e-30
        from repro.runtime import DriftExceededError

        with pytest.raises(DriftExceededError):
            for update in fill_updates(rng, n, 8):
                monitor.apply_update(update)

    def test_manual_replan_reports_current_best(self, rng):
        n = 64
        program = parse_program(A2_SOURCE)
        monitor = open_session(
            program, {"A": rng.standard_normal((n, n)) / n}, dims={"n": n},
            replan=True,
        )
        for update in fill_updates(rng, n, 3, fill=0.02):
            monitor.apply_update(update)
        # Current plan already the winner -> no event.
        assert monitor.replan() is None


class TestCalibratedSwitchCost:
    """PR 4: the replan switch-cost constant comes from calibration."""

    def _monitor(self, rng, calibration):
        pytest.importorskip("scipy")
        n = 96
        program = parse_program(A2_SOURCE)
        # Fixed seed: switch-cost comparisons across monitors need
        # byte-identical state.
        fixed = np.random.default_rng(20140622)
        return open_session(
            program, {"A": sparse_input(fixed, n, 0.02)}, dims={"n": n},
            refresh_count=50,
            replan={"check_every": 10, "calibration": calibration},
        )

    def test_class_default_reproduces_fixed_constant(self, rng):
        from repro.backends import Backend

        monitor = self._monitor(rng, calibration=None)
        old = monitor.session.backend
        views = monitor.session.views
        entries = 0.0
        for name in views.names():
            arr = views.get(name)
            shape = old.shape(arr)
            density = old.density(arr)
            entries += old.est_entries(shape, density)
            from repro.backends import get_backend

            entries += get_backend("dense").est_entries(shape, density)
        # Shipped est_convert_passes_per_entry is 2.0 per side — the
        # pre-calibration constant 2.0 * (old + new entries).
        assert Backend.est_convert_passes_per_entry == 2.0
        assert monitor._switch_cost("dense") == pytest.approx(2.0 * entries)

    def test_calibrated_passes_scale_the_switch_cost(self, rng):
        from repro.calibrate import BackendCalibration, Calibration, cache_key

        def with_passes(passes):
            return Calibration(key=cache_key(), backends={
                name: BackendCalibration(
                    backend=name, flops_per_second=1e10,
                    call_overhead_flops=10_000.0,
                    convert_passes_per_entry=passes,
                )
                for name in ("dense", "sparse")
            })

        monitor_cheap = self._monitor(rng, calibration=with_passes(1.0))
        monitor_dear = self._monitor(rng, calibration=with_passes(10.0))
        cheap = monitor_cheap._switch_cost("dense")
        dear = monitor_dear._switch_cost("dense")
        assert dear == pytest.approx(10.0 * cheap)

    def test_same_backend_switch_stays_call_priced(self, rng):
        monitor = self._monitor(rng, calibration=None)
        cost = monitor._switch_cost(monitor.session.backend.name)
        assert cost == 8.0 * monitor.session.backend.est_call_overhead_flops
