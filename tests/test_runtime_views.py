"""ViewStore and update-event behaviour."""

import numpy as np
import pytest

from repro.runtime import (
    FactoredUpdate,
    ViewStore,
    batch_row_update,
    cell_update,
    column_update,
    row_update,
)


class TestViewStore:
    def test_set_get_roundtrip(self, rng):
        store = ViewStore()
        a = rng.normal(size=(4, 4))
        store.set("A", a)
        np.testing.assert_array_equal(store.get("A"), a)

    def test_vectors_normalized_to_columns(self):
        store = ViewStore()
        store.set("v", np.ones(5))
        assert store.get("v").shape == (5, 1)

    def test_higher_rank_rejected(self):
        store = ViewStore()
        with pytest.raises(ValueError):
            store.set("T", np.ones((2, 2, 2)))

    def test_missing_view_raises_keyerror(self):
        with pytest.raises(KeyError, match="no view or input"):
            ViewStore().get("missing")

    def test_contains_and_names(self, rng):
        store = ViewStore()
        store.set("A", rng.normal(size=(2, 2)))
        store.set("B", rng.normal(size=(2, 2)))
        assert "A" in store and "Z" not in store
        assert store.names() == ["A", "B"]

    def test_add_in_place(self, rng):
        store = ViewStore()
        a = rng.normal(size=(3, 3))
        d = rng.normal(size=(3, 3))
        store.set("A", a)
        store.add_in_place("A", d)
        np.testing.assert_allclose(store.get("A"), a + d)

    def test_add_in_place_shape_mismatch(self, rng):
        store = ViewStore()
        store.set("A", rng.normal(size=(3, 3)))
        with pytest.raises(ValueError, match="mismatch"):
            store.add_in_place("A", np.ones((2, 2)))

    def test_snapshot_restore(self, rng):
        store = ViewStore()
        a = rng.normal(size=(3, 3))
        store.set("A", a)
        snapshot = store.snapshot()
        store.add_in_place("A", np.ones((3, 3)))
        store.restore(snapshot)
        np.testing.assert_array_equal(store.get("A"), a)

    def test_snapshot_is_deep(self, rng):
        store = ViewStore()
        store.set("A", rng.normal(size=(2, 2)))
        snapshot = store.snapshot()
        snapshot["A"][0, 0] = 99.0
        assert store.get("A")[0, 0] != 99.0

    def test_total_bytes(self):
        store = ViewStore()
        store.set("A", np.ones((10, 10)))
        store.set("B", np.ones((5, 5)))
        assert store.total_bytes() == (100 + 25) * 8
        assert store.total_bytes(iter(["A"])) == 800

    def test_dims_stored(self):
        store = ViewStore({"n": 7})
        assert store.dims == {"n": 7}


class TestFactoredUpdate:
    def test_rank_and_dense(self, rng):
        u = rng.normal(size=(5, 2))
        v = rng.normal(size=(4, 2))
        update = FactoredUpdate("A", u, v)
        assert update.rank == 2
        np.testing.assert_allclose(update.dense(), u @ v.T)

    def test_vectors_reshaped(self, rng):
        update = FactoredUpdate("A", rng.normal(size=5), rng.normal(size=4))
        assert update.u_block.shape == (5, 1)
        assert update.v_block.shape == (4, 1)

    def test_width_mismatch_rejected(self, rng):
        with pytest.raises(ValueError):
            FactoredUpdate("A", rng.normal(size=(5, 2)), rng.normal(size=(4, 3)))


class TestUpdateConstructors:
    def test_cell_update(self):
        update = cell_update("A", 4, 5, 2, 3, 7.5)
        dense = update.dense()
        assert dense[2, 3] == 7.5
        assert np.count_nonzero(dense) == 1

    def test_row_update(self, rng):
        delta = rng.normal(size=6)
        update = row_update("A", 4, 1, delta)
        dense = update.dense()
        np.testing.assert_allclose(dense[1], delta)
        assert np.count_nonzero(dense[0]) == 0

    def test_column_update(self, rng):
        delta = rng.normal(size=4)
        update = column_update("A", 6, 2, delta)
        dense = update.dense()
        np.testing.assert_allclose(dense[:, 2], delta)
        assert np.count_nonzero(dense[:, 0]) == 0

    def test_batch_row_update(self, rng):
        rows = np.array([0, 3, 5])
        deltas = rng.normal(size=(3, 7))
        update = batch_row_update("A", 8, rows, deltas)
        assert update.rank == 3
        dense = update.dense()
        for idx, row in enumerate(rows):
            np.testing.assert_allclose(dense[row], deltas[idx])
        untouched = [r for r in range(8) if r not in rows]
        assert np.count_nonzero(dense[untouched]) == 0

    def test_batch_rejects_duplicate_rows(self, rng):
        with pytest.raises(ValueError, match="distinct"):
            batch_row_update("A", 8, np.array([1, 1]), rng.normal(size=(2, 4)))

    def test_batch_rejects_shape_mismatch(self, rng):
        with pytest.raises(ValueError, match="one delta row"):
            batch_row_update("A", 8, np.array([1, 2]), rng.normal(size=(3, 4)))
