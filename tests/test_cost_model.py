"""Cost model: formulas, counters, and formula-vs-measured growth."""

import numpy as np
import pytest

from repro.cost import Counter, Ops, complexity, flops
from repro.cost.memory import MemoryComparison, gigabytes
from repro.iterative import IncrementalPowers, Model, ReevalPowers
from repro.workloads import spectral_normalized


class TestFlopFormulas:
    def test_matmul(self):
        assert flops.matmul_flops(2, 3, 4) == 48

    def test_add_and_scale(self):
        assert flops.add_flops(3, 4) == 12
        assert flops.scalar_mul_flops(3, 4) == 12

    def test_inverse(self):
        assert flops.inverse_flops(10) == 2000

    def test_transpose_free(self):
        assert flops.transpose_flops(10, 10) == 0

    def test_bytes(self):
        assert flops.matrix_bytes(10, 20) == 1600


class TestOps:
    def test_ops_charges_counter(self, rng):
        counter = Counter()
        ops = Ops(counter)
        a = rng.normal(size=(4, 5))
        b = rng.normal(size=(5, 6))
        ops.mm(a, b)
        assert counter.flops("matmul") == 2 * 4 * 5 * 6

    def test_ops_shape_check(self, rng):
        ops = Ops()
        with pytest.raises(ValueError):
            ops.mm(rng.normal(size=(3, 3)), rng.normal(size=(4, 4)))

    def test_add_inplace_mutates(self):
        ops = Ops()
        a = np.ones((2, 2))
        ops.add_inplace(a, np.ones((2, 2)))
        np.testing.assert_array_equal(a, 2 * np.ones((2, 2)))

    def test_inv_and_stack(self, rng):
        counter = Counter()
        ops = Ops(counter)
        well = rng.normal(size=(5, 5)) + 5 * np.eye(5)
        ops.inv(well)
        assert counter.flops("inverse") == 2 * 125
        stacked = ops.hstack([np.ones((3, 1)), np.ones((3, 2))])
        assert stacked.shape == (3, 3)


class TestComplexityFormulas:
    def test_powers_reeval_model_ordering(self):
        n, k = 1000, 16
        lin = complexity.powers_reeval_time(n, k, "linear")
        skip = complexity.powers_reeval_time(n, k, "skip", s=4)
        exp = complexity.powers_reeval_time(n, k, "exponential")
        assert exp < skip < lin

    def test_powers_incr_model_ordering(self):
        n, k = 1000, 16
        lin = complexity.powers_incr_time(n, k, "linear")
        skip = complexity.powers_incr_time(n, k, "skip", s=4)
        exp = complexity.powers_incr_time(n, k, "exponential")
        assert exp < skip < lin

    def test_incr_beats_reeval_asymptotically(self):
        for n in (1000, 10000):
            assert complexity.powers_incr_time(n, 16, "exponential") < (
                complexity.powers_reeval_time(n, 16, "exponential")
            )

    def test_skip_interpolates(self):
        n, k = 500, 16
        assert complexity.powers_incr_time(n, k, "skip", s=1) == (
            complexity.powers_incr_time(n, k, "linear")
        )
        assert complexity.powers_incr_time(n, k, "skip", s=k) == (
            complexity.powers_incr_time(n, k, "exponential")
        )

    def test_general_hybrid_wins_small_p(self):
        n, k = 1000, 16
        hybrid = complexity.general_hybrid_time(n, 1, k, "linear")
        incr = complexity.general_incr_time(n, 1, k, "linear")
        assert hybrid < incr

    def test_general_incr_wins_large_p(self):
        n, k = 1000, 16
        p = 2000
        incr = complexity.general_incr_time(n, p, k, "exponential")
        reeval = complexity.general_reeval_time(n, p, k, "exponential")
        assert incr < reeval

    def test_space_formulas(self):
        n, k = 100, 16
        assert complexity.powers_reeval_space(n, k, "linear") == n * n
        assert complexity.powers_incr_space(n, k, "linear") == n * n * k
        assert complexity.powers_incr_space(n, k, "exponential") == n * n * 4

    def test_ols_formulas(self):
        assert complexity.ols_incr_time(100, 50) < complexity.ols_reeval_time(100, 50)

    def test_validation(self):
        with pytest.raises(ValueError):
            complexity.powers_reeval_time(0, 4, "linear")
        with pytest.raises(ValueError):
            complexity.powers_incr_time(10, 16, "skip", s=5)
        with pytest.raises(ValueError):
            complexity.powers_incr_time(10, 16, "cubic")


class TestFittedExponent:
    def test_exact_powers(self):
        xs = [2.0, 4.0, 8.0, 16.0]
        assert abs(complexity.fitted_exponent(xs, [x**3 for x in xs]) - 3.0) < 1e-9
        assert abs(complexity.fitted_exponent(xs, [x**2 for x in xs]) - 2.0) < 1e-9

    def test_needs_two_points(self):
        with pytest.raises(ValueError):
            complexity.fitted_exponent([1.0], [1.0])

    def test_measured_refresh_exponents_match_table2(self):
        """REEVAL-EXP refresh FLOPs grow ~n^3; INCR-EXP ~n^2 (Table 2)."""
        sizes = [16, 32, 64]
        reeval_flops, incr_flops = [], []
        for n in sizes:
            a = spectral_normalized(np.random.default_rng(1), n)
            reeval_counter, incr_counter = Counter(), Counter()
            reeval = ReevalPowers(a, 16, Model.exponential(), reeval_counter)
            incr = IncrementalPowers(a, 16, Model.exponential(), incr_counter)
            reeval_counter.reset(); incr_counter.reset()
            u = np.zeros((n, 1)); u[0, 0] = 1.0
            v = 0.01 * np.ones((n, 1))
            reeval.refresh(u, v)
            incr.refresh(u, v)
            reeval_flops.append(reeval_counter.total_flops)
            incr_flops.append(incr_counter.total_flops)
        reeval_exp = complexity.fitted_exponent([float(s) for s in sizes],
                                                reeval_flops)
        incr_exp = complexity.fitted_exponent([float(s) for s in sizes],
                                              incr_flops)
        assert 2.7 < reeval_exp <= 3.1
        assert 1.8 < incr_exp <= 2.3


class TestMemoryComparison:
    def test_table3_row_math(self):
        comparison = MemoryComparison(
            n=1000,
            reeval_bytes=10**9,
            incr_bytes=3 * 10**9,
            reeval_time=9.0,
            incr_time=1.0,
        )
        assert comparison.speedup == 9.0
        assert comparison.memory_overhead == 3.0
        assert comparison.speedup_per_memory == 3.0
        row = comparison.row()
        assert row["reeval_gb"] == 1.0 and row["incr_gb"] == 3.0

    def test_gigabytes(self):
        assert gigabytes(2_500_000_000) == 2.5
