"""Workspace arena, in-place backend kernels, and the zero-alloc contract."""

import gc
import threading
import tracemalloc

import numpy as np
import pytest

from repro.backends import get_backend
from repro.compiler import Program, Statement
from repro.expr import MatrixSymbol, matmul
from repro.iterative.general import HybridGeneral, IncrementalGeneral, ReevalGeneral
from repro.iterative.models import Model
from repro.iterative.powers import IncrementalPowers, ReevalPowers
from repro.iterative.sums import IncrementalPowerSums
from repro.runtime import FactoredUpdate, Workspace
from repro.runtime.session import IVMSession


def _row_updates(rng, n, count, scale=0.01):
    updates = []
    for i in range(count):
        u = np.zeros((n, 1))
        u[i % n, 0] = 1.0
        updates.append(FactoredUpdate("A", u, scale * rng.normal(size=(n, 1))))
    return updates


class TestWorkspace:
    def test_lease_reissues_same_buffers_per_frame(self):
        ws = Workspace()
        with ws.frame():
            first = ws.lease(4, 4)
            second = ws.lease(4, 4)
        assert first is not second
        with ws.frame():
            assert ws.lease(4, 4) is first
            assert ws.lease(4, 4) is second
        assert ws.allocations == 2
        assert ws.leases == 4

    def test_nested_frames_do_not_recycle(self):
        ws = Workspace()
        with ws.frame():
            outer = ws.lease(3, 3)
            with ws.frame():
                inner = ws.lease(3, 3)
            # Inner frame closed, but the outer one is still open: the
            # next lease must NOT hand `outer` or `inner` back.
            third = ws.lease(3, 3)
        assert third is not outer and third is not inner

    def test_begin_is_noop_inside_frame(self):
        ws = Workspace()
        with ws.frame():
            outer = ws.lease(2, 2)
            ws.begin()
            assert ws.lease(2, 2) is not outer

    def test_concurrent_threads_never_share_buffers(self):
        """Two threads leasing the same shapes get disjoint arenas.

        The serving layer's writer thread runs maintenance concurrently
        with whatever the spawning thread does; a shared lease pool
        would hand both threads the same scratch buffer and corrupt
        in-place kernels.  Regression for the thread-local arena.
        """
        ws = Workspace()
        rounds = 100
        seen: list[set[int]] = [set(), set()]
        errors: list[BaseException] = []
        barrier = threading.Barrier(2)

        def work(slot: int) -> None:
            try:
                barrier.wait()
                for _ in range(rounds):
                    with ws.frame():
                        a = ws.lease(6, 6)
                        a[:] = slot
                        b = ws.lease(6, 6)
                        b[:] = slot + 10
                        seen[slot].add(id(a))
                        seen[slot].add(id(b))
                        # A shared buffer shows up as the other thread's
                        # marker value bleeding in mid-frame.
                        assert np.all(a == slot) and np.all(b == slot + 10)
            except BaseException as exc:  # noqa: BLE001 - reported below
                errors.append(exc)

        threads = [threading.Thread(target=work, args=(slot,))
                   for slot in (0, 1)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60.0)
        assert not errors, errors[0]
        assert seen[0].isdisjoint(seen[1])
        # Counters aggregate across the per-thread arenas.
        assert ws.allocations == 4
        assert ws.leases == 4 * rounds
        assert ws.buffer_count() == 4

    def test_shape_and_dtype_keying(self):
        ws = Workspace()
        with ws.frame():
            a = ws.lease(2, 3)
            b = ws.lease(3, 2)
            c = ws.lease(2, 3, dtype=np.float32)
        assert a.shape == (2, 3) and b.shape == (3, 2)
        assert c.dtype == np.float32 and a.dtype == np.float64
        assert ws.buffer_count() == 3
        assert ws.nbytes() == a.nbytes + b.nbytes + c.nbytes


class TestInPlaceKernels:
    def test_dense_into_kernels_write_out(self, rng):
        be = get_backend("dense")
        a = rng.normal(size=(5, 5))
        b = rng.normal(size=(5, 5))
        out = np.empty((5, 5))
        assert be.matmul_into(a, b, out) is out
        np.testing.assert_array_equal(out, a @ b)
        assert be.add_into(a, b, out) is out
        np.testing.assert_array_equal(out, a + b)
        assert be.sub_into(a, b, out) is out
        np.testing.assert_array_equal(out, a - b)
        assert be.scale_into(2.5, a, out) is out
        np.testing.assert_array_equal(out, 2.5 * a)
        wide = np.empty((5, 10))
        assert be.hstack_into([a, b], wide) is wide
        np.testing.assert_array_equal(wide, np.hstack([a, b]))
        tall = np.empty((10, 5))
        assert be.vstack_into([a, b], tall) is tall
        np.testing.assert_array_equal(tall, np.vstack([a, b]))

    def test_dense_into_kernels_fall_back_without_out(self, rng):
        be = get_backend("dense")
        a = rng.normal(size=(4, 4))
        b = rng.normal(size=(4, 4))
        np.testing.assert_array_equal(be.matmul_into(a, b, None), a @ b)
        np.testing.assert_array_equal(be.add_into(a, b, None), a + b)

    def test_add_into_accumulates_with_aliasing(self, rng):
        be = get_backend("dense")
        acc = rng.normal(size=(4, 4))
        term = rng.normal(size=(4, 4))
        expected = acc + term
        assert be.add_into(acc, term, acc) is acc
        np.testing.assert_array_equal(acc, expected)

    def test_sparse_into_kernels_dense_legs(self, rng):
        pytest.importorskip("scipy")
        be = get_backend("sparse")
        a = rng.normal(size=(8, 8))
        b = rng.normal(size=(8, 8))
        out = np.empty((8, 8))
        assert be.matmul_into(a, b, out) is out
        csr = be.asarray((rng.random((100, 100)) < 0.03) * 1.0)
        x = rng.normal(size=(100, 4))
        res = be.matmul_into(csr, x, np.empty((100, 4)))
        np.testing.assert_allclose(res, be.materialize(csr) @ x)

    def test_sparse_add_outer_inplace_reuses_pattern(self, rng):
        sp = pytest.importorskip("scipy.sparse")
        be = get_backend("sparse")
        a = be.asarray((rng.random((100, 100)) < 0.05) * rng.normal(size=(100, 100)))
        assert sp.issparse(a)
        row = 7
        cols = a[[row]].indices
        assert len(cols) > 0
        u = np.zeros((100, 1))
        u[row, 0] = 1.0
        v = np.zeros((100, 1))
        v[cols[0], 0] = 0.5
        data_buf = a.data
        indices_buf = a.indices
        result = be.add_outer_inplace(a, u, v)
        assert result is a, "pattern-preserving update must keep identity"
        assert result.indices is indices_buf and result.data is data_buf

    def test_sparse_add_outer_inplace_grows_structure(self, rng):
        sp = pytest.importorskip("scipy.sparse")
        be = get_backend("sparse")
        a = be.asarray((rng.random((100, 100)) < 0.02) * 1.0)
        dense_before = be.materialize(a)
        u = np.zeros((100, 1))
        u[3, 0] = 1.0
        v = 0.1 * rng.normal(size=(100, 1))
        result = be.add_outer_inplace(a, u, v)
        assert sp.issparse(result) or isinstance(result, np.ndarray)
        np.testing.assert_allclose(
            be.materialize(result), dense_before + u @ v.T, atol=1e-12,
        )


class TestMaintainerWorkspaces:
    @pytest.mark.parametrize("model", [Model.linear(), Model.exponential(),
                                       Model.skip(4)])
    def test_incremental_powers_parity_and_steady_state(self, rng, model):
        n, k = 32, 8
        a0 = 0.05 * rng.normal(size=(n, n))
        plain = IncrementalPowers(a0, k, model)
        arena = IncrementalPowers(a0, k, model, workspace=True)
        ups = [(np.eye(n)[:, [i % n]], 0.01 * rng.normal(size=(n, 1)))
               for i in range(12)]
        for u, v in ups:
            plain.refresh(u, v)
            arena.refresh(u, v)
        assert np.array_equal(plain.result(), arena.result())
        allocations = arena.ops.workspace.allocations
        for u, v in ups[:4]:
            arena.refresh(u, v)
        assert arena.ops.workspace.allocations == allocations

    def test_reeval_powers_recomputes_into_existing_storage(self, rng):
        n, k = 24, 4
        m = ReevalPowers(0.05 * rng.normal(size=(n, n)), k, Model.linear())
        storage = {i: arr for i, arr in m.powers.items() if i > 1}
        m.refresh(np.eye(n)[:, [0]], 0.01 * rng.normal(size=(n, 1)))
        for i, arr in storage.items():
            assert m.powers[i] is arr, f"P_{i} was reallocated"

    @pytest.mark.parametrize("cls", [IncrementalGeneral, HybridGeneral,
                                     ReevalGeneral])
    def test_general_workspace_parity(self, rng, cls):
        n, k, p = 24, 8, 3
        a0 = 0.05 * rng.normal(size=(n, n))
        b0 = rng.normal(size=(n, p))
        t0 = rng.normal(size=(n, p))
        plain = cls(a0, b0, t0, k, Model.exponential())
        arena = cls(a0, b0, t0, k, Model.exponential(), workspace=True)
        for i in range(8):
            u = np.eye(n)[:, [i % n]]
            v = 0.01 * rng.normal(size=(n, 1))
            plain.refresh(u, v)
            arena.refresh(u, v)
            ub = np.eye(n)[:, [(i + 1) % n]]
            vb = 0.01 * rng.normal(size=(p, 1))
            plain.refresh_b(ub, vb)
            arena.refresh_b(ub, vb)
        assert np.array_equal(plain.result(), arena.result())

    def test_sums_share_arena_with_owned_powers(self, rng):
        n, k = 24, 8
        a0 = 0.05 * rng.normal(size=(n, n))
        arena = IncrementalPowerSums(a0, k, Model.exponential(),
                                     workspace=True)
        assert arena.powers is not None
        assert arena.powers.ops.workspace is arena.ops.workspace
        plain = IncrementalPowerSums(a0, k, Model.exponential())
        for i in range(6):
            u = np.eye(n)[:, [i % n]]
            v = 0.01 * rng.normal(size=(n, 1))
            plain.refresh(u, v)
            arena.refresh(u, v)
        assert np.array_equal(plain.result(), arena.result())


class TestZeroAllocationSteadyState:
    """The tentpole property: warmed-up codegen sessions allocate nothing."""

    def _session(self, rng, n=48):
        a_sym = MatrixSymbol("A", n, n)
        b_sym = MatrixSymbol("B", n, n)
        c_sym = MatrixSymbol("C", n, n)
        program = Program(
            [a_sym],
            [Statement(b_sym, matmul(a_sym, a_sym)),
             Statement(c_sym, matmul(b_sym, b_sym))],
        )
        return IVMSession(program, {"A": 0.1 * rng.normal(size=(n, n))},
                          mode="codegen")

    def test_workspace_stops_allocating_after_warmup(self, rng):
        session = self._session(rng)
        updates = _row_updates(rng, 48, 30)
        session.apply_update(updates[0])  # warm-up firing
        allocations = session.workspace.allocations
        assert allocations > 0
        for update in updates[1:]:
            session.apply_update(update)
        assert session.workspace.allocations == allocations

    def test_tracemalloc_measures_zero_steady_state(self, rng):
        session = self._session(rng)
        updates = _row_updates(rng, 48, 60)
        for update in updates:  # warm everything, including caches
            session.apply_update(update)
        gc.collect()
        tracemalloc.start()
        before = tracemalloc.get_traced_memory()[0]
        for update in updates:
            session.apply_update(update)
        gc.collect()
        grown = tracemalloc.get_traced_memory()[0] - before
        tracemalloc.stop()
        # tracemalloc's own bookkeeping accounts for a few hundred bytes;
        # a single leaked (48 x 48) array would be ~18 KB.
        assert grown < 4096, f"steady state allocated {grown} bytes"

    def test_fused_functions_expose_workspace_and_rank(self, rng):
        session = self._session(rng)
        fn = session._fused["A"]
        assert fn.__rank__ == 1
        assert fn.__workspace__ is session.workspace
        assert "def on_update_A" in fn.__source__
