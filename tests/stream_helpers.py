"""Shared workload-stream builders for the test suite.

Not a conftest: benchmark scripts import their own ``conftest`` module
by name, so shared test helpers live under a unique module name to keep
mixed ``pytest tests/... benchmarks/...`` invocations unambiguous.
"""

from __future__ import annotations

import numpy as np


def fillin_factors(rng: np.random.Generator, n: int, count: int,
                   fill: float = 0.5, scale: float = 0.05):
    """Reachability-style fill-in factors: row ``i % n`` gets ~``fill``
    of its entries perturbed per update, so the target matrix densifies
    along the stream.  Shared by the drift and re-planning tests."""
    for i in range(count):
        u = np.zeros((n, 1))
        u[i % n, 0] = 1.0
        v = (rng.random((n, 1)) < fill) * (scale * rng.standard_normal((n, 1)))
        yield u, v
