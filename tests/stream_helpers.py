"""Shared workload-stream builders for the test suite.

Not a conftest: benchmark scripts import their own ``conftest`` module
by name, so shared test helpers live under a unique module name to keep
mixed ``pytest tests/... benchmarks/...`` invocations unambiguous.
"""

from __future__ import annotations

import numpy as np


def fillin_factors(rng: np.random.Generator, n: int, count: int,
                   fill: float = 0.5, scale: float = 0.05):
    """Reachability-style fill-in factors: row ``i % n`` gets ~``fill``
    of its entries perturbed per update, so the target matrix densifies
    along the stream.  Shared by the drift and re-planning tests."""
    for i in range(count):
        u = np.zeros((n, 1))
        u[i % n, 0] = 1.0
        v = (rng.random((n, 1)) < fill) * (scale * rng.standard_normal((n, 1)))
        yield u, v


def zipf_row_updates(rng: np.random.Generator, n: int, count: int,
                     theta: float, target: str = "A", rank: int = 1,
                     scale: float = 0.05):
    """A Table 4-shaped update stream: row targets repeat Zipf(theta)-style.

    Returns ``count`` :class:`~repro.runtime.updates.FactoredUpdate`\\ s
    of width ``rank`` whose indicator rows are drawn from a
    Zipf(``theta``) frequency distribution (``theta = 0`` is uniform);
    high skew makes batches hit few distinct rows — exactly what QR+SVD
    batch compaction exploits.  Shared by the batch-pipeline
    differential harness and the plan-grid executability tests.
    """
    from repro.runtime.updates import FactoredUpdate
    from repro.workloads.zipf import sample_rows

    rows = sample_rows(rng, n, count * rank, theta).reshape(count, rank)
    updates = []
    for group in rows:
        u = np.zeros((n, rank))
        u[group, np.arange(rank)] = 1.0
        v = scale * rng.standard_normal((n, rank))
        updates.append(FactoredUpdate(target, u, v))
    return updates
