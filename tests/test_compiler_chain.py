"""Cost-based product-chain re-association (Section 5.1 evaluation order)."""


import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler.chain import (
    UnboundDimensionError,
    chain_cost,
    chain_factors,
    chain_split,
    left_to_right_cost,
    optimal_product,
    optimize_chains,
    optimize_trigger_chains,
)
from repro.cost.flops import matmul_flops
from repro.expr import MatMul, MatrixSymbol, NamedDim
from repro.runtime import evaluate


def brute_force_cost(dims):
    """Minimal chain cost by exhaustive enumeration (exponential)."""
    f = len(dims) - 1
    if f == 1:
        return 0

    def rec(i, j):
        if i == j:
            return 0
        return min(
            rec(i, k) + rec(k + 1, j)
            + matmul_flops(dims[i], dims[k + 1], dims[j + 1])
            for k in range(i, j)
        )

    return rec(0, f - 1)


class TestChainSplit:
    def test_textbook_example(self):
        # CLRS 15.2: dims (30,35,15,5,10,20,25) -> 15125 scalar mults.
        # matmul_flops counts 2nmp (multiply + add), so 2x.
        cost, _ = chain_split([30, 35, 15, 5, 10, 20, 25])
        assert cost == 2 * 15125

    def test_single_factor_costs_nothing(self):
        cost, _ = chain_split([7, 3])
        assert cost == 0

    def test_two_factors(self):
        cost, _ = chain_split([4, 5, 6])
        assert cost == matmul_flops(4, 5, 6)

    def test_empty_chain_rejected(self):
        with pytest.raises(ValueError):
            chain_split([5])

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.integers(min_value=1, max_value=30),
                    min_size=3, max_size=8))
    def test_dp_matches_brute_force(self, dims):
        cost, _ = chain_split(dims)
        assert cost == brute_force_cost(dims)

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.integers(min_value=1, max_value=30),
                    min_size=3, max_size=8))
    def test_dp_never_beaten_by_left_to_right(self, dims):
        cost, _ = chain_split(dims)
        assert cost <= left_to_right_cost(dims)


class TestOptimizeChains:
    def test_vector_chain_associates_right(self):
        # A (n x n), B (n x n), v (n x 1): optimal is A (B v).
        n = 50
        a = MatrixSymbol("A", n, n)
        b = MatrixSymbol("B", n, n)
        v = MatrixSymbol("v", n, 1)
        expr = MatMul([MatMul([a, b]), v])
        opt = optimize_chains(expr, {})
        # The right-associated tree multiplies B v first.
        assert isinstance(opt, MatMul)
        assert opt.children[0] == a
        assert chain_cost(opt, {}) < chain_cost(expr, {})

    def test_row_vector_chain_associates_left(self):
        n = 50
        u = MatrixSymbol("u", 1, n)
        a = MatrixSymbol("A", n, n)
        b = MatrixSymbol("B", n, n)
        expr = MatMul([u, MatMul([a, b])])
        opt = optimize_chains(expr, {})
        assert chain_cost(opt, {}) == 2 * (2 * n * n)

    def test_symbolic_dims_resolved_through_binding(self):
        ndim = NamedDim("n")
        a = MatrixSymbol("A", ndim, ndim)
        v = MatrixSymbol("v", ndim, 1)
        expr = MatMul([MatMul([a, a]), v])
        opt = optimize_chains(expr, {"n": 64})
        assert chain_cost(opt, {"n": 64}) < chain_cost(expr, {"n": 64})

    def test_unbound_dimension_raises(self):
        ndim = NamedDim("n")
        a = MatrixSymbol("A", ndim, ndim)
        expr = MatMul([a, a])
        with pytest.raises(UnboundDimensionError):
            optimize_chains(expr, {})

    def test_chain_inside_transpose_is_optimized(self):
        n = 40
        a = MatrixSymbol("A", n, n)
        b = MatrixSymbol("B", n, n)
        v = MatrixSymbol("v", n, 1)
        expr = MatMul([MatMul([a, b]), v]).T
        opt = optimize_chains(expr, {})
        assert chain_cost(opt, {}) < chain_cost(expr, {})

    def test_chain_inside_sum_terms(self):
        n = 40
        a = MatrixSymbol("A", n, n)
        v = MatrixSymbol("v", n, 1)
        w = MatrixSymbol("w", n, 1)
        expr = MatMul([MatMul([a, a]), v]) + w
        opt = optimize_chains(expr, {})
        assert chain_cost(opt, {}) < chain_cost(expr, {})

    def test_non_product_expression_unchanged(self):
        a = MatrixSymbol("A", 5, 5)
        assert optimize_chains(a, {}) is a
        assert optimize_chains(a + a.T, {}) == a + a.T

    def test_values_preserved(self, rng):
        n = 12
        a = MatrixSymbol("A", n, n)
        b = MatrixSymbol("B", n, n)
        v = MatrixSymbol("v", n, 1)
        expr = MatMul([MatMul([a, b]), v]) + MatMul([b, MatMul([a, v])])
        opt = optimize_chains(expr, {})
        env = {"A": rng.normal(size=(n, n)), "B": rng.normal(size=(n, n)),
               "v": rng.normal(size=(n, 1))}
        np.testing.assert_allclose(
            evaluate(opt, env), evaluate(expr, env), atol=1e-9
        )

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=9999),
        sizes=st.lists(st.integers(min_value=1, max_value=9),
                       min_size=3, max_size=6),
    )
    def test_property_reassociation_preserves_values(self, seed, sizes):
        rng = np.random.default_rng(seed)
        factors = []
        env = {}
        for i, (r, c) in enumerate(zip(sizes, sizes[1:])):
            name = f"M{i}"
            factors.append(MatrixSymbol(name, r, c))
            env[name] = rng.normal(size=(r, c))
        expr = MatMul(factors) if len(factors) > 1 else factors[0]
        opt = optimize_chains(expr, {})
        np.testing.assert_allclose(
            evaluate(opt, env), evaluate(expr, env), atol=1e-8
        )
        assert chain_cost(opt, {}) <= chain_cost(expr, {})


class TestChainFactors:
    def test_flattens_nested_products(self):
        a = MatrixSymbol("A", 4, 4)
        expr = MatMul([MatMul([a, a]), MatMul([a, a])])
        assert chain_factors(expr) == [a, a, a, a]

    def test_atomic_nodes_are_single_factors(self):
        a = MatrixSymbol("A", 4, 4)
        assert chain_factors(a) == [a]
        assert chain_factors(a + a) == [a + a]

    def test_transpose_is_atomic(self):
        a = MatrixSymbol("A", 4, 6)
        expr = MatMul([a, a.T])
        assert chain_factors(expr) == [a, a.T]


class TestOptimalProduct:
    def test_rebuilds_best_split(self):
        dims = [30, 35, 15, 5, 10, 20, 25]
        factors = [MatrixSymbol(f"M{i}", r, c)
                   for i, (r, c) in enumerate(zip(dims, dims[1:]))]
        opt = optimal_product(factors, {})
        assert chain_cost(opt, {}) == 2 * 15125

    def test_single_factor_passthrough(self):
        a = MatrixSymbol("A", 3, 3)
        assert optimal_product([a], {}) is a


class TestTriggerIntegration:
    def test_trigger_statements_reassociated(self):
        from repro.compiler import compile_program
        from repro.compiler.program import Program, Statement

        n = NamedDim("n")
        a = MatrixSymbol("A", n, n)
        b = MatrixSymbol("B", n, n)
        c = MatrixSymbol("C", n, n)
        program = Program(
            [a], [Statement(b, a @ a), Statement(c, b @ b)]
        )
        trigger = compile_program(program)["A"]
        optimized = optimize_trigger_chains(trigger, {"n": 128})
        # Same statement structure, each product optimally associated.
        assert [a_.target.name for a_ in optimized.assigns] == [
            a_.target.name for a_ in trigger.assigns
        ]
        for orig, opt in zip(trigger.assigns, optimized.assigns):
            assert chain_cost(opt.expr, {"n": 128}) <= chain_cost(
                orig.expr, {"n": 128}
            )
