"""Distributed sums-of-powers and general-form maintainers + comm ledger."""

import numpy as np
import pytest

from repro.distributed import (
    Cluster,
    ClusterConfig,
    CommLog,
    DistributedHybridGeneral,
    DistributedIncrementalPowerSums,
    DistributedReevalGeneral,
    DistributedReevalPowerSums,
    make_distributed_general,
)
from repro.iterative import Model


def cluster(grid=3):
    return Cluster(config=ClusterConfig.laptop_scale(grid))


def dense_sums(a, k):
    n = a.shape[0]
    acc = np.eye(n)
    power = np.eye(n)
    for _ in range(k - 1):
        power = power @ a
        acc = acc + power
    return acc


def dense_general(a, b, t0, k):
    t = t0
    for _ in range(k):
        t = a @ t
        if b is not None:
            t = t + b
    return t


def row_update(rng, n, scale=0.05):
    u = np.zeros((n, 1))
    u[rng.integers(n), 0] = 1.0
    return u, scale * rng.standard_normal((n, 1))


class TestCommLog:
    def test_classified_totals(self):
        log = CommLog()
        log.record("shuffle", "matmul", 100, messages=4)
        log.record("broadcast", "lowrank_update", 30, messages=9)
        log.record("gather", "mat_lowrank", 10)
        assert log.shuffled_bytes == 100
        assert log.broadcast_bytes == 30
        assert log.gathered_bytes == 10
        assert log.total_bytes == 140
        assert log.total_messages == 14

    def test_by_label(self):
        log = CommLog()
        log.record("broadcast", "x", 5)
        log.record("broadcast", "x", 7)
        log.record("shuffle", "y", 1)
        assert log.bytes_by_label() == {"x": 12, "y": 1}

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown traffic kind"):
            CommLog().record("carrier-pigeon", "x", 1)

    def test_negative_rejected(self):
        with pytest.raises(ValueError, match="negative"):
            CommLog().record("shuffle", "x", -1)

    def test_reset(self):
        log = CommLog()
        log.record("shuffle", "x", 5)
        log.reset()
        assert log.total_bytes == 0


class TestDistributedSums:
    @pytest.mark.parametrize("strategy", ["REEVAL", "INCR"])
    def test_initial_value(self, rng, strategy):
        a = 0.1 * rng.normal(size=(24, 24))
        cls = (DistributedReevalPowerSums if strategy == "REEVAL"
               else DistributedIncrementalPowerSums)
        view = cls(a, 8, Model.exponential(), cluster())
        np.testing.assert_allclose(view.result(), dense_sums(a, 8), atol=1e-9)

    @pytest.mark.parametrize("strategy", ["REEVAL", "INCR"])
    def test_refresh_tracks_dense(self, rng, strategy):
        a = 0.1 * rng.normal(size=(20, 20))
        cls = (DistributedReevalPowerSums if strategy == "REEVAL"
               else DistributedIncrementalPowerSums)
        view = cls(a, 8, Model.exponential(), cluster())
        dense = a.copy()
        for seed in range(3):
            u, v = row_update(np.random.default_rng(seed), 20)
            view.refresh(u, v)
            dense += u @ v.T
        np.testing.assert_allclose(view.result(), dense_sums(dense, 8),
                                   atol=1e-8)

    def test_strategies_agree(self, rng):
        a = 0.1 * rng.normal(size=(18, 18))
        reeval = DistributedReevalPowerSums(a, 4, Model.exponential(), cluster())
        incr = DistributedIncrementalPowerSums(a, 4, Model.exponential(), cluster())
        u, v = row_update(rng, 18)
        reeval.refresh(u, v)
        incr.refresh(u, v)
        np.testing.assert_allclose(reeval.result(), incr.result(), atol=1e-8)

    def test_linear_reeval_supported(self, rng):
        a = 0.1 * rng.normal(size=(12, 12))
        view = DistributedReevalPowerSums(a, 5, Model.linear(), cluster())
        np.testing.assert_allclose(view.result(), dense_sums(a, 5), atol=1e-9)

    def test_linear_incr_rejected(self, rng):
        with pytest.raises(ValueError, match="exponential"):
            DistributedIncrementalPowerSums(
                np.eye(8), 4, Model.linear(), cluster()
            )

    def test_incr_traffic_is_broadcast_not_shuffle(self, rng):
        a = 0.1 * rng.normal(size=(24, 24))
        clu = cluster()
        view = DistributedIncrementalPowerSums(a, 8, Model.exponential(), clu)
        clu.reset()
        u, v = row_update(rng, 24)
        view.refresh(u, v)
        assert clu.comm.shuffled_bytes == 0
        assert clu.comm.broadcast_bytes > 0

    def test_reeval_traffic_is_shuffle_dominated(self, rng):
        a = 0.1 * rng.normal(size=(24, 24))
        clu = cluster()
        view = DistributedReevalPowerSums(a, 8, Model.exponential(), clu)
        clu.reset()
        u, v = row_update(rng, 24)
        view.refresh(u, v)
        assert clu.comm.shuffled_bytes > clu.comm.broadcast_bytes

    def test_incr_simulated_time_beats_reeval(self, rng):
        a = 0.1 * rng.normal(size=(30, 30))
        clu_r, clu_i = cluster(), cluster()
        reeval = DistributedReevalPowerSums(a, 8, Model.exponential(), clu_r)
        incr = DistributedIncrementalPowerSums(a, 8, Model.exponential(), clu_i)
        clu_r.reset()
        clu_i.reset()
        u, v = row_update(rng, 30)
        reeval.refresh(u, v)
        incr.refresh(u, v)
        assert clu_i.elapsed < clu_r.elapsed


class TestDistributedGeneral:
    @pytest.mark.parametrize("strategy", ["REEVAL", "INCR", "HYBRID"])
    def test_refresh_tracks_dense_b_zero(self, rng, strategy):
        n, p, k = 20, 3, 6
        a = 0.1 * rng.normal(size=(n, n))
        t0 = rng.normal(size=(n, p))
        view = make_distributed_general(strategy, a, None, t0, k, cluster())
        dense = a.copy()
        for seed in range(3):
            u, v = row_update(np.random.default_rng(seed + 50), n)
            view.refresh(u, v)
            dense += u @ v.T
        np.testing.assert_allclose(
            view.result(), dense_general(dense, None, t0, k), atol=1e-8
        )

    @pytest.mark.parametrize("strategy", ["REEVAL", "INCR", "HYBRID"])
    def test_refresh_tracks_dense_with_b(self, rng, strategy):
        n, p, k = 16, 2, 5
        a = 0.1 * rng.normal(size=(n, n))
        b = rng.normal(size=(n, p))
        t0 = rng.normal(size=(n, p))
        view = make_distributed_general(strategy, a, b, t0, k, cluster())
        u, v = row_update(rng, n)
        view.refresh(u, v)
        np.testing.assert_allclose(
            view.result(),
            dense_general(a + u @ v.T, b, t0, k),
            atol=1e-8,
        )

    def test_strategies_agree(self, rng):
        n, p, k = 14, 1, 8
        a = 0.1 * rng.normal(size=(n, n))
        t0 = rng.normal(size=(n, p))
        u, v = row_update(rng, n)
        results = {}
        for strategy in ("REEVAL", "INCR", "HYBRID"):
            view = make_distributed_general(strategy, a, None, t0, k, cluster())
            view.refresh(u, v)
            results[strategy] = view.result()
        np.testing.assert_allclose(results["REEVAL"], results["INCR"], atol=1e-8)
        np.testing.assert_allclose(results["REEVAL"], results["HYBRID"], atol=1e-8)

    def test_unknown_strategy_rejected(self, rng):
        with pytest.raises(ValueError, match="unknown strategy"):
            make_distributed_general(
                "MAGIC", np.eye(4), None, np.ones((4, 1)), 2, cluster()
            )

    def test_shape_validation(self):
        with pytest.raises(ValueError, match="inconsistent"):
            DistributedReevalGeneral(
                np.eye(4), None, np.ones((5, 1)), 2, cluster()
            )
        with pytest.raises(ValueError, match="must match"):
            DistributedReevalGeneral(
                np.eye(4), np.ones((4, 2)), np.ones((4, 1)), 2, cluster()
            )

    def test_vector_t0_reshaped(self, rng):
        a = 0.1 * rng.normal(size=(8, 8))
        view = DistributedHybridGeneral(a, None, np.ones(8), 4, cluster())
        assert view.result().shape == (8, 1)

    def test_no_shuffle_traffic_in_any_strategy(self, rng):
        # With thin iterates everything is broadcast/gather: even REEVAL
        # never runs a SUMMA shuffle in this layout.
        n, p, k = 16, 2, 4
        a = 0.1 * rng.normal(size=(n, n))
        t0 = rng.normal(size=(n, p))
        for strategy in ("REEVAL", "INCR", "HYBRID"):
            clu = cluster()
            view = make_distributed_general(strategy, a, None, t0, k, clu)
            clu.reset()
            u, v = row_update(rng, n)
            view.refresh(u, v)
            assert clu.comm.shuffled_bytes == 0, strategy
            assert clu.comm.broadcast_bytes > 0, strategy

    def test_hybrid_cheapest_at_p1(self, rng):
        # Fig. 3g's p = 1 finding on the simulated clock.
        n, k = 40, 8
        a = 0.1 * rng.normal(size=(n, n))
        t0 = rng.normal(size=(n, 1))
        elapsed = {}
        for strategy in ("REEVAL", "INCR", "HYBRID"):
            clu = cluster()
            view = make_distributed_general(strategy, a, None, t0, k, clu)
            clu.reset()
            for seed in range(3):
                u, v = row_update(np.random.default_rng(seed), n)
                view.refresh(u, v)
            elapsed[strategy] = clu.elapsed
        assert elapsed["HYBRID"] <= elapsed["INCR"]
