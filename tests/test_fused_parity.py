"""Fused in-place trigger path vs the interpreter (the parity oracle).

The fused specializer (:mod:`repro.compiler.codegen.fused`) re-lowers
every trigger into preallocated-buffer, ``out=``-kernel form; these
properties pin it to the interpreter across generated programs:
bit-for-bit on the dense backend (same BLAS kernels, same association
order, only the destination buffers differ), to tolerance on sparse
(CSR merges may reorder accumulation).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from exprgen import ExprPool, shaped_expr
from repro.compiler import Program, Statement, compile_program
from repro.compiler.codegen.fused import (
    FusedUnsupported,
    compile_fused_trigger,
    generate_fused_trigger,
)
from repro.expr import MatrixSymbol, inverse, matmul, transpose
from repro.runtime import FactoredUpdate
from repro.runtime.session import IVMSession

SETTINGS = dict(max_examples=40, deadline=None)


def _sessions(program, inputs, dims=None, backend=None, rank=1):
    """(interpret, fused-codegen) session pair over copied inputs."""
    make = lambda **kw: IVMSession(  # noqa: E731
        program, {k: np.array(v) for k, v in inputs.items()},
        dims=dims, backend=backend, rank=rank, **kw,
    )
    return make(mode="interpret"), make(mode="codegen")


def _drive_both(interp, fused, updates):
    for update in updates:
        interp.apply_update(update)
        fused.apply_update(update)


class TestGeneratedProgramParity:
    @settings(**SETTINGS)
    @given(data=st.data(), seed=st.integers(0, 2**32 - 1))
    def test_dense_bit_for_bit(self, data, seed):
        pool = ExprPool()
        n = data.draw(st.sampled_from([2, 3, 4]))
        depth = data.draw(st.integers(1, 3))
        expr = data.draw(shaped_expr(pool, n, n, depth))
        target = MatrixSymbol("V_out", n, n)
        inputs_syms = sorted(pool.symbols.values(), key=lambda s: s.name)
        if not inputs_syms:  # expr was pure Identity
            return
        program = Program(inputs_syms, [Statement(target, expr)])
        env = pool.env(seed)

        upd_sym = inputs_syms[0]
        rng = np.random.default_rng(seed + 1)
        updates = [
            FactoredUpdate(
                upd_sym.name,
                rng.normal(size=(upd_sym.shape.rows, 1)),
                rng.normal(size=(upd_sym.shape.cols, 1)),
            )
            for _ in range(4)
        ]

        interp, fused = _sessions(program, env)
        assert fused._fused, "fused specialization did not compile"
        _drive_both(interp, fused, updates)
        for name in list(env) + ["V_out"]:
            assert np.array_equal(interp[name], fused[name]), name

    @settings(**SETTINGS)
    @given(data=st.data(), seed=st.integers(0, 2**32 - 1))
    def test_sparse_backend_to_tolerance(self, data, seed):
        pytest.importorskip("scipy")
        pool = ExprPool()
        n = data.draw(st.sampled_from([2, 3, 4]))
        depth = data.draw(st.integers(1, 2))
        expr = data.draw(shaped_expr(pool, n, n, depth))
        target = MatrixSymbol("V_out", n, n)
        inputs_syms = sorted(pool.symbols.values(), key=lambda s: s.name)
        if not inputs_syms:
            return
        program = Program(inputs_syms, [Statement(target, expr)])
        env = pool.env(seed)
        upd_sym = inputs_syms[0]
        rng = np.random.default_rng(seed + 1)
        updates = [
            FactoredUpdate(
                upd_sym.name,
                rng.normal(size=(upd_sym.shape.rows, 1)),
                rng.normal(size=(upd_sym.shape.cols, 1)),
            )
            for _ in range(3)
        ]
        interp, fused = _sessions(program, env, backend="sparse")
        _drive_both(interp, fused, updates)
        for name in list(env) + ["V_out"]:
            np.testing.assert_allclose(
                interp[name], fused[name], rtol=1e-10, atol=1e-12,
            )


class TestChainParitySparseState:
    """Large CSR-backed chain: the sparse fallback legs stay correct."""

    def test_sparse_chain(self, rng):
        pytest.importorskip("scipy")
        n = 100
        a_sym = MatrixSymbol("A", n, n)
        b_sym = MatrixSymbol("B", n, n)
        program = Program([a_sym], [Statement(b_sym, matmul(a_sym, a_sym))])
        a0 = (rng.random((n, n)) < 0.02) * rng.normal(size=(n, n))
        updates = []
        for i in range(20):
            u = np.zeros((n, 1))
            u[i % n, 0] = 1.0
            v = 0.02 * rng.normal(size=(n, 1)) * (rng.random((n, 1)) < 0.05)
            updates.append(FactoredUpdate("A", u, v))
        interp, fused = _sessions(program, {"A": a0}, backend="sparse")
        _drive_both(interp, fused, updates)
        np.testing.assert_allclose(interp["B"], fused["B"], rtol=1e-9,
                                   atol=1e-12)


class TestFallbacks:
    def _a4(self, n=8):
        a_sym = MatrixSymbol("A", n, n)
        b_sym = MatrixSymbol("B", n, n)
        c_sym = MatrixSymbol("C", n, n)
        return Program(
            [a_sym],
            [Statement(b_sym, matmul(a_sym, a_sym)),
             Statement(c_sym, matmul(b_sym, b_sym))],
        )

    def test_off_rank_updates_take_generic_path(self, rng):
        n = 8
        program = self._a4(n)
        a0 = rng.normal(size=(n, n))
        interp, fused = _sessions(program, {"A": a0}, rank=1)
        assert fused._fused["A"].__rank__ == 1
        wide = FactoredUpdate("A", rng.normal(size=(n, 2)),
                              rng.normal(size=(n, 2)))
        _drive_both(interp, fused, [wide])
        for name in ("A", "B", "C"):
            assert np.array_equal(interp[name], fused[name]), name

    def test_inverse_trigger_falls_back_cleanly(self, rng):
        """A trigger the specializer cannot lower keeps the generic path."""
        from repro.compiler.trigger import Assign, Trigger, Update

        n = 4
        a_sym = MatrixSymbol("A", n, n)
        t_sym = MatrixSymbol("T0", n, n)
        u_sym = MatrixSymbol("u_A", n, 1)
        v_sym = MatrixSymbol("v_A", n, 1)
        trigger = Trigger(
            "A",
            (u_sym, v_sym),
            [Assign(t_sym, inverse(a_sym))],
            [Update(a_sym, matmul(u_sym, transpose(v_sym)))],
        )
        with pytest.raises(FusedUnsupported):
            compile_fused_trigger(trigger, {})

    def test_unbound_dimension_raises_fused_unsupported(self):
        from repro.expr import NamedDim

        n = NamedDim("n")
        program = Program(
            [MatrixSymbol("A", n, n)],
            [Statement(MatrixSymbol("B", n, n),
                       matmul(MatrixSymbol("A", n, n),
                              MatrixSymbol("A", n, n)))],
        )
        trigger = compile_program(program)["A"]
        with pytest.raises(FusedUnsupported):
            generate_fused_trigger(trigger, {})  # no binding for n

    def test_inverse_program_session_still_maintains(self, rng):
        """End to end: a program whose trigger may not fuse stays correct."""
        n = 6
        a_sym = MatrixSymbol("A", n, n)
        w_sym = MatrixSymbol("W", n, n)
        program = Program([a_sym], [Statement(w_sym, inverse(a_sym))])
        a0 = rng.normal(size=(n, n)) + 10.0 * np.eye(n)
        interp, fused = _sessions(program, {"A": a0})
        updates = [
            FactoredUpdate("A", 0.01 * rng.normal(size=(n, 1)),
                           rng.normal(size=(n, 1)))
            for _ in range(3)
        ]
        _drive_both(interp, fused, updates)
        np.testing.assert_allclose(interp["W"], fused["W"], rtol=1e-8)


class TestGeneratedSource:
    def test_fused_source_shape(self):
        program = TestFallbacks()._a4(8)
        trigger = compile_program(program)["A"]
        source, buffers, constants = generate_fused_trigger(trigger, {})
        assert source.startswith("def on_update_A(views, u_A, v_A, dims=None):")
        # In-place application, no copy-on-write:
        assert "views['A'] = _outer(A, u_A, v_A)" in source
        assert ".copy()" not in source
        # Hoisted transposes bound once at function top:
        assert "_T_A = A.T" in source
        # Every temporary has a preplanned buffer:
        assert buffers, "no workspace buffers planned"
        assert all(rows > 0 and cols > 0 for _, rows, cols in buffers)

    def test_buffers_shared_across_triggers_by_shape(self, rng):
        from repro.runtime.workspace import Workspace

        n = 8
        program = TestFallbacks()._a4(n)
        triggers = compile_program(program)
        ws = Workspace()
        fn = compile_fused_trigger(triggers["A"], {}, workspace=ws)
        buffers_after_first = ws.buffer_count()
        fn2 = compile_fused_trigger(triggers["A"], {}, workspace=ws)
        assert ws.buffer_count() == buffers_after_first, (
            "identical trigger re-compile should reuse the arena's buffers"
        )
        assert fn.__workspace__ is fn2.__workspace__
