"""Numeric executor: per-node evaluation, FLOP counting, error paths."""

import numpy as np
import pytest

from repro.cost import Counter
from repro.expr import (
    Identity,
    MatrixSymbol,
    NamedDim,
    ZeroMatrix,
    add,
    hstack,
    inverse,
    matmul,
    scalar_mul,
    sub,
    transpose,
    vstack,
)
from repro.runtime import EvaluationError, evaluate, resolve_dim
from repro.expr.shapes import dim_add

n = NamedDim("n")
A = MatrixSymbol("A", n, n)
B = MatrixSymbol("B", n, n)
u = MatrixSymbol("u", n, 1)
v = MatrixSymbol("v", n, 1)


@pytest.fixture
def env(rng):
    return {
        "A": rng.normal(size=(6, 6)),
        "B": rng.normal(size=(6, 6)),
        "u": rng.normal(size=(6, 1)),
        "v": rng.normal(size=(6, 1)),
    }


class TestEvaluation:
    def test_symbol(self, env):
        np.testing.assert_array_equal(evaluate(A, env), env["A"])

    def test_add_sub(self, env):
        np.testing.assert_allclose(
            evaluate(sub(add(A, B), B), env), env["A"], atol=1e-12
        )

    def test_matmul_chain_association(self, env):
        expr = matmul(A, B, A)
        expected = env["A"] @ env["B"] @ env["A"]
        np.testing.assert_allclose(evaluate(expr, env), expected)

    def test_scalar_mul(self, env):
        np.testing.assert_allclose(
            evaluate(scalar_mul(2.5, A), env), 2.5 * env["A"]
        )

    def test_transpose(self, env):
        np.testing.assert_array_equal(evaluate(transpose(A), env), env["A"].T)

    def test_inverse(self, env):
        well = env["A"] @ env["A"].T + 10 * np.eye(6)
        got = evaluate(inverse(A), {"A": well})
        np.testing.assert_allclose(got @ well, np.eye(6), atol=1e-9)

    def test_identity_needs_dims(self):
        with pytest.raises(EvaluationError):
            evaluate(Identity(n), {})

    def test_identity_with_dims(self):
        np.testing.assert_array_equal(
            evaluate(Identity(n), {}, dims={"n": 4}), np.eye(4)
        )

    def test_zero(self):
        got = evaluate(ZeroMatrix(n, 2), {}, dims={"n": 3})
        np.testing.assert_array_equal(got, np.zeros((3, 2)))

    def test_hstack_vstack(self, env):
        got = evaluate(hstack([u, v]), env)
        np.testing.assert_array_equal(got, np.hstack([env["u"], env["v"]]))
        got = evaluate(vstack([transpose(u), transpose(v)]), env)
        np.testing.assert_array_equal(
            got, np.vstack([env["u"].T, env["v"].T])
        )

    def test_dim_sum_resolution(self):
        total = resolve_dim(dim_add(n, 2), {"n": 5})
        assert total == 7

    def test_env_arrays_never_mutated(self, env):
        snapshot = env["A"].copy()
        evaluate(add(A, B), env)
        np.testing.assert_array_equal(env["A"], snapshot)


class TestErrors:
    def test_unbound_matrix(self):
        with pytest.raises(EvaluationError, match="unbound matrix"):
            evaluate(A, {})

    def test_unbound_dimension(self):
        with pytest.raises(EvaluationError, match="unbound dimension"):
            evaluate(Identity(n), {"A": np.eye(3)})

    def test_non_2d_input(self):
        with pytest.raises(EvaluationError, match="2-D"):
            evaluate(A, {"A": np.ones(3)})

    def test_runtime_shape_mismatch(self, env):
        bad = dict(env)
        bad["B"] = np.ones((4, 4))
        with pytest.raises(EvaluationError):
            evaluate(matmul(A, B), bad)

    def test_singular_inverse(self):
        with pytest.raises(EvaluationError, match="singular"):
            evaluate(inverse(A), {"A": np.zeros((3, 3))})


class TestCounting:
    def test_matmul_flops_exact(self, env):
        counter = Counter()
        evaluate(matmul(A, B), env, counter=counter)
        assert counter.flops("matmul") == 2 * 6 * 6 * 6

    def test_matvec_cheaper_than_matmat(self, env):
        matmat, matvec = Counter(), Counter()
        evaluate(matmul(A, B), env, counter=matmat)
        evaluate(matmul(A, u), env, counter=matvec)
        assert matvec.total_flops * 5 < matmat.total_flops

    def test_association_order_changes_cost(self, env):
        # (A u) then (v' ...) vs forcing the matrix-matrix product first.
        from repro.expr import MatMul

        cheap = matmul(transpose(v), matmul(A, u))
        costly = MatMul([MatMul([transpose(v), A]), u])
        c1, c2 = Counter(), Counter()
        evaluate(cheap, env, counter=c1)
        evaluate(costly, env, counter=c2)
        np.testing.assert_allclose(
            evaluate(cheap, env), evaluate(costly, env), atol=1e-10
        )
        assert c1.flops("matmul") == c2.flops("matmul")  # both are n^2-ish here

    def test_add_counts_elements(self, env):
        counter = Counter()
        evaluate(add(A, B), env, counter=counter)
        assert counter.flops("add") == 36

    def test_inverse_counts_cubic(self, env):
        counter = Counter()
        well = env["A"] @ env["A"].T + 10 * np.eye(6)
        evaluate(inverse(A), {"A": well}, counter=counter)
        assert counter.flops("inverse") == 2 * 6**3

    def test_counter_merge_and_reset(self):
        a, b = Counter(), Counter()
        a.record("matmul", 10)
        b.record("matmul", 5)
        b.record("add", 2)
        a.merge(b)
        assert a.flops("matmul") == 15 and a.flops("add") == 2
        assert a.total_flops == 17
        a.reset()
        assert a.total_flops == 0

    def test_null_counter_ignores(self):
        from repro.cost import NULL_COUNTER

        NULL_COUNTER.record("matmul", 10**9)
        assert NULL_COUNTER.total_flops == 0


class TestNativeLeafPassThrough:
    """MatrixSymbol leaves native to the backend must not be copied.

    Regression: the evaluator used to round-trip float64 ndarrays
    through ``be.asarray`` whenever the backend was not dense — a full
    scan (and, under the sparse representation policy, a possible CSR
    conversion) per leaf per evaluation.
    """

    def test_dense_ndarray_returned_as_is(self, rng):
        arr = rng.normal(size=(6, 6))
        assert evaluate(A, {"A": arr}) is arr

    def test_sparse_backend_skips_renormalizing_ndarray(self, rng, monkeypatch):
        scipy = pytest.importorskip("scipy")  # noqa: F841
        from repro.backends import SparseBackend

        be = SparseBackend()
        arr = rng.normal(size=(80, 80))  # dense: above sparsify threshold
        calls = []
        original = SparseBackend.asarray

        def counting_asarray(self, value, copy=False):
            calls.append(value)
            return original(self, value, copy)

        monkeypatch.setattr(SparseBackend, "asarray", counting_asarray)
        result = evaluate(matmul(A, A), {"A": arr}, backend=be)
        assert calls == [], "native float64 ndarray was re-normalized"
        np.testing.assert_allclose(result, arr @ arr)

    def test_sparse_backend_keeps_csr_leaves(self, rng):
        sp = pytest.importorskip("scipy.sparse")
        csr = sp.random_array((80, 80), density=0.05, format="csr",
                              random_state=np.random.default_rng(0))
        csr = sp.csr_array(csr, dtype=np.float64)
        assert evaluate(A, {"A": csr}, backend="sparse") is csr

    def test_non_float64_ndarray_still_normalized(self):
        arr = np.arange(36, dtype=np.int64).reshape(6, 6)
        result = evaluate(A, {"A": arr})
        assert result.dtype == np.float64
        np.testing.assert_allclose(result, arr)
