"""k-step Markov chain maintenance (Section 5.2 application)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analytics import (
    KStepDistribution,
    KStepTransitionMatrix,
    check_column_stochastic,
    random_walk_matrix,
    reference_k_step,
)
from repro.iterative import Model


def random_stochastic(rng, n):
    p = rng.uniform(0.05, 1.0, size=(n, n))
    return p / p.sum(axis=0, keepdims=True)


def random_distribution(rng, n):
    pi = rng.uniform(0.05, 1.0, size=n)
    return pi / pi.sum()


class TestValidation:
    def test_accepts_stochastic_matrix(self, rng):
        check_column_stochastic(random_stochastic(rng, 6))

    def test_rejects_non_square(self):
        with pytest.raises(ValueError, match="square"):
            check_column_stochastic(np.ones((2, 3)) / 2.0)

    def test_rejects_negative_entries(self):
        p = np.array([[1.2, 0.0], [-0.2, 1.0]])
        with pytest.raises(ValueError, match="non-negative"):
            check_column_stochastic(p)

    def test_rejects_bad_column_sum(self):
        p = np.array([[0.5, 0.5], [0.4, 0.5]])
        with pytest.raises(ValueError, match="sums to"):
            check_column_stochastic(p)


class TestRandomWalkMatrix:
    def test_columns_sum_to_one(self, rng):
        adjacency = (rng.uniform(size=(8, 8)) < 0.3).astype(float)
        p = random_walk_matrix(adjacency)
        np.testing.assert_allclose(p.sum(axis=0), np.ones(8), atol=1e-12)

    def test_dangling_state_self_loops(self):
        adjacency = np.zeros((3, 3))
        adjacency[1, 0] = 1.0  # only 0 -> 1
        p = random_walk_matrix(adjacency)
        assert p[2, 2] == 1.0
        assert p[1, 1] == 1.0
        assert p[1, 0] == 1.0


class TestKStepTransitionMatrix:
    def test_initial_result_is_matrix_power(self, rng):
        p = random_stochastic(rng, 7)
        view = KStepTransitionMatrix(p, k=8)
        np.testing.assert_allclose(view.result(), reference_k_step(p, 8),
                                   atol=1e-10)

    def test_result_stays_stochastic(self, rng):
        p = random_stochastic(rng, 6)
        view = KStepTransitionMatrix(p, k=16)
        np.testing.assert_allclose(view.result().sum(axis=0), np.ones(6),
                                   atol=1e-9)

    def test_perturb_column_tracks_reference(self, rng):
        p = random_stochastic(rng, 6)
        view = KStepTransitionMatrix(p, k=8)
        for j in (0, 3, 5):
            new_col = random_distribution(rng, 6)
            view.perturb_column(j, new_col)
        np.testing.assert_allclose(
            view.result(), reference_k_step(view.p, 8), atol=1e-8
        )

    def test_incr_matches_reeval(self, rng):
        p = random_stochastic(rng, 5)
        incr = KStepTransitionMatrix(p, k=8, strategy="INCR")
        reeval = KStepTransitionMatrix(p, k=8, strategy="REEVAL")
        new_col = random_distribution(rng, 5)
        incr.perturb_column(2, new_col)
        reeval.perturb_column(2, new_col)
        np.testing.assert_allclose(incr.result(), reeval.result(), atol=1e-8)

    def test_rejects_non_distribution_column(self, rng):
        view = KStepTransitionMatrix(random_stochastic(rng, 4), k=4)
        with pytest.raises(ValueError, match="sum to 1"):
            view.perturb_column(0, np.array([0.5, 0.5, 0.5, 0.5]))
        with pytest.raises(ValueError, match="non-negative"):
            view.perturb_column(0, np.array([1.5, -0.5, 0.0, 0.0]))

    def test_step_distribution_and_hitting(self, rng):
        p = random_stochastic(rng, 5)
        pi0 = random_distribution(rng, 5)
        view = KStepTransitionMatrix(p, k=8)
        expected = reference_k_step(p, 8) @ pi0.reshape(-1, 1)
        np.testing.assert_allclose(view.step_distribution(pi0), expected,
                                   atol=1e-10)
        assert view.hitting_probability(2, pi0) == pytest.approx(
            float(expected[2, 0])
        )

    def test_linear_model_agrees_with_exponential(self, rng):
        p = random_stochastic(rng, 5)
        lin = KStepTransitionMatrix(p, k=8, model=Model.linear())
        exp = KStepTransitionMatrix(p, k=8, model=Model.exponential())
        new_col = random_distribution(rng, 5)
        lin.perturb_column(1, new_col)
        exp.perturb_column(1, new_col)
        np.testing.assert_allclose(lin.result(), exp.result(), atol=1e-8)


class TestKStepDistribution:
    def test_initial_distribution(self, rng):
        p = random_stochastic(rng, 6)
        pi0 = random_distribution(rng, 6)
        view = KStepDistribution(p, pi0, k=12)
        expected = reference_k_step(p, 12) @ pi0.reshape(-1, 1)
        np.testing.assert_allclose(view.result(), expected, atol=1e-10)

    def test_perturbation_tracks_reference(self, rng):
        p = random_stochastic(rng, 6)
        pi0 = random_distribution(rng, 6)
        view = KStepDistribution(p, pi0, k=10)
        for j in (1, 4):
            view.perturb_column(j, random_distribution(rng, 6))
        expected = reference_k_step(view.p, 10) @ pi0.reshape(-1, 1)
        np.testing.assert_allclose(view.result(), expected, atol=1e-8)

    def test_result_is_distribution_after_updates(self, rng):
        p = random_stochastic(rng, 7)
        pi0 = random_distribution(rng, 7)
        view = KStepDistribution(p, pi0, k=8)
        view.perturb_column(0, random_distribution(rng, 7))
        result = view.result()
        assert float(result.sum()) == pytest.approx(1.0, abs=1e-8)
        assert np.all(result >= -1e-9)

    def test_all_strategies_agree(self, rng):
        p = random_stochastic(rng, 5)
        pi0 = random_distribution(rng, 5)
        results = {}
        for strategy in ("REEVAL", "INCR", "HYBRID"):
            view = KStepDistribution(p, pi0, k=8, strategy=strategy)
            view.perturb_column(3, random_distribution(
                np.random.default_rng(7), 5))
            results[strategy] = view.result()
        np.testing.assert_allclose(results["REEVAL"], results["INCR"],
                                   atol=1e-8)
        np.testing.assert_allclose(results["REEVAL"], results["HYBRID"],
                                   atol=1e-8)

    def test_rejects_bad_start_distribution(self, rng):
        p = random_stochastic(rng, 4)
        with pytest.raises(ValueError, match="sum to 1"):
            KStepDistribution(p, np.ones(4), k=4)

    def test_total_variation(self, rng):
        p = random_stochastic(rng, 5)
        pi0 = random_distribution(rng, 5)
        view = KStepDistribution(p, pi0, k=8)
        assert view.total_variation_from(view.result()) == pytest.approx(0.0)
        other = random_distribution(rng, 5)
        tv = view.total_variation_from(other)
        assert 0.0 <= tv <= 1.0 + 1e-9

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=9999),
           n=st.integers(min_value=2, max_value=8))
    def test_property_update_stream_tracks_reference(self, seed, n):
        rng = np.random.default_rng(seed)
        p = random_stochastic(rng, n)
        pi0 = random_distribution(rng, n)
        view = KStepDistribution(p, pi0, k=6)
        for _ in range(3):
            j = int(rng.integers(n))
            view.perturb_column(j, random_distribution(rng, n))
        expected = reference_k_step(view.p, 6) @ pi0.reshape(-1, 1)
        np.testing.assert_allclose(view.result(), expected, atol=1e-7)
