"""Truncated matrix exponential maintenance (Section 5.2 application)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
scipy_expm = pytest.importorskip("scipy.linalg").expm

from repro.analytics import (
    IncrementalExpm,
    WeightedPowerSum,
    neumann_coefficients,
    reference_weighted_powers,
    taylor_coefficients,
)


def contraction(rng, n, norm=0.5):
    a = rng.normal(size=(n, n))
    return norm * a / np.linalg.norm(a, ord=2)


class TestCoefficients:
    def test_taylor_values(self):
        assert taylor_coefficients(4) == [1.0, 1.0, 0.5, 1 / 6, 1 / 24]

    def test_taylor_time_scaling(self):
        coeffs = taylor_coefficients(3, t=2.0)
        assert coeffs == [1.0, 2.0, 2.0, 8 / 6]

    def test_neumann_values(self):
        assert neumann_coefficients(3) == [1.0, 1.0, 1.0, 1.0]


class TestWeightedPowerSum:
    def test_initial_value(self, rng):
        a = contraction(rng, 6)
        coeffs = [1.0, 2.0, 3.0]
        view = WeightedPowerSum(a, coeffs)
        np.testing.assert_allclose(
            view.result(), reference_weighted_powers(a, coeffs), atol=1e-10
        )

    def test_update_stream_tracks_reference(self, rng):
        a = contraction(rng, 6)
        coeffs = taylor_coefficients(8)
        view = WeightedPowerSum(a, coeffs)
        for _ in range(5):
            u = 0.05 * rng.normal(size=(6, 1))
            v = 0.05 * rng.normal(size=(6, 1))
            view.refresh(u, v)
        assert view.revalidate() < 1e-8

    def test_zero_coefficients_skip_terms(self, rng):
        a = contraction(rng, 5)
        view = WeightedPowerSum(a, [0.0, 0.0, 1.0])  # just A^2
        u, v = rng.normal(size=(5, 1)), rng.normal(size=(5, 1))
        view.refresh(0.1 * u, 0.1 * v)
        np.testing.assert_allclose(
            view.result(), np.linalg.matrix_power(view.a, 2), atol=1e-9
        )

    def test_neumann_series_approximates_inverse(self, rng):
        a = contraction(rng, 5, norm=0.3)
        view = WeightedPowerSum(a, neumann_coefficients(40))
        expected = np.linalg.inv(np.eye(5) - a)
        np.testing.assert_allclose(view.result(), expected, atol=1e-8)

    def test_requires_two_coefficients(self, rng):
        with pytest.raises(ValueError, match="at least"):
            WeightedPowerSum(contraction(rng, 4), [1.0])

    def test_memory_accounts_views(self, rng):
        view = WeightedPowerSum(contraction(rng, 8), taylor_coefficients(4))
        # k power views + the combined view, all 8x8 float64.
        assert view.memory_bytes() >= 5 * 8 * 8 * 8


class TestIncrementalExpm:
    def test_matches_scipy_initially(self, rng):
        a = contraction(rng, 6)
        view = IncrementalExpm(a, order=16)
        np.testing.assert_allclose(view.result(), scipy_expm(a), atol=1e-10)

    def test_matches_scipy_after_updates(self, rng):
        a = contraction(rng, 6)
        view = IncrementalExpm(a, order=16)
        for _ in range(4):
            u = 0.05 * rng.normal(size=(6, 1))
            v = 0.05 * rng.normal(size=(6, 1))
            view.refresh(u, v)
        np.testing.assert_allclose(view.result(), scipy_expm(view.a),
                                   atol=1e-8)

    def test_time_parameter(self, rng):
        a = contraction(rng, 5)
        view = IncrementalExpm(a, order=16, t=0.5)
        np.testing.assert_allclose(view.result(), scipy_expm(0.5 * a),
                                   atol=1e-10)

    def test_ode_propagation(self, rng):
        a = contraction(rng, 5)
        x0 = rng.normal(size=5)
        view = IncrementalExpm(a, order=16)
        expected = scipy_expm(a) @ x0.reshape(-1, 1)
        np.testing.assert_allclose(view.propagate(x0), expected, atol=1e-9)

    def test_expm_of_zero_is_identity(self):
        view = IncrementalExpm(np.zeros((4, 4)), order=6)
        np.testing.assert_allclose(view.result(), np.eye(4), atol=1e-12)

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=9999),
           n=st.integers(min_value=2, max_value=7))
    def test_property_tracks_scipy_under_updates(self, seed, n):
        rng = np.random.default_rng(seed)
        a = contraction(rng, n, norm=0.4)
        view = IncrementalExpm(a, order=14)
        for _ in range(3):
            u = 0.05 * rng.normal(size=(n, 1))
            v = 0.05 * rng.normal(size=(n, 1))
            view.refresh(u, v)
        np.testing.assert_allclose(view.result(), scipy_expm(view.a),
                                   atol=1e-6)
