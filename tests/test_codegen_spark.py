"""Spark (Scala) code generation backend."""

import pytest

from repro.compiler import Program, Statement, compile_program
from repro.compiler.codegen import generate_spark_trigger
from repro.compiler.codegen.spark_gen import emit_spark
from repro.expr import (
    Identity,
    MatrixSymbol,
    NamedDim,
    ZeroMatrix,
    hstack,
    matmul,
    scalar_mul,
    sub,
    transpose,
    vstack,
)

n = NamedDim("n")
A = MatrixSymbol("A", n, n)
B = MatrixSymbol("B", n, n)
C = MatrixSymbol("C", n, n)
u = MatrixSymbol("u", n, 1)
v = MatrixSymbol("v", n, 1)


def a4_program():
    return Program([A], [Statement(B, matmul(A, A)), Statement(C, matmul(B, B))])


class TestEmitSpark:
    def test_symbol(self):
        assert emit_spark(A) == "A"

    def test_product_chains_multiply(self):
        assert emit_spark(matmul(A, B)) == "A.multiply(B)"

    def test_association_survives(self):
        left = matmul(matmul(A, B), C)
        right = matmul(A, matmul(B, C))
        assert emit_spark(left) == "A.multiply(B).multiply(C)"
        assert emit_spark(right) == "A.multiply(B.multiply(C))"
        assert emit_spark(left) != emit_spark(right)

    def test_addition_and_subtraction(self):
        assert emit_spark(A + B) == "A.add(B)"
        assert emit_spark(sub(A, B)) == "A.subtract(B)"

    def test_scalar_multiplication(self):
        assert emit_spark(scalar_mul(2.5, A)) == "A.scale(2.5)"

    def test_transpose_and_inverse(self):
        assert emit_spark(transpose(A)) == "A.transpose"
        assert emit_spark(A.inv) == "A.inverse"

    def test_identity_and_zeros(self):
        assert emit_spark(Identity(n)) == "BlockMatrix.eye(n)"
        assert emit_spark(ZeroMatrix(n, 3)) == "BlockMatrix.zeros(n, 3)"

    def test_stacking(self):
        assert emit_spark(hstack([u, v])) == "BlockMatrix.hstack(u, v)"
        assert (emit_spark(vstack([transpose(u), transpose(v)]))
                == "BlockMatrix.vstack(u.transpose, v.transpose)")

    def test_nested_delta_shape(self):
        # u (v' A): the matrix-vector order of Section 4.2.
        expr = matmul(u, matmul(transpose(v), A))
        assert emit_spark(expr) == "u.multiply(v.transpose.multiply(A))"


class TestGenerateSparkTrigger:
    @pytest.fixture
    def trigger(self):
        return compile_program(a4_program())["A"]

    def test_method_signature(self, trigger):
        source = generate_spark_trigger(trigger)
        assert source.startswith("def onUpdateA(")
        assert "u_A: LocalMatrix" in source
        assert "v_A: LocalMatrix" in source

    def test_parameters_broadcast(self, trigger):
        source = generate_spark_trigger(trigger)
        assert "sc.broadcast(u_A)" in source
        assert "sc.broadcast(v_A)" in source

    def test_delta_factors_assigned_and_broadcast(self, trigger):
        source = generate_spark_trigger(trigger)
        # Algorithm 1 produces U/V factor assignments for B and C.
        assert "val U_B = " in source
        assert "sc.broadcast(U_B)" in source
        assert "val V_C = " in source

    def test_views_updated_blockwise(self, trigger):
        source = generate_spark_trigger(trigger)
        assert "A.blockwiseAdd(" in source
        assert "B.blockwiseAdd(" in source
        assert "C.blockwiseAdd(" in source

    def test_update_order_preserved(self, trigger):
        source = generate_spark_trigger(trigger)
        assert source.index("A.blockwiseAdd") < source.index("B.blockwiseAdd")
        assert source.index("B.blockwiseAdd") < source.index("C.blockwiseAdd")

    def test_custom_method_name(self, trigger):
        source = generate_spark_trigger(trigger, method_name="refresh")
        assert source.startswith("def refresh(")

    def test_no_dense_products_in_incremental_trigger(self, trigger):
        # The A^4 trigger must never multiply two full views directly:
        # every multiply chains off a broadcast factor (u_A, v_A, U_*,
        # V_*) or applies a view to one.  "B.multiply(C)"-style
        # view-by-view products would be a shuffle-heavy O(n^gamma)
        # regression.
        source = generate_spark_trigger(trigger)
        for bad in ("A.multiply(A)", "A.multiply(B)", "B.multiply(B)",
                    "B.multiply(C)", "C.multiply(C)"):
            assert bad not in source

    def test_braces_balanced(self, trigger):
        source = generate_spark_trigger(trigger)
        assert source.count("{") == source.count("}")
        assert source.rstrip().endswith("}")
