"""Differential concurrency harness for the view-serving layer (CQRS).

The ISSUE 6 headline test work: concurrent readers racing a randomized
update stream must only ever observe *exact flushed-epoch states* — the
state the unit-at-a-time oracle reaches after ``snap.seq`` updates —
never a torn read of a half-applied update or a half-copied snapshot.
Plus the contract around it: the staleness bound is always honored,
shutdown drains the queue, re-planning happens on the writer thread,
and writer failures poison the server instead of hanging waiters.
"""

import json
import threading
import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from exprgen import session_scenario
from stream_helpers import zipf_row_updates

from repro.frontend import parse_program
from repro.runtime import (
    FactoredUpdate,
    FlushOnReadServer,
    IVMSession,
    MaintainerEngine,
    ReplanMonitor,
    ServerClosedError,
    ViewServer,
    WriterFailedError,
    open_session,
    run_load,
)


def _capture(session, names):
    return {name: np.array(session[name], dtype=np.float64) for name in names}


def _oracle_states(program, inputs, names, updates):
    """State after every prefix of ``updates``, applied one at a time."""
    oracle = IVMSession(program, {k: v.copy() for k, v in inputs.items()},
                        mode="interpret", backend="dense")
    states = [_capture(oracle, names)]
    for update in updates:
        oracle.apply_update(update)
        states.append(_capture(oracle, names))
    return states


def _assert_state(observed, want, context):
    for name, got in observed.items():
        scale = max(1.0, float(np.max(np.abs(want[name]))))
        np.testing.assert_allclose(
            got, want[name], rtol=1e-7, atol=1e-8 * scale,
            err_msg=f"{name} diverged {context}",
        )


def _poll_snapshots(server, stop, sink):
    """Reader loop: record every distinct epoch the server publishes."""
    last = -1
    while not stop.is_set():
        snap = server.snapshot
        if snap.epoch != last:
            last = snap.epoch
            sink.append(snap)
    sink.append(server.snapshot)


class TestDifferentialConcurrency:
    """Racing readers vs the unit-at-a-time oracle, across the grid."""

    @settings(max_examples=8, deadline=None)
    @given(data=st.data())
    def test_readers_only_observe_flushed_oracle_states(self, data):
        program, n, inputs = data.draw(session_scenario())
        bound = data.draw(st.sampled_from([1, 2, 4, 8]))
        mode = data.draw(st.sampled_from(["interpret", "codegen"]))
        batch = data.draw(st.sampled_from([None, 3]))
        count = data.draw(st.integers(8, 20))
        theta = data.draw(st.sampled_from([0.0, 2.0]))
        rng = np.random.default_rng(data.draw(st.integers(0, 2 ** 16)))
        updates = zipf_row_updates(rng, n, count, theta,
                                   target=program.input_names[0])
        names = tuple(program.view_names)
        states = _oracle_states(program, inputs, names, updates)

        session = IVMSession(program, {k: v.copy() for k, v in inputs.items()},
                             mode=mode, backend="dense")
        if batch:
            session.set_batching(batch)
        server = ViewServer(session, views=names, max_staleness=bound)
        try:
            stop = threading.Event()
            observed: list[list] = [[], []]
            readers = [
                threading.Thread(target=_poll_snapshots,
                                 args=(server, stop, sink), daemon=True)
                for sink in observed
            ]
            for thread in readers:
                thread.start()
            for index, update in enumerate(updates):
                server.submit(update)
                if index % 5 == 4:
                    time.sleep(0)  # let readers catch mid-stream epochs
            final = server.refresh()
            stop.set()
            for thread in readers:
                thread.join(timeout=30.0)

            assert final.seq == count
            _assert_state(final.views, states[count], "at the final epoch")
            for sink in observed:
                assert sink, "reader never saw a snapshot"
                for snap in sink:
                    # Torn reads (mixed epochs, half-applied updates)
                    # cannot match any exact oracle prefix state.
                    _assert_state(snap.views, states[snap.seq],
                                  f"at observed seq {snap.seq}")
            # The staleness bound held on every publication.
            assert server.stats.applied == count
            assert all(p <= bound for p in server.stats.pending_log)
        finally:
            server.close()

    def test_close_drains_queued_updates(self, rng):
        program, n, inputs = _fixed_scenario(rng)
        updates = zipf_row_updates(rng, n, 17, 1.5)
        names = tuple(program.view_names)
        states = _oracle_states(program, inputs, names, updates)
        server = ViewServer(
            IVMSession(program, {k: v.copy() for k, v in inputs.items()}),
            views=names, max_staleness=64,
        )
        server.submit_many(updates)
        server.close()  # no refresh first: close itself must drain
        snap = server.snapshot
        assert snap.seq == len(updates)
        assert server.stats.applied == len(updates)
        _assert_state(snap.views, states[-1], "after drain-on-close")
        # The closed server still serves its final epoch, read-only.
        arr = server.read(names[0])
        assert not arr.flags.writeable
        with pytest.raises(ServerClosedError):
            server.submit(updates[0])

    def test_replans_happen_on_the_writer_thread(self, rng):
        program, n, inputs = _fixed_scenario(rng)
        server = open_session(
            program, inputs, plan="incr", backend="dense", mode="interpret",
            batch=4, refresh_count=200,
            replan={"check_every": 5, "probe_every": 100},
            serve={"max_staleness": 4},
        )
        monitor = server._engine.target
        assert isinstance(monitor, ReplanMonitor)
        idents: list[int] = []
        original = monitor.replan

        def spy():
            idents.append(threading.get_ident())
            return original()

        monitor.replan = spy
        try:
            server.submit_many(zipf_row_updates(rng, n, 12, 2.0))
            server.refresh()
            assert idents, "check_every=5 over 12 updates never re-planned"
            assert set(idents) == {server._thread.ident}
            assert threading.get_ident() not in idents
        finally:
            server.close()


def _fixed_scenario(rng):
    program = parse_program("input A(n, n); B := A * A; C := B * B; output C;")
    n = 8
    return program, n, {"A": 0.2 * rng.standard_normal((n, n))}


class TestViewServerContract:
    def test_read_never_blocks_on_queued_work(self, rng):
        """Reads return the published epoch even with a stalled writer."""
        program, n, inputs = _fixed_scenario(rng)
        server = ViewServer(IVMSession(program, inputs), max_staleness=None)
        gate = threading.Event()
        try:
            before = server.snapshot
            server.call(gate.wait)  # park the writer mid-stream
            server.submit_many(zipf_row_updates(rng, n, 50, 0.0))
            # The writer is stuck and the queue is deep, yet reads serve
            # the last published epoch instantly — the exact same array.
            assert server.read("C") is before.views["C"]
            gate.set()
            assert server.refresh().seq == 51  # the parked call + 50 updates
        finally:
            gate.set()
            server.close()

    def test_call_wait_reads_your_writes(self, rng):
        program, n, inputs = _fixed_scenario(rng)
        session = IVMSession(program, inputs)
        server = ViewServer(session, max_staleness=64)
        try:
            update = zipf_row_updates(rng, n, 1, 0.0)[0]
            server.call(session.apply_update, update, wait=True)
            # wait=True published before returning: the write is visible.
            assert server.snapshot.seq == 1
        finally:
            server.close()

    def test_call_wait_reraises_here_without_poisoning(self, rng):
        program, n, inputs = _fixed_scenario(rng)
        server = ViewServer(IVMSession(program, inputs))
        try:
            with pytest.raises(ValueError, match="boom"):
                server.call(_raise_boom, wait=True)
            server.refresh()  # the writer survived the waited failure
        finally:
            server.close()

    def test_writer_failure_poisons_server_and_releases_waiters(self, rng):
        program, n, inputs = _fixed_scenario(rng)
        server = ViewServer(IVMSession(program, inputs))
        server.call(_raise_boom)  # fire-and-forget: the failure is fatal
        with pytest.raises(WriterFailedError) as info:
            server.refresh(timeout=30.0)
        assert isinstance(info.value.__cause__, ValueError)
        with pytest.raises(WriterFailedError):
            server.submit(FactoredUpdate("A", np.ones((n, 1)), np.ones((n, 1))))
        with pytest.raises(WriterFailedError):
            server.close()

    def test_watch_grows_the_publish_set_on_demand(self, rng):
        program, n, inputs = _fixed_scenario(rng)
        server = ViewServer(IVMSession(program, inputs), views=("C",))
        try:
            assert "B" not in server.snapshot.views
            got = server.read("B")  # known to the session, not yet served
            assert "B" in server.snapshot.views
            np.testing.assert_allclose(got, inputs["A"] @ inputs["A"])
            with pytest.raises(KeyError, match="no view named"):
                server.read("nope")
        finally:
            server.close()

    def test_constructor_validation(self, rng):
        program, n, inputs = _fixed_scenario(rng)
        session = IVMSession(program, inputs)
        with pytest.raises(KeyError, match="unknown views"):
            ViewServer(session, views=("C", "nope"))
        with pytest.raises(ValueError, match="max_staleness"):
            ViewServer(session, max_staleness=0)
        with pytest.raises(ValueError, match="max_age"):
            ViewServer(session, max_age=-1.0)
        with pytest.raises(TypeError, match="cannot serve"):
            ViewServer(object())

    def test_staleness_policy_decisions(self, rng):
        """The publish predicate, pinned deterministically."""
        program, n, inputs = _fixed_scenario(rng)
        server = ViewServer(IVMSession(program, inputs), max_staleness=3)
        server.close()  # the writer is gone; poke the predicate directly
        server._pending = 0
        assert not server._should_publish()
        server._pending = 2
        assert not server._should_publish()
        server._pending = 3
        assert server._should_publish()
        server.max_staleness = None
        assert not server._should_publish()  # idle-only policy
        server.max_age = 0.01
        server._oldest_pending = time.monotonic() - 1.0
        assert server._should_publish()  # age bound fires under load
        server._oldest_pending = time.monotonic()
        assert not server._should_publish()

    def test_open_session_serve_wires_plan_through(self, rng):
        program, n, inputs = _fixed_scenario(rng)
        server = open_session(program, inputs, plan="incr", backend="dense",
                              serve=True)
        try:
            assert isinstance(server, ViewServer)
            assert server.plan.strategy == "INCR"
            server.submit_many(zipf_row_updates(rng, n, 3, 0.0))
            assert server.refresh().seq == 3
        finally:
            server.close()

    def test_context_manager_closes_and_reports_body_errors_first(self, rng):
        program, n, inputs = _fixed_scenario(rng)
        with ViewServer(IVMSession(program, inputs)) as server:
            server.submit_many(zipf_row_updates(rng, n, 3, 0.0))
        assert server.stats.applied == 3  # exit drained before joining
        with pytest.raises(RuntimeError, match="body wins"):
            with ViewServer(IVMSession(program, inputs)) as server:
                server.call(_raise_boom)  # poisons the writer...
                raise RuntimeError("body wins")  # ...but the body's error
        with FlushOnReadServer(IVMSession(program, inputs)) as baseline:
            assert baseline.epoch == 0

    def test_flush_on_read_baseline_matches(self, rng):
        program, n, inputs = _fixed_scenario(rng)
        updates = zipf_row_updates(rng, n, 9, 1.0)
        names = tuple(program.view_names)
        states = _oracle_states(program, inputs, names, updates)
        baseline = FlushOnReadServer(
            IVMSession(program, {k: v.copy() for k, v in inputs.items()}),
            views=names,
        )
        for update in updates:
            baseline.submit(update)
        _assert_state({n_: baseline.read(n_) for n_ in names}, states[-1],
                      "on the flush-on-read baseline")
        assert baseline.max_staleness == 0
        baseline.close()

    def test_run_load_reports_the_contract_numbers(self, rng):
        program, n, inputs = _fixed_scenario(rng)
        server = ViewServer(IVMSession(program, inputs), max_staleness=8)
        pool = zipf_row_updates(rng, n, 64, 1.0)
        try:
            results = run_load(server, lambda i: pool[i % len(pool)],
                               read_names=("C",), duration=0.2, readers=2,
                               reader_rate=0.0)
        finally:
            server.close()
        assert results["reads"] > 0
        assert results["writer_updates"] > 0
        assert results["max_staleness_observed"] <= 8
        assert results["staleness_bound"] == 8
        assert results["read_p50_ms"] <= results["read_p99_ms"]


def _raise_boom():
    raise ValueError("boom")


class TestDriverServing:
    def test_pagerank_serves_exact_ranks_under_edits(self, rng):
        from repro.analytics import IncrementalPageRank

        n = 12
        adjacency = (rng.random((n, n)) < 0.3).astype(float)
        np.fill_diagonal(adjacency, 0.0)
        pr = IncrementalPageRank(adjacency.copy(), k=10, strategy="HYBRID")
        server = pr.serve(max_staleness=2)
        try:
            for _ in range(6):
                s, t = rng.integers(0, n, size=2)
                server.call(pr.add_edge, int(s), int(t))
            server.refresh()
            assert pr.revalidate() < 1e-8
            np.testing.assert_allclose(server.read("ranks"), pr.ranks)
        finally:
            server.close()

    def test_markov_serves_k_step_matrix(self, rng):
        from repro.analytics.markov import (
            KStepTransitionMatrix,
            random_walk_matrix,
            reference_k_step,
        )

        n = 10
        adjacency = (rng.random((n, n)) < 0.4).astype(float)
        p = random_walk_matrix(adjacency)
        chain = KStepTransitionMatrix(p.copy(), k=8)
        server = chain.serve(max_staleness=1)
        try:
            column = rng.random(n) + 0.1
            column /= column.sum()
            server.call(chain.perturb_column, 3, column, wait=True)
            got = server.read("result")
            np.testing.assert_allclose(got, reference_k_step(chain.p, 8),
                                       atol=1e-9)
        finally:
            server.close()

    def test_maintainer_engine_rejects_raw_updates_without_refresh(self):
        engine = MaintainerEngine(object(), views={"x": lambda: np.eye(2)})
        server = ViewServer(engine)
        server.submit(FactoredUpdate("x", np.ones((2, 1)), np.ones((2, 1))))
        with pytest.raises(WriterFailedError) as info:
            server.refresh(timeout=30.0)
        assert isinstance(info.value.__cause__, TypeError)
        with pytest.raises(WriterFailedError):
            server.close()


class TestServeCLI:
    @pytest.fixture
    def program_file(self, tmp_path):
        path = tmp_path / "serve.lvw"
        path.write_text("input A(n, n);\nB := A * A;\noutput B;\n")
        return str(path)

    def test_serve_json_reports_latency_and_staleness(self, program_file,
                                                      capsys):
        from repro.cli import main

        code = main([
            "serve", program_file, "--dims", "n=8", "--duration", "0.15",
            "--readers", "2", "--staleness", "4", "--json",
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["mode"] == "snapshot"
        results = payload["results"]
        assert results["reads"] > 0
        assert results["max_staleness_observed"] <= 4
        assert results["staleness_bound"] == 4
        stats = payload["server_stats"]
        assert stats["applied"] == stats["submitted"]  # close() drained
        assert stats["epochs"] >= 1

    def test_serve_baseline_flag(self, program_file, capsys):
        from repro.cli import main

        code = main([
            "serve", program_file, "--dims", "n=8", "--duration", "0.15",
            "--readers", "1", "--baseline", "--json",
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["mode"] == "baseline"
        assert payload["results"]["reads"] > 0


class TestIngressRobustness:
    """Bounded ingress (ISSUE 9): overload policy, timeouts, draining
    shutdown — a stalled writer must cost callers a *typed* error or a
    bounded wait, never a hang or an unbounded queue."""

    def _stalled_server(self, rng, **kwargs):
        program, n, inputs = _fixed_scenario(rng)
        server = ViewServer(IVMSession(program, inputs),
                            max_staleness=None, **kwargs)
        gate = threading.Event()
        server.call(gate.wait)  # park the writer: nothing drains
        return server, gate, zipf_row_updates(rng, n, 64, 0.0)

    def test_reject_policy_raises_typed_overflow(self, rng):
        from repro.runtime import IngressOverflowError

        server, gate, updates = self._stalled_server(
            rng, max_queue=2, overload="reject")
        try:
            with pytest.raises(IngressOverflowError, match="full"):
                for update in updates:
                    server.submit(update)
            assert server.stats.rejected >= 1
            assert server.stats.submitted == 3  # the parked call + 2 admitted
        finally:
            gate.set()
            server.close()

    def test_shed_oldest_admits_new_and_counts(self, rng):
        server, gate, updates = self._stalled_server(
            rng, max_queue=2, overload="shed-oldest")
        try:
            for update in updates[:10]:
                server.submit(update)
            gate.set()
            server.refresh()
            assert server.stats.shed == 8
            # Everything admitted was either applied or shed, none lost.
            assert server.stats.applied >= 2  # the parked call + newest
        finally:
            gate.set()
            server.close()

    def test_block_policy_timeout_is_bounded(self, rng):
        from repro.runtime import IngressTimeoutError

        server, gate, updates = self._stalled_server(
            rng, max_queue=1, overload="block")
        try:
            server.submit(updates[0])
            started = time.monotonic()
            with pytest.raises(IngressTimeoutError, match="0.1"):
                server.submit(updates[1], timeout=0.1)
            assert time.monotonic() - started < 5.0
        finally:
            gate.set()
            server.close()

    def test_blocked_producer_released_by_close(self, rng):
        server, gate, updates = self._stalled_server(
            rng, max_queue=1, overload="block")
        server.submit(updates[0])
        outcome = []

        def producer():
            try:
                server.submit(updates[1], timeout=30.0)
                outcome.append("enqueued")
            except ServerClosedError:
                outcome.append("closed")

        thread = threading.Thread(target=producer)
        thread.start()
        time.sleep(0.05)  # let the producer block on the full queue
        threading.Timer(0.2, gate.set).start()
        server.close(discard=True)
        thread.join(10.0)
        assert not thread.is_alive(), "producer hung across close()"
        assert outcome == ["closed"]

    def test_close_drains_then_is_idempotent(self, rng):
        program, n, inputs = _fixed_scenario(rng)
        server = ViewServer(IVMSession(program, inputs), max_staleness=8)
        updates = zipf_row_updates(rng, n, 25, 0.0)
        server.submit_many(updates)
        server.close()
        assert server.stats.applied == len(updates)
        server.close()  # double close is a no-op, not an error
        with pytest.raises(ServerClosedError):
            server.submit(updates[0])

    def test_close_discard_counts_dropped_updates(self, rng):
        server, gate, updates = self._stalled_server(rng)
        for update in updates[:10]:
            server.submit(update)
        # The writer stays parked until after close() has discarded, so
        # every queued update is dropped — deterministically.
        threading.Timer(0.2, gate.set).start()
        server.close(discard=True)
        assert server.stats.discarded == 10
        assert server.stats.applied == 1  # just the parked call

    def test_close_deadline_discards_the_remainder(self, rng):
        program, n, inputs = _fixed_scenario(rng)
        server = ViewServer(IVMSession(program, inputs), max_staleness=None)
        server.call(time.sleep, 0.5)
        server.submit_many(zipf_row_updates(rng, n, 20, 0.0))
        started = time.monotonic()
        server.close(deadline=0.1)
        assert time.monotonic() - started < 30.0
        assert server.stats.discarded > 0

    def test_readers_keep_serving_through_close(self, rng):
        program, n, inputs = _fixed_scenario(rng)
        server = ViewServer(IVMSession(program, inputs), max_staleness=4)
        server.submit_many(zipf_row_updates(rng, n, 10, 0.0))
        sums = []

        def reader():
            for _ in range(100):
                sums.append(float(np.sum(server.read("C"))))
                time.sleep(0.0005)

        thread = threading.Thread(target=reader)
        thread.start()
        server.close()
        thread.join(10.0)
        assert not thread.is_alive()
        assert len(sums) == 100  # reads never raised nor blocked

    def test_constructor_rejects_unknown_policy(self, rng):
        program, n, inputs = _fixed_scenario(rng)
        with pytest.raises(ValueError, match="overload"):
            ViewServer(IVMSession(program, inputs), max_queue=2,
                       overload="drop-newest")


class TestEpochCheckpointing:
    def test_writer_cuts_due_snapshots_at_publish(self, rng, tmp_path):
        from repro.runtime import restore_session

        program, n, inputs = _fixed_scenario(rng)
        updates = zipf_row_updates(rng, n, 40, 0.0)
        server = open_session(
            program, inputs, serve={"max_staleness": 4},
            checkpoint={"directory": tmp_path, "every": 4, "auto": False})
        for update in updates:
            server.submit(update)
        server.close()
        assert server.stats.checkpoints >= 5
        # The directory restores to a flushed-epoch state a fresh
        # process can serve from.
        restored = restore_session(program, tmp_path)
        assert restored.update_count > 0
        assert restored.update_count % 4 == 0

    def test_unattached_session_cuts_nothing(self, rng):
        program, n, inputs = _fixed_scenario(rng)
        server = ViewServer(IVMSession(program, inputs), max_staleness=4)
        server.submit_many(zipf_row_updates(rng, n, 10, 0.0))
        server.close()
        assert server.stats.checkpoints == 0


class TestCatalogServing:
    """Two served tenants sharing one catalog (the ISSUE 10 satellite):
    concurrent per-tenant writer threads, catalog-atomic captures (no
    torn reads across epochs), and eviction that never blocks readers."""

    @staticmethod
    def _family(rng, n=8):
        t1 = parse_program(
            "input A(n, n); B := A * A; C := B * B; output C;")
        t2 = parse_program(
            "input A(n, n); G := A * A; H := G * A; output H;")
        inputs = {"A": 0.3 * rng.standard_normal((n, n)) / np.sqrt(n)}
        return t1, t2, n, inputs

    def test_two_writers_one_catalog_no_torn_reads(self, rng):
        from repro.catalog import ViewCatalog

        t1_prog, t2_prog, n, inputs = self._family(rng)
        # Room for two of the three distinct nodes: eviction stays live
        # throughout, so every epoch also exercises demand reads.
        catalog = ViewCatalog(memory_budget=2 * n * n * 8)
        tenant1 = catalog.open(t1_prog, inputs, dims={"n": n})
        tenant2 = catalog.open(t2_prog, None, dims={"n": n})
        streams = [
            zipf_row_updates(np.random.default_rng(5), n, 30, 1.5,
                             scale=0.02),
            zipf_row_updates(np.random.default_rng(9), n, 30, 1.5,
                             scale=0.02),
        ]

        server1 = tenant1.serve(views=("A", "B", "C"), max_staleness=1)
        server2 = tenant2.serve(views=("A", "G", "H"), max_staleness=1)
        try:
            stop = threading.Event()
            sinks = [[], []]
            readers = [
                threading.Thread(target=_poll_snapshots,
                                 args=(server, stop, sink), daemon=True)
                for server, sink in zip((server1, server2), sinks)
            ]
            for thread in readers:
                thread.start()

            def pressure(server, stream):
                for update in stream:
                    server.submit(update)
                    time.sleep(0)

            writers = [
                threading.Thread(target=pressure, args=(server1, streams[0]),
                                 daemon=True),
                threading.Thread(target=pressure, args=(server2, streams[1]),
                                 daemon=True),
            ]
            for thread in writers:
                thread.start()
            for thread in writers:
                thread.join(timeout=60.0)
                assert not thread.is_alive(), "writer blocked"
            # Drain both ingress queues, then capture the settled state.
            server1.refresh()
            server2.refresh()
            final1 = server1.refresh()
            final2 = server2.refresh()
            stop.set()
            for thread in readers:
                thread.join(timeout=30.0)
                assert not thread.is_alive(), "reader blocked (eviction?)"
        finally:
            server1.close()
            server2.close()

        # Eviction genuinely churned while both readers kept serving.
        assert catalog.stats.evictions >= 1
        assert catalog.stats.demand_reads >= 1
        for sink in sinks:
            assert len(sink) >= 2, "reader saw no epochs"

        # No torn reads: every published epoch is internally consistent
        # — each derived view matches *its own snapshot's* base table,
        # even though a foreign writer raced the capture.
        for snap in sinks[0]:
            a = snap.views["A"]
            _assert_state(
                {"B": snap.views["B"], "C": snap.views["C"]},
                {"B": a @ a, "C": (a @ a) @ (a @ a)},
                f"tenant-1 epoch {snap.epoch}")
        for snap in sinks[1]:
            a = snap.views["A"]
            _assert_state(
                {"G": snap.views["G"], "H": snap.views["H"]},
                {"H": (a @ a) @ a, "G": a @ a},
                f"tenant-2 epoch {snap.epoch}")

        # Both tenants settled on the same shared base table, carrying
        # every update from both writers.
        expected_a = inputs["A"] + sum(
            update.dense() for stream in streams for update in stream)
        _assert_state({"A": final1.views["A"]}, {"A": expected_a},
                      "tenant-1 final")
        _assert_state({"A": final2.views["A"]}, {"A": expected_a},
                      "tenant-2 final")
        _assert_state({"C": final1.views["C"]},
                      {"C": (expected_a @ expected_a)
                            @ (expected_a @ expected_a)},
                      "tenant-1 final view")
