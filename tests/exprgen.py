"""Hypothesis generators for random well-shaped expression trees.

Shared by the property-test modules: builds expression trees that are
shape-correct by construction, together with the symbol table and a
numpy environment binding every generated symbol, so properties can
evaluate, print, parse, differentiate and compile the same tree.
"""

from __future__ import annotations

import numpy as np
from hypothesis import strategies as st

from repro.expr import (
    Expr,
    Identity,
    MatrixSymbol,
    add,
    matmul,
    scalar_mul,
    transpose,
)

#: Dimensions used by generated trees (small keeps evaluation instant).
DIMS = (2, 3, 4)

#: Scalar coefficients that survive ``%g`` printing round-trips exactly.
NICE_COEFFS = (2.0, 3.0, 0.5, -2.0, 5.0)


class ExprPool:
    """Symbol factory: hands out shape-typed symbols and remembers them."""

    def __init__(self):
        self.symbols: dict[str, MatrixSymbol] = {}

    def symbol(self, rows: int, cols: int, index: int) -> MatrixSymbol:
        name = f"M{rows}x{cols}_{index}"
        if name not in self.symbols:
            self.symbols[name] = MatrixSymbol(name, rows, cols)
        return self.symbols[name]

    def env(self, seed: int) -> dict[str, np.ndarray]:
        rng = np.random.default_rng(seed)
        return {
            name: rng.normal(size=(sym.shape.rows, sym.shape.cols))
            for name, sym in self.symbols.items()
        }


@st.composite
def shaped_expr(draw, pool: ExprPool, rows: int, cols: int, depth: int):
    """A random expression of exactly ``rows x cols``."""
    if depth <= 0:
        return pool.symbol(rows, cols, draw(st.integers(0, 2)))
    choice = draw(st.sampled_from(
        ["symbol", "add", "matmul", "transpose", "scalar"]
        + (["identity"] if rows == cols else [])
    ))
    if choice == "symbol":
        return pool.symbol(rows, cols, draw(st.integers(0, 2)))
    if choice == "identity":
        return Identity(rows)
    if choice == "add":
        left = draw(shaped_expr(pool, rows, cols, depth - 1))
        right = draw(shaped_expr(pool, rows, cols, depth - 1))
        return add(left, right)
    if choice == "matmul":
        mid = draw(st.sampled_from(DIMS))
        left = draw(shaped_expr(pool, rows, mid, depth - 1))
        right = draw(shaped_expr(pool, mid, cols, depth - 1))
        return matmul(left, right)
    if choice == "transpose":
        inner = draw(shaped_expr(pool, cols, rows, depth - 1))
        return transpose(inner)
    coeff = draw(st.sampled_from(NICE_COEFFS))
    inner = draw(shaped_expr(pool, rows, cols, depth - 1))
    return scalar_mul(coeff, inner)


@st.composite
def expr_with_env(draw, max_depth: int = 3):
    """A random square expression plus its pool (for env construction)."""
    pool = ExprPool()
    n = draw(st.sampled_from(DIMS))
    depth = draw(st.integers(1, max_depth))
    expr = draw(shaped_expr(pool, n, n, depth))
    return expr, pool


# -- session programs (the batch-pipeline differential harness) -----------

#: Dimensions for generated session programs: big enough that factored
#: propagation and compaction do real work, small enough to stay instant.
PROGRAM_DIMS = (3, 4, 6)


@st.composite
def closed_expr(draw, leaves, n: int, depth: int):
    """A random square ``(n x n)`` expression over a *fixed* leaf set.

    Unlike :func:`shaped_expr` (which mints symbols freely), every leaf
    comes from ``leaves`` — what a :class:`~repro.compiler.Program`
    statement requires (inputs and earlier views only).
    """
    if depth <= 0:
        return draw(st.sampled_from(list(leaves)))
    choice = draw(st.sampled_from(
        ["leaf", "add", "matmul", "transpose", "scalar", "identity"]
    ))
    if choice == "leaf":
        return draw(st.sampled_from(list(leaves)))
    if choice == "identity":
        return Identity(n)
    if choice == "add":
        left = draw(closed_expr(leaves, n, depth - 1))
        right = draw(closed_expr(leaves, n, depth - 1))
        return add(left, right)
    if choice == "matmul":
        left = draw(closed_expr(leaves, n, depth - 1))
        right = draw(closed_expr(leaves, n, depth - 1))
        return matmul(left, right)
    if choice == "transpose":
        return transpose(draw(closed_expr(leaves, n, depth - 1)))
    coeff = draw(st.sampled_from(NICE_COEFFS))
    return scalar_mul(coeff, draw(closed_expr(leaves, n, depth - 1)))


@st.composite
def session_scenario(draw, max_statements: int = 3, max_depth: int = 2):
    """A random maintainable program plus seeded inputs.

    Returns ``(program, n, inputs)``: a square-matrix
    :class:`~repro.compiler.Program` over inputs ``A`` (the update
    target) and optionally ``A2``, with 1–``max_statements`` statements
    whose expressions draw only on already-defined names (so trigger
    compilation succeeds by construction).  Inputs are scaled toward a
    sub-unit spectral radius so iterated products stay tame over long
    update streams.
    """
    from repro.compiler import Program, Statement

    n = draw(st.sampled_from(PROGRAM_DIMS))
    input_syms = [MatrixSymbol("A", n, n)]
    if draw(st.booleans()):
        input_syms.append(MatrixSymbol("A2", n, n))
    defined = list(input_syms)
    statements = []
    count = draw(st.integers(1, max_statements))
    for index in range(count):
        depth = draw(st.integers(1, max_depth))
        expr = draw(closed_expr(defined, n, depth))
        target = MatrixSymbol(f"V{index}", n, n)
        statements.append(Statement(target, expr))
        defined.append(target)
    program = Program(input_syms, statements,
                      outputs=(statements[-1].target.name,))
    seed = draw(st.integers(0, 2 ** 16))
    rng = np.random.default_rng(seed)
    inputs = {
        sym.name: 0.4 * rng.standard_normal((n, n)) / np.sqrt(n)
        for sym in input_syms
    }
    return program, n, inputs


@st.composite
def shared_family(draw, max_tenants: int = 4, max_private: int = 2,
                  max_depth: int = 2):
    """A family of tenant programs that deliberately *share* sub-terms.

    The latent gap this closes: :func:`session_scenario` draws one
    program at a time, so no generated harness ever exercised two
    sessions whose statements alias the same subexpression — exactly
    the regime the multi-view catalog (:mod:`repro.catalog`) exists
    for.  Returns ``(programs, n, inputs)``: 2–``max_tenants``
    square-matrix programs over one shared input ``A``, each consisting
    of a common chain prefix (``V0 := A * A``, optionally
    ``V1 := V0 * V0`` — identical across tenants, so a catalog must
    collapse them), 0–``max_private`` private statements drawn over the
    defined names, and possibly a bare alias statement (``F := V0``).
    The final statement is always the output.
    """
    from repro.compiler import Program, Statement

    n = draw(st.sampled_from(PROGRAM_DIMS))
    input_sym = MatrixSymbol("A", n, n)
    shared_depth = draw(st.integers(1, 2))
    tenant_count = draw(st.integers(2, max_tenants))
    programs = []
    for _ in range(tenant_count):
        defined = [input_sym]
        statements = []
        # The common prefix: every tenant spells these identically.
        prev = input_sym
        for index in range(shared_depth):
            target = MatrixSymbol(f"V{index}", n, n)
            statements.append(Statement(target, matmul(prev, prev)))
            defined.append(target)
            prev = target
        private = draw(st.integers(0, max_private))
        for index in range(private):
            depth = draw(st.integers(1, max_depth))
            expr = draw(closed_expr(defined, n, depth))
            target = MatrixSymbol(f"P{index}", n, n)
            statements.append(Statement(target, expr))
            defined.append(target)
        if draw(st.booleans()):
            alias_of = draw(st.sampled_from(
                [s.target for s in statements]))
            statements.append(Statement(MatrixSymbol("F", n, n), alias_of))
        program = Program((input_sym,), statements,
                          outputs=(statements[-1].target.name,))
        programs.append(program)
    seed = draw(st.integers(0, 2 ** 16))
    rng = np.random.default_rng(seed)
    inputs = {"A": 0.4 * rng.standard_normal((n, n)) / np.sqrt(n)}
    return programs, n, inputs


__all__ = [
    "DIMS",
    "ExprPool",
    "NICE_COEFFS",
    "PROGRAM_DIMS",
    "closed_expr",
    "expr_with_env",
    "session_scenario",
    "shared_family",
    "shaped_expr",
]
