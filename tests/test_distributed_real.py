"""The real multiprocess engine: sharding, parity, failure, accounting.

Bit-identity is the load-bearing claim: :class:`RowShardPartitioner`
fixes the tile decomposition as a function of ``(n, tile_rows)`` only —
never node count or strategy — and every engine executes the identical
per-tile kernel calls, so hash- and range-sharded maintenance must be
**bitwise** equal to single-process, not merely ``allclose``.

Process-spawning tests share module-scoped maintainers (spawn costs
seconds on small boxes); :meth:`ShardedChainMaintainer.reset` re-seeds
them between tests.
"""

from __future__ import annotations

import os
import subprocess
import sys
import textwrap

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distributed import (
    DistributedEngine,
    RowShardPartitioner,
    ShardedChainMaintainer,
    WorkerFailedError,
    power_chain,
)


def _stream(n: int, count: int, seed: int = 5, rank: int = 1):
    rng = np.random.default_rng(seed)
    return [
        (rng.standard_normal((n, rank)),
         0.01 * rng.standard_normal((n, rank)))
        for _ in range(count)
    ]


def _operator(n: int, seed: int = 9) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.standard_normal((n, n)) / np.sqrt(n)


class TestRowShardPartitioner:
    def test_uneven_tail_tile(self):
        part = RowShardPartitioner(100, 3, tile_rows=16)
        assert part.tile_bounds[-1] == (96, 100)
        assert part.tile_bounds[0] == (0, 16)
        # Tiles cover [0, n) without gaps or overlaps.
        covered = [b for bounds in part.tile_bounds
                   for b in range(*bounds)]
        assert covered == list(range(100))

    def test_single_node_degenerate(self):
        part = RowShardPartitioner(40, 1, tile_rows=16)
        assert part.shards == [(0, 1, 2)]
        assert part.shard_rows(0) == 40

    def test_more_nodes_than_tiles_leaves_empty_shards(self):
        part = RowShardPartitioner(16, 5, tile_rows=8)
        assert part.n_tiles == 2
        rows = [part.shard_rows(w) for w in range(5)]
        assert sum(rows) == 16
        assert rows.count(0) == 3  # three workers own empty block rows

    def test_tile_bounds_ignore_nodes_and_strategy(self):
        reference = RowShardPartitioner(200, 1, tile_rows=32).tile_bounds
        for nodes in (2, 3, 7):
            for strategy in RowShardPartitioner.STRATEGIES:
                part = RowShardPartitioner(200, nodes, strategy, tile_rows=32)
                assert part.tile_bounds == reference

    def test_hash_and_range_assign_every_tile_once(self):
        for strategy in RowShardPartitioner.STRATEGIES:
            part = RowShardPartitioner(128, 3, strategy, tile_rows=16)
            owned = sorted(t for shard in part.shards for t in shard)
            assert owned == list(range(part.n_tiles))

    def test_invalid_strategy_rejected(self):
        with pytest.raises(ValueError, match="strategy"):
            RowShardPartitioner(64, 2, strategy="roundrobin")

    def test_describe_schema(self):
        info = RowShardPartitioner(96, 2, "hash", tile_rows=32).describe()
        assert info["n"] == 96
        assert info["nodes"] == 2
        assert info["strategy"] == "hash"
        assert info["n_tiles"] == 3
        assert sum(info["shard_rows"]) == 96

    @given(n=st.integers(8, 64), tile_rows=st.integers(3, 17),
           nodes=st.integers(1, 5))
    @settings(max_examples=25, deadline=None)
    def test_decomposition_depends_only_on_n_and_tile_rows(
            self, n, tile_rows, nodes):
        reference = RowShardPartitioner(n, 1, tile_rows=tile_rows)
        for strategy in RowShardPartitioner.STRATEGIES:
            part = RowShardPartitioner(n, nodes, strategy, tile_rows=tile_rows)
            assert part.tile_bounds == reference.tile_bounds
            owned = sorted(t for shard in part.shards for t in shard)
            assert owned == list(range(part.n_tiles))


class TestLocalParity:
    """In-process engines across the (nodes, strategy) grid."""

    @given(n=st.integers(8, 40), tile_rows=st.integers(3, 11),
           nodes=st.integers(2, 4), updates=st.integers(1, 4),
           rank=st.integers(1, 2), seed=st.integers(0, 2**16))
    @settings(max_examples=20, deadline=None)
    def test_hash_range_single_bitwise_identical(
            self, n, tile_rows, nodes, updates, rank, seed):
        a = _operator(n, seed=seed % 97 + 1)
        stream = _stream(n, updates, seed=seed, rank=rank)
        finals = []
        for maintainer_nodes, strategy in (
                (1, "range"), (nodes, "range"), (nodes, "hash")):
            with ShardedChainMaintainer(
                    a, power_chain(3), nodes=maintainer_nodes,
                    strategy=strategy, tile_rows=tile_rows,
                    process=False) as maintainer:
                for u, v in stream:
                    maintainer.refresh(u, v)
                finals.append({name: maintainer.result(name)
                               for name in ("A", "P2", "P3")})
        for other in finals[1:]:
            for name in ("A", "P2", "P3"):
                assert np.array_equal(finals[0][name], other[name])

    def test_chain_tracks_ground_truth(self):
        a = _operator(32)
        with ShardedChainMaintainer(a, power_chain(3), nodes=2,
                                    tile_rows=8, process=False) as m:
            for u, v in _stream(32, 5):
                a = a + u @ v.T
                m.refresh(u, v)
            np.testing.assert_allclose(m.result("P3"), a @ a @ a,
                                       rtol=1e-9, atol=1e-12)

    def test_reeval_matches_incr_numerically(self):
        a = _operator(24)
        incr = ShardedChainMaintainer(a, power_chain(2), tile_rows=8,
                                      process=False)
        reeval = ShardedChainMaintainer(a, power_chain(2), tile_rows=8,
                                        process=False, reeval=True)
        for u, v in _stream(24, 3):
            incr.refresh(u, v)
            reeval.refresh(u, v)
        np.testing.assert_allclose(incr.result("P2"), reeval.result("P2"),
                                   rtol=1e-9, atol=1e-12)


# -- process-backed tests (module-scoped: spawn is expensive) ------------

N_PROC = 48
TILE_ROWS_PROC = 8


@pytest.fixture(scope="module")
def proc_range():
    with ShardedChainMaintainer(_operator(N_PROC), power_chain(3), nodes=2,
                                strategy="range", tile_rows=TILE_ROWS_PROC,
                                process=True, timeout=60.0) as m:
        yield m


@pytest.fixture(scope="module")
def proc_hash():
    with ShardedChainMaintainer(_operator(N_PROC), power_chain(3), nodes=2,
                                strategy="hash", tile_rows=TILE_ROWS_PROC,
                                process=True, timeout=60.0) as m:
        yield m


class TestProcessParity:
    def test_process_engines_bitwise_match_local(self, proc_range, proc_hash):
        a = _operator(N_PROC)
        local = ShardedChainMaintainer(a, power_chain(3), nodes=2,
                                       tile_rows=TILE_ROWS_PROC,
                                       process=False)
        proc_range.reset(a)
        proc_hash.reset(a)
        for u, v in _stream(N_PROC, 4):
            local.refresh(u, v)
            proc_range.refresh(u, v)
            proc_hash.refresh(u, v)
        for name in ("A", "P2", "P3"):
            expected = local.result(name)
            assert np.array_equal(expected, proc_range.result(name))
            assert np.array_equal(expected, proc_hash.result(name))

    def test_comm_measures_real_bytes(self, proc_range):
        proc_range.reset(_operator(N_PROC))
        proc_range.engine.comm.reset()
        u, v = _stream(N_PROC, 1)[0]
        proc_range.refresh(u, v)
        comm = proc_range.engine.comm.as_dict()
        # Fan-out carries the factors; fan-in carries thin partials.
        assert comm["bytes"]["broadcast"] > 0
        assert comm["bytes"]["gather"] > 0
        # Real pickled payloads exceed the raw factor bytes (framing).
        assert comm["bytes"]["broadcast"] > 2 * u.nbytes
        assert comm["total_messages"] > 0
        assert sum(comm["seconds"].values()) > 0.0


class TestCommModelAgreement:
    def test_modeled_vs_measured_within_10_percent(self):
        # Thin-factor payloads at n=1024 keep pickle framing far below
        # the tolerance; smaller n would test the framing, not the model.
        n = 1024
        with ShardedChainMaintainer(_operator(n), power_chain(3), nodes=2,
                                    tile_rows=128, process=True,
                                    timeout=60.0) as m:
            m.engine.comm.reset()
            m.engine.model.reset()
            for u, v in _stream(n, 2):
                m.refresh(u, v)
            measured = m.engine.comm.bytes_by_label()
            modeled = m.engine.model.bytes_by_label()
        for label in ("add_lowrank", "mat_lowrank", "matT_lowrank"):
            assert modeled[label] > 0
            error = abs(measured[label] - modeled[label]) / modeled[label]
            assert error <= 0.10, (label, measured[label], modeled[label])


class TestWorkerFailure:
    def test_worker_exception_carries_remote_traceback(self):
        with ShardedChainMaintainer(_operator(16), power_chain(2), nodes=2,
                                    tile_rows=8, process=True,
                                    timeout=60.0) as m:
            with pytest.raises(WorkerFailedError) as excinfo:
                m.engine.mat_lowrank("NOSUCHVIEW", np.ones((16, 1)))
            assert "KeyError" in str(excinfo.value)
            assert excinfo.value.traceback is not None
            # The cluster is poisoned: later calls re-raise, never hang.
            with pytest.raises(WorkerFailedError, match="poisoned"):
                m.refresh(*_stream(16, 1)[0])

    def test_killed_worker_poisons_instead_of_hanging(self):
        with ShardedChainMaintainer(_operator(16), power_chain(2), nodes=2,
                                    tile_rows=8, process=True,
                                    timeout=60.0) as m:
            m.engine.cluster.kill_worker(0)
            with pytest.raises(WorkerFailedError) as excinfo:
                m.refresh(*_stream(16, 1)[0])
            assert excinfo.value.worker == 0
            with pytest.raises(WorkerFailedError, match="poisoned"):
                m.result()
            # close() after a failure stays idempotent and quiet.
            m.close()
            m.close()

    def test_result_reads_through_engine_get(self, proc_range):
        proc_range.reset(_operator(N_PROC))
        out = proc_range.result("A")
        out[0, 0] = 123.0  # a private copy, not the live segment
        assert proc_range.result("A")[0, 0] != 123.0


LEAK_SCRIPT = textwrap.dedent("""
    import os
    import numpy as np
    from repro.distributed import RowShardPartitioner, ProcessCluster

    def main():
        part = RowShardPartitioner(32, 2, tile_rows=8)
        cluster = ProcessCluster(part, timeout=60.0)
        cluster.put("A", np.ones((32, 32)))
        cluster.alloc("B", (32, 32))
        cluster.ping()
        segments = [seg.name for seg in cluster._segments.values()]
        assert segments
        cluster.close()
        for name in segments:
            assert not os.path.exists("/dev/shm/" + name), name
        print("CLEAN")

    if __name__ == "__main__":
        main()
""")


class TestShmLifecycle:
    def test_close_releases_segments_without_tracker_warnings(self, tmp_path):
        """No leaked /dev/shm blocks and no resource_tracker noise.

        ``-W error::UserWarning`` turns the tracker's "leaked
        shared_memory objects" atexit warning into a traceback, so a
        leak fails on stderr/returncode instead of scrolling by.
        """
        script = tmp_path / "leak_probe.py"
        script.write_text(LEAK_SCRIPT)
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            filter(None, [os.path.join(os.path.dirname(__file__), os.pardir,
                                       "src"),
                          env.get("PYTHONPATH")]))
        proc = subprocess.run(
            [sys.executable, "-W", "error::UserWarning", str(script)],
            capture_output=True, text=True, env=env, timeout=120,
        )
        assert proc.returncode == 0, proc.stderr
        assert "CLEAN" in proc.stdout
        assert "resource_tracker" not in proc.stderr, proc.stderr


CHAIN_SRC = "input A(n, n); B := A * A; C := A * B; output C;"


def _sharded_plan(nodes: int):
    from repro.planner import MaintenancePlan

    return MaintenancePlan("INCR", backend="dense", mode="interpret",
                           nodes=nodes)


class TestShardedChainSession:
    def test_forced_plan_runs_sharded_with_parity(self):
        from repro.frontend import parse_program
        from repro.runtime import (FactoredUpdate, ShardedChainSession,
                                   open_session)

        program = parse_program(CHAIN_SRC)
        a = _operator(96, seed=3)
        sharded = open_session(program, {"A": a.copy()},
                               plan=_sharded_plan(2), shard="hash")
        assert isinstance(sharded, ShardedChainSession)
        assert sharded.plan.label.endswith("/x2")
        plain = open_session(program, {"A": a.copy()}, plan="incr",
                             backend="dense", mode="interpret", batch="off")
        try:
            for u, v in _stream(96, 4):
                sharded.apply_update(FactoredUpdate("A", u, v))
                plain.apply_update(FactoredUpdate("A", u, v))
            np.testing.assert_allclose(sharded["C"], plain["C"],
                                       rtol=1e-9, atol=1e-12)
            comm = sharded.engine.comm.as_dict()
            assert comm["bytes"]["broadcast"] > 0
        finally:
            sharded.close()

    def test_with_plan_falls_back_to_single_process(self):
        from repro.frontend import parse_program
        from repro.planner import MaintenancePlan
        from repro.runtime import (FactoredUpdate, ShardedChainSession,
                                   open_session)

        program = parse_program(CHAIN_SRC)
        a = _operator(64, seed=4)
        sharded = open_session(program, {"A": a.copy()},
                               plan=_sharded_plan(2))
        plain = open_session(program, {"A": a.copy()}, plan="incr",
                             backend="dense", mode="interpret", batch="off")
        stream = _stream(64, 4)
        for u, v in stream[:2]:
            sharded.apply_update(FactoredUpdate("A", u, v))
            plain.apply_update(FactoredUpdate("A", u, v))
        # Flush-before-switch: drains, copies out of shm, stops workers.
        fallback = sharded.with_plan(
            MaintenancePlan("INCR", backend="dense", mode="interpret"))
        assert not isinstance(fallback, ShardedChainSession)
        for u, v in stream[2:]:
            fallback.apply_update(FactoredUpdate("A", u, v))
            plain.apply_update(FactoredUpdate("A", u, v))
        np.testing.assert_allclose(fallback["C"], plain["C"],
                                   rtol=1e-9, atol=1e-12)

    def test_cannot_switch_into_sharded_mid_stream(self):
        from repro.frontend import parse_program
        from repro.runtime import open_session

        program = parse_program(CHAIN_SRC)
        plain = open_session(program, {"A": _operator(32)}, plan="incr",
                             backend="dense", mode="interpret")
        with pytest.raises(ValueError, match="sharded"):
            plain.with_plan(_sharded_plan(4))

    def test_non_chain_program_rejected(self):
        from repro.frontend import parse_program
        from repro.runtime import ShardedChainSession

        program = parse_program(
            "input A(n, n); input D(n, n); B := A * D; output B;")
        with pytest.raises(ValueError, match="chain-shaped"):
            ShardedChainSession(program,
                               {"A": _operator(16), "D": _operator(16)},
                               nodes=2)

    def test_auto_plan_small_n_stays_single_process(self):
        from repro.frontend import parse_program
        from repro.runtime import ShardedChainSession, open_session

        program = parse_program(CHAIN_SRC)
        session = open_session(program, {"A": _operator(48)}, nodes=4)
        assert session.plan.nodes == 1
        assert not isinstance(session, ShardedChainSession)

    def test_replan_monitor_falls_back_when_ipc_tax_dominates(self):
        from repro.frontend import parse_program
        from repro.runtime import (FactoredUpdate, ShardedChainSession,
                                   open_session)

        program = parse_program(CHAIN_SRC)
        a = _operator(96, seed=6)
        monitor = open_session(program, {"A": a.copy()},
                               plan=_sharded_plan(2), batch="off",
                               replan={"check_every": 2})
        plain = open_session(program, {"A": a.copy()}, plan="incr",
                             backend="dense", mode="interpret", batch="off")
        assert isinstance(monitor.session, ShardedChainSession)
        for u, v in _stream(96, 4, seed=8):
            monitor.apply_update(FactoredUpdate("A", u, v))
            plain.apply_update(FactoredUpdate("A", u, v))
        # At this size the comm-cost term dwarfs the per-shard saving:
        # the monitor must have dropped back to a single process.
        assert monitor.switch_count >= 1
        assert not isinstance(monitor.session, ShardedChainSession)
        assert monitor.plan.nodes == 1
        np.testing.assert_allclose(monitor["C"], plain["C"],
                                   rtol=1e-9, atol=1e-12)


class TestPlannerNodesGrid:
    def test_sharded_cells_priced_only_when_requested(self):
        from repro.frontend import parse_program
        from repro.planner import rank_program

        program = parse_program(CHAIN_SRC)
        inputs = {"A": np.ones((256, 256))}
        plain = rank_program(program, inputs)
        assert all(c.nodes == 1 for c in plain)
        gridded = rank_program(program, inputs, nodes=(1, 4))
        assert any(c.nodes == 4 for c in gridded)
        sharded_cells = [c for c in gridded if c.nodes == 4]
        assert all(c.strategy == "INCR" and c.backend == "dense"
                   and c.mode == "interpret" for c in sharded_cells)
        assert all(np.isfinite(c.predicted_time) for c in sharded_cells)

    def test_large_n_prefers_sharding_small_n_does_not(self):
        from repro.frontend import parse_program
        from repro.planner import WorkloadStats, rank_program

        program = parse_program(CHAIN_SRC)
        big = rank_program(program, {"A": np.ones((2048, 2048))},
                           stats=WorkloadStats(n=2048),
                           nodes=(1, 4))
        assert big[0].nodes == 4
        assert big[0].label.endswith("/x4")
        small = rank_program(program, {"A": np.ones((32, 32))},
                             nodes=(1, 4))
        assert small[0].nodes == 1


class TestSimulatedAccounting:
    """Satellite bugfix: broadcast bytes follow the *cluster*, not the
    tile grid — ``add_lowrank`` ships the factor pair once per node."""

    def test_broadcast_counts_once_per_node(self):
        from repro.distributed import BlockMatrix, Cluster, ClusterConfig

        n, tile_grid = 32, 4  # 16 tiles on a 4-worker (2x2) cluster
        cluster = Cluster(config=ClusterConfig(grid=2))
        workers = cluster.config.workers
        assert workers != tile_grid * tile_grid  # the bug's precondition
        engine = DistributedEngine(cluster)
        a = BlockMatrix.from_dense(np.eye(n), tile_grid)
        u = np.ones((n, 2))
        v = np.ones((n, 2))
        engine.add_lowrank(a, u, v)
        expected = (u.nbytes + v.nbytes) * workers
        assert cluster.comm.broadcast_bytes == expected
        [event] = [e for e in cluster.comm.events if e.kind == "broadcast"]
        assert event.messages == workers
