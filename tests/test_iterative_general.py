"""General form T_{i+1} = A T_i + B: all strategies, all models."""

import numpy as np
import pytest

from repro.cost import Counter
from repro.iterative import (
    Model,
    ReevalGeneral,
    make_general,
)
from repro.workloads import row_update_factors, spectral_normalized

MODELS = [Model.linear(), Model.exponential(), Model.skip(2),
          Model.skip(4), Model.skip(8)]
STRATS = ["REEVAL", "INCR", "HYBRID"]


def truth_t(a, b, t0, k):
    t = t0
    for _ in range(k):
        t = a @ t + (b if b is not None else 0.0)
    return t


def _data(rng, n=9, p=3):
    a = spectral_normalized(rng, n)
    b = rng.normal(size=(n, p))
    t0 = rng.normal(size=(n, p))
    return a, b, t0


@pytest.mark.parametrize("model", MODELS, ids=lambda m: m.name)
@pytest.mark.parametrize("strategy", STRATS)
class TestCorrectness:
    def test_initial_value(self, model, strategy, rng):
        a, b, t0 = _data(rng)
        maintainer = make_general(strategy, a, b, t0, 16, model)
        np.testing.assert_allclose(
            maintainer.result(), truth_t(a, b, t0, 16), atol=1e-9
        )

    def test_update_stream_on_a(self, model, strategy, rng):
        n, p, k = 9, 3, 16
        a, b, t0 = _data(rng, n, p)
        maintainer = make_general(strategy, a, b, t0, k, model)
        current = a.copy()
        for u, v in row_update_factors(rng, n, n, 4, scale=0.05):
            current = current + u @ v.T
            maintainer.refresh(u, v)
        np.testing.assert_allclose(
            maintainer.result(), truth_t(current, b, t0, k), atol=1e-8
        )

    def test_homogeneous_b_none(self, model, strategy, rng):
        n, p, k = 9, 2, 16
        a, _, t0 = _data(rng, n, p)
        maintainer = make_general(strategy, a, None, t0, k, model)
        current = a.copy()
        for u, v in row_update_factors(rng, n, n, 3, scale=0.05):
            current = current + u @ v.T
            maintainer.refresh(u, v)
        np.testing.assert_allclose(
            maintainer.result(), truth_t(current, None, t0, k), atol=1e-8
        )

    def test_column_iterate_p1(self, model, strategy, rng):
        """p = 1, the PageRank shape (Fig. 3g's extreme case)."""
        n, k = 10, 16
        a = spectral_normalized(rng, n)
        b = rng.normal(size=(n, 1))
        t0 = rng.normal(size=(n, 1))
        maintainer = make_general(strategy, a, b, t0, k, model)
        u = np.zeros((n, 1)); u[4, 0] = 1.0
        v = 0.05 * rng.normal(size=(n, 1))
        maintainer.refresh(u, v)
        np.testing.assert_allclose(
            maintainer.result(), truth_t(a + u @ v.T, b, t0, k), atol=1e-9
        )


@pytest.mark.parametrize("model", MODELS, ids=lambda m: m.name)
class TestBUpdates:
    def test_refresh_b_incremental(self, model, rng):
        n, p, k = 9, 3, 16
        a, b, t0 = _data(rng, n, p)
        for strategy in STRATS:
            maintainer = make_general(strategy, a, b, t0, k, model)
            u = 0.1 * rng.normal(size=(n, 1))
            v = 0.1 * rng.normal(size=(p, 1))
            maintainer.refresh_b(u, v)
            np.testing.assert_allclose(
                maintainer.result(), truth_t(a, b + u @ v.T, t0, k),
                atol=1e-8, err_msg=f"{strategy}/{model.name}",
            )

    def test_refresh_b_without_b_rejected(self, model, rng):
        a, _, t0 = _data(rng)
        maintainer = ReevalGeneral(a, None, t0, 16, model)
        with pytest.raises(ValueError, match="no B input"):
            maintainer.refresh_b(np.ones((9, 1)), np.ones((3, 1)))


class TestMixedStreams:
    def test_interleaved_a_and_b_updates(self, rng):
        n, p, k = 8, 2, 16
        a, b, t0 = _data(rng, n, p)
        model = Model.exponential()
        maintainers = [make_general(s, a, b, t0, k, model) for s in STRATS]
        cur_a, cur_b = a.copy(), b.copy()
        for i in range(6):
            if i % 2 == 0:
                u = 0.05 * rng.normal(size=(n, 1))
                v = 0.05 * rng.normal(size=(n, 1))
                cur_a = cur_a + u @ v.T
                for mnt in maintainers:
                    mnt.refresh(u, v)
            else:
                u = 0.05 * rng.normal(size=(n, 1))
                v = 0.05 * rng.normal(size=(p, 1))
                cur_b = cur_b + u @ v.T
                for mnt in maintainers:
                    mnt.refresh_b(u, v)
        expected = truth_t(cur_a, cur_b, t0, k)
        for strategy, mnt in zip(STRATS, maintainers):
            np.testing.assert_allclose(
                mnt.result(), expected, atol=1e-8, err_msg=strategy
            )


class TestValidation:
    def test_b_shape_must_match_t0(self, rng):
        a = spectral_normalized(rng, 6)
        with pytest.raises(ValueError, match="must match"):
            ReevalGeneral(a, np.ones((6, 2)), np.ones((6, 3)), 4, Model.linear())

    def test_vector_t0_normalized(self, rng):
        a = spectral_normalized(rng, 6)
        maintainer = ReevalGeneral(a, None, np.ones(6), 4, Model.linear())
        assert maintainer.result().shape == (6, 1)

    def test_unknown_strategy_rejected(self, rng):
        a, b, t0 = _data(rng)
        with pytest.raises(ValueError, match="unknown strategy"):
            make_general("MAGIC", a, b, t0, 16, Model.linear())


class TestCostCrossover:
    """Fig. 3g's finding: HYBRID wins at p = 1, INCR wins at large p."""

    def _flops(self, strategy, n, p, k, rng):
        a = spectral_normalized(rng, n)
        b = None
        t0 = np.random.default_rng(1).normal(size=(n, p))
        counter = Counter()
        maintainer = make_general(strategy, a, b, t0, k, Model.linear(), counter)
        u = np.zeros((n, 1)); u[0, 0] = 1.0
        counter.reset()
        maintainer.refresh(u, 0.01 * np.ones((n, 1)))
        return counter.total_flops

    def test_hybrid_beats_incr_at_p1(self, rng):
        assert self._flops("HYBRID", 48, 1, 16, rng) < self._flops(
            "INCR", 48, 1, 16, rng
        )

    def test_incr_beats_hybrid_at_large_p(self, rng):
        assert self._flops("INCR", 32, 64, 16, rng) < self._flops(
            "HYBRID", 32, 64, 16, rng
        )

    def test_incr_exp_beats_reeval_exp_at_large_p(self, rng):
        n, p, k = 32, 48, 16
        a = spectral_normalized(rng, n)
        b = np.random.default_rng(2).normal(size=(n, p))
        t0 = np.random.default_rng(3).normal(size=(n, p))
        flops = {}
        for strategy in ("REEVAL", "INCR"):
            counter = Counter()
            maintainer = make_general(strategy, a, b, t0, k,
                                      Model.exponential(), counter)
            counter.reset()
            u = np.zeros((n, 1)); u[0, 0] = 1.0
            maintainer.refresh(u, 0.01 * np.ones((n, 1)))
            flops[strategy] = counter.total_flops
        assert flops["INCR"] < flops["REEVAL"]
