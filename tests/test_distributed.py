"""Distributed simulator: partitioning, block algebra, cost accounting."""

import numpy as np
import pytest

from repro.distributed import (
    BlockMatrix,
    Cluster,
    ClusterConfig,
    DistributedEngine,
    DistributedIncrementalPowers,
    DistributedReevalPowers,
    GridPartitioner,
    hybrid_extra_bytes,
)
from repro.iterative import Model
from repro.workloads import spectral_normalized


class TestPartitioner:
    def test_balanced_bounds(self):
        part = GridPartitioner(10, 10, 3)
        sizes = [b - a for a, b in part.row_bounds]
        assert sum(sizes) == 10
        assert max(sizes) - min(sizes) <= 1

    def test_split_assemble_roundtrip(self, rng):
        dense = rng.normal(size=(11, 7))
        part = GridPartitioner(11, 7, 3)
        np.testing.assert_array_equal(part.assemble(part.split(dense)), dense)

    def test_too_small_matrix_rejected(self):
        with pytest.raises(ValueError, match="too small"):
            GridPartitioner(2, 10, 3)

    def test_invalid_grid_rejected(self):
        with pytest.raises(ValueError):
            GridPartitioner(10, 10, 0)

    def test_hybrid_extra_bytes_is_one_copy(self):
        assert hybrid_extra_bytes(100, 50) == 100 * 50 * 8


class TestBlockMatrix:
    def test_from_dense_to_dense(self, rng):
        dense = rng.normal(size=(9, 9))
        np.testing.assert_array_equal(
            BlockMatrix.from_dense(dense, 3).to_dense(), dense
        )

    def test_shape_and_grid(self, rng):
        bm = BlockMatrix.from_dense(rng.normal(size=(8, 6)), 2)
        assert bm.shape == (8, 6) and bm.grid == 2

    def test_copy_is_deep(self, rng):
        bm = BlockMatrix.from_dense(rng.normal(size=(6, 6)), 2)
        clone = bm.copy()
        clone.tiles[(0, 0)][0, 0] = 99.0
        assert bm.tiles[(0, 0)][0, 0] != 99.0

    def test_nbytes(self, rng):
        bm = BlockMatrix.from_dense(rng.normal(size=(10, 10)), 2)
        assert bm.nbytes() == 100 * 8

    def test_wrong_tiles_rejected(self, rng):
        part = GridPartitioner(6, 6, 2)
        with pytest.raises(ValueError):
            BlockMatrix(part, {(0, 0): np.ones((3, 3))})


class TestEngineOps:
    @pytest.fixture
    def engine(self):
        return DistributedEngine(Cluster(ClusterConfig(grid=3)))

    def test_matmul_matches_dense(self, engine, rng):
        a = rng.normal(size=(12, 9))
        b = rng.normal(size=(9, 15))
        result = engine.matmul(
            BlockMatrix.from_dense(a, 3), BlockMatrix.from_dense(b, 3)
        )
        np.testing.assert_allclose(result.to_dense(), a @ b, atol=1e-10)

    def test_matmul_shape_mismatch(self, engine, rng):
        a = BlockMatrix.from_dense(rng.normal(size=(6, 6)), 3)
        b = BlockMatrix.from_dense(rng.normal(size=(7, 7)), 3)
        with pytest.raises(ValueError):
            engine.matmul(a, b)

    def test_add_and_scale_local(self, engine, rng):
        a = rng.normal(size=(9, 9))
        b = rng.normal(size=(9, 9))
        bm_a = BlockMatrix.from_dense(a, 3)
        bm_b = BlockMatrix.from_dense(b, 3)
        total = engine.add(bm_a, bm_b)
        np.testing.assert_allclose(total.to_dense(), a + b)
        np.testing.assert_allclose(
            engine.scale(2.0, bm_a).to_dense(), 2 * a
        )
        comm_steps = [s for s in engine.cluster.steps if s.max_bytes_in > 0]
        assert not comm_steps  # element-wise ops ship zero bytes

    def test_add_lowrank_in_place(self, engine, rng):
        a = rng.normal(size=(9, 9))
        bm = BlockMatrix.from_dense(a, 3)
        u = rng.normal(size=(9, 2))
        v = rng.normal(size=(9, 2))
        engine.add_lowrank(bm, u, v)
        np.testing.assert_allclose(bm.to_dense(), a + u @ v.T, atol=1e-12)

    def test_mat_lowrank(self, engine, rng):
        a = rng.normal(size=(9, 9))
        u = rng.normal(size=(9, 3))
        got = engine.mat_lowrank(BlockMatrix.from_dense(a, 3), u)
        np.testing.assert_allclose(got, a @ u, atol=1e-10)

    def test_matT_lowrank(self, engine, rng):
        a = rng.normal(size=(9, 9))
        v = rng.normal(size=(9, 2))
        got = engine.matT_lowrank(BlockMatrix.from_dense(a, 3), v)
        np.testing.assert_allclose(got, a.T @ v, atol=1e-10)


class TestCostAccounting:
    def test_matmul_shuffles_quadratic_bytes(self, rng):
        n, g = 30, 3
        cluster = Cluster(ClusterConfig(grid=g))
        engine = DistributedEngine(cluster)
        a = BlockMatrix.from_dense(rng.normal(size=(n, n)), g)
        engine.matmul(a, a)
        step = cluster.steps[-1]
        tile = (n // g) ** 2 * 8
        assert step.max_bytes_in == 2 * (g - 1) * tile

    def test_lowrank_broadcast_is_linear_bytes(self, rng):
        n, g, k = 30, 3, 2
        cluster = Cluster(ClusterConfig(grid=g))
        engine = DistributedEngine(cluster)
        a = BlockMatrix.from_dense(rng.normal(size=(n, n)), g)
        engine.add_lowrank(a, rng.normal(size=(n, k)), rng.normal(size=(n, k)))
        step = cluster.steps[-1]
        assert step.max_bytes_in == 2 * n * k * 8

    def test_elapsed_accumulates(self, rng):
        cluster = Cluster(ClusterConfig(grid=2))
        engine = DistributedEngine(cluster)
        a = BlockMatrix.from_dense(rng.normal(size=(8, 8)), 2)
        assert cluster.elapsed == 0.0
        engine.matmul(a, a)
        first = cluster.elapsed
        engine.matmul(a, a)
        assert cluster.elapsed > first

    def test_reset_clears_clock_not_state(self, rng):
        cluster = Cluster(ClusterConfig(grid=2))
        engine = DistributedEngine(cluster)
        a = BlockMatrix.from_dense(rng.normal(size=(8, 8)), 2)
        engine.matmul(a, a)
        cluster.reset()
        assert cluster.elapsed == 0.0 and not cluster.steps

    def test_breakdown_by_label(self, rng):
        cluster = Cluster(ClusterConfig(grid=2))
        engine = DistributedEngine(cluster)
        a = BlockMatrix.from_dense(rng.normal(size=(8, 8)), 2)
        engine.matmul(a, a)
        engine.add(a, a)
        breakdown = cluster.breakdown()
        assert set(breakdown) == {"matmul", "add"}


class TestDistributedPowers:
    def test_reeval_and_incr_agree(self, rng):
        n, k, g = 24, 8, 2
        a = spectral_normalized(rng, n)
        reeval = DistributedReevalPowers(
            a, k, Model.exponential(), Cluster(ClusterConfig(grid=g))
        )
        incr = DistributedIncrementalPowers(
            a, k, Model.exponential(), Cluster(ClusterConfig(grid=g))
        )
        for _ in range(3):
            u = np.zeros((n, 1)); u[int(rng.integers(0, n)), 0] = 1.0
            v = 0.05 * rng.normal(size=(n, 1))
            reeval.refresh(u, v)
            incr.refresh(u, v)
        np.testing.assert_allclose(reeval.result(), incr.result(), atol=1e-9)
        np.testing.assert_allclose(
            incr.result(),
            np.linalg.matrix_power(reeval.a.to_dense(), k),
            atol=1e-9,
        )

    def test_incr_ships_fewer_bytes(self, rng):
        # Needs k << n (the paper's regime): factor broadcasts are O(nk)
        # against O(n^2/g) shuffled tiles per product.
        n, k, g = 200, 8, 4
        a = spectral_normalized(rng, n)
        reeval_cluster = Cluster(ClusterConfig(grid=g))
        incr_cluster = Cluster(ClusterConfig(grid=g))
        reeval = DistributedReevalPowers(a, k, Model.exponential(), reeval_cluster)
        incr = DistributedIncrementalPowers(a, k, Model.exponential(), incr_cluster)
        reeval_cluster.reset()
        incr_cluster.reset()
        u = np.zeros((n, 1)); u[0, 0] = 1.0
        v = 0.01 * np.ones((n, 1))
        reeval.refresh(u, v)
        incr.refresh(u, v)
        assert incr_cluster.total_bytes < reeval_cluster.total_bytes

    def test_fig3f_trend(self, rng):
        """REEVAL speeds up with workers; INCR stays comparatively flat."""
        n, k = 120, 16
        a = spectral_normalized(rng, n, 0.9)
        reeval_times, incr_times = [], []
        for g in (2, 4, 8):
            reeval_cluster = Cluster(ClusterConfig.laptop_scale(g))
            incr_cluster = Cluster(ClusterConfig.laptop_scale(g))
            reeval = DistributedReevalPowers(a, k, Model.exponential(),
                                             reeval_cluster)
            incr = DistributedIncrementalPowers(a, k, Model.exponential(),
                                                incr_cluster)
            reeval_cluster.reset()
            incr_cluster.reset()
            u = np.zeros((n, 1)); u[0, 0] = 1.0
            v = 0.01 * np.ones((n, 1))
            reeval.refresh(u, v)
            incr.refresh(u, v)
            reeval_times.append(reeval_cluster.elapsed)
            incr_times.append(incr_cluster.elapsed)
        assert reeval_times[0] > reeval_times[-1] * 2  # strong scaling
        incr_spread = max(incr_times) / min(incr_times)
        reeval_spread = reeval_times[0] / reeval_times[-1]
        assert incr_spread < reeval_spread  # INCR far less node-sensitive
        assert all(i < r for i, r in zip(incr_times, reeval_times))


class TestSparseConstruction:
    """BlockMatrix.from_sparse: graph inputs never materialize densely."""

    def test_from_sparse_round_trips(self, rng):
        sparse = pytest.importorskip("scipy.sparse")
        n = 120
        dense = (rng.random((n, n)) < 0.03) * rng.normal(size=(n, n))
        bm = BlockMatrix.from_sparse(sparse.csr_array(dense), grid=3)
        assert bm.shape == (n, n)
        np.testing.assert_array_equal(bm.to_dense(), dense)

    def test_from_sparse_keeps_tiles_compressed(self, rng):
        sparse = pytest.importorskip("scipy.sparse")
        n = 256
        dense = (rng.random((n, n)) < 0.01) * rng.normal(size=(n, n))
        bm = BlockMatrix.from_sparse(sparse.csr_array(dense), grid=2)
        assert bm.nbytes() < dense.nbytes / 4

    def test_from_dense_accepts_sparse_source(self, rng):
        sparse = pytest.importorskip("scipy.sparse")
        n = 90
        dense = (rng.random((n, n)) < 0.05) * rng.normal(size=(n, n))
        bm = BlockMatrix.from_dense(sparse.csr_array(dense), grid=3)
        np.testing.assert_array_equal(bm.to_dense(), dense)

    def test_from_sparse_rejects_dense_input(self, rng):
        pytest.importorskip("scipy.sparse")
        with pytest.raises(TypeError, match="scipy.sparse"):
            BlockMatrix.from_sparse(rng.normal(size=(8, 8)), grid=2)

    def test_from_sparse_with_dense_backend_materializes_tiles(self, rng):
        sparse = pytest.importorskip("scipy.sparse")
        n = 64
        dense = (rng.random((n, n)) < 0.1) * rng.normal(size=(n, n))
        bm = BlockMatrix.from_sparse(sparse.csr_array(dense), grid=2,
                                     backend="dense")
        assert all(isinstance(t, np.ndarray) for t in bm.tiles.values())
        np.testing.assert_array_equal(bm.to_dense(), dense)
