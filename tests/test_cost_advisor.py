"""Strategy advisor: mechanized Section 5 who-wins analysis."""

import numpy as np
try:
    import scipy  # noqa: F401
except ImportError:
    scipy = None

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cost import counters
from repro.cost.advisor import (
    Recommendation,
    best_general,
    best_powers,
    recommend_general,
    recommend_powers,
    speedup_estimate,
)
from repro.iterative import make_powers, parse_model


class TestPowersAdvice:
    def test_incr_exp_wins_at_paper_regime(self):
        # k << n: the Section 5.2 analysis says INCR-EXP dominates.
        best = best_powers(n=10_000, k=16)
        assert best.label == "INCR-EXP"

    def test_ranking_is_sorted(self):
        ranked = recommend_powers(n=1000, k=16)
        times = [r.time for r in ranked]
        assert times == sorted(times)

    def test_all_cells_present_for_power_of_two_k(self):
        ranked = recommend_powers(n=100, k=8)
        labels = {r.label for r in ranked}
        # 2 strategies x (LIN, EXP, SKIP-2, SKIP-4).
        assert labels == {
            "REEVAL-LIN", "REEVAL-EXP", "REEVAL-SKIP-2", "REEVAL-SKIP-4",
            "INCR-LIN", "INCR-EXP", "INCR-SKIP-2", "INCR-SKIP-4",
        }

    def test_non_power_of_two_k_limits_to_linear(self):
        ranked = recommend_powers(n=100, k=5)
        assert {r.label for r in ranked} == {"REEVAL-LIN", "INCR-LIN"}

    def test_memory_budget_excludes_incremental(self):
        # INCR must store every scheduled power; a budget of barely one
        # matrix forces REEVAL.
        n, k = 100, 16
        ranked = recommend_powers(n, k, memory_budget=1.5 * n * n)
        assert all(r.strategy == "REEVAL" for r in ranked)

    def test_impossible_budget_raises(self):
        with pytest.raises(ValueError, match="no configuration fits"):
            recommend_powers(100, 16, memory_budget=10.0)

    def test_speedup_estimate_positive(self):
        ranked = recommend_powers(n=10_000, k=16)
        assert speedup_estimate(ranked) > 10.0

    def test_advice_matches_counted_flops(self, rng):
        # The advisor's ordering must agree with actual counted FLOPs
        # of the real maintainers (n=64, k=8, one rank-1 refresh).
        n, k = 64, 8
        a = 0.5 * rng.normal(size=(n, n))
        u = np.zeros((n, 1))
        u[3, 0] = 1.0
        v = 0.01 * rng.normal(size=(n, 1))
        measured = {}
        for label in ("REEVAL-EXP", "INCR-EXP", "INCR-LIN"):
            strategy, model = label.split("-", 1)
            counter = counters.Counter()
            maintainer = make_powers(strategy, a, k, parse_model(model),
                                     counter)
            counter.reset()
            maintainer.refresh(u, v)
            measured[label] = counter.total_flops
        predictions = {r.label: r.time for r in recommend_powers(n, k)}
        # Pairwise order agreement between prediction and measurement.
        labels = list(measured)
        for i, x in enumerate(labels):
            for y in labels[i + 1:]:
                assert ((predictions[x] < predictions[y])
                        == (measured[x] < measured[y])), (x, y)


class TestGeneralAdvice:
    def test_hybrid_wins_at_p_equals_one(self):
        # Fig. 3g / Section 5.3.2: p = 1 favours hybrid evaluation.
        best = best_general(n=30_000, p=1, k=16)
        assert best.strategy == "HYBRID"

    def test_incr_wins_at_large_p(self):
        # p > n: incremental evaluation dominates (Section 5.3.2).
        best = best_general(n=1000, p=4000, k=16)
        assert best.strategy == "INCR"

    def test_skip_considered_for_hybrid(self):
        # Fig. 3h: the Skip model has the lowest incremental refresh
        # time for the LR workload (n=30K, p=1K, k=16).
        ranked = recommend_general(n=30_000, p=1000, k=16)
        non_reeval = [r for r in ranked if r.strategy != "REEVAL"]
        assert any(r.model == "skip" for r in non_reeval[:3])

    def test_p_validation(self):
        with pytest.raises(ValueError, match="p >= 1"):
            recommend_general(100, 0, 8)

    def test_labels_well_formed(self):
        for rec in recommend_general(100, 10, 8):
            assert rec.strategy in ("REEVAL", "INCR", "HYBRID")
            assert rec.label.startswith(rec.strategy)

    @settings(max_examples=30, deadline=None)
    @given(
        n=st.integers(min_value=10, max_value=100_000),
        p=st.integers(min_value=1, max_value=10_000),
        log_k=st.integers(min_value=1, max_value=8),
    )
    def test_property_best_never_beaten_by_any_cell(self, n, p, log_k):
        k = 2 ** log_k
        ranked = recommend_general(n, p, k)
        best = ranked[0]
        assert all(best.time <= r.time for r in ranked)

    @settings(max_examples=30, deadline=None)
    @given(
        n=st.integers(min_value=10, max_value=10_000),
        log_k=st.integers(min_value=1, max_value=8),
    )
    def test_property_powers_speedup_at_least_one(self, n, log_k):
        ranked = recommend_powers(n, 2 ** log_k)
        assert speedup_estimate(ranked) >= 1.0


class TestRecommendationDataclass:
    def test_label_rendering(self):
        rec = Recommendation("INCR", "skip", 4, 1.0, 2.0)
        assert rec.label == "INCR-SKIP-4"
        rec = Recommendation("REEVAL", "linear", None, 1.0, 2.0)
        assert rec.label == "REEVAL-LIN"

    def test_frozen(self):
        rec = Recommendation("INCR", "exponential", None, 1.0, 2.0)
        with pytest.raises(AttributeError):
            rec.time = 5.0


class TestDensityAwareAdvice:
    """The nnz-aware grid: backend recommendations follow density."""

    # Without scipy the grid legitimately collapses to dense-only.
    pytestmark = pytest.mark.skipif(
        scipy is None,
        reason="sparse backend needs scipy")

    def test_rankings_flip_dense_to_sparse_as_density_drops(self):
        assert best_general(2000, 1, 16, density=1.0).backend == "dense"
        assert best_general(2000, 1, 16, density=0.01).backend == "sparse"
        assert best_powers(2000, 16, density=1.0).backend == "dense"
        assert best_powers(2000, 16, density=0.01).backend == "sparse"

    def test_flip_is_monotone_in_density(self):
        backends = [best_powers(2000, 16, density=d).backend
                    for d in (1.0, 0.5, 0.2, 0.05, 0.01, 0.001)]
        # Once sparse wins at some density it keeps winning below it.
        assert backends == sorted(backends)  # "dense" < "sparse"

    def test_sparse_labels_are_suffixed(self):
        ranked = recommend_powers(2000, 8, density=0.01)
        sparse = [r for r in ranked if r.backend == "sparse"]
        assert sparse and all(r.label.endswith("@sparse") for r in sparse)
        dense = [r for r in ranked if r.backend == "dense"]
        assert dense and all("@" not in r.label for r in dense)

    def test_grid_covers_both_backends(self):
        ranked = recommend_general(500, 4, 8, density=0.05)
        assert {r.backend for r in ranked} == {"dense", "sparse"}

    def test_dense_default_unchanged_without_density(self):
        ranked = recommend_powers(100, 8)
        assert all(r.backend == "dense" for r in ranked)

    def test_refreshes_amortize_setup(self):
        # One-shot: plain re-evaluation family competitive; long stream:
        # maintained-view configurations must win (Fig. 3h regime).
        long_run = best_general(1000, 16, 16, density=1.0, refreshes=500)
        assert long_run.strategy in ("INCR", "HYBRID")

    def test_as_dict(self):
        rec = recommend_general(100, 1, 8, density=0.5)[0]
        data = rec.as_dict()
        assert set(data) == {"label", "strategy", "model", "s", "backend",
                             "time", "space"}

    def test_memory_budget_applies_to_grid(self):
        n = 2000
        ranked = recommend_powers(n, 16, density=0.01,
                                  memory_budget=3.0 * n * n)
        assert all(r.space <= 3.0 * n * n for r in ranked)

    def test_huge_dense_operator_does_not_overflow(self):
        # c = density*n is large; power densities must saturate to 1.0
        # in log space instead of overflowing (c**i for deep schedules).
        ranked = recommend_powers(200_000, 64, density=0.5)
        assert ranked and all(r.time > 0 for r in ranked)
