"""Randomized stream differential harness for plan-driven batching.

The ISSUE 5 headline test work: batched sessions must be
indistinguishable (up to floating-point re-association) from the
unit-at-a-time interpreter oracle across the whole scenario grid —
program shape x update stream distribution (incl. Zipf-repeated
targets) x backend x mode x batch width — including flush-on-read
mid-stream and replan-flip interleavings.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from exprgen import session_scenario, shared_family
from stream_helpers import zipf_row_updates

from repro.planner import MaintenancePlan, StreamSketch, WorkloadStats, rank_program
from repro.runtime import IVMSession, ReevalSession, ReplanMonitor, open_session


def _sparse_available() -> bool:
    try:
        import scipy  # noqa: F401

        return True
    except ImportError:
        return False


BACKENDS = ("dense",) + (("sparse",) if _sparse_available() else ())

#: (strategy, mode) cells sessions support; REEVAL has no mode axis.
SESSION_CONFIGS = (
    ("INCR", "interpret"),
    ("INCR", "codegen"),
    ("REEVAL", "interpret"),
)


def _session(program, inputs, strategy, mode, backend):
    inputs = {name: arr.copy() for name, arr in inputs.items()}
    if strategy == "REEVAL":
        return ReevalSession(program, inputs, backend=backend)
    return IVMSession(program, inputs, mode=mode, backend=backend)


def _assert_views_close(session, oracle, program, context=""):
    for name in program.input_names + program.view_names:
        got = session[name]
        want = oracle[name]
        scale = max(1.0, float(np.max(np.abs(want))))
        np.testing.assert_allclose(
            got, want, rtol=1e-7, atol=1e-8 * scale,
            err_msg=f"{name} diverged {context}",
        )


class TestDifferentialHarness:
    """Batched sessions vs the unit-at-a-time interpreter oracle."""

    @settings(max_examples=25, deadline=None)
    @given(data=st.data())
    def test_batched_stream_matches_unit_oracle(self, data):
        program, n, inputs = data.draw(session_scenario())
        theta = data.draw(st.sampled_from([0.0, 1.5, 3.0]))
        rank = data.draw(st.sampled_from([1, 1, 2]))
        width = data.draw(st.sampled_from([2, 3, 5, 8]))
        backend = data.draw(st.sampled_from(BACKENDS))
        strategy, mode = data.draw(st.sampled_from(SESSION_CONFIGS))
        count = data.draw(st.integers(5, 16))
        read_at = data.draw(st.integers(0, count - 1))

        rng = np.random.default_rng(data.draw(st.integers(0, 2 ** 16)))
        updates = zipf_row_updates(rng, n, count, theta,
                                   target=program.input_names[0], rank=rank)

        oracle = _session(program, inputs, "INCR", "interpret", "dense")
        batched = _session(program, inputs, strategy, mode, backend)
        batched.set_batching(width)

        for index, update in enumerate(updates):
            oracle.apply_update(update)
            batched.apply_update(update)
            if index == read_at:
                # Flush-on-read: a mid-stream read must never lag the
                # updates already issued, whatever the batch fill.
                _assert_views_close(batched, oracle, program,
                                    context=f"at mid-stream read {index}")
        _assert_views_close(batched, oracle, program, context="at stream end")
        stats = batched.batch_stats
        assert stats.updates == count
        assert stats.stacked_width == count * rank

    @settings(max_examples=10, deadline=None)
    @given(data=st.data())
    def test_shared_family_tenants_match_unit_oracle(self, data):
        """Tenant families with aliased inputs (the latent ``exprgen``
        gap: scenarios never shared sub-terms across sessions) behave
        identically under batching, program by program."""
        programs, n, inputs = data.draw(shared_family())
        width = data.draw(st.sampled_from([2, 4]))
        count = data.draw(st.integers(4, 10))
        rng = np.random.default_rng(data.draw(st.integers(0, 2 ** 16)))
        updates = zipf_row_updates(rng, n, count, 1.5)

        for program in programs:
            oracle = _session(program, inputs, "INCR", "interpret", "dense")
            batched = _session(program, inputs, "INCR", "interpret", "dense")
            batched.set_batching(width)
            for update in updates:
                oracle.apply_update(update)
                batched.apply_update(update)
            _assert_views_close(batched, oracle, program,
                                context="shared-family tenant at stream end")

    @settings(max_examples=10, deadline=None)
    @given(data=st.data())
    def test_replan_flip_interleaving_flushes_pending(self, data):
        """A mid-stream ``with_plan`` switch must land pending deltas first."""
        program, n, inputs = data.draw(session_scenario())
        width = data.draw(st.sampled_from([3, 6]))
        count = data.draw(st.integers(6, 12))
        flip_at = data.draw(st.integers(1, count - 1))
        to_strategy = data.draw(st.sampled_from(["INCR", "REEVAL"]))
        to_backend = data.draw(st.sampled_from(BACKENDS))

        rng = np.random.default_rng(data.draw(st.integers(0, 2 ** 16)))
        updates = zipf_row_updates(rng, n, count, 2.0,
                                   target=program.input_names[0])

        oracle = _session(program, inputs, "INCR", "interpret", "dense")
        session = _session(program, inputs, "INCR", "interpret", "dense")
        session.set_batching(width)

        for index, update in enumerate(updates):
            oracle.apply_update(update)
            session.apply_update(update)
            if index == flip_at:
                plan = MaintenancePlan(to_strategy, backend=to_backend,
                                       batch_size=width)
                session = session.with_plan(plan)
                assert session.batch_size == width  # policy carried over
        _assert_views_close(session, oracle, program, context="after flip")

    def test_monitor_driven_replan_keeps_parity(self, rng):
        """ReplanMonitor probing/re-planning over a batched session."""
        program, n, inputs = self._fixed_scenario(rng)
        updates = zipf_row_updates(rng, n, 30, 2.0, target="A")

        oracle = _session(program, inputs, "INCR", "interpret", "dense")
        monitored = open_session(
            program, {k: v.copy() for k, v in inputs.items()},
            plan="incr", backend="dense", mode="interpret",
            refresh_count=len(updates), batch=4,
            replan={"check_every": 7, "probe_every": 5},
        )
        assert isinstance(monitored, ReplanMonitor)
        for update in updates:
            oracle.apply_update(update)
            monitored.apply_update(update)
        _assert_views_close(monitored.session, oracle, program,
                            context="after monitored stream")
        # The sketch followed the stream it supervised.
        assert monitored.stream_sketch.total == len(updates)

    @staticmethod
    def _fixed_scenario(rng):
        from repro.frontend import parse_program

        program = parse_program(
            "input A(n, n); B := A * A; C := B * B; output C;"
        )
        n = 8
        return program, n, {"A": 0.2 * rng.standard_normal((n, n))}


class TestFlushPolicies:
    def _open(self, rng, width, **kwargs):
        program, n, inputs = TestDifferentialHarness._fixed_scenario(rng)
        session = IVMSession(program, inputs, dims={"n": n})
        session.set_batching(width, **kwargs)
        return session, n

    def test_width_triggers_flush(self, rng):
        session, n = self._open(rng, 3)
        for update in zipf_row_updates(rng, n, 7, 1.0):
            session.apply_update(update)
        assert session.batch_stats.flushes == 2       # 2 full batches
        assert len(session._batcher.collector) == 1   # 1 still pending

    def test_max_staleness_bounds_pending(self, rng):
        session, n = self._open(rng, 16, max_staleness=2)
        for update in zipf_row_updates(rng, n, 6, 1.0):
            session.apply_update(update)
        assert session.batch_stats.flushes == 3
        assert len(session._batcher.collector) == 0

    def test_read_flushes(self, rng):
        session, n = self._open(rng, 16)
        for update in zipf_row_updates(rng, n, 5, 1.0):
            session.apply_update(update)
        assert len(session._batcher.collector) == 5
        session.view("C")
        assert len(session._batcher.collector) == 0
        assert session.batch_stats.flushes == 1

    def test_revalidate_flushes(self, rng):
        session, n = self._open(rng, 16)
        for update in zipf_row_updates(rng, n, 4, 1.0):
            session.apply_update(update)
        assert session.revalidate() < 1e-8  # drift probe saw the updates
        assert len(session._batcher.collector) == 0

    def test_target_change_flushes(self, rng):
        from repro.compiler import Program, Statement
        from repro.expr import MatrixSymbol, matmul
        from repro.runtime import FactoredUpdate

        n = 6
        a, b = MatrixSymbol("A", n, n), MatrixSymbol("B", n, n)
        v0 = MatrixSymbol("V0", n, n)
        program = Program([a, b], [Statement(v0, matmul(a, b))])
        session = IVMSession(program, {
            "A": rng.standard_normal((n, n)),
            "B": rng.standard_normal((n, n)),
        })
        session.set_batching(8)
        session.apply_update(FactoredUpdate("A", rng.standard_normal((n, 1)),
                                            rng.standard_normal((n, 1))))
        session.apply_update(FactoredUpdate("B", rng.standard_normal((n, 1)),
                                            rng.standard_normal((n, 1))))
        # The A-batch flushed when the B update arrived.
        assert session.batch_stats.flushes == 1
        assert session._batcher.target == "B"

    def test_unknown_target_rejected_at_enqueue(self, rng):
        from repro.runtime import FactoredUpdate

        session, n = self._open(rng, 4)
        with pytest.raises(KeyError, match="no trigger"):
            session.apply_update(FactoredUpdate("Z", np.ones((n, 1)),
                                                np.ones((n, 1))))

    def test_disabling_batching_flushes(self, rng):
        session, n = self._open(rng, 16)
        updates = zipf_row_updates(rng, n, 3, 1.0)
        for update in updates:
            session.apply_update(update)
        before = session["C"].copy()  # read flushes everything pending
        session.set_batching(None)
        assert session.batch_stats is None
        # Disabling did not lose or re-apply anything.
        np.testing.assert_array_equal(session["C"], before)


class TestBatchingValidation:
    def test_open_session_rejects_bad_batch(self, rng):
        program, n, inputs = TestDifferentialHarness._fixed_scenario(rng)
        with pytest.raises(ValueError, match="batch must be"):
            open_session(program, inputs, batch="sometimes")

    def test_open_session_rejects_zero_width(self, rng):
        program, n, inputs = TestDifferentialHarness._fixed_scenario(rng)
        with pytest.raises(ValueError, match="width must be >= 1"):
            open_session(program, inputs, batch=0)

    def test_open_session_batch_true_means_auto(self, rng):
        program, n, inputs = TestDifferentialHarness._fixed_scenario(rng)
        session = open_session(program, inputs, batch=True,
                               refresh_count=500)
        assert session.batch_size == (session.plan.batch_size or 1)
        assert session._auto_batch

    def test_stats_survive_width_retune_and_switch(self, rng):
        program, n, inputs = TestDifferentialHarness._fixed_scenario(rng)
        session = IVMSession(program, inputs, dims={"n": n})
        session.set_batching(3)
        updates = zipf_row_updates(rng, n, 6, 2.0)
        for update in updates[:3]:
            session.apply_update(update)
        session.set_batching(5)      # re-tune: stats must carry over
        assert session.batch_stats.updates == 3
        for update in updates[3:]:
            session.apply_update(update)
        switched = session.with_plan(MaintenancePlan("REEVAL", batch_size=5))
        assert switched.batch_stats.updates == 6  # spans the whole stream

    def test_session_batcher_rejects_width_one(self):
        from repro.runtime import SessionBatcher

        with pytest.raises(ValueError, match="per-update"):
            SessionBatcher(1)
        with pytest.raises(ValueError, match="max_staleness"):
            SessionBatcher(4, max_staleness=0)

    def test_set_batching_width_one_means_off(self, rng):
        program, n, inputs = TestDifferentialHarness._fixed_scenario(rng)
        session = IVMSession(program, inputs, dims={"n": n})
        session.set_batching(1)
        assert session.batch_size == 1
        assert session.batch_stats is None

    def test_batch_stats_compression_degenerate_cases(self):
        from repro.runtime import BatchStats

        assert BatchStats().compression == 1.0
        cancelled = BatchStats(stacked_width=4, compacted_width=0)
        assert cancelled.compression == 4.0

    def test_non_2d_factor_rejected(self, rng):
        from repro.delta.batch import BatchCollector

        with pytest.raises(ValueError, match="1- or 2-D"):
            BatchCollector().add(rng.normal(size=(2, 2, 2)),
                                 rng.normal(size=(2, 2, 2)))

    def test_float_distinct_fraction_resolves(self):
        from repro.planner import resolve_distinct_fraction

        assert resolve_distinct_fraction(None, 8) == 1.0
        assert resolve_distinct_fraction(0.25, 8) == 0.25
        # Clamped to the at-least-one-target floor.
        assert resolve_distinct_fraction(0.01, 8) == pytest.approx(1 / 8)


class TestStreamSketch:
    def test_empty_sketch_is_conservative(self):
        assert StreamSketch().fraction(32) == 1.0

    def test_width_one_is_always_distinct(self):
        sketch = StreamSketch()
        sketch.observe_key(3)
        assert sketch.fraction(1) == 1.0

    def test_skewed_stream_predicts_compression(self, rng):
        from repro.workloads.zipf import sample_rows

        hot = StreamSketch()
        for row in sample_rows(rng, 64, 400, 3.0):
            hot.observe_key(int(row))
        uniform = StreamSketch()
        for row in sample_rows(rng, 64, 400, 0.0):
            uniform.observe_key(int(row))
        assert hot.fraction(32) < 0.5 < uniform.fraction(32)

    def test_single_target_fraction_floor(self):
        sketch = StreamSketch()
        for _ in range(100):
            sketch.observe_key(0)
        assert sketch.fraction(16) == pytest.approx(1.0 / 16)

    def test_overflow_counts_as_distinct(self):
        sketch = StreamSketch(capacity=2)
        for key in range(10):
            sketch.observe_key(key)
        assert sketch.distinct_targets() == 10
        # 8/10 of the mass is untracked and assumed incompressible.
        assert sketch.fraction(8) > 0.8

    def test_observe_derives_column_keys(self, rng):
        from repro.runtime import FactoredUpdate

        sketch = StreamSketch()
        u = np.zeros((10, 2))
        u[4, 0] = 1.0
        u[7, 1] = 1.0
        sketch.observe(FactoredUpdate("A", u, rng.standard_normal((10, 2))))
        assert sketch.total == 2
        assert sketch.distinct_targets() == 2

    def test_price_batching_discounts_batched_cells(self, rng):
        """The opt-in ranking form prices cells at their batched cost."""
        from repro.frontend import parse_program

        program = parse_program("input A(n, n); B := A * A; output B;")
        inputs = {"A": rng.standard_normal((48, 48))}
        stats = WorkloadStats(n=1, refresh_count=500)
        plain = rank_program(program, inputs, stats=stats,
                             strategies=("REEVAL",), backends=["dense"])[0]
        priced = rank_program(program, inputs, stats=stats,
                              strategies=("REEVAL",), backends=["dense"],
                              price_batching=True)[0]
        assert priced.batch_size == plain.batch_size
        if plain.batch_size > 1:
            # One re-evaluation amortized across the batch must be
            # cheaper than one per update.
            assert priced.predicted_time < plain.predicted_time

    def test_sketch_raises_planned_width_under_skew(self, rng):
        """The Zipf-aware estimator makes batching look at least as good."""
        from repro.frontend import parse_program

        program = parse_program("input A(n, n); B := A * A; output B;")
        n = 64
        inputs = {"A": rng.standard_normal((n, n))}
        sketch = StreamSketch()
        for _ in range(300):
            sketch.observe_key(int(rng.integers(3)))  # 3 hot rows

        def best_incr(stats):
            ranked = rank_program(program, inputs, stats=stats,
                                  strategies=("INCR",), backends=["dense"])
            return ranked[0].batch_size

        base = best_incr(WorkloadStats(n=1, refresh_count=500))
        skewed = best_incr(WorkloadStats(n=1, refresh_count=500,
                                         distinct_fraction=sketch))
        assert skewed >= base
        assert skewed > 1
