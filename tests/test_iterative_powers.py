"""Matrix powers maintainers: correctness, widths, costs, memory."""

import numpy as np
import pytest

from repro.cost import Counter
from repro.iterative import IncrementalPowers, Model, ReevalPowers
from repro.workloads import row_update_factors, spectral_normalized

MODELS = [Model.linear(), Model.exponential(), Model.skip(2),
          Model.skip(4), Model.skip(8)]


def truth_power(a, k):
    return np.linalg.matrix_power(a, k)


@pytest.mark.parametrize("model", MODELS, ids=lambda m: m.name)
class TestCorrectness:
    def test_initial_value(self, model, rng):
        a = spectral_normalized(rng, 10)
        for maintainer in (ReevalPowers(a, 16, model),
                           IncrementalPowers(a, 16, model)):
            np.testing.assert_allclose(
                maintainer.result(), truth_power(a, 16), atol=1e-10
            )

    def test_stream_of_rank1_updates(self, model, rng):
        n, k = 10, 16
        a = spectral_normalized(rng, n)
        reeval = ReevalPowers(a, k, model)
        incr = IncrementalPowers(a, k, model)
        current = a.copy()
        for u, v in row_update_factors(rng, n, n, 5, scale=0.05):
            current = current + u @ v.T
            reeval.refresh(u, v)
            incr.refresh(u, v)
        expected = truth_power(current, k)
        np.testing.assert_allclose(reeval.result(), expected, atol=1e-9)
        np.testing.assert_allclose(incr.result(), expected, atol=1e-9)

    def test_all_scheduled_powers_maintained(self, model, rng):
        n, k = 8, 16
        a = spectral_normalized(rng, n)
        incr = IncrementalPowers(a, k, model)
        u = np.zeros((n, 1)); u[2, 0] = 1.0
        v = 0.1 * rng.normal(size=(n, 1))
        incr.refresh(u, v)
        new_a = a + u @ v.T
        for i in incr.schedule:
            np.testing.assert_allclose(
                incr.powers[i], truth_power(new_a, i), atol=1e-9,
                err_msg=f"P_{i} wrong under {model.name}",
            )

    def test_rank2_updates(self, model, rng):
        n, k = 9, 16
        a = spectral_normalized(rng, n)
        incr = IncrementalPowers(a, k, model)
        u = 0.1 * rng.normal(size=(n, 2))
        v = 0.1 * rng.normal(size=(n, 2))
        incr.refresh(u, v)
        np.testing.assert_allclose(
            incr.result(), truth_power(a + u @ v.T, k), atol=1e-9
        )


class TestCosts:
    def test_incr_exp_avoids_cubic_growth(self, rng):
        """Table 2: REEVAL-EXP is n^3 log k, INCR-EXP is n^2 k."""
        flops = {}
        for n in (16, 32, 64):
            a = spectral_normalized(np.random.default_rng(0), n)
            reeval_counter, incr_counter = Counter(), Counter()
            reeval = ReevalPowers(a, 16, Model.exponential(), reeval_counter)
            incr = IncrementalPowers(a, 16, Model.exponential(), incr_counter)
            u = np.zeros((n, 1)); u[0, 0] = 1.0
            v = 0.01 * np.ones((n, 1))
            reeval_counter.reset(); incr_counter.reset()
            reeval.refresh(u, v)
            incr.refresh(u, v)
            flops[n] = (reeval_counter.total_flops, incr_counter.total_flops)
        reeval_growth = flops[64][0] / flops[16][0]
        incr_growth = flops[64][1] / flops[16][1]
        assert reeval_growth > 40      # ~64x (cubic over two doublings)
        assert incr_growth < 22        # ~16x (quadratic over two doublings)

    def test_model_cost_ordering_for_incr(self, rng):
        """INCR: exponential < skip < linear in refresh FLOPs (Table 2)."""
        n, k = 24, 16
        a = spectral_normalized(rng, n)
        costs = {}
        for model in (Model.linear(), Model.skip(4), Model.exponential()):
            counter = Counter()
            maintainer = IncrementalPowers(a, k, model, counter)
            u = np.zeros((n, 1)); u[1, 0] = 1.0
            maintainer.refresh(u, 0.01 * np.ones((n, 1)))
            costs[model.name] = counter.total_flops
        assert costs["EXP"] < costs["SKIP-4"] < costs["LIN"]

    def test_no_matmul_wider_than_delta_in_incr(self, rng):
        """INCR refresh FLOPs stay ~n^2 * schedule width, far below one
        dense n^3 product."""
        n, k = 48, 16
        a = spectral_normalized(rng, n)
        counter = Counter()
        incr = IncrementalPowers(a, k, Model.exponential(), counter)
        u = np.zeros((n, 1)); u[0, 0] = 1.0
        incr.refresh(u, 0.01 * np.ones((n, 1)))
        dense_product = 2 * n**3
        assert counter.total_flops < 3 * dense_product


class TestMemory:
    def test_reeval_constant_in_k(self, rng):
        a = spectral_normalized(rng, 12)
        small = ReevalPowers(a, 4, Model.exponential())
        large = ReevalPowers(a, 64, Model.exponential())
        assert small.memory_bytes() == large.memory_bytes()

    def test_incr_grows_with_schedule(self, rng):
        a = spectral_normalized(rng, 12)
        exp = IncrementalPowers(a, 16, Model.exponential())
        lin = IncrementalPowers(a, 16, Model.linear())
        assert exp.memory_bytes() == len(exp.schedule) * 12 * 12 * 8
        assert lin.memory_bytes() > exp.memory_bytes()

    def test_delta_width_formula(self, rng):
        a = spectral_normalized(rng, 8)
        incr = IncrementalPowers(a, 16, Model.exponential())
        assert incr.delta_width() == 16
        assert incr.delta_width(8) == 8
        assert incr.delta_width(8, rank=2) == 16
