"""Dimension algebra and Shape behaviour."""

import pytest

from repro.expr.shapes import (
    DimSum,
    NamedDim,
    Shape,
    ShapeError,
    dim_add,
    dim_to_str,
    dims_equal,
    is_concrete,
)


class TestNamedDim:
    def test_equality_by_name(self):
        assert NamedDim("n") == NamedDim("n")
        assert NamedDim("n") != NamedDim("m")

    def test_hash_consistency(self):
        assert hash(NamedDim("n")) == hash(NamedDim("n"))
        assert len({NamedDim("n"), NamedDim("n"), NamedDim("m")}) == 2

    def test_rejects_empty_name(self):
        with pytest.raises(ValueError):
            NamedDim("")

    def test_rejects_non_string(self):
        with pytest.raises(ValueError):
            NamedDim(3)  # type: ignore[arg-type]

    def test_repr_is_name(self):
        assert repr(NamedDim("rows")) == "rows"

    def test_add_operator(self):
        n = NamedDim("n")
        assert n + 2 == DimSum((n,), 2)
        assert 2 + n == DimSum((n,), 2)


class TestDimAdd:
    def test_int_plus_int(self):
        assert dim_add(2, 3) == 5

    def test_int_plus_symbolic(self):
        n = NamedDim("n")
        result = dim_add(n, 4)
        assert isinstance(result, DimSum)
        assert result.const == 4
        assert result.atoms == (n,)

    def test_symbolic_plus_symbolic(self):
        n, m = NamedDim("n"), NamedDim("m")
        result = dim_add(n, m)
        assert isinstance(result, DimSum)
        assert result.atoms == (m, n)  # sorted by name

    def test_zero_plus_symbolic_is_symbolic(self):
        n = NamedDim("n")
        assert dim_add(0, n) is n or dim_add(0, n) == n

    def test_sum_normalization_is_order_independent(self):
        n, m = NamedDim("n"), NamedDim("m")
        assert dim_add(dim_add(n, m), 1) == dim_add(dim_add(m, 1), n)

    def test_rejects_bool(self):
        with pytest.raises(TypeError):
            dim_add(True, 1)

    def test_rejects_garbage(self):
        with pytest.raises(TypeError):
            dim_add("n", 1)  # type: ignore[arg-type]


class TestDimsEqual:
    def test_concrete(self):
        assert dims_equal(3, 3)
        assert not dims_equal(3, 4)

    def test_symbolic_same_name(self):
        assert dims_equal(NamedDim("n"), NamedDim("n"))

    def test_symbolic_different_names_conservative(self):
        assert not dims_equal(NamedDim("n"), NamedDim("m"))

    def test_symbolic_vs_concrete(self):
        assert not dims_equal(NamedDim("n"), 5)

    def test_sums(self):
        n = NamedDim("n")
        assert dims_equal(dim_add(n, 2), dim_add(2, n))
        assert not dims_equal(dim_add(n, 2), dim_add(n, 3))


class TestShape:
    def test_square_detection(self):
        n = NamedDim("n")
        assert Shape(n, n).is_square
        assert Shape(3, 3).is_square
        assert not Shape(n, 3).is_square
        assert not Shape(NamedDim("n"), NamedDim("m")).is_square

    def test_vector_detection(self):
        assert Shape(NamedDim("n"), 1).is_vector
        assert not Shape(NamedDim("n"), 2).is_vector

    def test_transposed(self):
        n = NamedDim("n")
        shape = Shape(n, 4)
        assert shape.transposed == Shape(4, n)

    def test_equality_and_hash(self):
        n = NamedDim("n")
        assert Shape(n, 1) == Shape(NamedDim("n"), 1)
        assert hash(Shape(n, 1)) == hash(Shape(NamedDim("n"), 1))
        assert Shape(n, 1) != Shape(n, 2)

    def test_iteration(self):
        rows, cols = Shape(2, 3)
        assert (rows, cols) == (2, 3)

    def test_concrete_roundtrip(self):
        assert Shape(2, 3).concrete() == (2, 3)

    def test_concrete_raises_on_symbolic(self):
        with pytest.raises(ValueError):
            Shape(NamedDim("n"), 3).concrete()

    def test_is_concrete_helper(self):
        assert is_concrete(7)
        assert not is_concrete(NamedDim("n"))
        assert not is_concrete(dim_add(NamedDim("n"), 1))

    def test_dim_to_str(self):
        assert dim_to_str(4) == "4"
        assert dim_to_str(NamedDim("n")) == "n"
        assert "n" in dim_to_str(dim_add(NamedDim("n"), 2))

    def test_shape_error_is_value_error(self):
        assert issubclass(ShapeError, ValueError)
