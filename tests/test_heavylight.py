"""Differential harness and fold-policy tests for heavy-light maintenance.

The ISSUE 8 headline test work: a heavy-light partitioned session —
heavy hitters merged eagerly into accumulator rows, the light tail
deferred into a compacted pending block — must be indistinguishable (up
to floating-point re-association) from the unit-at-a-time interpreter
oracle across the scenario grid: program shape x Zipf skew x backend x
mode x (budget, rank_bound) — including flush-on-read mid-stream,
``with_plan`` switches, and adaptive heavy-set re-tunes.  Plus the
:class:`~repro.planner.plan.StreamSketch` edge cases that keep the
planner honest: on a uniform stream the heavy set collapses to empty
and ``partition="heavy-light"`` stays unchosen.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from exprgen import session_scenario
from stream_helpers import zipf_row_updates

from repro.planner import MaintenancePlan, StreamSketch, WorkloadStats, rank_program
from repro.runtime import (
    FactoredUpdate,
    HeavyLightMaintainer,
    HeavyLightRefresher,
    IVMSession,
    ReevalSession,
    ReplanMonitor,
    open_session,
)


def _sparse_available() -> bool:
    try:
        import scipy  # noqa: F401

        return True
    except ImportError:
        return False


BACKENDS = ("dense",) + (("sparse",) if _sparse_available() else ())

SESSION_CONFIGS = (
    ("INCR", "interpret"),
    ("INCR", "codegen"),
    ("REEVAL", "interpret"),
)


def _session(program, inputs, strategy, mode, backend):
    inputs = {name: arr.copy() for name, arr in inputs.items()}
    if strategy == "REEVAL":
        return ReevalSession(program, inputs, backend=backend)
    return IVMSession(program, inputs, mode=mode, backend=backend)


def _assert_views_close(session, oracle, program, context=""):
    for name in program.input_names + program.view_names:
        got = session[name]
        want = oracle[name]
        scale = max(1.0, float(np.max(np.abs(want))))
        np.testing.assert_allclose(
            got, want, rtol=1e-7, atol=1e-8 * scale,
            err_msg=f"{name} diverged {context}",
        )


def _fixed_scenario(rng):
    from repro.frontend import parse_program

    program = parse_program(
        "input A(n, n); B := A * A; C := B * B; output C;"
    )
    n = 8
    return program, n, {"A": 0.2 * rng.standard_normal((n, n))}


class TestDifferentialHarness:
    """Partitioned sessions vs the unit-at-a-time interpreter oracle."""

    @settings(max_examples=25, deadline=None)
    @given(data=st.data())
    def test_partitioned_stream_matches_unit_oracle(self, data):
        program, n, inputs = data.draw(session_scenario())
        theta = data.draw(st.sampled_from([0.0, 1.2, 3.0]))
        rank = data.draw(st.sampled_from([1, 1, 2]))
        budget = data.draw(st.sampled_from([1, 2, 4]))
        rank_bound = data.draw(st.sampled_from([2, 3, 8]))
        backend = data.draw(st.sampled_from(BACKENDS))
        strategy, mode = data.draw(st.sampled_from(SESSION_CONFIGS))
        count = data.draw(st.integers(5, 16))
        read_at = data.draw(st.integers(0, count - 1))

        rng = np.random.default_rng(data.draw(st.integers(0, 2 ** 16)))
        updates = zipf_row_updates(rng, n, count, theta,
                                   target=program.input_names[0], rank=rank)

        oracle = _session(program, inputs, "INCR", "interpret", "dense")
        split = _session(program, inputs, strategy, mode, backend)
        split.set_partition("heavy-light", heavy_budget=budget,
                            rank_bound=rank_bound, retune_every=3)

        for index, update in enumerate(updates):
            oracle.apply_update(update)
            split.apply_update(update)
            if index == read_at:
                # Flush-on-read: a mid-stream read must never lag the
                # updates already issued, whatever is pending where.
                _assert_views_close(split, oracle, program,
                                    context=f"at mid-stream read {index}")
        _assert_views_close(split, oracle, program, context="at stream end")
        stats = split.partition_stats
        assert stats.updates == count
        assert stats.heavy_hits + stats.light_hits == count * rank

    @settings(max_examples=10, deadline=None)
    @given(data=st.data())
    def test_dense_factor_columns_take_the_compacted_path(self, data):
        """Non-indicator (dense ``u``) columns must stay exact too —
        they stack into the QR+SVD collector, never accumulator rows."""
        program, n, inputs = data.draw(session_scenario())
        backend = data.draw(st.sampled_from(BACKENDS))
        strategy, mode = data.draw(st.sampled_from(SESSION_CONFIGS))
        count = data.draw(st.integers(4, 10))
        target = program.input_names[0]

        rng = np.random.default_rng(data.draw(st.integers(0, 2 ** 16)))
        updates = []
        for index in range(count):
            if index % 2 == 0:
                u = 0.1 * rng.standard_normal((n, 1))  # dense column
            else:
                u = np.zeros((n, 1))
                u[int(rng.integers(n)), 0] = 1.0       # indicator column
            updates.append(
                FactoredUpdate(target, u, 0.05 * rng.standard_normal((n, 1))))

        oracle = _session(program, inputs, "INCR", "interpret", "dense")
        split = _session(program, inputs, strategy, mode, backend)
        split.set_partition("heavy-light", heavy_budget=2, rank_bound=3)
        for update in updates:
            oracle.apply_update(update)
            split.apply_update(update)
        _assert_views_close(split, oracle, program, context="mixed columns")

    @settings(max_examples=10, deadline=None)
    @given(data=st.data())
    def test_with_plan_switch_flushes_and_carries_policy(self, data):
        """A mid-stream switch lands pending deltas first and keeps the
        forced partition mode (flush-before-switch convention)."""
        program, n, inputs = data.draw(session_scenario())
        count = data.draw(st.integers(6, 12))
        flip_at = data.draw(st.integers(1, count - 1))
        to_strategy = data.draw(st.sampled_from(["INCR", "REEVAL"]))
        to_backend = data.draw(st.sampled_from(BACKENDS))

        rng = np.random.default_rng(data.draw(st.integers(0, 2 ** 16)))
        updates = zipf_row_updates(rng, n, count, 2.0,
                                   target=program.input_names[0])

        oracle = _session(program, inputs, "INCR", "interpret", "dense")
        session = _session(program, inputs, "INCR", "interpret", "dense")
        session.set_partition("heavy-light", heavy_budget=2, rank_bound=4)

        for index, update in enumerate(updates):
            oracle.apply_update(update)
            session.apply_update(update)
            if index == flip_at:
                plan = MaintenancePlan(to_strategy, backend=to_backend)
                session = session.with_plan(plan)
                # User-forced partitioning carries over verbatim.
                assert session.partition == "heavy-light"
        _assert_views_close(session, oracle, program, context="after flip")
        assert session.partition_stats.updates == count

    def test_monitor_driven_stream_keeps_parity_and_sketch(self, rng):
        """ReplanMonitor supervision: the shared sketch is not
        double-counted by the partitioner it seeds."""
        program, n, inputs = _fixed_scenario(rng)
        updates = zipf_row_updates(rng, n, 40, 2.5, target="A")

        oracle = _session(program, inputs, "INCR", "interpret", "dense")
        monitored = open_session(
            program, {k: v.copy() for k, v in inputs.items()},
            plan="incr", backend="dense", mode="interpret",
            refresh_count=len(updates), partition="auto",
            replan={"check_every": 8, "probe_every": 6},
        )
        assert isinstance(monitored, ReplanMonitor)
        for update in updates:
            oracle.apply_update(update)
            monitored.apply_update(update)
        _assert_views_close(monitored.session, oracle, program,
                            context="after monitored stream")
        assert monitored.stream_sketch.total == len(updates)


class TestFoldPolicies:
    def _open(self, rng, **kwargs):
        program, n, inputs = _fixed_scenario(rng)
        session = IVMSession(program, inputs, dims={"n": n})
        session.set_partition("heavy-light", **kwargs)
        return program, n, session

    def _hits(self, rng, n, rows, target="A", scale=0.05):
        for row in rows:
            u = np.zeros((n, 1))
            u[row, 0] = 1.0
            yield FactoredUpdate(target, u, scale * rng.standard_normal((n, 1)))

    def test_read_folds_everything(self, rng):
        program, n, session = self._open(rng, heavy_budget=2, rank_bound=64)
        for update in self._hits(rng, n, [0, 0, 1, 2]):
            session.apply_update(update)
        partitioner = session._partitioner
        assert partitioner.pending_updates == 4
        session.view("C")  # flush-on-read
        assert partitioner.pending_updates == 0
        assert partitioner.light_rank == 0
        assert session.partition_stats.folds == 1

    def test_rank_bound_folds_light_tail(self, rng):
        program, n, session = self._open(rng, heavy_budget=1, rank_bound=3,
                                         retune_every=1000)
        # Five distinct light rows with no heavy set: folds at rank 3.
        for update in self._hits(rng, n, [1, 2, 3, 4, 5]):
            session.apply_update(update)
        stats = session.partition_stats
        assert stats.folds == 1
        assert stats.light_folded_rank == 3
        assert session._partitioner.light_rank == 2

    def test_repeats_merge_without_rank_growth(self, rng):
        program, n, session = self._open(rng, heavy_budget=1, rank_bound=3,
                                         retune_every=1000)
        # One row hit many times merges into one pending rank: no fold.
        for update in self._hits(rng, n, [4] * 10):
            session.apply_update(update)
        assert session.partition_stats.folds == 0
        assert session._partitioner.light_rank == 1

    def test_target_change_flushes_pending_generation(self, rng):
        from repro.frontend import parse_program

        program = parse_program(
            "input A(n, n); input B(n, n); C := A * B; output C;"
        )
        n = 6
        inputs = {"A": 0.2 * rng.standard_normal((n, n)),
                  "B": 0.2 * rng.standard_normal((n, n))}
        oracle = IVMSession(program, {k: v.copy() for k, v in inputs.items()},
                            dims={"n": n})
        session = IVMSession(program, inputs, dims={"n": n})
        session.set_partition("heavy-light", heavy_budget=2)
        stream = [("A", 0), ("A", 1), ("B", 0), ("A", 2)]
        for target, row in stream:
            update = next(self._hits(rng, n, [row], target=target))
            oracle.apply_update(update)
            session.apply_update(update)
        # The B update forced the pending A generation to fold first,
        # then A again folded B: cross-input ordering is preserved.
        assert session.partition_stats.folds >= 2
        _assert_views_close(session, oracle, program, context="cross-target")

    def test_max_staleness_bounds_pending_updates(self, rng):
        program, n, session = self._open(rng, heavy_budget=2, rank_bound=64,
                                         max_staleness=3, retune_every=1000)
        for update in self._hits(rng, n, [0, 0, 0]):
            session.apply_update(update)
        # Three hits on one heavy-mergeable row is still rank 1 pending,
        # but staleness counts updates, not rank: the bound folds it.
        assert session._partitioner.pending_updates == 0
        assert session.partition_stats.folds == 1

    def test_retune_transfers_between_tiers_without_folding(self, rng):
        program, n, session = self._open(rng, heavy_budget=1, rank_bound=64,
                                         retune_every=4)
        partitioner = session._partitioner
        # Warm-up: row 5 dominates, becomes heavy on the retune cadence.
        for update in self._hits(rng, n, [5, 5, 5, 5]):
            session.apply_update(update)
        assert partitioner.heavy_rows == (5,)
        assert session.partition_stats.retunes >= 1
        assert session.partition_stats.folds == 0  # transfer, not refresh
        # Regime change: row 6 takes over; membership follows, still
        # without a session fold, and nothing is lost either way.
        oracle_rows = [5, 5, 5, 5] + [6] * 12
        for update in self._hits(rng, n, [6] * 12):
            session.apply_update(update)
        assert partitioner.heavy_rows == (6,)
        assert session.partition_stats.folds == 0
        assert partitioner.sketch.total == len(oracle_rows)

    def test_stats_survive_with_plan_switch(self, rng):
        program, n, session = self._open(rng, heavy_budget=2, rank_bound=64)
        for update in self._hits(rng, n, [0, 1, 0]):
            session.apply_update(update)
        switched = session.with_plan(MaintenancePlan("REEVAL"))
        stats = switched.partition_stats
        assert stats.updates == 3
        assert stats.folds == 1  # the flush-before-switch fold

    def test_open_session_partition_validation(self, rng):
        program, n, inputs = _fixed_scenario(rng)
        with pytest.raises(ValueError):
            open_session(program, inputs, partition="sometimes")
        with pytest.raises(ValueError):
            HeavyLightMaintainer(budget=0)
        with pytest.raises(ValueError):
            HeavyLightMaintainer(rank_bound=0)


class TestHeavyLightRefresher:
    class _Toy:
        """Minimal ``refresh(u, v)`` maintainer: M += u v'."""

        def __init__(self, n):
            self.state = np.zeros((n, n))
            self.refreshes = 0

        def refresh(self, u, v):
            self.state = self.state + u @ v.T
            self.refreshes += 1

        def result(self):
            return self.state

    def test_reads_fold_first_and_match_direct(self, rng):
        n = 12
        direct = self._Toy(n)
        wrapped = HeavyLightRefresher(self._Toy(n), budget=2, rank_bound=3)
        for _ in range(20):
            u = np.zeros((n, 1))
            u[int(rng.integers(3)), 0] = 1.0  # three hot rows
            v = 0.1 * rng.standard_normal((n, 1))
            direct.refresh(u, v)
            wrapped.refresh(u, v)
        # Attribute fall-through folds pending state before delegating.
        np.testing.assert_allclose(wrapped.result(), direct.result(),
                                   rtol=1e-10, atol=1e-12)
        assert wrapped.maintainer.refreshes < direct.refreshes
        assert wrapped.stats.updates == 20


class TestPageRankPartition:
    """Driver plumbing: the transposed split on pagerank's column updates."""

    def _graph(self, rng, n=24):
        adjacency = (rng.random((n, n)) < 0.2).astype(float)
        np.fill_diagonal(adjacency, 0.0)
        return adjacency

    def test_bursty_crawl_matches_unpartitioned(self, rng):
        from repro.analytics.pagerank import IncrementalPageRank

        n = 24
        adjacency = self._graph(rng, n)
        plain = IncrementalPageRank(adjacency.copy(), k=8, strategy="INCR")
        split = IncrementalPageRank(adjacency.copy(), k=8, strategy="INCR",
                                    partition="heavy-light", heavy_budget=2)
        # Bursty crawl: most edits hit source node 3 (one hot column).
        edits = 0
        for i in range(30):
            source = 3 if i % 3 else int(rng.integers(n))
            target = int(rng.integers(n))
            if source == target:
                continue
            if adjacency[target, source]:
                plain.remove_edge(source, target)
                split.remove_edge(source, target)
            else:
                plain.add_edge(source, target)
                split.add_edge(source, target)
            adjacency[target, source] = 1.0 - adjacency[target, source]
            edits += 1
        # Reads fold first: ranks never lag the edits.
        np.testing.assert_allclose(split.ranks, plain.ranks,
                                   rtol=1e-8, atol=1e-10)
        stats = split._general.stats
        assert stats.updates == edits
        assert split.revalidate() < 1e-8

    def test_batch_and_partition_are_mutually_exclusive(self, rng):
        from repro.analytics.pagerank import IncrementalPageRank

        adjacency = self._graph(rng)
        with pytest.raises(ValueError):
            IncrementalPageRank(adjacency, strategy="INCR", batch=8,
                                partition="heavy-light")


class TestStreamSketchEdgeCases:
    """Satellite 6: the sketch must collapse gracefully off-skew."""

    def test_empty_stream_has_no_heavy_set(self):
        sketch = StreamSketch()
        assert sketch.heavy_keys(8) == []
        assert sketch.heavy_share(8) == 0.0
        assert sketch.light_fraction(8, 64) == 1.0

    def test_single_target_stream_is_all_heavy(self):
        sketch = StreamSketch()
        for _ in range(10):
            sketch.observe_key(3)
        assert sketch.heavy_keys(4) == [3]
        assert sketch.heavy_share(4) == 1.0

    def test_two_target_stream_fills_the_set(self):
        sketch = StreamSketch()
        for _ in range(8):
            sketch.observe_key(0)
            sketch.observe_key(1)
        assert sorted(sketch.heavy_keys(4)) == [0, 1]
        assert sketch.heavy_share(4) == 1.0

    def test_uniform_stream_collapses_to_empty(self):
        rng = np.random.default_rng(11)
        sketch = StreamSketch()
        for key in rng.integers(0, 64, size=512):
            sketch.observe_key(int(key))
        for budget in (4, 8, 16, 32):
            assert sketch.heavy_keys(budget) == [], budget
            assert sketch.heavy_share(budget) == 0.0

    def test_planner_keeps_uniform_on_uniform_stream(self, rng):
        program, n, inputs = _fixed_scenario(rng)
        sketch = StreamSketch()
        for key in rng.integers(0, n, size=256):
            sketch.observe_key(int(key))
        ranked = rank_program(
            program, inputs,
            stats=WorkloadStats(n=n, refresh_count=256,
                                distinct_fraction=sketch),
            price_batching=True,
        )
        assert all(plan.partition == "uniform" for plan in ranked)

    def test_planner_prices_heavy_light_on_skewed_stream(self, rng):
        from repro.frontend import parse_program

        # Large enough that refresh flops dominate the per-update
        # bookkeeping overhead the estimator charges the split.
        program = parse_program("input A(n, n); B := A * A; output B;")
        n = 64
        inputs = {"A": 0.2 * rng.standard_normal((n, n))}
        sketch = StreamSketch()
        # 80% of hits land on two rows: textbook heavy-light skew.
        for key in ([0] * 102, [1] * 102, list(range(n)) * 6):
            for k in key:
                sketch.observe_key(int(k))
        ranked = rank_program(
            program, inputs,
            stats=WorkloadStats(n=n, refresh_count=512,
                                distinct_fraction=sketch),
            price_batching=True,
        )
        best = ranked[0]
        assert best.partition == "heavy-light"
        assert best.heavy_budget in (4, 8, 16, 32)
        assert "/hl" in best.label
