"""Drift monitoring policies for long-lived incremental views."""

import numpy as np
import pytest

from repro.analytics import IncrementalOLS
from repro.runtime.drift import DriftExceededError, DriftMonitor, DriftReport
from repro.workloads import well_conditioned_design


class FakeMaintainer:
    """Scripted drift values for policy tests."""

    def __init__(self, drifts):
        self.drifts = list(drifts)
        self.refresh_calls = 0

    def refresh(self, u, v):
        self.refresh_calls += 1

    def revalidate(self):
        return self.drifts.pop(0)

    def result(self):
        return "sentinel"


def updates(n, count, scale=0.01, seed=0):
    rng = np.random.default_rng(seed)
    for _ in range(count):
        u = np.zeros((n, 1))
        u[int(rng.integers(n)), 0] = 1.0
        yield u, scale * rng.standard_normal((n, 1))


class TestSchedule:
    def test_probe_every_n_refreshes(self):
        fake = FakeMaintainer([1e-12, 1e-12])
        monitor = DriftMonitor(fake, check_every=3)
        for u, v in updates(4, 6):
            monitor.refresh(u, v)
        assert len(monitor.reports) == 2
        assert fake.refresh_calls == 6

    def test_no_probe_before_schedule(self):
        fake = FakeMaintainer([])
        monitor = DriftMonitor(fake, check_every=10)
        for u, v in updates(4, 9):
            monitor.refresh(u, v)
        assert monitor.reports == []
        assert monitor.last_drift is None

    def test_manual_probe(self):
        fake = FakeMaintainer([4.2e-9])
        monitor = DriftMonitor(fake, check_every=1000)
        report = monitor.probe()
        assert report == DriftReport(0, 4.2e-9, False)
        assert monitor.last_drift == 4.2e-9


class TestRaisePolicy:
    def test_raises_past_tolerance(self):
        fake = FakeMaintainer([1e-3])
        monitor = DriftMonitor(fake, check_every=1, tolerance=1e-6)
        u, v = next(updates(4, 1))
        with pytest.raises(DriftExceededError) as excinfo:
            monitor.refresh(u, v)
        assert excinfo.value.drift == 1e-3
        assert excinfo.value.refreshes == 1

    def test_within_tolerance_is_silent(self):
        fake = FakeMaintainer([1e-9, 1e-8])
        monitor = DriftMonitor(fake, check_every=1, tolerance=1e-6)
        for u, v in updates(4, 2):
            monitor.refresh(u, v)
        assert monitor.rebuild_count == 0


class TestRebuildPolicy:
    def test_rebuild_replaces_maintainer(self):
        first = FakeMaintainer([5.0])
        second = FakeMaintainer([])
        monitor = DriftMonitor(first, check_every=1, tolerance=1e-6,
                               action="rebuild", rebuild=lambda: second)
        u, v = next(updates(4, 1))
        monitor.refresh(u, v)
        assert monitor.maintainer is second
        assert monitor.rebuild_count == 1

    def test_rebuild_requires_callable(self):
        with pytest.raises(ValueError, match="needs a rebuild"):
            DriftMonitor(FakeMaintainer([]), action="rebuild")


class TestValidation:
    def test_bad_parameters_rejected(self):
        fake = FakeMaintainer([])
        with pytest.raises(ValueError, match="check_every"):
            DriftMonitor(fake, check_every=0)
        with pytest.raises(ValueError, match="tolerance"):
            DriftMonitor(fake, tolerance=0.0)
        with pytest.raises(ValueError, match="unknown action"):
            DriftMonitor(fake, action="pray")

    def test_attribute_delegation(self):
        monitor = DriftMonitor(FakeMaintainer([]))
        assert monitor.result() == "sentinel"


class TestWithRealMaintainer:
    def test_ols_stays_within_tolerance(self, rng):
        n = 48
        x = well_conditioned_design(rng, n, n, ridge=2.0)
        y = rng.standard_normal((n, 1))
        monitor = DriftMonitor(IncrementalOLS(x, y), check_every=25,
                               tolerance=1e-6)
        for u, v in updates(n, 100, seed=3):
            monitor.refresh(u, v)
        assert len(monitor.reports) == 4
        assert all(r.drift < 1e-6 for r in monitor.reports)

    def test_ols_rebuild_policy_end_to_end(self, rng):
        # A tolerance so tight that any float noise trips it: the
        # monitor must rebuild (fresh model from the *maintained* X/Y)
        # and keep serving.
        n = 32
        x = well_conditioned_design(rng, n, n, ridge=2.0)
        y = rng.standard_normal((n, 1))
        holder = {}
        holder["model"] = IncrementalOLS(x, y)

        def rebuild():
            current = holder["model"]
            holder["model"] = IncrementalOLS(current.x, current.y)
            return holder["model"]

        monitor = DriftMonitor(holder["model"], check_every=10,
                               tolerance=1e-16, action="rebuild",
                               rebuild=rebuild)
        for u, v in updates(n, 40, seed=5):
            monitor.refresh(u, v)
        assert monitor.rebuild_count >= 1
        # After rebuilding, the served beta matches ground truth.
        model = monitor.maintainer
        expected = np.linalg.solve(model.x.T @ model.x, model.x.T @ model.y)
        np.testing.assert_allclose(model.beta, expected, atol=1e-6)
