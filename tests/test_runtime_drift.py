"""Drift monitoring policies for long-lived incremental views."""

import numpy as np
import pytest

from repro.analytics import IncrementalOLS
from repro.iterative import Model, make_sums
from repro.runtime.drift import DriftExceededError, DriftMonitor, DriftReport
from repro.workloads import well_conditioned_design


class WalkCountMaintainer:
    """Weighted walk counts ``I + A + ... + A^{k-1}`` with a drift probe.

    The reachability building block as a :class:`DriftMonitor` subject:
    ``refresh`` repairs the maintained sums view incrementally while the
    ground-truth operator is tracked alongside, and ``revalidate``
    recomputes the sum from that operator — so the probe measures the
    *genuine* floating-point drift incremental maintenance accumulates,
    not a scripted value.
    """

    def __init__(self, a: np.ndarray, k: int):
        self.a = np.array(a, dtype=np.float64)
        self.k = k
        self._sums = make_sums("INCR", self.a, k, Model.linear())

    def refresh(self, u: np.ndarray, v: np.ndarray) -> None:
        self.a += u @ v.T
        self._sums.refresh(u, v)

    def result(self) -> np.ndarray:
        return self._sums.result()

    def revalidate(self) -> float:
        expected = np.eye(self.a.shape[0])
        power = np.eye(self.a.shape[0])
        for _ in range(1, self.k):
            power = self.a @ power
            expected = expected + power
        return float(np.max(np.abs(expected - self.result())))


def fillin_updates(n, count, fill=0.5, scale=0.05, seed=11):
    """Seeded wrapper over the shared fill-in stream generator."""
    from stream_helpers import fillin_factors

    return fillin_factors(np.random.default_rng(seed), n, count, fill, scale)


class FakeMaintainer:
    """Scripted drift values for policy tests."""

    def __init__(self, drifts):
        self.drifts = list(drifts)
        self.refresh_calls = 0

    def refresh(self, u, v):
        self.refresh_calls += 1

    def revalidate(self):
        return self.drifts.pop(0)

    def result(self):
        return "sentinel"


def updates(n, count, scale=0.01, seed=0):
    rng = np.random.default_rng(seed)
    for _ in range(count):
        u = np.zeros((n, 1))
        u[int(rng.integers(n)), 0] = 1.0
        yield u, scale * rng.standard_normal((n, 1))


class TestSchedule:
    def test_probe_every_n_refreshes(self):
        fake = FakeMaintainer([1e-12, 1e-12])
        monitor = DriftMonitor(fake, check_every=3)
        for u, v in updates(4, 6):
            monitor.refresh(u, v)
        assert len(monitor.reports) == 2
        assert fake.refresh_calls == 6

    def test_no_probe_before_schedule(self):
        fake = FakeMaintainer([])
        monitor = DriftMonitor(fake, check_every=10)
        for u, v in updates(4, 9):
            monitor.refresh(u, v)
        assert monitor.reports == []
        assert monitor.last_drift is None

    def test_manual_probe(self):
        fake = FakeMaintainer([4.2e-9])
        monitor = DriftMonitor(fake, check_every=1000)
        report = monitor.probe()
        assert report == DriftReport(0, 4.2e-9, False)
        assert monitor.last_drift == 4.2e-9


class TestRaisePolicy:
    def test_raises_past_tolerance(self):
        fake = FakeMaintainer([1e-3])
        monitor = DriftMonitor(fake, check_every=1, tolerance=1e-6)
        u, v = next(updates(4, 1))
        with pytest.raises(DriftExceededError) as excinfo:
            monitor.refresh(u, v)
        assert excinfo.value.drift == 1e-3
        assert excinfo.value.refreshes == 1

    def test_within_tolerance_is_silent(self):
        fake = FakeMaintainer([1e-9, 1e-8])
        monitor = DriftMonitor(fake, check_every=1, tolerance=1e-6)
        for u, v in updates(4, 2):
            monitor.refresh(u, v)
        assert monitor.rebuild_count == 0


class TestRebuildPolicy:
    def test_rebuild_replaces_maintainer(self):
        first = FakeMaintainer([5.0])
        second = FakeMaintainer([])
        monitor = DriftMonitor(first, check_every=1, tolerance=1e-6,
                               action="rebuild", rebuild=lambda: second)
        u, v = next(updates(4, 1))
        monitor.refresh(u, v)
        assert monitor.maintainer is second
        assert monitor.rebuild_count == 1

    def test_rebuild_requires_callable(self):
        with pytest.raises(ValueError, match="needs a rebuild"):
            DriftMonitor(FakeMaintainer([]), action="rebuild")


class TestValidation:
    def test_bad_parameters_rejected(self):
        fake = FakeMaintainer([])
        with pytest.raises(ValueError, match="check_every"):
            DriftMonitor(fake, check_every=0)
        with pytest.raises(ValueError, match="tolerance"):
            DriftMonitor(fake, tolerance=0.0)
        with pytest.raises(ValueError, match="unknown action"):
            DriftMonitor(fake, action="pray")

    def test_attribute_delegation(self):
        monitor = DriftMonitor(FakeMaintainer([]))
        assert monitor.result() == "sentinel"


class TestGenuineDrift:
    """Policies exercised by *real* accumulated drift, not scripted probes."""

    def test_raise_policy_trips_on_fillin_stream(self, rng):
        n = 48
        a = (rng.random((n, n)) < 0.05) * (0.05 * rng.standard_normal((n, n)))
        maintainer = WalkCountMaintainer(a, k=6)
        monitor = DriftMonitor(maintainer, check_every=8, tolerance=1e-15,
                               action="raise")
        # Fill-in drives the views through wildly varying magnitudes, so
        # factored repair and recomputation round differently: genuine
        # drift accumulates and the policy must eventually trip.
        with pytest.raises(DriftExceededError) as excinfo:
            for u, v in fillin_updates(n, 96):
                monitor.refresh(u, v)
        assert excinfo.value.drift > 1e-15
        assert excinfo.value.refreshes % 8 == 0
        assert monitor.last_drift == excinfo.value.drift

    def test_raise_policy_stays_quiet_at_honest_tolerance(self, rng):
        n = 48
        a = (rng.random((n, n)) < 0.05) * (0.05 * rng.standard_normal((n, n)))
        monitor = DriftMonitor(WalkCountMaintainer(a, k=6), check_every=8,
                               tolerance=1e-6, action="raise")
        for u, v in fillin_updates(n, 96):
            monitor.refresh(u, v)
        assert monitor.reports and all(r.drift <= 1e-6
                                       for r in monitor.reports)

    def test_session_rebuild_path_under_fillin(self, rng):
        from repro.frontend import parse_program
        from repro.runtime import FactoredUpdate, open_session

        # A^4 at a larger update scale: drift compounds through the
        # chained views, comfortably clearing the probe tolerance while
        # staying far below anything a user-facing tolerance would trip.
        n = 64
        program = parse_program(
            "input A(n, n); B := A * A; C := B * B; output C;")
        a = (rng.random((n, n)) < 0.05) * (0.2 * rng.standard_normal((n, n)))
        monitor = open_session(
            program, {"A": a}, dims={"n": n}, plan="incr",
            drift={"check_every": 8, "tolerance": 1e-17, "action": "rebuild"},
        )
        for u, v in fillin_updates(n, 96, scale=0.2):
            monitor.apply_update(FactoredUpdate("A", u, v))
        # Genuine drift exceeded the (absurdly tight) tolerance at least
        # once; every rebuild restored exact agreement with the inputs.
        assert monitor.rebuild_count >= 1
        assert monitor.revalidate() == 0.0
        expected = np.linalg.matrix_power(monitor["A"], 4)
        np.testing.assert_allclose(monitor.output(), expected, atol=1e-12)


class TestWithRealMaintainer:
    def test_ols_stays_within_tolerance(self, rng):
        n = 48
        x = well_conditioned_design(rng, n, n, ridge=2.0)
        y = rng.standard_normal((n, 1))
        monitor = DriftMonitor(IncrementalOLS(x, y), check_every=25,
                               tolerance=1e-6)
        for u, v in updates(n, 100, seed=3):
            monitor.refresh(u, v)
        assert len(monitor.reports) == 4
        assert all(r.drift < 1e-6 for r in monitor.reports)

    def test_ols_rebuild_policy_end_to_end(self, rng):
        # A tolerance so tight that any float noise trips it: the
        # monitor must rebuild (fresh model from the *maintained* X/Y)
        # and keep serving.
        n = 32
        x = well_conditioned_design(rng, n, n, ridge=2.0)
        y = rng.standard_normal((n, 1))
        holder = {}
        holder["model"] = IncrementalOLS(x, y)

        def rebuild():
            current = holder["model"]
            holder["model"] = IncrementalOLS(current.x, current.y)
            return holder["model"]

        monitor = DriftMonitor(holder["model"], check_every=10,
                               tolerance=1e-16, action="rebuild",
                               rebuild=rebuild)
        for u, v in updates(n, 40, seed=5):
            monitor.refresh(u, v)
        assert monitor.rebuild_count >= 1
        # After rebuilding, the served beta matches ground truth.
        model = monitor.maintainer
        expected = np.linalg.solve(model.x.T @ model.x, model.x.T @ model.y)
        np.testing.assert_allclose(model.beta, expected, atol=1e-6)
