"""Program rewrites: inverse materialization (Example 4.2 restructuring)."""

import numpy as np

from repro.compiler import Program, Statement, compile_program
from repro.compiler.transform import materialize_inversions
from repro.expr import (
    Inverse,
    MatrixSymbol,
    NamedDim,
    add,
    inverse,
    matmul,
    transpose,
    walk,
)
from repro.runtime import FactoredUpdate, IVMSession, ReevalSession

n = NamedDim("n")
m = NamedDim("m")
A = MatrixSymbol("A", n, n)
X = MatrixSymbol("X", m, n)
Y = MatrixSymbol("Y", m, 1)


def one_shot_ols():
    """beta := inv(X'X) (X'Y) as a single statement."""
    beta = MatrixSymbol("beta", n, 1)
    expr = matmul(inverse(matmul(transpose(X), X)),
                  matmul(transpose(X), Y))
    return Program([X, Y], [Statement(beta, expr)])


class TestMaterializeInversions:
    def test_hoists_nested_inverse(self):
        rewritten = materialize_inversions(one_shot_ols())
        kinds = [type(s.expr).__name__ for s in rewritten.statements]
        assert "Inverse" in kinds
        # No statement keeps a *nested* inverse.
        for stmt in rewritten.statements:
            nested = [
                node for node in walk(stmt.expr)
                if isinstance(node, Inverse) and node is not stmt.expr
            ]
            assert not nested, stmt

    def test_compound_operand_also_hoisted(self):
        rewritten = materialize_inversions(one_shot_ols())
        inverse_stmt = next(
            s for s in rewritten.statements if isinstance(s.expr, Inverse)
        )
        assert isinstance(inverse_stmt.expr.child, MatrixSymbol)

    def test_outputs_preserved(self):
        program = one_shot_ols()
        assert materialize_inversions(program).outputs == program.outputs

    def test_root_inverse_untouched(self):
        w = MatrixSymbol("W", n, n)
        program = Program([A], [Statement(w, inverse(A))])
        rewritten = materialize_inversions(program)
        assert len(rewritten.statements) == 1

    def test_no_inverse_is_identity_transform(self):
        b = MatrixSymbol("B", n, n)
        program = Program([A], [Statement(b, matmul(A, A))])
        rewritten = materialize_inversions(program)
        assert [repr(s) for s in rewritten.statements] == [
            repr(s) for s in program.statements
        ]

    def test_nested_inverses_hoist_inside_out(self):
        b = MatrixSymbol("B", n, n)
        expr = matmul(inverse(add(A, inverse(A))), A)
        program = Program([A], [Statement(b, expr)])
        rewritten = materialize_inversions(program)
        for stmt in rewritten.statements:
            nested = [
                node for node in walk(stmt.expr)
                if isinstance(node, Inverse) and node is not stmt.expr
            ]
            assert not nested

    def test_value_equivalence(self, rng):
        program = one_shot_ols()
        rewritten = materialize_inversions(program)
        sizes = {"m": 15, "n": 5}
        design = rng.normal(size=(15, 5))
        design[:5] += np.eye(5)
        inputs = {"X": design, "Y": rng.normal(size=(15, 1))}
        plain = ReevalSession(program, inputs, dims=sizes)
        hoisted = ReevalSession(rewritten, inputs, dims=sizes)
        np.testing.assert_allclose(plain["beta"], hoisted["beta"], rtol=1e-9)

    def test_rewritten_triggers_avoid_large_inversions(self, rng):
        rewritten = materialize_inversions(one_shot_ols())
        trigger = compile_program(rewritten, dynamic_inputs=["X"])["X"]
        for assign in trigger.assigns:
            for node in walk(assign.expr):
                if isinstance(node, Inverse):
                    # only k x k capacitance matrices (k <= 2 here)
                    assert node.child.shape.rows in (1, 2)

    def test_incremental_stream_on_rewritten_program(self, rng):
        rewritten = materialize_inversions(one_shot_ols())
        sizes = {"m": 16, "n": 6}
        design = rng.normal(size=(16, 6))
        design[:6] += np.eye(6)
        inputs = {"X": design, "Y": rng.normal(size=(16, 1))}
        incr = IVMSession(rewritten, inputs, dims=sizes)
        reeval = ReevalSession(rewritten, inputs, dims=sizes)
        for _ in range(5):
            update = FactoredUpdate("X", 0.05 * rng.normal(size=(16, 1)),
                                    0.05 * rng.normal(size=(6, 1)))
            incr.apply_update(update)
            reeval.apply_update(update)
        np.testing.assert_allclose(incr["beta"], reeval["beta"],
                                   rtol=1e-6, atol=1e-9)
        np.testing.assert_allclose(
            incr["beta"],
            np.linalg.lstsq(incr["X"], incr["Y"], rcond=None)[0],
            atol=1e-7,
        )
