"""Rank-1 SVD maintenance (Brand's update, the Section 4.2 extension)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.delta.svd import DEFAULT_TOL, SVDView, svd_rank_one_update


def thin_svd(a):
    u, s, vt = np.linalg.svd(a, full_matrices=False)
    keep = s > DEFAULT_TOL
    return u[:, keep], s[keep], vt[keep].T


def reconstruct(u, s, v):
    return (u * s) @ v.T


class TestRankOneUpdate:
    def test_full_rank_update_matches_dense(self, rng):
        a = rng.normal(size=(8, 6))
        u, s, v = thin_svd(a)
        x, y = rng.normal(size=8), rng.normal(size=6)
        u2, s2, v2 = svd_rank_one_update(u, s, v, x, y)
        np.testing.assert_allclose(
            reconstruct(u2, s2, v2), a + np.outer(x, y), atol=1e-9
        )

    def test_singular_values_match_dense_svd(self, rng):
        a = rng.normal(size=(7, 7))
        u, s, v = thin_svd(a)
        x, y = rng.normal(size=7), rng.normal(size=7)
        _, s2, _ = svd_rank_one_update(u, s, v, x, y)
        expected = np.linalg.svd(a + np.outer(x, y), compute_uv=False)
        np.testing.assert_allclose(np.sort(s2), np.sort(expected[expected > DEFAULT_TOL]),
                                   atol=1e-9)

    def test_bases_stay_orthonormal(self, rng):
        a = rng.normal(size=(9, 5))
        u, s, v = thin_svd(a)
        x, y = rng.normal(size=9), rng.normal(size=5)
        u2, s2, v2 = svd_rank_one_update(u, s, v, x, y)
        r = s2.shape[0]
        np.testing.assert_allclose(u2.T @ u2, np.eye(r), atol=1e-10)
        np.testing.assert_allclose(v2.T @ v2, np.eye(r), atol=1e-10)

    def test_rank_grows_by_at_most_one(self, rng):
        low = np.outer(rng.normal(size=10), rng.normal(size=10))  # rank 1
        u, s, v = thin_svd(low)
        x, y = rng.normal(size=10), rng.normal(size=10)
        _, s2, _ = svd_rank_one_update(u, s, v, x, y)
        assert s2.shape[0] <= s.shape[0] + 1

    def test_in_subspace_update_keeps_rank(self, rng):
        # Update by a column/row already inside the factor spans.
        a = rng.normal(size=(8, 3)) @ rng.normal(size=(3, 8))
        u, s, v = thin_svd(a)
        x = u @ rng.normal(size=s.shape[0])
        y = v @ rng.normal(size=s.shape[0])
        u2, s2, v2 = svd_rank_one_update(u, s, v, 0.1 * x, y)
        assert s2.shape[0] <= s.shape[0]
        np.testing.assert_allclose(
            reconstruct(u2, s2, v2), a + np.outer(0.1 * x, y), atol=1e-9
        )

    def test_cancelling_update_drops_rank(self, rng):
        x, y = rng.normal(size=6), rng.normal(size=6)
        a = np.outer(x, y)
        u, s, v = thin_svd(a)
        _, s2, _ = svd_rank_one_update(u, s, v, -x, y)
        assert s2.shape[0] == 0

    def test_inputs_not_mutated(self, rng):
        a = rng.normal(size=(6, 6))
        u, s, v = thin_svd(a)
        snapshots = (u.copy(), s.copy(), v.copy())
        svd_rank_one_update(u, s, v, rng.normal(size=6), rng.normal(size=6))
        for orig, snap in zip((u, s, v), snapshots):
            np.testing.assert_array_equal(orig, snap)

    def test_shape_mismatch_raises(self, rng):
        a = rng.normal(size=(6, 6))
        u, s, v = thin_svd(a)
        with pytest.raises(ValueError):
            svd_rank_one_update(u, s, v, rng.normal(size=5), rng.normal(size=6))
        with pytest.raises(ValueError):
            svd_rank_one_update(u, s, v[:, :3], a[:, 0], a[0])

    def test_rectangular_tall_and_wide(self, rng):
        for shape in [(10, 4), (4, 10)]:
            a = rng.normal(size=shape)
            u, s, v = thin_svd(a)
            x, y = rng.normal(size=shape[0]), rng.normal(size=shape[1])
            u2, s2, v2 = svd_rank_one_update(u, s, v, x, y)
            np.testing.assert_allclose(
                reconstruct(u2, s2, v2), a + np.outer(x, y), atol=1e-9
            )

    @settings(max_examples=25, deadline=None)
    @given(
        m=st.integers(min_value=2, max_value=12),
        n=st.integers(min_value=2, max_value=12),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_property_update_equals_dense(self, m, n, seed):
        rng = np.random.default_rng(seed)
        a = rng.normal(size=(m, n))
        u, s, v = thin_svd(a)
        x, y = rng.normal(size=m), rng.normal(size=n)
        u2, s2, v2 = svd_rank_one_update(u, s, v, x, y)
        np.testing.assert_allclose(
            reconstruct(u2, s2, v2), a + np.outer(x, y), atol=1e-8
        )


class TestSVDView:
    def test_tracks_update_stream(self, rng):
        a = rng.normal(size=(12, 8))
        view = SVDView(a)
        dense = a.copy()
        for _ in range(20):
            x, y = rng.normal(size=12), rng.normal(size=8)
            view.refresh(x, y)
            dense += np.outer(x, y)
        np.testing.assert_allclose(view.matrix(), dense, atol=1e-8)

    def test_rank_property(self, rng):
        a = rng.normal(size=(6, 3)) @ rng.normal(size=(3, 6))
        view = SVDView(a)
        assert view.rank == 3
        assert view.shape == (6, 6)

    def test_truncated_view_stays_at_max_rank(self, rng):
        view = SVDView(rng.normal(size=(10, 10)), rank=4)
        assert view.rank == 4
        view.refresh(rng.normal(size=10), rng.normal(size=10))
        assert view.rank == 4

    def test_truncated_step_is_best_rank_k_of_tracked_state(self, rng):
        # One truncated refresh computes the exact SVD of
        # (tracked rank-k matrix + outer product) and keeps the top k —
        # i.e. it is Eckart–Young-optimal w.r.t. the *tracked* state
        # (not the never-materialized full history, which the view has
        # already forgotten).
        a = rng.normal(size=(9, 9))
        view = SVDView(a, rank=3)
        tracked = view.matrix()
        x, y = rng.normal(size=9), rng.normal(size=9)
        view.refresh(x, y)
        target = tracked + np.outer(x, y)
        s_exact = np.linalg.svd(target, compute_uv=False)
        err = np.linalg.norm(view.matrix() - target, ord=2)
        assert err == pytest.approx(s_exact[3], rel=1e-9, abs=1e-9)

    def test_spectral_norm_matches_numpy(self, rng):
        a = rng.normal(size=(7, 7))
        view = SVDView(a)
        assert view.spectral_norm() == pytest.approx(
            np.linalg.norm(a, ord=2), rel=1e-10
        )

    def test_orthogonality_drift_small_over_stream(self, rng):
        view = SVDView(rng.normal(size=(10, 10)))
        for _ in range(50):
            view.refresh(0.1 * rng.normal(size=10), 0.1 * rng.normal(size=10))
        assert view.orthogonality_drift() < 1e-8

    def test_empty_view_spectral_norm(self):
        view = SVDView(np.zeros((4, 4)))
        assert view.rank == 0
        assert view.spectral_norm() == 0.0
