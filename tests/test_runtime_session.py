"""IVM sessions: initialization, maintenance, modes, validation."""

import numpy as np
import pytest

from repro.compiler import Program, Statement
from repro.cost import Counter
from repro.expr import MatrixSymbol, NamedDim, matmul
from repro.runtime import FactoredUpdate, IVMSession, ReevalSession

n = NamedDim("n")
A = MatrixSymbol("A", n, n)
B = MatrixSymbol("B", n, n)
C = MatrixSymbol("C", n, n)


def a4_program():
    return Program([A], [Statement(B, matmul(A, A)), Statement(C, matmul(B, B))])


def make_updates(rng, size, count, scale=1.0):
    return [
        FactoredUpdate("A", scale * rng.normal(size=(size, 1)),
                       scale * rng.normal(size=(size, 1)))
        for _ in range(count)
    ]


class TestInitialization:
    def test_views_materialized(self, rng):
        size = 6
        a0 = rng.normal(size=(size, size))
        session = IVMSession(a4_program(), {"A": a0}, dims={"n": size})
        np.testing.assert_allclose(session["B"], a0 @ a0)
        np.testing.assert_allclose(session["C"], np.linalg.matrix_power(a0, 4))

    def test_output_accessor(self, rng):
        size = 5
        session = IVMSession(
            a4_program(), {"A": rng.normal(size=(size, size))}, dims={"n": size}
        )
        np.testing.assert_array_equal(session.output(), session["C"])

    def test_missing_input_rejected(self):
        with pytest.raises(ValueError, match="missing initial values"):
            IVMSession(a4_program(), {}, dims={"n": 4})

    def test_unknown_mode_rejected(self, rng):
        with pytest.raises(ValueError, match="unknown mode"):
            IVMSession(a4_program(), {"A": rng.normal(size=(4, 4))},
                       dims={"n": 4}, mode="jit")


class TestMaintenance:
    def test_interpret_matches_reeval(self, rng):
        size = 7
        a0 = rng.normal(size=(size, size))
        incr = IVMSession(a4_program(), {"A": a0}, dims={"n": size})
        reeval = ReevalSession(a4_program(), {"A": a0}, dims={"n": size})
        for update in make_updates(rng, size, 8):
            incr.apply_update(update)
            reeval.apply_update(update)
        for name in ("A", "B", "C"):
            np.testing.assert_allclose(incr[name], reeval[name],
                                       rtol=1e-6, atol=1e-8)

    def test_codegen_matches_interpret(self, rng):
        size = 7
        a0 = rng.normal(size=(size, size))
        interp = IVMSession(a4_program(), {"A": a0}, dims={"n": size})
        codegen = IVMSession(a4_program(), {"A": a0}, dims={"n": size},
                             mode="codegen")
        for update in make_updates(rng, size, 5):
            interp.apply_update(update)
            codegen.apply_update(update)
        for name in ("A", "B", "C"):
            np.testing.assert_allclose(interp[name], codegen[name], rtol=1e-9)

    def test_apply_updates_batch_api(self, rng):
        size = 5
        a0 = rng.normal(size=(size, size))
        one_by_one = IVMSession(a4_program(), {"A": a0}, dims={"n": size})
        batched = IVMSession(a4_program(), {"A": a0}, dims={"n": size})
        updates = make_updates(rng, size, 4)
        for update in updates:
            one_by_one.apply_update(update)
        batched.apply_updates(updates)
        np.testing.assert_allclose(one_by_one["C"], batched["C"])
        assert batched.update_count == 4

    def test_update_for_unknown_input_rejected(self, rng):
        session = IVMSession(
            a4_program(), {"A": rng.normal(size=(4, 4))}, dims={"n": 4}
        )
        with pytest.raises(KeyError, match="no trigger"):
            session.apply_update(
                FactoredUpdate("Z", np.ones((4, 1)), np.ones((4, 1)))
            )

    def test_rank_k_update_accepted(self, rng):
        size = 6
        a0 = rng.normal(size=(size, size))
        incr = IVMSession(a4_program(), {"A": a0}, dims={"n": size})
        reeval = ReevalSession(a4_program(), {"A": a0}, dims={"n": size})
        update = FactoredUpdate("A", rng.normal(size=(size, 3)),
                                rng.normal(size=(size, 3)))
        incr.apply_update(update)
        reeval.apply_update(update)
        np.testing.assert_allclose(incr["C"], reeval["C"], rtol=1e-7)

    def test_revalidate_reports_small_drift(self, rng):
        size = 6
        session = IVMSession(
            a4_program(),
            {"A": rng.normal(size=(size, size)) / size},
            dims={"n": size},
        )
        for update in make_updates(rng, size, 50, scale=0.05):
            session.apply_update(update)
        assert session.revalidate() < 1e-6


class TestCounters:
    def test_incremental_avoids_cubic_work(self, rng):
        """The headline claim: INCR refreshes do O(n^2), REEVAL O(n^3)."""
        results = {}
        for size in (16, 32, 64):
            a0 = rng.normal(size=(size, size))
            incr_counter, reeval_counter = Counter(), Counter()
            incr = IVMSession(a4_program(), {"A": a0}, dims={"n": size},
                              counter=incr_counter)
            reeval = ReevalSession(a4_program(), {"A": a0}, dims={"n": size},
                                   counter=reeval_counter)
            incr_counter.reset()
            reeval_counter.reset()
            update = FactoredUpdate("A", rng.normal(size=(size, 1)),
                                    rng.normal(size=(size, 1)))
            incr.apply_update(update)
            reeval.apply_update(update)
            results[size] = (incr_counter.total_flops,
                             reeval_counter.total_flops)
        # doubling n: INCR grows ~4x, REEVAL ~8x
        incr_growth = results[64][0] / results[16][0]
        reeval_growth = results[64][1] / results[16][1]
        assert incr_growth < 6.0**2       # ~16x over two doublings
        assert reeval_growth > 6.0**2     # ~64x over two doublings
        assert results[64][1] > 5 * results[64][0]
