"""Expression AST construction, smart constructors, operator sugar."""

import pytest

from repro.expr import (
    Add,
    HStack,
    Identity,
    Inverse,
    MatMul,
    MatrixSymbol,
    NamedDim,
    ScalarMul,
    Shape,
    ShapeError,
    Transpose,
    VStack,
    ZeroMatrix,
    add,
    hstack,
    inverse,
    matmul,
    neg,
    scalar_mul,
    sub,
    transpose,
    vstack,
)

n = NamedDim("n")
m = NamedDim("m")
A = MatrixSymbol("A", n, n)
B = MatrixSymbol("B", n, n)
X = MatrixSymbol("X", m, n)
u = MatrixSymbol("u", n, 1)
v = MatrixSymbol("v", n, 1)


class TestLeaves:
    def test_symbol_shape(self):
        assert A.shape == Shape(n, n)
        assert X.shape == Shape(m, n)

    def test_symbol_requires_name(self):
        with pytest.raises(ValueError):
            MatrixSymbol("", n, n)

    def test_identity_square(self):
        eye = Identity(n)
        assert eye.shape.is_square

    def test_zero_shape(self):
        z = ZeroMatrix(n, 3)
        assert z.shape == Shape(n, 3)
        assert z.is_zero

    def test_structural_equality(self):
        assert A == MatrixSymbol("A", n, n)
        assert A != MatrixSymbol("A", n, m)  # same name, different shape
        assert A != B

    def test_hash_supports_dict_keys(self):
        table = {A: 1, B: 2}
        assert table[MatrixSymbol("A", n, n)] == 1


class TestImmutability:
    def test_cannot_set_attributes(self):
        with pytest.raises(AttributeError):
            A.shape = Shape(m, m)  # type: ignore[misc]

    def test_children_is_tuple(self):
        assert isinstance((A + B).children, tuple)


class TestAdd:
    def test_basic(self):
        expr = add(A, B)
        assert isinstance(expr, Add)
        assert expr.shape == A.shape

    def test_flattens_nested(self):
        expr = add(add(A, B), A)
        assert isinstance(expr, Add)
        assert len(expr.children) == 3

    def test_drops_zero_terms(self):
        expr = add(A, ZeroMatrix(n, n))
        assert expr == A

    def test_all_zeros_collapse(self):
        expr = add(ZeroMatrix(n, n), ZeroMatrix(n, n))
        assert expr.is_zero

    def test_shape_mismatch_raises(self):
        with pytest.raises(ShapeError):
            add(A, u)

    def test_node_requires_two_terms(self):
        with pytest.raises(ValueError):
            Add([A])

    def test_operator_sugar(self):
        assert (A + B) == add(A, B)

    def test_sub_encoding(self):
        expr = sub(A, B)
        assert isinstance(expr, Add)
        negated = expr.children[1]
        assert isinstance(negated, ScalarMul) and negated.coeff == -1.0

    def test_sub_operator(self):
        assert (A - B) == sub(A, B)


class TestMatMul:
    def test_basic(self):
        expr = matmul(A, B)
        assert isinstance(expr, MatMul)
        assert expr.shape == Shape(n, n)

    def test_rectangular_shapes(self):
        expr = matmul(X, A)  # (m x n)(n x n)
        assert expr.shape == Shape(m, n)

    def test_association_preserved(self):
        # Grouping is load-bearing (Section 4.2); products never flatten.
        left = matmul(matmul(A, B), A)
        right = matmul(A, matmul(B, A))
        assert len(left.children) == 2
        assert left != right

    def test_mismatch_raises(self):
        with pytest.raises(ShapeError):
            matmul(u, A)  # (n x 1)(n x n)

    def test_identity_elimination(self):
        assert matmul(A, Identity(n)) == A
        assert matmul(Identity(n), A) == A

    def test_identity_chain_survives(self):
        expr = matmul(Identity(n), Identity(n))
        assert expr.shape == Shape(n, n)

    def test_zero_annihilates(self):
        assert matmul(A, ZeroMatrix(n, n)).is_zero

    def test_scalar_coefficients_pulled_out(self):
        expr = matmul(scalar_mul(2.0, A), scalar_mul(3.0, B))
        assert isinstance(expr, ScalarMul)
        assert expr.coeff == 6.0

    def test_vector_outer_product_shape(self):
        expr = matmul(u, transpose(v))
        assert expr.shape == Shape(n, n)

    def test_scalar_1x1_product_composes(self):
        # u (v' u) is (n x 1)(1 x 1) — the paper's scalar subexpressions.
        expr = matmul(u, matmul(transpose(v), u))
        assert expr.shape == Shape(n, 1)

    def test_matmul_operator(self):
        assert (A @ B) == matmul(A, B)

    def test_star_operator_is_matmul(self):
        assert (A * B) == matmul(A, B)

    def test_star_with_number_is_scalar(self):
        assert (2 * A) == scalar_mul(2.0, A)
        assert (A * 2) == scalar_mul(2.0, A)


class TestScalarMul:
    def test_coefficient_folding(self):
        expr = scalar_mul(2.0, scalar_mul(3.0, A))
        assert isinstance(expr, ScalarMul) and expr.coeff == 6.0

    def test_unit_coefficient_is_identity_op(self):
        assert scalar_mul(1.0, A) == A

    def test_zero_coefficient_collapses(self):
        assert scalar_mul(0.0, A).is_zero

    def test_neg_is_minus_one(self):
        expr = neg(A)
        assert isinstance(expr, ScalarMul) and expr.coeff == -1.0

    def test_double_negation(self):
        assert neg(neg(A)) == A

    def test_neg_operator(self):
        assert (-A) == neg(A)


class TestTranspose:
    def test_basic(self):
        expr = transpose(X)
        assert isinstance(expr, Transpose)
        assert expr.shape == Shape(n, m)

    def test_double_transpose_folds(self):
        assert transpose(transpose(A)) == A

    def test_identity_transpose_folds(self):
        assert transpose(Identity(n)) == Identity(n)

    def test_zero_transpose_folds(self):
        assert transpose(ZeroMatrix(n, 3)) == ZeroMatrix(3, n)

    def test_scalar_passes_through(self):
        expr = transpose(scalar_mul(2.0, X))
        assert isinstance(expr, ScalarMul)
        assert isinstance(expr.child, Transpose)

    def test_property_sugar(self):
        assert A.T == transpose(A)


class TestInverse:
    def test_basic(self):
        expr = inverse(A)
        assert isinstance(expr, Inverse)
        assert expr.shape == A.shape

    def test_requires_square(self):
        with pytest.raises(ShapeError):
            inverse(X)

    def test_double_inverse_folds(self):
        assert inverse(inverse(A)) == A

    def test_identity_inverse_folds(self):
        assert inverse(Identity(n)) == Identity(n)

    def test_scalar_inverse(self):
        expr = inverse(scalar_mul(2.0, A))
        assert isinstance(expr, ScalarMul) and expr.coeff == 0.5

    def test_property_sugar(self):
        assert A.inv == inverse(A)


class TestStacks:
    def test_hstack_width_adds(self):
        expr = hstack([u, v, u])
        assert isinstance(expr, HStack)
        assert expr.shape == Shape(n, 3)

    def test_hstack_singleton_passthrough(self):
        assert hstack([u]) == u

    def test_hstack_flattens(self):
        expr = hstack([hstack([u, v]), u])
        assert len(expr.children) == 3

    def test_hstack_row_mismatch(self):
        w = MatrixSymbol("w", m, 1)
        with pytest.raises(ShapeError):
            hstack([u, w])

    def test_vstack_heights_add(self):
        expr = vstack([transpose(u), transpose(v)])
        assert isinstance(expr, VStack)
        assert expr.shape == Shape(2, n)

    def test_vstack_col_mismatch(self):
        with pytest.raises(ShapeError):
            vstack([u, transpose(u)])

    def test_empty_stack_rejected(self):
        with pytest.raises(ValueError):
            hstack([])
