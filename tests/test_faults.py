"""Chaos suite: every injected fault ends in exact recovery or a typed
error — never a hang, never silent corruption.

Fault taxonomy exercised here (docs/fault-model.md):

* malformed updates   → :class:`InvalidUpdateError` *before* any state
  is touched (the session boundary is the validation line);
* shm exhaustion      → typed :class:`SharedMemoryBudgetError`, and
  ``open_session`` degrades to a single-process plan with a warning;
* worker kill/hang    → supervised clusters recover **bitwise**
  (respawn + reseed + oplog replay); unsupervised sharded sessions
  fall back to a single-process engine via the refresh progress log;
* torn input          → no consistent basis on any path: a typed
  re-raise pointing at checkpoint restore (tested in
  ``test_checkpoint.py`` that the checkpoint actually has it).

Process-spawning tests keep ``n`` small; spawn dominates their cost.
"""

from __future__ import annotations

import dataclasses
import warnings

import numpy as np
import pytest

from repro.compiler import Program, Statement
from repro.distributed import ShardedChainMaintainer, power_chain
from repro.distributed.shm import SharedArray, SharedMemoryBudgetError
from repro.expr.ast import MatrixSymbol, matmul
from repro.planner import plan_program
from repro.runtime.session import ShardedChainSession, open_session
from repro.runtime.updates import FactoredUpdate, InvalidUpdateError
from repro.testing import faults


def chain_program(n: int) -> Program:
    a = MatrixSymbol("A", n, n)
    p2 = MatrixSymbol("P2", n, n)
    p3 = MatrixSymbol("P3", n, n)
    return Program([a], [Statement(p2, matmul(a, a)),
                         Statement(p3, matmul(a, p2))], outputs=("P3",))


def operator(n: int, seed: int = 9) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return 0.4 * rng.standard_normal((n, n)) / np.sqrt(n)


def stream(n: int, count: int, seed: int = 5):
    rng = np.random.default_rng(seed)
    return [
        FactoredUpdate("A", 0.01 * rng.standard_normal((n, 1)),
                       rng.standard_normal((n, 1)))
        for _ in range(count)
    ]


def sharded_plan(program, inputs, nodes: int = 2):
    """A guaranteed-sharded plan (the planner won't pick one at test n)."""
    return dataclasses.replace(
        plan_program(program, inputs), nodes=nodes, mode="interpret",
        batch_size=1, partition="uniform")


class TestInjector:
    def test_fires_in_occurrence_window(self):
        with faults.inject_faults() as injector:
            injector.inject("demo", at=2, times=2)
            outcomes = []
            for _ in range(6):
                try:
                    faults.fire("demo")
                    outcomes.append("ok")
                except faults.InjectedFaultError:
                    outcomes.append("boom")
        assert outcomes == ["ok", "ok", "boom", "boom", "ok", "ok"]
        assert injector.count("demo") == 6
        assert len(injector.fired) == 2

    def test_action_can_replace_the_value(self):
        with faults.inject_faults() as injector:
            injector.inject("demo", lambda value, **ctx: value[:2])
            assert faults.fire("demo", b"abcdef") == b"ab"
            assert faults.fire("demo", b"abcdef") == b"abcdef"

    def test_counts_hits_even_unarmed(self):
        with faults.inject_faults() as injector:
            faults.fire("quiet.site")
            assert injector.count("quiet.site") == 1
            assert injector.fired == []

    def test_noop_outside_context(self):
        assert faults.fire("anything", b"x") == b"x"
        assert faults.active_injector() is None

    def test_injectors_do_not_nest(self):
        with faults.inject_faults():
            with pytest.raises(RuntimeError, match="already armed"):
                with faults.inject_faults():
                    pass

    def test_truncate_fraction_validated(self):
        with pytest.raises(ValueError):
            faults.truncate_bytes(1.0)
        with pytest.raises(ValueError):
            faults.truncate_bytes(-0.1)

    def test_bad_window_rejected(self):
        with faults.inject_faults() as injector:
            with pytest.raises(ValueError):
                injector.inject("demo", at=-1)
            with pytest.raises(ValueError):
                injector.inject("demo", times=0)


class TestUpdateValidation:
    def make_session(self, n: int = 16):
        program = chain_program(n)
        return open_session(program, {"A": operator(n)}, batch="off")

    def test_nan_rejected_before_state_changes(self):
        session = self.make_session()
        before = {name: np.asarray(session[name]).copy()
                  for name in ("A", "P2", "P3")}
        bad = FactoredUpdate("A", np.full((16, 1), np.nan), np.ones((16, 1)))
        with pytest.raises(InvalidUpdateError, match="non-finite"):
            session.apply_update(bad)
        assert session.update_count == 0
        for name in before:
            assert np.array_equal(before[name], np.asarray(session[name]))

    def test_inf_rejected(self):
        session = self.make_session()
        bad = FactoredUpdate("A", np.ones((16, 1)),
                             np.full((16, 1), np.inf))
        with pytest.raises(InvalidUpdateError, match="non-finite"):
            session.apply_update(bad)

    def test_shape_mismatch_rejected(self):
        session = self.make_session()
        bad = FactoredUpdate("A", np.ones((17, 1)), np.ones((16, 1)))
        with pytest.raises(InvalidUpdateError, match="do not match"):
            session.apply_update(bad)
        assert session.update_count == 0

    def test_factor_width_disagreement_rejected_at_construction(self):
        with pytest.raises(InvalidUpdateError):
            FactoredUpdate("A", np.ones((8, 2)), np.ones((8, 3)))


class TestShmBudget:
    def test_create_raises_typed_error(self):
        with faults.inject_faults() as injector:
            injector.inject("shm.create", faults.shm_budget_exhausted())
            with pytest.raises(SharedMemoryBudgetError) as info:
                SharedArray.create((64, 64))
        assert info.value.nbytes == 64 * 64 * 8
        assert "shm" in str(info.value) or "shared-memory" in str(info.value)

    def test_open_session_degrades_to_single_process(self):
        n = 32
        program = chain_program(n)
        a0 = operator(n)
        plan = sharded_plan(program, {"A": a0})
        with faults.inject_faults() as injector:
            injector.inject("shm.create", faults.shm_budget_exhausted(),
                            times=10 ** 6)
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always")
                session = open_session(program, {"A": a0}, plan=plan,
                                       batch="off", partition="off")
        assert not isinstance(session, ShardedChainSession)
        assert session.plan.nodes == 1
        assert any("shared-memory budget" in str(w.message) for w in caught)
        # The degraded session maintains exactly like a planned-local one.
        oracle = open_session(program, {"A": a0}, plan=dataclasses.replace(
            plan, nodes=1), batch="off", partition="off")
        for update in stream(n, 6):
            session.apply_update(update)
            oracle.apply_update(update)
        for name in ("A", "P2", "P3"):
            assert np.array_equal(np.asarray(session[name]),
                                  np.asarray(oracle[name])), name


class TestSupervision:
    def test_kill_and_hang_recover_bitwise(self):
        n = 32
        a0 = operator(n, seed=7)
        updates = [(u.u_block, u.v_block) for u in stream(n, 12, seed=7)]
        with ShardedChainMaintainer(a0.copy(), power_chain(3), nodes=2,
                                    process=False) as oracle:
            for u, v in updates:
                oracle.refresh(u, v)
            want = {name: oracle.result(name)
                    for name in ("A", "P2", "P3")}
        with ShardedChainMaintainer(a0.copy(), power_chain(3), nodes=2,
                                    process=True, supervise=True,
                                    timeout=3.0) as maintainer:
            for index, (u, v) in enumerate(updates):
                if index == 4:
                    maintainer.engine.cluster.kill_worker(0)
                if index == 8:
                    maintainer.engine.cluster.hang_worker(1, seconds=60.0)
                maintainer.refresh(u, v)
            got = {name: maintainer.result(name)
                   for name in ("A", "P2", "P3")}
            recoveries = list(maintainer.engine.recoveries)
        for name in want:
            assert np.array_equal(want[name], got[name]), name
        assert len(recoveries) == 2
        assert {event.worker for event in recoveries} == {0, 1}
        assert all(event.replayed >= 1 for event in recoveries)
        assert all(event.attempts >= 1 for event in recoveries)
        assert all(event.reason for event in recoveries)

    def test_kill_via_injected_fault_seam(self):
        n = 32
        a0 = operator(n, seed=3)
        updates = [(u.u_block, u.v_block) for u in stream(n, 6, seed=3)]
        with ShardedChainMaintainer(a0.copy(), power_chain(2), nodes=2,
                                    process=False) as oracle:
            for u, v in updates:
                oracle.refresh(u, v)
            want = oracle.result("P2")
        with faults.inject_faults() as injector:
            injector.inject("cluster.roundtrip",
                            faults.kill_worker_at(1), at=9)
            with ShardedChainMaintainer(a0.copy(), power_chain(2), nodes=2,
                                        process=True, supervise=True,
                                        timeout=3.0) as maintainer:
                for u, v in updates:
                    maintainer.refresh(u, v)
                got = maintainer.result("P2")
                recoveries = list(maintainer.engine.recoveries)
        assert injector.count("cluster.roundtrip") > 9
        assert len(recoveries) == 1 and recoveries[0].worker == 1
        assert np.array_equal(want, got)


def kill_on_add_lowrank(occurrence: int, worker: int = 0):
    """Action killing ``worker`` right before the Nth add_lowrank op."""
    seen = {"count": 0}

    def action(value, cluster=None, label=None, **context):
        if label == "add_lowrank":
            seen["count"] += 1
            if seen["count"] == occurrence:
                cluster.kill_worker(worker)

    return action


class TestReevalFallback:
    def run_faulted(self, action, n: int = 32, count: int = 6):
        """Open a sharded (unsupervised) session and drive updates with
        ``action`` armed on the roundtrip seam; return the session."""
        program = chain_program(n)
        a0 = operator(n)
        plan = sharded_plan(program, {"A": a0})
        session = open_session(program, {"A": a0}, plan=plan,
                               batch="off", partition="off")
        assert isinstance(session, ShardedChainSession)
        with faults.inject_faults() as injector:
            injector.inject("cluster.roundtrip", action, times=10 ** 6)
            for update in stream(n, count):
                session.apply_update(update)
        return session

    def oracle_views(self, n: int = 32, count: int = 6):
        program = chain_program(n)
        session = open_session(program, {"A": operator(n)},
                               batch="off", partition="off")
        for update in stream(n, count):
            session.apply_update(update)
        return {name: np.asarray(session[name]).copy()
                for name in ("A", "P2", "P3")}

    def test_kill_between_refreshes_replays(self):
        # Worker dies before the refresh touches anything: the whole
        # refresh reruns on the local engine — bitwise INCR arithmetic.
        kills = {"done": False}

        def kill_before_refresh(value, cluster=None, label=None, **context):
            if label == "mat_lowrank" and not kills["done"]:
                kills["done"] = True
                cluster.kill_worker(0)

        session = self.run_faulted(kill_before_refresh)
        assert len(session.fallback_events) == 1
        event = session.fallback_events[0]
        assert event["mode"] == "replay" and event["torn"] is None
        assert session.nodes == 1
        want = self.oracle_views()
        for name in want:
            assert np.allclose(want[name], np.asarray(session[name]),
                               rtol=1e-9, atol=1e-12), name
        # The session keeps maintaining single-process afterwards.
        session.apply_update(FactoredUpdate(
            "A", 0.001 * np.ones((32, 1)), np.ones((32, 1))))
        session.close()

    def test_kill_mid_derived_view_reevaluates(self):
        # The input absorbed its delta, P2 was mid-absorption: recovery
        # must re-evaluate the derived views from the consistent input.
        session = self.run_faulted(kill_on_add_lowrank(2))
        assert len(session.fallback_events) == 1
        event = session.fallback_events[0]
        assert event["mode"] == "reeval"
        assert event["torn"] == "P2"
        assert "A" in event["applied"]
        want = self.oracle_views()
        for name in want:
            assert np.allclose(want[name], np.asarray(session[name]),
                               rtol=1e-9, atol=1e-12), name
        session.close()

    def test_torn_input_is_a_typed_dead_end(self):
        # The input itself torn mid-absorption: no consistent basis
        # exists; the session must say so, not fabricate state.
        program = chain_program(32)
        a0 = operator(32)
        plan = sharded_plan(program, {"A": a0})
        session = open_session(program, {"A": a0}, plan=plan,
                               batch="off", partition="off")
        with faults.inject_faults() as injector:
            injector.inject("cluster.roundtrip", kill_on_add_lowrank(1),
                            times=10 ** 6)
            with pytest.raises(RuntimeError, match="restore from a"):
                for update in stream(32, 3):
                    session.apply_update(update)

    def test_recover_fail_mode_propagates(self):
        program = chain_program(32)
        a0 = operator(32)
        from repro.distributed import WorkerFailedError

        plan = sharded_plan(program, {"A": a0})
        session = open_session(program, {"A": a0}, plan=plan,
                               batch="off", partition="off")
        assert isinstance(session, ShardedChainSession)
        session.recover = "fail"
        session.engine.cluster.kill_worker(0)
        with pytest.raises(WorkerFailedError):
            session.apply_update(stream(32, 1)[0])
