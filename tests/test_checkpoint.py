"""Checkpoint/restore: format, manager fallback, bitwise round-trips.

The load-bearing claim (ROADMAP: fault tolerance) is *exactness*:
restoring the newest valid snapshot and replaying the logged tail must
land on state **bitwise identical** to the live session — across every
plan axis (backend x mode x batch x partition), because batching and
heavy-light deferral change summation order and a checkpoint that
forgets them restores to merely-close state that then drifts.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cli import main
from repro.compiler import Program, Statement
from repro.expr.ast import MatrixSymbol, matmul, transpose
from repro.runtime.checkpoint import (
    CheckpointCorruptError,
    CheckpointError,
    CheckpointManager,
    Checkpointer,
    deserialize_state,
    load_checkpoint,
    restore_session,
    serialize_state,
    write_checkpoint,
)
from repro.runtime.session import open_session
from repro.runtime.updates import FactoredUpdate
from repro.testing import faults

N = 24


def gram_chain(n: int = N) -> Program:
    a = MatrixSymbol("A", n, n)
    v = MatrixSymbol("V", n, n)
    w = MatrixSymbol("W", n, n)
    return Program([a], [Statement(v, matmul(transpose(a), a)),
                         Statement(w, matmul(v, v))], outputs=("W",))


def stream(count: int, n: int = N, seed: int = 3, rank: int = 1):
    rng = np.random.default_rng(seed)
    return [
        FactoredUpdate("A", 0.01 * rng.standard_normal((n, rank)),
                       rng.standard_normal((n, rank)))
        for _ in range(count)
    ]


def operator(n: int = N, seed: int = 9) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return 0.4 * rng.standard_normal((n, n)) / np.sqrt(n)


class TestFormat:
    def test_round_trip(self):
        header = {"strategy": "INCR", "update_count": 7}
        arrays = {"A": np.arange(12.0).reshape(3, 4),
                  "V": np.eye(3)}
        got_header, got = deserialize_state(serialize_state(header, arrays))
        assert got_header["strategy"] == "INCR"
        assert got_header["update_count"] == 7
        for name in arrays:
            assert np.array_equal(arrays[name], got[name])

    @pytest.mark.parametrize("fraction", [0.0, 0.3, 0.6, 0.99])
    def test_any_truncation_is_detected(self, fraction):
        blob = serialize_state({"x": 1}, {"A": np.ones((8, 8))})
        torn = blob[: int(len(blob) * fraction)]
        with pytest.raises(CheckpointCorruptError):
            deserialize_state(torn)

    def test_bitflip_is_detected(self):
        blob = bytearray(serialize_state({"x": 1}, {"A": np.ones((8, 8))}))
        blob[len(blob) // 2] ^= 0x40
        with pytest.raises(CheckpointCorruptError):
            deserialize_state(bytes(blob))

    def test_bad_magic(self):
        with pytest.raises(CheckpointCorruptError):
            deserialize_state(b"NOPE" + b"\x00" * 64)

    def test_unsupported_version(self):
        blob = bytearray(serialize_state({}, {}))
        import hashlib
        import struct
        struct.pack_into("<I", blob, 4, 99)
        body = bytes(blob[:-32])
        with pytest.raises(CheckpointError, match="version 99"):
            deserialize_state(body + hashlib.sha256(body).digest())

    def test_write_is_atomic_no_tmp_left(self, tmp_path):
        path = write_checkpoint(tmp_path / "a.lvck", {"k": 1},
                                {"A": np.zeros((4, 4))})
        header, arrays = load_checkpoint(path)
        assert header["k"] == 1 and arrays["A"].shape == (4, 4)
        assert [p.name for p in tmp_path.iterdir()] == ["a.lvck"]


class TestManager:
    def test_keep_bound_prunes_oldest(self, tmp_path):
        manager = CheckpointManager(tmp_path, keep=2)
        for i in range(5):
            manager.save({"i": i}, {"A": np.full((2, 2), float(i))})
        paths = manager.paths()
        assert len(paths) == 2
        _, header, _ = manager.latest()
        assert header["i"] == 4

    def test_latest_walks_past_corrupt_files(self, tmp_path):
        manager = CheckpointManager(tmp_path, keep=4)
        manager.save({"i": 0}, {"A": np.zeros((2, 2))})
        good = manager.save({"i": 1}, {"A": np.ones((2, 2))})
        with faults.inject_faults() as injector:
            injector.inject("checkpoint.write", faults.truncate_bytes(0.5))
            manager.save({"i": 2}, {"A": np.full((2, 2), 2.0)})
        path, header, arrays = manager.latest()
        assert path == good and header["i"] == 1
        assert np.array_equal(arrays["A"], np.ones((2, 2)))

    def test_latest_none_when_all_corrupt(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        with faults.inject_faults() as injector:
            injector.inject("checkpoint.write", faults.truncate_bytes(0.2),
                            times=3)
            for i in range(3):
                manager.save({"i": i}, {"A": np.zeros((2, 2))})
        assert manager.latest() is None
        with pytest.raises(CheckpointError, match="no valid checkpoint"):
            restore_session(gram_chain(), tmp_path)


GRID = [
    # backend, mode, batch, partition  — the plan axes that change
    # summation order and therefore must survive a checkpoint.
    ("dense", "interpret", "off", "uniform"),
    ("dense", "codegen", "off", "uniform"),
    ("sparse", "interpret", "off", "uniform"),
    ("dense", "interpret", 3, "uniform"),
    ("dense", "codegen", 4, "uniform"),
    ("dense", "interpret", "off", "heavy-light"),
    ("dense", "interpret", 3, "heavy-light"),
]


class TestRoundTrip:
    @pytest.mark.parametrize("backend,mode,batch,partition", GRID)
    def test_restore_replay_is_bitwise(self, tmp_path, backend, mode,
                                       batch, partition):
        prog = gram_chain()
        a0 = operator()
        kwargs = {}
        if partition == "heavy-light":
            kwargs["heavy_budget"] = 4
        session = open_session(
            prog, {"A": a0}, plan="incr", backend=backend, mode=mode,
            batch=batch, partition=partition,
            checkpoint={"directory": tmp_path, "every": 8}, **kwargs)
        for update in stream(17):
            session.apply_update(update)
        live = {name: np.asarray(session[name]).copy() for name in ("V", "W")}
        checkpointer = session.checkpointer
        assert checkpointer.saves >= 2
        restored = session.restore()
        assert restored.update_count == session.update_count
        for name in live:
            assert np.array_equal(live[name], np.asarray(restored[name])), name
        # The restored session keeps maintaining identically.
        tail = stream(4, seed=8)
        for update in tail:
            session.apply_update(update)
            restored.apply_update(update)
        session.flush()
        restored.flush()
        for name in live:
            assert np.array_equal(np.asarray(session[name]),
                                  np.asarray(restored[name])), name

    def test_cold_restore_resumes_update_count(self, tmp_path):
        prog = gram_chain()
        a0 = operator()
        session = open_session(prog, {"A": a0},
                               checkpoint={"directory": tmp_path, "every": 4})
        for update in stream(12):
            session.apply_update(update)
        session.checkpointer.checkpoint()
        want = {name: np.asarray(session[name]).copy() for name in ("V", "W")}
        # A brand-new process: only the program and the directory survive.
        cold = open_session(prog, {"A": a0},
                            checkpoint={"directory": tmp_path,
                                        "restore": True})
        assert cold.update_count == 12
        for name in want:
            assert np.array_equal(want[name], np.asarray(cold[name])), name

    def test_restore_true_without_snapshot_raises(self, tmp_path):
        with pytest.raises(CheckpointError, match="no valid checkpoint"):
            open_session(gram_chain(), {"A": operator()},
                         checkpoint={"directory": tmp_path / "empty",
                                     "restore": True})

    def test_restore_auto_falls_through_to_fresh(self, tmp_path):
        session = open_session(gram_chain(), {"A": operator()},
                               checkpoint={"directory": tmp_path / "empty",
                                           "restore": "auto"})
        assert session.update_count == 0
        assert session.checkpointer is not None

    def test_torn_final_write_falls_back_one_snapshot(self, tmp_path):
        prog = gram_chain()
        a0 = operator()
        session = open_session(prog, {"A": a0},
                               checkpoint={"directory": tmp_path, "every": 4})
        updates = stream(8)
        for update in updates[:4]:
            session.apply_update(update)
        good = {name: np.asarray(session[name]).copy() for name in ("V", "W")}
        with faults.inject_faults() as injector:
            injector.inject("checkpoint.write", faults.truncate_bytes(0.5))
            for update in updates[4:]:
                session.apply_update(update)
        assert injector.count("checkpoint.write") == 1
        # Crash-restart: the torn snapshot is skipped, recovery lands on
        # the update-4 boundary state.
        cold = restore_session(prog, tmp_path)
        assert cold.update_count == 4
        for name in good:
            assert np.array_equal(good[name], np.asarray(cold[name])), name

    def test_with_plan_hands_the_checkpointer_over(self, tmp_path):
        import dataclasses

        from repro.planner import plan_program

        prog = gram_chain()
        a0 = operator()
        session = open_session(prog, {"A": a0},
                               checkpoint={"directory": tmp_path, "every": 50})
        checkpointer = session.checkpointer
        for update in stream(3):
            session.apply_update(update)
        plan = dataclasses.replace(plan_program(prog, {"A": a0}),
                                   strategy="REEVAL", mode="interpret")
        switched = session.with_plan(plan)
        assert switched.checkpointer is checkpointer
        assert checkpointer.session is switched
        assert session.checkpointer is None
        switched.apply_update(stream(1, seed=4)[0])
        assert checkpointer.pending == 4

    def test_delta_limit_bounds_the_log(self, tmp_path):
        session = open_session(gram_chain(), {"A": operator()})
        checkpointer = session.attach_checkpointer(
            tmp_path, every=2, auto=False, delta_limit=6)
        for update in stream(14):
            session.apply_update(update)
        # The epoch owner never called maybe_checkpoint, so the backstop
        # must have cut snapshots to keep the log bounded.
        assert checkpointer.pending < 6
        assert checkpointer.saves >= 2


class TestCheckpointerConfig:
    def test_auto_cadence_is_priced(self, tmp_path):
        session = open_session(gram_chain(), {"A": operator()})
        checkpointer = Checkpointer(session, tmp_path, every="auto")
        assert checkpointer.every >= 1

    def test_bad_cadence_rejected(self, tmp_path):
        session = open_session(gram_chain(), {"A": operator()})
        with pytest.raises(ValueError, match="every"):
            Checkpointer(session, tmp_path, every=0)
        with pytest.raises(ValueError, match="delta_limit"):
            Checkpointer(session, tmp_path, every=8, delta_limit=2)

    def test_restore_without_checkpointer_raises(self):
        session = open_session(gram_chain(), {"A": operator()})
        with pytest.raises(CheckpointError, match="no checkpointer"):
            session.restore()


PROGRAM_SOURCE = """
input A(n, n);
B := A * A;
C := B * B;
output C;
"""


class TestCli:
    @pytest.fixture
    def program_file(self, tmp_path):
        path = tmp_path / "chain.lvw"
        path.write_text(PROGRAM_SOURCE)
        return str(path)

    def test_run_checkpoint_then_restore(self, program_file, tmp_path,
                                         capsys):
        ckpt = str(tmp_path / "ckpts")
        assert main(["run", program_file, "--dims", "n=32", "--updates",
                     "12", "--checkpoint-dir", ckpt,
                     "--checkpoint-every", "4"]) == 0
        out = capsys.readouterr().out
        assert "checkpoint :" in out
        assert main(["run", program_file, "--dims", "n=32", "--updates",
                     "5", "--checkpoint-dir", ckpt, "--restore"]) == 0
        out = capsys.readouterr().out
        assert "resumed at update 12" in out

    def test_restore_requires_directory(self, program_file, capsys):
        assert main(["run", program_file, "--dims", "n=32",
                     "--restore"]) == 2
        assert "--checkpoint-dir" in capsys.readouterr().err

    def test_bad_cadence_rejected(self, program_file, tmp_path, capsys):
        assert main(["run", program_file, "--dims", "n=32",
                     "--checkpoint-dir", str(tmp_path / "c"),
                     "--checkpoint-every", "nope"]) == 2
        assert "--checkpoint-every" in capsys.readouterr().err
