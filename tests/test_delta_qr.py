"""Rank-1 QR maintenance (Golub & Van Loan §12.5.1 Givens scheme)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.delta.qr import QRView, qr_rank_one_update


def full_qr(a):
    return np.linalg.qr(a, mode="complete")


def assert_upper_trapezoidal(r, atol=1e-9):
    lower = np.tril(r, k=-1)
    np.testing.assert_allclose(lower, np.zeros_like(lower), atol=atol)


class TestRankOneUpdate:
    def test_update_reconstructs_matrix(self, rng):
        a = rng.normal(size=(8, 8))
        q, r = full_qr(a)
        u, v = rng.normal(size=8), rng.normal(size=8)
        q2, r2 = qr_rank_one_update(q, r, u, v)
        np.testing.assert_allclose(q2 @ r2, a + np.outer(u, v), atol=1e-9)

    def test_q_stays_orthogonal(self, rng):
        a = rng.normal(size=(9, 9))
        q, r = full_qr(a)
        q2, _ = qr_rank_one_update(q, r, rng.normal(size=9), rng.normal(size=9))
        np.testing.assert_allclose(q2 @ q2.T, np.eye(9), atol=1e-10)

    def test_r_stays_triangular(self, rng):
        a = rng.normal(size=(7, 7))
        q, r = full_qr(a)
        _, r2 = qr_rank_one_update(q, r, rng.normal(size=7), rng.normal(size=7))
        assert_upper_trapezoidal(r2)

    def test_tall_matrix(self, rng):
        a = rng.normal(size=(10, 4))
        q, r = full_qr(a)
        u, v = rng.normal(size=10), rng.normal(size=4)
        q2, r2 = qr_rank_one_update(q, r, u, v)
        np.testing.assert_allclose(q2 @ r2, a + np.outer(u, v), atol=1e-9)
        assert_upper_trapezoidal(r2)
        np.testing.assert_allclose(q2 @ q2.T, np.eye(10), atol=1e-10)

    def test_zero_update_is_identity(self, rng):
        a = rng.normal(size=(6, 6))
        q, r = full_qr(a)
        q2, r2 = qr_rank_one_update(q, r, np.zeros(6), rng.normal(size=6))
        np.testing.assert_allclose(q2 @ r2, a, atol=1e-10)

    def test_inputs_not_mutated(self, rng):
        a = rng.normal(size=(6, 6))
        q, r = full_qr(a)
        q_snap, r_snap = q.copy(), r.copy()
        qr_rank_one_update(q, r, rng.normal(size=6), rng.normal(size=6))
        np.testing.assert_array_equal(q, q_snap)
        np.testing.assert_array_equal(r, r_snap)

    def test_shape_validation(self, rng):
        a = rng.normal(size=(5, 5))
        q, r = full_qr(a)
        with pytest.raises(ValueError):
            qr_rank_one_update(q[:, :3], r, np.zeros(5), np.zeros(5))
        with pytest.raises(ValueError):
            qr_rank_one_update(q, r, np.zeros(4), np.zeros(5))
        with pytest.raises(ValueError):
            qr_rank_one_update(q, r, np.zeros(5), np.zeros(4))

    @settings(max_examples=25, deadline=None)
    @given(
        m=st.integers(min_value=2, max_value=12),
        n=st.integers(min_value=1, max_value=12),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_property_update_equals_dense(self, m, n, seed):
        rng = np.random.default_rng(seed)
        a = rng.normal(size=(m, n))
        q, r = full_qr(a)
        u, v = rng.normal(size=m), rng.normal(size=n)
        q2, r2 = qr_rank_one_update(q, r, u, v)
        np.testing.assert_allclose(q2 @ r2, a + np.outer(u, v), atol=1e-8)
        np.testing.assert_allclose(q2 @ q2.T, np.eye(m), atol=1e-8)
        assert_upper_trapezoidal(r2, atol=1e-8)


class TestQRView:
    def test_tracks_update_stream(self, rng):
        a = rng.normal(size=(10, 6))
        view = QRView(a)
        dense = a.copy()
        for _ in range(25):
            u, v = rng.normal(size=10), rng.normal(size=6)
            view.refresh(u, v)
            dense += np.outer(u, v)
        np.testing.assert_allclose(view.matrix(), dense, atol=1e-8)
        assert view.shape == (10, 6)

    def test_least_squares_matches_lstsq(self, rng):
        a = rng.normal(size=(12, 5))
        b = rng.normal(size=12)
        view = QRView(a)
        u, v = rng.normal(size=12), rng.normal(size=5)
        view.refresh(u, v)
        updated = a + np.outer(u, v)
        expected, *_ = np.linalg.lstsq(updated, b, rcond=None)
        np.testing.assert_allclose(view.solve_ls(b), expected, atol=1e-8)

    def test_least_squares_multiple_rhs(self, rng):
        a = rng.normal(size=(9, 4))
        b = rng.normal(size=(9, 3))
        view = QRView(a)
        expected, *_ = np.linalg.lstsq(a, b, rcond=None)
        np.testing.assert_allclose(view.solve_ls(b), expected, atol=1e-8)

    def test_orthogonality_drift_small_over_stream(self, rng):
        view = QRView(rng.normal(size=(8, 8)))
        for _ in range(100):
            view.refresh(0.1 * rng.normal(size=8), 0.1 * rng.normal(size=8))
        assert view.orthogonality_drift() < 1e-10

    def test_ill_conditioned_design_beats_normal_equations(self, rng):
        # Nearly collinear design: QR least squares stays accurate where
        # the explicitly inverted X'X loses half the digits.
        n = 8
        base = rng.normal(size=n)
        a = np.column_stack([base + 1e-7 * rng.normal(size=n)
                             for _ in range(4)])
        b = rng.normal(size=n)
        view = QRView(a)
        expected, *_ = np.linalg.lstsq(a, b, rcond=None)
        got = view.solve_ls(b)
        residual_qr = np.linalg.norm(a @ got - b)
        residual_ref = np.linalg.norm(a @ expected - b)
        assert residual_qr <= residual_ref * (1 + 1e-6)
