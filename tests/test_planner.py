"""Cost-driven maintenance planner: plans, stats, factories, sessions."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analytics import IncrementalOLS, make_ols
from repro.frontend import parse_program
from repro.iterative import make_general, make_powers
from repro.planner import (
    MaintenancePlan,
    WorkloadStats,
    plan_general,
    plan_powers,
    plan_program,
)
from repro.runtime import (
    FactoredUpdate,
    IVMSession,
    ReevalSession,
    SessionDriftMonitor,
    open_session,
)

A4_SOURCE = "input A(n, n); B := A * A; C := B * B; output C;"


def sparse_matrix(rng, n, density):
    return (rng.random((n, n)) < density) * rng.standard_normal((n, n)) / n


class TestMaintenancePlan:
    def test_label(self):
        plan = MaintenancePlan("HYBRID", "skip", 4, "sparse", "interpret")
        assert plan.label == "HYBRID-SKIP-4@sparse/interpret"
        plan = MaintenancePlan("INCR", "linear", None, "dense", "codegen")
        assert plan.label == "INCR-LIN@dense/codegen"

    def test_validation(self):
        with pytest.raises(ValueError, match="unknown strategy"):
            MaintenancePlan("EAGER")
        with pytest.raises(ValueError, match="unknown mode"):
            MaintenancePlan("INCR", mode="jit")

    def test_iterative_model(self):
        assert MaintenancePlan("INCR", "exponential").iterative_model().name == "EXP"
        assert MaintenancePlan("INCR", "skip", 8).iterative_model().name == "SKIP-8"

    def test_with_overrides(self):
        plan = MaintenancePlan("INCR", backend="sparse", mode="codegen")
        forced = plan.with_overrides(backend="dense")
        assert (forced.backend, forced.mode) == ("dense", "codegen")
        assert plan.with_overrides() is plan

    def test_as_dict_round_trips_json(self):
        import json

        plan = MaintenancePlan("REEVAL", predicted_time=1.0, predicted_space=2.0)
        assert json.loads(json.dumps(plan.as_dict()))["strategy"] == "REEVAL"


class TestWorkloadStats:
    def test_measure_density(self, rng):
        a = np.zeros((20, 20))
        a[:10, :10] = 1.0
        assert WorkloadStats.measure_density(a) == pytest.approx(0.25)

    def test_measure_density_scipy(self):
        sparse = pytest.importorskip("scipy.sparse")
        m = sparse.eye_array(100, format="csr")
        assert WorkloadStats.measure_density(m) == pytest.approx(0.01)

    def test_from_matrix(self, rng):
        stats = WorkloadStats.from_matrix(np.eye(50), k=8)
        assert stats.n == 50
        assert stats.density == pytest.approx(0.02)
        assert stats.k == 8


class TestIterativePlanning:
    def test_density_flips_backend(self):
        pytest.importorskip("scipy")
        dense = plan_general(WorkloadStats(n=2000, p=1, k=16, density=1.0))
        sparse = plan_general(WorkloadStats(n=2000, p=1, k=16, density=0.01))
        assert dense.backend == "dense"
        assert sparse.backend == "sparse"

    def test_powers_density_flips_backend(self):
        pytest.importorskip("scipy")
        assert plan_powers(WorkloadStats(n=2000, k=16, density=1.0)).backend == "dense"
        assert plan_powers(WorkloadStats(n=2000, k=16, density=0.01)).backend == "sparse"

    def test_long_streams_amortize_view_building(self):
        # A long dense p=16 stream should leave plain re-evaluation for
        # a maintained-view configuration (the Fig. 3h regime).
        plan = plan_general(
            WorkloadStats(n=1000, p=16, k=16, density=1.0, refresh_count=500)
        )
        assert plan.strategy in ("INCR", "HYBRID")
        assert plan.model in ("exponential", "skip")

    def test_plans_drive_factories(self, rng):
        n, k = 24, 4
        a = rng.normal(size=(n, n)) / n
        plan = plan_powers(WorkloadStats.from_matrix(a, k=k))
        maintainer = make_powers(plan, a, k)
        u = np.zeros((n, 1))
        u[1, 0] = 1.0
        maintainer.refresh(u, 0.01 * rng.normal(size=(n, 1)))
        exact = np.linalg.matrix_power(maintainer.ops.backend.materialize(
            maintainer.powers[1] if hasattr(maintainer, "powers") else maintainer.a
        ), k)
        np.testing.assert_allclose(
            maintainer.ops.backend.materialize(maintainer.result()), exact,
            rtol=1e-8, atol=1e-10,
        )

    def test_factory_rejects_bare_name_without_model(self, rng):
        with pytest.raises(TypeError, match="model is required"):
            make_powers("INCR", rng.normal(size=(4, 4)), 2)


class TestProgramPlanning:
    def test_sparse_graph_program_plans_sparse(self, rng):
        pytest.importorskip("scipy")
        program = parse_program(A4_SOURCE)
        a = sparse_matrix(rng, 600, 0.01)
        plan = plan_program(program, {"A": a})
        assert plan.backend == "sparse"
        assert plan.strategy == "INCR"

    def test_small_dense_program_plans_dense(self, rng):
        program = parse_program(A4_SOURCE)
        plan = plan_program(program, {"A": rng.normal(size=(48, 48))})
        assert plan.backend == "dense"
        assert plan.strategy == "INCR"

    def test_forced_strategy_grid(self, rng):
        program = parse_program(A4_SOURCE)
        plan = plan_program(program, {"A": rng.normal(size=(16, 16))},
                            strategies=("REEVAL",))
        assert plan.strategy == "REEVAL"


class TestOpenSession:
    def make_inputs(self, rng, n=16):
        return {"A": rng.normal(size=(n, n)) / n}

    def test_auto_attaches_plan(self, rng):
        # n is large enough that factored triggers beat re-evaluation
        # even with per-call overhead charged (at toy sizes the planner
        # now honestly prefers REEVAL — dispatch cost eats INCR's win).
        session = open_session(parse_program(A4_SOURCE),
                               self.make_inputs(rng, n=48))
        assert isinstance(session, IVMSession)
        assert session.plan.strategy == "INCR"

    def test_forced_strategies(self, rng):
        program = parse_program(A4_SOURCE)
        inputs = self.make_inputs(rng)
        assert isinstance(open_session(program, inputs, plan="reeval"),
                          ReevalSession)
        assert isinstance(open_session(program, inputs, plan="incr"),
                          IVMSession)

    def test_explicit_plan_and_overrides(self, rng):
        pytest.importorskip("scipy")  # forces backend="sparse"
        program = parse_program(A4_SOURCE)
        inputs = self.make_inputs(rng)
        plan = MaintenancePlan("INCR", backend="dense", mode="interpret")
        session = open_session(program, inputs, plan=plan)
        assert session.plan is plan
        forced = open_session(program, inputs, plan="incr", mode="codegen",
                              backend="sparse")
        assert forced.plan.mode == "codegen"
        assert forced.plan.backend == "sparse"

    def test_bad_plan_rejected(self, rng):
        with pytest.raises(ValueError, match="plan must be"):
            open_session(parse_program(A4_SOURCE), self.make_inputs(rng),
                         plan="lazy")

    def test_hybrid_plan_rejected(self, rng):
        # Sessions have no HYBRID execution path; running it as INCR
        # while reporting HYBRID would misattribute results.
        with pytest.raises(ValueError, match="HYBRID"):
            open_session(parse_program(A4_SOURCE), self.make_inputs(rng),
                         plan=MaintenancePlan("HYBRID"))

    def test_reeval_plan_normalizes_mode(self, rng):
        # REEVAL has no trigger code, so a codegen override must not be
        # reported as if it executed.
        session = open_session(parse_program(A4_SOURCE),
                               self.make_inputs(rng),
                               plan="reeval", mode="codegen")
        assert session.plan.mode == "interpret"

    def test_dims_inferred_from_inputs(self, rng):
        session = open_session(parse_program(A4_SOURCE),
                               self.make_inputs(rng, n=10))
        assert session.output().shape == (10, 10)

    def test_auto_matches_reeval_reference(self, rng):
        program = parse_program(A4_SOURCE)
        n = 12
        inputs = self.make_inputs(rng, n)
        auto = open_session(program, inputs, refresh_count=100)
        reference = ReevalSession(program, inputs, dims={"n": n})
        for _ in range(6):
            update = FactoredUpdate("A", rng.normal(size=(n, 1)),
                                    0.05 * rng.normal(size=(n, 1)))
            auto.apply_update(update)
            reference.apply_update(update)
        np.testing.assert_allclose(auto["C"], reference["C"],
                                   rtol=1e-7, atol=1e-9)


class TestSessionDrift:
    def test_factory_drift_kwarg_rebuilds(self, rng):
        program = parse_program(A4_SOURCE)
        n = 10
        inputs = {"A": rng.normal(size=(n, n)) / n}
        monitor = open_session(
            program, inputs, plan="incr",
            drift={"check_every": 1, "tolerance": 1e-30, "action": "rebuild"},
        )
        assert isinstance(monitor, SessionDriftMonitor)
        monitor.apply_update(FactoredUpdate("A", rng.normal(size=(n, 1)),
                                            rng.normal(size=(n, 1))))
        # Any nonzero drift beats 1e-30, so the policy must have rebuilt
        # and the views must now match recomputation exactly.
        assert monitor.rebuild_count >= 1
        assert monitor.revalidate() == 0.0

    def test_raise_action(self, rng):
        from repro.runtime import DriftExceededError

        program = parse_program(A4_SOURCE)
        n = 10
        monitor = open_session(
            program, {"A": rng.normal(size=(n, n)) / n}, plan="incr",
            drift={"check_every": 1, "tolerance": 1e-30, "action": "raise"},
        )
        with pytest.raises(DriftExceededError):
            monitor.apply_update(FactoredUpdate("A", rng.normal(size=(n, 1)),
                                                rng.normal(size=(n, 1))))

    def test_drift_true_uses_defaults(self, rng):
        program = parse_program(A4_SOURCE)
        monitor = open_session(program,
                               {"A": rng.normal(size=(48, 48)) / 48},
                               drift=True)
        assert monitor.check_every == 100
        assert monitor.plan.strategy == "INCR"

    def test_monitor_validates_options(self, rng):
        program = parse_program(A4_SOURCE)
        inputs = {"A": rng.normal(size=(8, 8))}
        with pytest.raises(ValueError, match="check_every"):
            open_session(program, inputs, drift={"check_every": 0})

    def test_monitor_survives_copy(self, rng):
        import copy

        program = parse_program(A4_SOURCE)
        monitor = open_session(program, {"A": rng.normal(size=(6, 6))},
                               drift=True)
        clone = copy.copy(monitor)  # must not hit __getattr__ recursion
        assert clone.check_every == monitor.check_every


class TestDriverRouting:
    def test_make_ols_auto_routes_incremental(self, rng):
        x = rng.normal(size=(60, 20))
        x[:20] += 0.5 * np.eye(20)
        y = rng.normal(size=(60, 1))
        model = make_ols(x, y)
        assert isinstance(model, IncrementalOLS)
        assert model.plan is not None and model.plan.strategy == "INCR"
        model.refresh(rng.normal(size=(60, 1)), 0.01 * rng.normal(size=(20, 1)))
        assert model.revalidate() < 1e-6

    def test_pagerank_auto(self, rng):
        from repro.analytics import IncrementalPageRank
        from repro.workloads import random_adjacency

        adjacency = random_adjacency(rng, 40, avg_out_degree=4)
        index = IncrementalPageRank(adjacency, k=8, strategy="auto")
        assert index.plan is not None
        index.add_edge(1, 2)
        assert index.revalidate() < 1e-8

    def test_power_iteration_auto(self, rng):
        from repro.analytics import IncrementalPowerIteration

        a = rng.normal(size=(24, 24)) / 24 + np.eye(24)
        power = IncrementalPowerIteration(a, k=8, strategy="auto")
        assert power.plan is not None
        power.refresh(0.01 * rng.normal(size=(24, 1)),
                      rng.normal(size=(24, 1)))
        assert power.residual() < 1.0

    def test_markov_auto_and_backend(self, rng):
        from repro.analytics import KStepTransitionMatrix, reference_k_step
        from repro.analytics.markov import random_walk_matrix

        adjacency = (rng.random((30, 30)) < 0.2).astype(float)
        np.fill_diagonal(adjacency, 0.0)
        p = random_walk_matrix(adjacency)
        chain = KStepTransitionMatrix(p, k=4, strategy="auto")
        assert chain.plan is not None
        new_col = np.full(30, 1.0 / 30)
        chain.perturb_column(3, new_col)
        drift = np.abs(chain.result() - reference_k_step(chain.p, 4)).max()
        assert drift < 1e-8

    def test_expm_backend_param(self, rng):
        pytest.importorskip("scipy")
        from repro.analytics import WeightedPowerSum

        a = sparse_matrix(rng, 80, 0.05) * 20
        dense_view = WeightedPowerSum(a, [1.0, 1.0, 0.5], backend="dense")
        sparse_view = WeightedPowerSum(a, [1.0, 1.0, 0.5], backend="sparse")
        u = np.zeros((80, 1))
        u[3, 0] = 1.0
        v = 0.01 * rng.normal(size=(80, 1))
        dense_view.refresh(u, v)
        sparse_view.refresh(u, v)
        np.testing.assert_allclose(sparse_view.result(), dense_view.result(),
                                   rtol=1e-8, atol=1e-10)


@settings(max_examples=15, deadline=None)
@given(
    n=st.integers(min_value=6, max_value=24),
    log_k=st.integers(min_value=1, max_value=3),
    density=st.sampled_from([0.05, 0.3, 1.0]),
    p=st.integers(min_value=1, max_value=3),
    updates=st.integers(min_value=1, max_value=4),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_property_planned_general_matches_dense_reeval(
    n, log_k, density, p, updates, seed
):
    """Whatever the planner picks must compute the same view states as
    the dense REEVAL reference over random factored-update streams."""
    from repro.iterative import parse_model

    k = 2 ** log_k
    rng = np.random.default_rng(seed)
    a = (rng.random((n, n)) < density) * rng.normal(size=(n, n)) / n
    b = rng.normal(size=(n, p))
    t0 = rng.normal(size=(n, p))
    plan = plan_general(WorkloadStats.from_matrix(a, p=p, k=k))
    planned = make_general(plan, a, b, t0, k)
    reference = make_general("REEVAL", a, b, t0, k, parse_model("LIN"),
                             backend="dense")
    for _ in range(updates):
        u = rng.normal(size=(n, 1))
        v = 0.05 * rng.normal(size=(n, 1))
        planned.refresh(u, v)
        reference.refresh(u, v)
    planned_result = planned.ops.backend.materialize(planned.result())
    np.testing.assert_allclose(planned_result, reference.result(),
                               rtol=1e-6, atol=1e-8)


@settings(max_examples=10, deadline=None)
@given(
    n=st.integers(min_value=6, max_value=20),
    density=st.sampled_from([0.1, 1.0]),
    updates=st.integers(min_value=1, max_value=4),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_property_planned_session_matches_dense_reeval(
    n, density, updates, seed
):
    """Auto-planned sessions agree with the dense REEVAL session."""
    program = parse_program(A4_SOURCE)
    rng = np.random.default_rng(seed)
    a = (rng.random((n, n)) < density) * rng.normal(size=(n, n)) / n
    planned = open_session(program, {"A": a})
    reference = ReevalSession(program, {"A": a}, dims={"n": n},
                              backend="dense")
    for _ in range(updates):
        update = FactoredUpdate("A", rng.normal(size=(n, 1)),
                                0.05 * rng.normal(size=(n, 1)))
        planned.apply_update(update)
        reference.apply_update(update)
    for name in ("A", "B", "C"):
        np.testing.assert_allclose(planned[name], reference[name],
                                   rtol=1e-6, atol=1e-8)


class TestPlannerAwareBatching:
    """The batch-width axis: plans carry a recommended BatchCollector size."""

    def _plan(self, rng, refreshes=500, batch_hint=None, strategies=None):
        program = parse_program(A4_SOURCE)
        a = rng.normal(size=(128, 128))
        stats = WorkloadStats(n=1, refresh_count=refreshes,
                              batch_hint=batch_hint)
        kwargs = {} if strategies is None else {"strategies": strategies}
        from repro.planner import rank_program

        return rank_program(program, {"A": a}, stats=stats,
                            calibration=None, **kwargs)

    def test_every_candidate_carries_a_batch_size(self, rng):
        for candidate in self._plan(rng):
            assert candidate.batch_size is not None
            assert candidate.batch_size >= 1

    def test_reeval_amortizes_into_large_batches(self, rng):
        reeval = [c for c in self._plan(rng) if c.strategy == "REEVAL"]
        assert reeval and all(c.batch_size > 1 for c in reeval), (
            "batching a REEVAL refresh amortizes the whole re-evaluation"
        )

    def test_batch_hint_caps_the_width(self, rng):
        for candidate in self._plan(rng, batch_hint=4):
            assert candidate.batch_size <= 4

    def test_batch_hint_one_disables_batching(self, rng):
        for candidate in self._plan(rng, batch_hint=1):
            assert candidate.batch_size == 1

    def test_plan_as_dict_includes_batch_size(self, rng):
        plan = self._plan(rng)[0]
        assert "batch_size" in plan.as_dict()

    def test_compaction_cost_scales_with_width(self):
        from repro.backends import get_backend
        from repro.cost.estimate import batch_unit_cost, compaction_cost

        be = get_backend("dense")
        assert compaction_cost(be, 512, 512, 8) < compaction_cost(
            be, 512, 512, 32)
        # Unit cost at batch=1 is exactly the per-refresh cost (no
        # compaction charged).
        refresh = lambda r: 1000.0 * r  # noqa: E731
        assert batch_unit_cost(be, refresh, 512, 512, 1) == 1000.0
