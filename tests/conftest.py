"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.expr import MatrixSymbol, NamedDim


@pytest.fixture(autouse=True)
def _no_ambient_calibration(monkeypatch):
    """Keep planner decisions deterministic across developer machines.

    A calibration cache in ``~/.cache`` would silently shift every
    planner assertion in this suite; tests exercising calibration pass
    explicit :class:`~repro.calibrate.Calibration` objects or set the
    env var themselves (monkeypatch wins over this autouse default).
    """
    import repro.calibrate as calibrate

    monkeypatch.setenv(calibrate.CACHE_ENV, "off")
    monkeypatch.setattr(calibrate, "_AUTOLOADED", False)


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic random generator (fresh per test)."""
    return np.random.default_rng(20140622)  # SIGMOD'14 conference date


@pytest.fixture
def n_dim() -> NamedDim:
    """The canonical symbolic dimension ``n``."""
    return NamedDim("n")


@pytest.fixture
def square_symbols(n_dim):
    """Symbols A, B, C of shape (n x n) plus column vectors u, v."""
    a = MatrixSymbol("A", n_dim, n_dim)
    b = MatrixSymbol("B", n_dim, n_dim)
    c = MatrixSymbol("C", n_dim, n_dim)
    u = MatrixSymbol("u", n_dim, 1)
    v = MatrixSymbol("v", n_dim, 1)
    return a, b, c, u, v


def random_env(rng: np.random.Generator, n: int,
               names=("A", "B", "C")) -> dict[str, np.ndarray]:
    """Random square matrices for the given names plus vectors u, v."""
    env = {name: rng.normal(size=(n, n)) for name in names}
    env["u"] = rng.normal(size=(n, 1))
    env["v"] = rng.normal(size=(n, 1))
    return env
