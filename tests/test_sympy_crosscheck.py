"""Symbolic cross-validation of the delta calculus against sympy.

The numeric tests check the Section 4 delta rules on random matrices;
this module re-verifies them as *polynomial identities*: every matrix
entry is an independent ``sympy`` symbol, our factored deltas are
evaluated symbolically, and ``E(A + dA) - E(A) - delta`` must expand to
the literal zero matrix.  A polynomial identity over symbolic entries
cannot pass by numerical coincidence, so this is an independent oracle
for the derivation machinery (and, at 2x2 with rational functions, for
the Sherman–Morrison inverse rule).
"""

import numpy as np
import pytest
import sympy as sp

from repro.compiler import Program, Statement, compile_program
from repro.delta import FactoredDelta, compute_delta, compute_delta_sequential
from repro.expr import (
    Add,
    Expr,
    HStack,
    Identity,
    Inverse,
    MatMul,
    MatrixSymbol,
    ScalarMul,
    Transpose,
    VStack,
    ZeroMatrix,
    matmul,
    transpose,
)

pytestmark = pytest.mark.slow

N = 3  # symbolic matrix order for the polynomial-identity checks


def sym_matrix(name: str, rows: int, cols: int) -> sp.Matrix:
    """A matrix of independent scalar symbols."""
    return sp.Matrix(rows, cols,
                     lambda i, j: sp.Symbol(f"{name}_{i}{j}"))


def sym_eval(expr: Expr, env: dict[str, sp.Matrix]) -> sp.Matrix:
    """Evaluate one of our expression trees over sympy matrices."""
    if isinstance(expr, MatrixSymbol):
        return env[expr.name]
    if isinstance(expr, Identity):
        order = expr.shape.rows if isinstance(expr.shape.rows, int) else N
        return sp.eye(order)
    if isinstance(expr, ZeroMatrix):
        rows = expr.shape.rows if isinstance(expr.shape.rows, int) else N
        cols = expr.shape.cols if isinstance(expr.shape.cols, int) else N
        return sp.zeros(rows, cols)
    if isinstance(expr, Add):
        acc = sym_eval(expr.children[0], env)
        for child in expr.children[1:]:
            acc = acc + sym_eval(child, env)
        return acc
    if isinstance(expr, MatMul):
        acc = sym_eval(expr.children[0], env)
        for child in expr.children[1:]:
            acc = acc * sym_eval(child, env)
        return acc
    if isinstance(expr, ScalarMul):
        return sp.Rational(expr.coeff) * sym_eval(expr.child, env)
    if isinstance(expr, Transpose):
        return sym_eval(expr.child, env).T
    if isinstance(expr, Inverse):
        return sym_eval(expr.child, env).inv()
    if isinstance(expr, HStack):
        return sp.Matrix.hstack(*[sym_eval(b, env) for b in expr.children])
    if isinstance(expr, VStack):
        return sp.Matrix.vstack(*[sym_eval(b, env) for b in expr.children])
    raise TypeError(f"cannot symbolically evaluate {type(expr).__name__}")


def delta_matrix(delta: FactoredDelta, env: dict[str, sp.Matrix]) -> sp.Matrix:
    """Symbolic value of a factored delta (sum of its monomials)."""
    rows = delta.shape.rows if isinstance(delta.shape.rows, int) else N
    cols = delta.shape.cols if isinstance(delta.shape.cols, int) else N
    acc = sp.zeros(rows, cols)
    for left, right in delta.terms:
        acc = acc + sym_eval(left, env) * sym_eval(right, env).T
    return acc


def assert_zero(matrix: sp.Matrix) -> None:
    expanded = sp.expand(matrix)
    assert expanded == sp.zeros(*matrix.shape), expanded


@pytest.fixture(scope="module")
def symbols():
    a = MatrixSymbol("A", N, N)
    b = MatrixSymbol("B", N, N)
    u = MatrixSymbol("u", N, 1)
    v = MatrixSymbol("v", N, 1)
    return a, b, u, v


@pytest.fixture(scope="module")
def env():
    env = {name: sym_matrix(name, N, N) for name in ("A", "B")}
    env["u"] = sym_matrix("u", N, 1)
    env["v"] = sym_matrix("v", N, 1)
    return env


def rank1(u, v):
    return FactoredDelta.rank_one(u, v)


def check_rule(expr: Expr, updates: dict[str, FactoredDelta], env) -> None:
    """Core identity: E(X + dX) - E(X) == delta(E), symbolically."""
    delta = compute_delta(expr, updates)
    old = sym_eval(expr, env)
    new_env = dict(env)
    for name, d in updates.items():
        new_env[name] = env[name] + delta_matrix(d, env)
    new = sym_eval(expr, new_env)
    assert_zero(new - old - delta_matrix(delta, env))


class TestDeltaRulesSymbolically:
    def test_product_rule(self, symbols, env):
        a, b, u, v = symbols
        check_rule(matmul(a, b), {"A": rank1(u, v)}, env)

    def test_product_rule_right_operand(self, symbols, env):
        a, b, u, v = symbols
        check_rule(matmul(a, b), {"B": rank1(u, v)}, env)

    def test_square_rule(self, symbols, env):
        a, _, u, v = symbols
        check_rule(matmul(a, a), {"A": rank1(u, v)}, env)

    def test_sum_rule(self, symbols, env):
        a, b, u, v = symbols
        check_rule(a + b, {"A": rank1(u, v)}, env)

    def test_scalar_rule(self, symbols, env):
        a, _, u, v = symbols
        check_rule(ScalarMul(3.0, a), {"A": rank1(u, v)}, env)

    def test_transpose_rule(self, symbols, env):
        a, _, u, v = symbols
        check_rule(transpose(a), {"A": rank1(u, v)}, env)

    def test_gram_rule(self, symbols, env):
        # dZ for Z = A'A — the OLS Example 4.2 derivation.
        a, _, u, v = symbols
        check_rule(matmul(transpose(a), a), {"A": rank1(u, v)}, env)

    def test_unrelated_matrix_has_zero_delta(self, symbols, env):
        a, b, u, v = symbols
        delta = compute_delta(b, {"A": rank1(u, v)})
        assert delta.is_zero

    def test_three_factor_chain(self, symbols, env):
        a, b, u, v = symbols
        check_rule(matmul(matmul(a, b), a), {"A": rank1(u, v)}, env)

    def test_polynomial_expression(self, symbols, env):
        # E = A B + 2 A' - B
        a, b, u, v = symbols
        expr = matmul(a, b) + ScalarMul(2.0, transpose(a)) + ScalarMul(-1.0, b)
        check_rule(expr, {"A": rank1(u, v)}, env)


class TestMultiUpdateSymbolically:
    def test_example_4_5_simultaneous(self, symbols, env):
        # dE for E = A B with both A and B updated (Example 4.5).
        a, b, u, v = symbols
        updates = {"A": rank1(u, v), "B": rank1(v, u)}
        check_rule(matmul(a, b), updates, env)

    def test_sequential_rule_matches(self, symbols, env):
        a, b, u, v = symbols
        updates = {"A": rank1(u, v), "B": rank1(v, u)}
        expr = matmul(a, b)
        simultaneous = compute_delta(expr, updates)
        sequential = compute_delta_sequential(expr, updates)
        assert_zero(delta_matrix(simultaneous, env)
                    - delta_matrix(sequential, env))

    def test_sequential_order_irrelevant(self, symbols, env):
        # "The order of applying the matrix updates is irrelevant."
        a, b, u, v = symbols
        updates = {"A": rank1(u, v), "B": rank1(v, u)}
        expr = matmul(a, b)
        ab = compute_delta_sequential(expr, updates, order=["A", "B"])
        ba = compute_delta_sequential(expr, updates, order=["B", "A"])
        assert_zero(delta_matrix(ab, env) - delta_matrix(ba, env))


class TestCompiledTriggerSymbolically:
    def test_a4_program_deltas(self, env):
        # The Example 1.1 / 4.6 program: B := A A; C := B B.
        a = MatrixSymbol("A", N, N)
        b = MatrixSymbol("B", N, N)
        c = MatrixSymbol("C", N, N)
        program = Program([a], [Statement(b, matmul(a, a)),
                                Statement(c, matmul(b, b))])
        trigger = compile_program(program)["A"]

        # Evaluate trigger statements symbolically over old state.
        sym_env = {
            "A": env["A"],
            "u_A": env["u"],
            "v_A": env["v"],
        }
        sym_env["B"] = sym_env["A"] * sym_env["A"]
        sym_env["C"] = sym_env["B"] * sym_env["B"]
        for assign in trigger.assigns:
            sym_env[assign.target.name] = sym_eval(assign.expr, sym_env)

        updated = dict(sym_env)
        for update in trigger.updates:
            updated[update.view.name] = (
                sym_env[update.view.name] + sym_eval(update.expr, sym_env)
            )

        new_a = updated["A"]
        assert_zero(sp.expand(updated["B"] - new_a * new_a))
        new_b = sp.expand(new_a * new_a)
        assert_zero(sp.expand(updated["C"] - new_b * new_b))


class TestInverseRuleSymbolically:
    def test_sherman_morrison_identity_2x2(self):
        # d(E^-1) = -(E^-1 u v' E^-1) / (1 + v' E^-1 u), rationally at 2x2.
        e = sym_matrix("e", 2, 2)
        u = sym_matrix("u", 2, 1)
        v = sym_matrix("v", 2, 1)
        w = e.inv()
        denominator = 1 + (v.T * w * u)[0, 0]
        sm_delta = -(w * u * v.T * w) / denominator
        exact = (e + u * v.T).inv() - w
        residual = sp.simplify(exact - sm_delta)
        assert residual == sp.zeros(2, 2), residual

    def test_compute_delta_inverse_references_expression(self):
        # The Section 4.1 inverse rule: d(E^-1) = (E + dE)^-1 - E^-1.
        a = MatrixSymbol("A", 2, 2)
        u = MatrixSymbol("u", 2, 1)
        v = MatrixSymbol("v", 2, 1)
        env2 = {"A": sym_matrix("A", 2, 2), "u": sym_matrix("u", 2, 1),
                "v": sym_matrix("v", 2, 1)}
        delta = compute_delta(Inverse(a), {"A": rank1(u, v)})
        exact = (env2["A"] + env2["u"] * env2["v"].T).inv() - env2["A"].inv()
        got = delta_matrix(delta, env2)
        residual = sp.simplify(exact - got)
        assert residual == sp.zeros(2, 2), residual


class TestSymbolicNumericAgreement:
    def test_symbolic_executor_matches_numpy(self, rng):
        # Guard the oracle itself: sym_eval and the numpy executor agree.
        from repro.runtime import evaluate

        a = MatrixSymbol("A", N, N)
        u = MatrixSymbol("u", N, 1)
        v = MatrixSymbol("v", N, 1)
        expr = matmul(a + matmul(u, transpose(v)), transpose(a))
        np_env = {"A": rng.normal(size=(N, N)),
                  "u": rng.normal(size=(N, 1)),
                  "v": rng.normal(size=(N, 1))}
        sym_env = {"A": sym_matrix("A", N, N), "u": sym_matrix("u", N, 1),
                   "v": sym_matrix("v", N, 1)}
        symbolic = sym_eval(expr, sym_env)
        substitutions = {}
        for name, mat in sym_env.items():
            for i in range(mat.rows):
                for j in range(mat.cols):
                    substitutions[mat[i, j]] = np_env[name][i, j]
        numeric_from_symbolic = np.array(
            symbolic.subs(substitutions).evalf(), dtype=np.float64
        )
        np.testing.assert_allclose(
            numeric_from_symbolic, evaluate(expr, np_env), atol=1e-9
        )
