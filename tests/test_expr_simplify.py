"""Simplifier rules and value preservation (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.expr import (
    MatrixSymbol,
    NamedDim,
    ScalarMul,
    add,
    inverse,
    matmul,
    neg,
    scalar_mul,
    simplify,
    sub,
    transpose,
)
from repro.runtime import evaluate

n = NamedDim("n")
A = MatrixSymbol("A", n, n)
B = MatrixSymbol("B", n, n)
C = MatrixSymbol("C", n, n)


class TestRules:
    def test_transpose_distributes_over_sum(self):
        expr = simplify(transpose(add(A, B)))
        assert expr == add(transpose(A), transpose(B))

    def test_transpose_reverses_product(self):
        expr = simplify(transpose(matmul(A, B)))
        assert expr == matmul(transpose(B), transpose(A))

    def test_identical_terms_collect(self):
        expr = simplify(add(A, A))
        assert isinstance(expr, ScalarMul)
        assert expr.coeff == 2.0 and expr.child == A

    def test_cancellation_to_zero(self):
        assert simplify(sub(A, A)).is_zero

    def test_partial_cancellation(self):
        expr = simplify(add(A, B, neg(A)))
        assert expr == B

    def test_coefficient_collection(self):
        expr = simplify(add(scalar_mul(2.0, A), scalar_mul(3.0, A)))
        assert isinstance(expr, ScalarMul) and expr.coeff == 5.0

    def test_nested_transpose_product_sum(self):
        expr = simplify(transpose(add(matmul(A, B), C)))
        assert expr == add(matmul(transpose(B), transpose(A)), transpose(C))

    def test_idempotent(self):
        expr = transpose(add(matmul(A, B), A, A))
        once = simplify(expr)
        assert simplify(once) == once


# -- hypothesis: simplification preserves value -----------------------------

_LEAVES = [A, B, C]


def _expr_strategy():
    leaf = st.sampled_from(_LEAVES)

    def extend(children):
        return st.one_of(
            st.tuples(children, children).map(lambda t: add(*t)),
            st.tuples(children, children).map(lambda t: matmul(*t)),
            st.tuples(children, children).map(lambda t: sub(*t)),
            children.map(transpose),
            children.map(neg),
            children.map(lambda e: scalar_mul(2.0, e)),
        )

    return st.recursive(leaf, extend, max_leaves=12)


@settings(max_examples=60, deadline=None)
@given(expr=_expr_strategy(), seed=st.integers(0, 2**31 - 1))
def test_simplify_preserves_value(expr, seed):
    rng = np.random.default_rng(seed)
    size = 5
    env = {name: rng.normal(size=(size, size)) for name in ("A", "B", "C")}
    before = evaluate(expr, env, dims={"n": size})
    after = evaluate(simplify(expr), env, dims={"n": size})
    np.testing.assert_allclose(after, before, rtol=1e-9, atol=1e-9)


@settings(max_examples=30, deadline=None)
@given(expr=_expr_strategy())
def test_simplify_growth_is_bounded_and_idempotent(expr):
    # Distributing transposes over sums can legitimately grow the tree
    # (``(A+B)' -> A' + B'``) but never more than a transpose per leaf;
    # and a second pass must be a fixpoint.
    from repro.expr import count_nodes

    simplified = simplify(expr)
    assert count_nodes(simplified) <= 2 * count_nodes(expr) + 1
    assert simplify(simplified) == simplified


@settings(max_examples=30, deadline=None)
@given(expr=_expr_strategy(), seed=st.integers(0, 2**31 - 1))
def test_simplify_with_inverse_preserves_value(expr, seed):
    rng = np.random.default_rng(seed)
    size = 5
    wrapped = inverse(add(matmul(expr, transpose(expr)), scalar_mul(10.0, _eye())))
    env = {name: rng.normal(size=(size, size)) for name in ("A", "B", "C")}
    before = evaluate(wrapped, env, dims={"n": size})
    after = evaluate(simplify(wrapped), env, dims={"n": size})
    np.testing.assert_allclose(after, before, rtol=1e-7, atol=1e-9)


def _eye():
    from repro.expr import Identity

    return Identity(n)
