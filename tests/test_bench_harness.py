"""Benchmark harness plumbing."""

import numpy as np
import pytest

from repro.bench import (
    Series,
    compare_strategies,
    format_seconds,
    paper_vs_measured,
    render_comparison_table,
    render_series,
    time_refresh,
)


class _FakeMaintainer:
    def __init__(self):
        self.calls = 0

    def refresh(self, u, v):
        self.calls += 1


class TestSeries:
    def test_add_and_lookup(self):
        series = Series("t")
        series.add("REEVAL", 2.0)
        series.add("INCR", 0.5)
        assert series.value("INCR") == 0.5
        assert series.speedup("REEVAL", "INCR") == 4.0

    def test_missing_label(self):
        with pytest.raises(ValueError):
            Series("t").value("nope")


class TestTimeRefresh:
    def test_applies_all_updates(self, rng):
        maintainer = _FakeMaintainer()
        updates = [(rng.normal(size=(3, 1)), rng.normal(size=(3, 1)))
                   for _ in range(5)]
        seconds = time_refresh(maintainer, updates, warmup=2)
        assert maintainer.calls == 5
        assert seconds >= 0.0

    def test_needs_more_than_warmup(self, rng):
        with pytest.raises(ValueError):
            time_refresh(_FakeMaintainer(), [(None, None)], warmup=1)

    def test_compare_strategies_same_stream(self, rng):
        streams = []

        def updates_factory():
            stream = [(np.ones((2, 1)), np.ones((2, 1))) for _ in range(3)]
            streams.append(stream)
            return stream

        series = compare_strategies(
            "demo",
            {"a": _FakeMaintainer, "b": _FakeMaintainer},
            updates_factory,
        )
        assert series.labels == ["a", "b"]
        assert len(streams) == 2


class TestReporting:
    def test_format_seconds_scales(self):
        assert format_seconds(5e-7).strip().endswith("us")
        assert format_seconds(5e-2).strip().endswith("ms")
        assert format_seconds(2.0).strip().endswith("s")

    def test_render_series_with_speedups(self):
        series = Series("Fig Xx")
        series.add("REEVAL", 1.0)
        series.add("INCR", 0.1)
        text = render_series(series, baseline="REEVAL")
        assert "Fig Xx" in text
        assert "10.0x vs REEVAL" in text

    def test_render_comparison_table(self):
        text = render_comparison_table(
            "Table T", ["a", "b"], {"row1": [1.0, 2.0]},
            formatter=lambda v: f"{v:.1f}",
        )
        assert "Table T" in text and "row1" in text and "2.0" in text

    def test_paper_vs_measured_line(self):
        line = paper_vs_measured("Fig 3a", "18.1x (Octave)", 12.3)
        assert "Fig 3a" in line and "12.3x" in line


class TestTimeRefreshTrimmed:
    """The outlier-robust timing path used by the figure reports."""

    def test_counts_refreshes_correctly(self):
        from repro.bench import time_refresh_trimmed

        class Recorder:
            def __init__(self):
                self.calls = 0

            def refresh(self, u, v):
                self.calls += 1

        recorder = Recorder()
        updates = [(None, None)] * 12
        time_refresh_trimmed(recorder, updates, warmup=1, trim=2)
        assert recorder.calls == 12

    def test_requires_enough_samples(self):
        from repro.bench import time_refresh_trimmed

        class Noop:
            def refresh(self, u, v):
                pass

        with pytest.raises(ValueError, match="more than warmup"):
            time_refresh_trimmed(Noop(), [(None, None)] * 5, warmup=1, trim=2)

    def test_trims_outliers(self):
        from repro.bench import time_refresh_trimmed

        class Spiky:
            """One refresh sleeps; the trimmed mean must not see it."""

            def __init__(self):
                self.calls = 0

            def refresh(self, u, v):
                import time as time_mod

                self.calls += 1
                if self.calls == 5:
                    time_mod.sleep(0.05)

        trimmed = time_refresh_trimmed(Spiky(), [(None, None)] * 12,
                                       warmup=1, trim=2)
        assert trimmed < 0.01  # the 50 ms spike was discarded

    def test_result_positive_and_finite(self):
        import numpy as np

        from repro.analytics import IncrementalOLS
        from repro.bench import time_refresh_trimmed
        from repro.workloads import well_conditioned_design

        rng = np.random.default_rng(1)
        x = well_conditioned_design(rng, 16, 16, ridge=2.0)
        model = IncrementalOLS(x, rng.normal(size=(16, 1)))
        updates = []
        for seed in range(12):
            gen = np.random.default_rng(seed)
            u = np.zeros((16, 1))
            u[gen.integers(16), 0] = 1.0
            updates.append((u, 0.01 * gen.standard_normal((16, 1))))
        seconds = time_refresh_trimmed(model, updates)
        assert 0.0 < seconds < 1.0
