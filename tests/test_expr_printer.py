"""Canonical text rendering (used by codegen and snapshot assertions)."""

from repro.expr import (
    Identity,
    MatrixSymbol,
    NamedDim,
    ZeroMatrix,
    add,
    hstack,
    inverse,
    matmul,
    neg,
    scalar_mul,
    sub,
    to_string,
    to_tree,
    transpose,
    vstack,
)

n = NamedDim("n")
A = MatrixSymbol("A", n, n)
B = MatrixSymbol("B", n, n)
C = MatrixSymbol("C", n, n)
u = MatrixSymbol("u", n, 1)
v = MatrixSymbol("v", n, 1)


class TestToString:
    def test_symbol(self):
        assert to_string(A) == "A"

    def test_product(self):
        assert to_string(matmul(A, B)) == "A * B"

    def test_sum(self):
        assert to_string(add(A, B)) == "A + B"

    def test_subtraction_renders_minus(self):
        assert to_string(sub(A, B)) == "A - B"

    def test_sum_of_products_no_parens(self):
        expr = add(matmul(A, B), matmul(B, A))
        assert to_string(expr) == "A * B + B * A"

    def test_product_of_sums_parenthesized(self):
        expr = matmul(add(A, B), C)
        assert to_string(expr) == "(A + B) * C"

    def test_transpose_postfix(self):
        assert to_string(transpose(A)) == "A'"

    def test_transpose_of_product_parenthesized(self):
        assert to_string(transpose(matmul(A, B))) == "(A * B)'"

    def test_inverse(self):
        assert to_string(inverse(add(A, B))) == "inv(A + B)"

    def test_negation(self):
        assert to_string(neg(A)) == "-A"

    def test_leading_negation_in_sum(self):
        expr = add(neg(A), B)
        text = to_string(expr)
        assert text in ("-A + B", "B - A")

    def test_scalar_coefficient(self):
        assert to_string(scalar_mul(2.5, A)) == "2.5 * A"

    def test_identity_and_zero(self):
        assert to_string(Identity(n)) == "eye(n)"
        assert to_string(ZeroMatrix(n, 2)) == "zeros(n, 2)"

    def test_hstack_brackets(self):
        assert to_string(hstack([u, v])) == "[u, v]"

    def test_vstack_semicolons(self):
        assert to_string(vstack([transpose(u), transpose(v)])) == "[u'; v']"

    def test_paper_example_delta_b(self):
        # U_B of Example 4.6: [u, A*u + u*(v'*u)]
        ub = hstack([u, add(matmul(A, u), matmul(u, matmul(transpose(v), u)))])
        assert to_string(ub) == "[u, A * u + u * (v' * u)]"

    def test_repr_uses_printer(self):
        assert repr(matmul(A, B)) == "A * B"


class TestToTree:
    def test_tree_contains_node_names(self):
        text = to_tree(add(matmul(A, B), C))
        assert "Add" in text
        assert "MatMul" in text
        assert "MatrixSymbol(A" in text

    def test_tree_indentation(self):
        text = to_tree(matmul(A, B))
        lines = text.splitlines()
        assert lines[0].startswith("MatMul")
        assert lines[1].startswith("  ")
