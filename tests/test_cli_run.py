"""The ``repro run`` subcommand and the density-aware advise options."""

import json

import pytest

from repro.cli import main

A4_SOURCE = """
input A(n, n);
B := A * A;
C := B * B;
output C;
"""


@pytest.fixture
def a4_file(tmp_path):
    path = tmp_path / "a4.lvw"
    path.write_text(A4_SOURCE)
    return str(path)


class TestRun:
    def test_dense_small_selects_dense_backend(self, a4_file, capsys):
        assert main(["run", a4_file, "--dims", "n=48", "--updates", "8"]) == 0
        out = capsys.readouterr().out
        assert "backend  : dense" in out
        assert "strategy : INCR" in out
        assert "FLOPs" in out

    def test_sparse_graph_selects_sparse_backend(self, a4_file, capsys):
        pytest.importorskip("scipy")
        assert main(["run", a4_file, "--dims", "n=256", "--density", "0.01",
                     "--updates", "4"]) == 0
        out = capsys.readouterr().out
        assert "backend  : sparse" in out

    def test_forced_plan_and_backend(self, a4_file, capsys):
        pytest.importorskip("scipy")
        assert main(["run", a4_file, "--dims", "n=24", "--updates", "4",
                     "--plan", "reeval", "--backend", "sparse"]) == 0
        out = capsys.readouterr().out
        assert "strategy : REEVAL" in out
        assert "backend  : sparse" in out

    def test_codegen_mode_and_rank(self, a4_file, capsys):
        # Force INCR: at n=24 the overhead-aware planner prefers REEVAL,
        # which has no trigger code and would normalize the mode away.
        assert main(["run", a4_file, "--dims", "n=24", "--updates", "6",
                     "--rank", "2", "--plan", "incr",
                     "--mode", "codegen", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["plan"]["mode"] == "codegen"
        # --updates counts update events regardless of their rank.
        assert data["updates"] == 6

    def test_replan_flag_reports_events(self, a4_file, capsys):
        assert main(["run", a4_file, "--dims", "n=64", "--updates", "12",
                     "--replan", "4", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert "replans" in data  # monitor attached; events may be empty

    def test_json_output(self, a4_file, capsys):
        assert main(["run", a4_file, "--dims", "n=24", "--updates", "4",
                     "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["plan"]["strategy"] in ("INCR", "REEVAL")
        assert data["updates"] == 4
        assert data["total_flops"] > 0
        assert "matmul" in data["flops_by_op"]

    def test_unbound_dimension_reported(self, a4_file, capsys):
        assert main(["run", a4_file]) == 2
        assert "--dims" in capsys.readouterr().err

    def test_unknown_input_reported(self, a4_file, capsys):
        assert main(["run", a4_file, "--dims", "n=16", "--input", "Z"]) == 2
        assert "Z" in capsys.readouterr().err

    def test_zero_updates_rejected(self, a4_file, capsys):
        assert main(["run", a4_file, "--dims", "n=16", "--updates", "0"]) == 2
        assert "--updates" in capsys.readouterr().err

    def test_oversized_rank_rejected(self, a4_file, capsys):
        assert main(["run", a4_file, "--dims", "n=4", "--rank", "8"]) == 2
        assert "--rank" in capsys.readouterr().err

    def test_forced_batch_width_reports_compression(self, a4_file, capsys):
        assert main(["run", a4_file, "--dims", "n=24", "--updates", "9",
                     "--batch", "4", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["batch"]["width"] == 4
        assert data["batch"]["updates"] == 9
        assert data["batch"]["flushes"] >= 2
        assert data["batch"]["compression"] >= 1.0

    def test_batch_off_disables_batching(self, a4_file, capsys):
        assert main(["run", a4_file, "--dims", "n=24", "--updates", "4",
                     "--batch", "off"]) == 0
        assert "batch    : off" in capsys.readouterr().out

    def test_batch_auto_prints_plan_width(self, a4_file, capsys):
        assert main(["run", a4_file, "--dims", "n=24", "--updates", "40",
                     "--batch", "auto"]) == 0
        out = capsys.readouterr().out
        assert "batch    :" in out

    def test_invalid_batch_rejected(self, a4_file, capsys):
        assert main(["run", a4_file, "--dims", "n=16", "--batch", "maybe"]) == 2
        assert "--batch" in capsys.readouterr().err
        assert main(["run", a4_file, "--dims", "n=16", "--batch", "0"]) == 2


class TestAdviseDensity:
    def test_density_adds_backend_axis(self, capsys):
        pytest.importorskip("scipy")
        assert main(["advise", "powers", "--n", "2000", "--k", "16",
                     "--density", "0.01"]) == 0
        out = capsys.readouterr().out
        assert "@sparse" in out
        assert "nnz-aware grid" in out

    def test_json_ranking(self, capsys):
        assert main(["advise", "general", "--n", "500", "--p", "1",
                     "--k", "8", "--density", "0.05", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["computation"] == "general"
        assert data["ranking"]
        assert {"label", "backend", "time"} <= set(data["ranking"][0])

    def test_classic_table2_output_unchanged(self, capsys):
        assert main(["advise", "powers", "--n", "1000", "--k", "16"]) == 0
        out = capsys.readouterr().out
        assert "Table 2" in out
        assert "@sparse" not in out
