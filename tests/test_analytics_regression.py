"""Gradient-descent linear regression (the Fig. 3h analytics)."""

import numpy as np
import pytest

from repro.analytics import GradientDescentLR, reference_gradient_descent
from repro.iterative import Model
from repro.workloads import regression_data, row_update_factors

MODELS = [Model.linear(), Model.exponential(), Model.skip(4)]
STRATS = ["REEVAL", "INCR", "HYBRID"]


class TestCorrectness:
    def test_initial_theta_matches_reference(self, rng):
        x, y, _ = regression_data(rng, 30, 10, 2)
        gd = GradientDescentLR(x, y, k=16, eta=0.01)
        np.testing.assert_allclose(
            gd.theta, reference_gradient_descent(x, y, 16, 0.01), atol=1e-9
        )

    @pytest.mark.parametrize("model", MODELS, ids=lambda m: m.name)
    @pytest.mark.parametrize("strategy", STRATS)
    def test_data_update_stream(self, model, strategy, rng):
        m, n, p, k = 24, 8, 2, 16
        x, y, _ = regression_data(rng, m, n, p)
        gd = GradientDescentLR(x, y, k=k, eta=0.01, model=model,
                               strategy=strategy)
        for u, v in row_update_factors(rng, m, n, 4, scale=0.05):
            gd.refresh_x(u, v)
        expected = reference_gradient_descent(gd.x, y, k, 0.01)
        np.testing.assert_allclose(gd.theta, expected, atol=1e-8)

    def test_direct_a_update(self, rng):
        """Fig. 3h workload: rank-1 perturbations straight on A."""
        m, n, k = 20, 8, 16
        x, y, _ = regression_data(rng, m, n, 1)
        gd = GradientDescentLR(x, y, k=k, eta=0.01, model=Model.exponential(),
                               strategy="INCR")
        a0 = gd.a.copy()
        theta0 = np.zeros((n, 1))
        u = 0.01 * rng.normal(size=(n, 1))
        v = 0.01 * rng.normal(size=(n, 1))
        gd.refresh_a(u, v)
        a_new = a0 + u @ v.T
        b = 0.01 * (x.T @ y)
        expected = theta0
        for _ in range(k):
            expected = a_new @ expected + b
        np.testing.assert_allclose(gd.theta, expected, atol=1e-9)

    def test_convergence_towards_lstsq(self, rng):
        x, y, _ = regression_data(rng, 60, 6, 1, noise=0.01)
        eta = 0.5 / np.linalg.norm(x.T @ x, 2)
        # eta must keep I - eta X'X contractive; then more steps = closer.
        gd_short = GradientDescentLR(x, y, k=8, eta=eta)
        gd_long = GradientDescentLR(x, y, k=256, eta=eta)
        target = np.linalg.lstsq(x, y, rcond=None)[0]
        err_short = np.abs(gd_short.theta - target).max()
        err_long = np.abs(gd_long.theta - target).max()
        assert err_long < err_short
        assert err_long < 1e-3

    def test_loss_decreases_with_iterations(self, rng):
        x, y, _ = regression_data(rng, 40, 6, 1)
        eta = 0.5 / np.linalg.norm(x.T @ x, 2)
        losses = [
            GradientDescentLR(x, y, k=k, eta=eta).loss() for k in (2, 8, 32)
        ]
        assert losses[0] > losses[1] > losses[2]

    def test_strategies_agree_after_updates(self, rng):
        m, n, p, k = 20, 6, 2, 16
        x, y, _ = regression_data(rng, m, n, p)
        models = [
            GradientDescentLR(x, y, k=k, eta=0.01, model=Model.skip(4),
                              strategy=s)
            for s in STRATS
        ]
        for u, v in row_update_factors(rng, m, n, 3, scale=0.05):
            for gd in models:
                gd.refresh_x(u, v)
        for gd in models[1:]:
            np.testing.assert_allclose(gd.theta, models[0].theta, atol=1e-8)

    def test_memory_accounting_positive(self, rng):
        x, y, _ = regression_data(rng, 20, 6, 1)
        gd = GradientDescentLR(x, y, k=16, eta=0.01, strategy="INCR",
                               model=Model.exponential())
        assert gd.memory_bytes() > x.nbytes + y.nbytes
