"""Smoke tests: every shipped example runs clean end to end.

Each example is executed in-process (imported and ``main()`` called)
with stdout captured, and a few load-bearing lines of its narrative
output are asserted — enough to catch API drift without being a golden
file.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

pytestmark = pytest.mark.slow

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

ALL_EXAMPLES = sorted(p.stem for p in EXAMPLES_DIR.glob("*.py"))


def run_example(name: str, capsys) -> str:
    spec = importlib.util.spec_from_file_location(
        f"example_{name}", EXAMPLES_DIR / f"{name}.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    try:
        spec.loader.exec_module(module)
        module.main()
    finally:
        sys.modules.pop(spec.name, None)
    return capsys.readouterr().out


def test_every_example_has_main():
    assert ALL_EXAMPLES, "no examples found"
    for name in ALL_EXAMPLES:
        source = (EXAMPLES_DIR / f"{name}.py").read_text()
        assert "def main()" in source, name
        assert '__name__ == "__main__"' in source, name


@pytest.mark.parametrize("name", ALL_EXAMPLES)
def test_example_runs(name, capsys, monkeypatch):
    out = run_example(name, capsys)
    assert out.strip(), f"{name} produced no output"


def test_quickstart_reports_advantage(capsys):
    out = run_example("quickstart", capsys)
    assert "operation-count advantage" in out
    assert "ON UPDATE A" in out


def test_markov_chain_reports_drift(capsys):
    out = run_example("markov_chain", capsys)
    assert "view drift vs recomputation" in out


def test_reachability_verifies_against_reference(capsys):
    out = run_example("reachability_index", capsys)
    assert "0 mismatches" in out


def test_strategy_advisor_validates_prediction(capsys):
    out = run_example("strategy_advisor", capsys)
    assert "HYBRID-LIN" in out
    assert "predicted gain over best re-evaluation" in out
