"""Delta derivation correctness: symbolic deltas equal numeric differences.

The master invariant (Section 4.1): for every expression E and factored
update dA, ``E(A + dA) - E(A) == dense(compute_delta(E, {A: dA}))``.
Checked on the paper's examples and on random expression trees via
hypothesis.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.delta import FactoredDelta, UnsupportedDeltaError, compute_delta
from repro.expr import (
    Identity,
    MatrixSymbol,
    NamedDim,
    add,
    hstack,
    inverse,
    matmul,
    scalar_mul,
    sub,
    transpose,
)
from repro.runtime import evaluate

n = NamedDim("n")
A = MatrixSymbol("A", n, n)
B = MatrixSymbol("B", n, n)
u = MatrixSymbol("u", n, 1)
v = MatrixSymbol("v", n, 1)
DA = FactoredDelta.rank_one(u, v)


def numeric_delta(expr, env, size, update_name="A"):
    """E(env with updated matrix) - E(env) evaluated densely."""
    before = evaluate(expr, env, dims={"n": size})
    bumped = dict(env)
    bumped[update_name] = env[update_name] + env["u"] @ env["v"].T
    after = evaluate(expr, bumped, dims={"n": size})
    return after - before


def check(expr, rng, size=6, extra=(), update_name="A"):
    env = {
        "A": rng.normal(size=(size, size)),
        "B": rng.normal(size=(size, size)),
        "u": rng.normal(size=(size, 1)),
        "v": rng.normal(size=(size, 1)),
    }
    for name, shape in extra:
        env[name] = rng.normal(size=shape)
    delta = compute_delta(expr, {update_name: DA})
    got = evaluate(delta.to_expr(), env, dims={"n": size})
    expected = numeric_delta(expr, env, size, update_name)
    np.testing.assert_allclose(got, expected, rtol=1e-8, atol=1e-8)
    return delta


class TestBasicRules:
    def test_delta_of_updated_symbol(self, rng):
        delta = check(A, rng)
        assert delta.width == 1

    def test_delta_of_other_symbol_is_zero(self):
        delta = compute_delta(B, {"A": DA})
        assert delta.is_zero

    def test_delta_of_identity_is_zero(self):
        assert compute_delta(Identity(n), {"A": DA}).is_zero

    def test_sum_rule(self, rng):
        check(add(A, B), rng)
        check(add(A, A), rng)

    def test_difference_rule(self, rng):
        check(sub(A, B), rng)
        delta = compute_delta(sub(B, A), {"A": DA})
        assert not delta.is_zero  # -dA

    def test_scalar_rule(self, rng):
        check(scalar_mul(2.5, A), rng)

    def test_transpose_rule(self, rng):
        delta = check(transpose(A), rng)
        assert delta.width == 1  # factors swapped, width unchanged

    def test_product_rule_square(self, rng):
        delta = check(matmul(A, B), rng)
        assert delta.width == 1  # only left factor changes

    def test_product_rule_both_sides(self, rng):
        delta = check(matmul(A, A), rng)
        assert delta.width == 2  # Example 4.4 / Section 4.3

    def test_gram_product(self, rng):
        delta = check(matmul(transpose(A), A), rng)
        assert delta.width == 2  # dZ of Example 4.2

    def test_triple_product(self, rng):
        delta = check(matmul(A, A, A), rng)
        assert delta.width == 3  # cube: one per factor occurrence

    def test_inverse_rule(self, rng):
        # Use a well-conditioned A so inv() and the delta are stable.
        size = 6
        env = {
            "A": rng.normal(size=(size, size)) + 10 * np.eye(size),
            "u": 0.1 * rng.normal(size=(size, 1)),
            "v": 0.1 * rng.normal(size=(size, 1)),
        }
        expr = inverse(A)
        delta = compute_delta(expr, {"A": DA})
        assert delta.width == 1  # Sherman-Morrison keeps rank 1
        got = evaluate(delta.to_expr(), env, dims={"n": size})
        before = np.linalg.inv(env["A"])
        after = np.linalg.inv(env["A"] + env["u"] @ env["v"].T)
        np.testing.assert_allclose(got, after - before, rtol=1e-7, atol=1e-9)

    def test_inverse_of_unrelated_is_zero(self):
        assert compute_delta(inverse(B), {"A": DA}).is_zero

    def test_stack_raises(self):
        with pytest.raises(UnsupportedDeltaError):
            compute_delta(hstack([u, v]), {"u": FactoredDelta.rank_one(u, v)})


class TestPaperExamples:
    def test_example_43_width_growth(self):
        """A^4 program: dB width 2, dC width 4 (Section 4.3)."""
        d_b = compute_delta(matmul(A, A), {"A": DA})
        assert d_b.width == 2
        d_c = compute_delta(matmul(B, B), {"B": d_b})
        assert d_c.width == 4
        # and dD for the A^8 extension is a product of (n x 8) blocks
        c_sym = MatrixSymbol("C", n, n)
        d_d = compute_delta(matmul(c_sym, c_sym), {"C": d_c})
        assert d_d.width == 8

    def test_example_43_structure(self):
        """U_B = [u, A u + u (v'u)], V_B = [A'v, v] verbatim."""
        d_b = compute_delta(matmul(A, A), {"A": DA})
        assert repr(d_b.u_expr) == "[u, A * u + u * (v' * u)]"
        assert repr(d_b.v_expr) == "[A' * v, v]"

    def test_a4_delta_values_through_two_statements(self, rng):
        size = 7
        env = {
            "A": rng.normal(size=(size, size)),
            "u": rng.normal(size=(size, 1)),
            "v": rng.normal(size=(size, 1)),
        }
        env["B"] = env["A"] @ env["A"]
        d_b = compute_delta(matmul(A, A), {"A": DA})
        d_c = compute_delta(matmul(B, B), {"B": d_b})
        a_new = env["A"] + env["u"] @ env["v"].T
        expected_c = np.linalg.matrix_power(a_new, 4) - np.linalg.matrix_power(
            env["A"], 4
        )
        got_c = evaluate(d_c.to_expr(), env, dims={"n": size})
        np.testing.assert_allclose(got_c, expected_c, rtol=1e-8)

    def test_ols_z_delta(self, rng):
        """dZ of Example 4.2 via X' X with rectangular X."""
        m = NamedDim("m")
        x = MatrixSymbol("X", m, n)
        u_x = MatrixSymbol("u", m, 1)
        v_x = MatrixSymbol("v", n, 1)
        dx = FactoredDelta.rank_one(u_x, v_x)
        delta = compute_delta(matmul(transpose(x), x), {"X": dx})
        assert delta.width == 2
        size_m, size_n = 9, 5
        env = {
            "X": rng.normal(size=(size_m, size_n)),
            "u": rng.normal(size=(size_m, 1)),
            "v": rng.normal(size=(size_n, 1)),
        }
        got = evaluate(delta.to_expr(), env, dims={"m": size_m, "n": size_n})
        x_new = env["X"] + env["u"] @ env["v"].T
        expected = x_new.T @ x_new - env["X"].T @ env["X"]
        np.testing.assert_allclose(got, expected, rtol=1e-8)


class TestInverseReference:
    def test_inverse_ref_substitutes_view(self):
        w = MatrixSymbol("W", n, n)
        expr = inverse(A)
        delta = compute_delta(expr, {"A": DA}, inverse_refs={expr: w})
        from repro.expr import references

        assert references(delta.to_expr(), "W")
        # the delta must NOT re-invert the full operand
        from repro.expr import walk, Inverse

        inversions = [
            node for node in walk(delta.to_expr()) if isinstance(node, Inverse)
        ]
        assert all(node.child.shape.rows == 1 for node in inversions), (
            "only the k x k capacitance matrix may be inverted"
        )


# -- hypothesis: delta rule correctness on random trees ---------------------


def _tree_strategy():
    leaf = st.sampled_from([A, B])

    def extend(children):
        return st.one_of(
            st.tuples(children, children).map(lambda t: add(*t)),
            st.tuples(children, children).map(lambda t: sub(*t)),
            st.tuples(children, children).map(lambda t: matmul(*t)),
            children.map(transpose),
            children.map(lambda e: scalar_mul(0.5, e)),
        )

    return st.recursive(leaf, extend, max_leaves=10)


@settings(max_examples=60, deadline=None)
@given(expr=_tree_strategy(), seed=st.integers(0, 2**31 - 1))
def test_delta_matches_numeric_difference(expr, seed):
    rng = np.random.default_rng(seed)
    size = 5
    env = {
        "A": rng.normal(size=(size, size)),
        "B": rng.normal(size=(size, size)),
        "u": rng.normal(size=(size, 1)),
        "v": rng.normal(size=(size, 1)),
    }
    delta = compute_delta(expr, {"A": DA})
    got = evaluate(delta.to_expr(), env, dims={"n": size})
    expected = numeric_delta(expr, env, size)
    np.testing.assert_allclose(got, expected, rtol=1e-6, atol=1e-8)


@settings(max_examples=40, deadline=None)
@given(expr=_tree_strategy())
def test_delta_width_bounded_by_occurrences(expr):
    """Factored widths never exceed the number of A-occurrences (S4.3)."""
    from repro.expr import walk

    occurrences = sum(
        1 for node in walk(expr) if isinstance(node, MatrixSymbol) and node.name == "A"
    )
    delta = compute_delta(expr, {"A": DA})
    width = delta.width
    assert isinstance(width, int)
    assert width <= max(occurrences, 0) or delta.is_zero
