"""Execution backends: registry, representation policy, dense/sparse parity.

The headline property test drives identical random factored-update
streams through maintainers built on :class:`DenseBackend` and
:class:`SparseBackend` and asserts the maintained view states agree to
float64 working precision — the backend abstraction must never change
*what* is computed, only *how*.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

try:
    from scipy import sparse as sp
except ImportError:  # the no-scipy CI leg: dense tests still run
    sp = None

needs_scipy = pytest.mark.skipif(sp is None, reason="scipy not installed")

from repro.backends import (
    DENSE,
    Backend,
    DenseBackend,
    SparseBackend,
    available_backends,
    get_backend,
)
from repro.compiler.program import Program, Statement
from repro.expr import MatrixSymbol, NamedDim, matmul
from repro.iterative.models import Model
from repro.iterative.strategies import make_general, make_sums
from repro.runtime.executor import evaluate
from repro.runtime.session import IVMSession, ReevalSession
from repro.runtime.updates import cell_update

SETTINGS = dict(max_examples=20, deadline=None)


def sparse_matrix(rng, n, density=0.03, scale=0.3):
    """A spectrally tame random matrix with ~density nonzeros."""
    return ((rng.random((n, n)) < density) * rng.normal(size=(n, n))) * scale


class TestRegistry:
    def test_names(self):
        assert available_backends() == ["dense", "sparse"]

    def test_none_resolves_to_shared_dense(self):
        assert get_backend(None) is DENSE

    @needs_scipy
    def test_instance_passthrough(self):
        be = SparseBackend()
        assert get_backend(be) is be

    def test_name_lookup(self):
        assert isinstance(get_backend("dense"), DenseBackend)
        if sp is not None:
            assert isinstance(get_backend("sparse"), SparseBackend)

    @pytest.mark.skipif(sp is not None, reason="needs scipy to be absent")
    def test_sparse_without_scipy_raises_cleanly(self):
        # The import gate the planner relies on: construction fails with
        # a RuntimeError (caught by the backend grids), never a crash.
        with pytest.raises(RuntimeError, match="requires scipy"):
            get_backend("sparse")

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown backend"):
            get_backend("gpu")

    def test_backend_is_abstract(self):
        with pytest.raises(TypeError):
            Backend()


class TestDenseBackend:
    def test_asarray_normalizes_columns(self):
        col = DENSE.asarray(np.arange(3.0))
        assert col.shape == (3, 1)

    def test_asarray_copy_detaches(self):
        src = np.zeros((2, 2))
        out = DENSE.asarray(src, copy=True)
        out[0, 0] = 5.0
        assert src[0, 0] == 0.0

    def test_add_outer_matches_explicit_form(self, rng):
        a = rng.normal(size=(6, 6))
        u = rng.normal(size=(6, 2))
        v = rng.normal(size=(6, 2))
        expected = a + u @ v.T
        out = DENSE.add_outer(a.copy(), u, v)
        np.testing.assert_allclose(out, expected, atol=1e-12)

    def test_density_and_nbytes(self):
        a = np.zeros((4, 4))
        assert DENSE.density(a) == 1.0
        assert DENSE.nbytes(a) == a.nbytes

    def test_flop_hooks_match_dense_formulas(self, rng):
        a = rng.normal(size=(3, 4))
        b = rng.normal(size=(4, 5))
        assert DENSE.matmul_flops(a, b) == 2 * 3 * 4 * 5
        assert DENSE.add_flops(a) == 12
        assert DENSE.inverse_flops(np.eye(4)) == 2 * 64


@needs_scipy
class TestSparseBackendPolicy:
    def test_large_low_density_input_becomes_csr(self, rng):
        be = SparseBackend()
        out = be.asarray(sparse_matrix(rng, 100, density=0.02))
        assert sp.issparse(out)

    def test_small_or_thin_inputs_stay_dense(self, rng):
        be = SparseBackend()
        assert isinstance(be.asarray(np.zeros((8, 8))), np.ndarray)
        assert isinstance(be.asarray(np.zeros((200, 3))), np.ndarray)

    def test_dense_input_above_threshold_stays_dense(self, rng):
        be = SparseBackend()
        out = be.asarray(rng.normal(size=(100, 100)))
        assert isinstance(out, np.ndarray)

    def test_results_densify_past_fill_in(self, rng):
        be = SparseBackend()
        a = be.asarray(sparse_matrix(rng, 100, density=0.02))
        dense_u = rng.normal(size=(100, 1))
        dense_v = rng.normal(size=(100, 1))
        out = be.add_outer(a, dense_u, dense_v)  # rank-1 but fully dense
        assert isinstance(out, np.ndarray)

    def test_sparse_add_outer_stays_sparse_for_sparse_factors(self, rng):
        be = SparseBackend()
        a = be.asarray(sparse_matrix(rng, 100, density=0.02))
        u = np.zeros((100, 1))
        u[3, 0] = 1.0
        v = np.zeros((100, 1))
        v[9, 0] = 2.0
        out = be.add_outer(a, u, v)
        assert sp.issparse(out)
        np.testing.assert_allclose(
            be.materialize(out), be.materialize(a) + u @ v.T, atol=1e-12
        )

    def test_hysteresis_validation(self):
        with pytest.raises(ValueError, match="hysteresis"):
            SparseBackend(sparsify_below=0.4, densify_above=0.3)

    def test_eye_and_zeros_representation(self):
        be = SparseBackend(min_sparse_dim=16)
        assert sp.issparse(be.eye(32))
        assert isinstance(be.eye(8), np.ndarray)
        assert sp.issparse(be.zeros(32, 32))

    def test_norm_and_max_abs_match_dense(self, rng):
        be = SparseBackend()
        dense = sparse_matrix(rng, 80, density=0.05)
        a = be.asarray(dense)
        assert sp.issparse(a)
        assert be.norm(a) == pytest.approx(np.linalg.norm(dense))
        assert be.max_abs(a) == pytest.approx(np.max(np.abs(dense)))
        assert be.max_abs(be.zeros(80, 80)) == 0.0

    def test_nbytes_counts_csr_structures(self, rng):
        be = SparseBackend()
        a = be.asarray(sparse_matrix(rng, 100, density=0.01))
        assert 0 < be.nbytes(a) < 100 * 100 * 8

    def test_matmul_flops_scale_with_nnz(self, rng):
        be = SparseBackend()
        a = be.asarray(sparse_matrix(rng, 100, density=0.01))
        x = rng.normal(size=(100, 1))
        assert be.matmul_flops(a, x) < DENSE.matmul_flops(np.zeros((100, 100)), x)

    def test_solve_matches_dense(self, rng):
        be = SparseBackend()
        dense = np.eye(100) + sparse_matrix(rng, 100, density=0.02)
        rhs = rng.normal(size=(100, 1))
        a = be.asarray(dense)
        np.testing.assert_allclose(
            be.solve(a, rhs), np.linalg.solve(dense, rhs), atol=1e-9
        )

    def test_compact_accepts_sparse_factors(self, rng):
        be = SparseBackend()
        u = rng.normal(size=(30, 2))
        v = rng.normal(size=(30, 2))
        left, right = be.compact(sp.csr_array(u), sp.csr_array(v), 1e-12)
        np.testing.assert_allclose(left @ right.T, u @ v.T, atol=1e-10)


@needs_scipy
class TestExecutorBackend:
    def test_evaluate_dispatches_sparse(self, rng):
        n = NamedDim("n")
        a_sym = MatrixSymbol("A", n, n)
        expr = matmul(a_sym, a_sym)
        a = sparse_matrix(rng, 100, density=0.02)
        be = get_backend("sparse")
        dense_out = evaluate(expr, {"A": a})
        sparse_out = evaluate(expr, {"A": be.asarray(a)}, backend=be)
        assert sp.issparse(sparse_out)
        np.testing.assert_allclose(be.materialize(sparse_out), dense_out,
                                   atol=1e-10)

    def test_evaluate_honors_native_dense_leaves(self, rng):
        # Native float64 ndarrays pass through untouched (no per-leaf
        # re-normalization into the representation policy) — the
        # product then runs dense and must still match.
        n = NamedDim("n")
        a_sym = MatrixSymbol("A", n, n)
        expr = matmul(a_sym, a_sym)
        a = sparse_matrix(rng, 100, density=0.02)
        out = evaluate(expr, {"A": a}, backend="sparse")
        assert isinstance(out, np.ndarray)
        np.testing.assert_allclose(out, evaluate(expr, {"A": a}), atol=1e-10)


def _apply_stream(maintainer, events, n):
    for row, col, value in events:
        u = np.zeros((n, 1))
        v = np.zeros((n, 1))
        u[row, 0] = value
        v[col, 0] = 1.0
        maintainer.refresh(u, v)


@needs_scipy
class TestDenseSparseParity:
    """The satellite property test: equal view states, any update stream."""

    @settings(**SETTINGS)
    @given(
        seed=st.integers(0, 2**32 - 1),
        n=st.integers(64, 110),
        k=st.sampled_from([4, 8]),
        strategy=st.sampled_from(["REEVAL", "INCR", "HYBRID"]),
        events=st.lists(
            st.tuples(
                st.integers(0, 63),
                st.integers(0, 63),
                st.floats(-0.05, 0.05, allow_nan=False),
            ),
            min_size=1,
            max_size=6,
        ),
    )
    def test_general_form_states_agree(self, seed, n, k, strategy, events):
        rng = np.random.default_rng(seed)
        a = sparse_matrix(rng, n, density=0.03, scale=0.2)
        b = np.full((n, 1), 0.01)
        t0 = np.full((n, 1), 1.0 / n)
        dense = make_general(strategy, a, b, t0, k, Model.linear())
        sparse_m = make_general(strategy, a, b, t0, k, Model.linear(),
                                backend="sparse")
        _apply_stream(dense, events, n)
        _apply_stream(sparse_m, events, n)
        be = sparse_m.ops.backend
        np.testing.assert_allclose(
            be.materialize(sparse_m.result()), dense.result(), atol=1e-9
        )
        np.testing.assert_allclose(
            be.materialize(sparse_m.a), dense.a, atol=1e-9
        )

    @settings(**SETTINGS)
    @given(
        seed=st.integers(0, 2**32 - 1),
        strategy=st.sampled_from(["REEVAL", "INCR"]),
        events=st.lists(
            st.tuples(
                st.integers(0, 63),
                st.integers(0, 63),
                st.floats(-0.05, 0.05, allow_nan=False),
            ),
            min_size=1,
            max_size=5,
        ),
    )
    def test_power_sums_states_agree(self, seed, strategy, events):
        n, k = 72, 8
        rng = np.random.default_rng(seed)
        a = sparse_matrix(rng, n, density=0.03, scale=0.2)
        dense = make_sums(strategy, a, k, Model.exponential())
        sparse_m = make_sums(strategy, a, k, Model.exponential(),
                             backend="sparse")
        _apply_stream(dense, events, n)
        _apply_stream(sparse_m, events, n)
        be = sparse_m.ops.backend
        np.testing.assert_allclose(
            be.materialize(sparse_m.result()), dense.result(), atol=1e-9
        )


@needs_scipy
class TestSessionBackendParity:
    @pytest.fixture()
    def program(self):
        n = NamedDim("n")
        a = MatrixSymbol("A", n, n)
        b = MatrixSymbol("B", n, n)
        c = MatrixSymbol("C", n, n)
        return Program([a], [Statement(b, matmul(a, a)),
                             Statement(c, matmul(b, a))])

    @pytest.mark.parametrize("mode", ["interpret", "codegen"])
    def test_ivm_sessions_agree(self, program, rng, mode):
        n = 90
        a = sparse_matrix(rng, n, density=0.03)
        dense = IVMSession(program, {"A": a}, dims={"n": n}, mode=mode)
        sparse_s = IVMSession(program, {"A": a}, dims={"n": n}, mode=mode,
                              backend="sparse")
        for _ in range(4):
            upd = cell_update("A", n, n, int(rng.integers(n)),
                              int(rng.integers(n)), 0.1)
            dense.apply_update(upd)
            sparse_s.apply_update(upd)
        np.testing.assert_allclose(sparse_s.output(), dense.output(),
                                   atol=1e-9)
        assert sp.issparse(sparse_s.views.get("A"))

    def test_reeval_session_agrees(self, program, rng):
        n = 90
        a = sparse_matrix(rng, n, density=0.03)
        dense = ReevalSession(program, {"A": a}, dims={"n": n})
        sparse_s = ReevalSession(program, {"A": a}, dims={"n": n},
                                 backend="sparse")
        for _ in range(3):
            upd = cell_update("A", n, n, int(rng.integers(n)),
                              int(rng.integers(n)), 0.1)
            dense.apply_update(upd)
            sparse_s.apply_update(upd)
        np.testing.assert_allclose(sparse_s.output(), dense.output(),
                                   atol=1e-9)

    def test_codegen_emits_dispatch_calls(self, program):
        from repro.compiler.compile import compile_program
        from repro.compiler.codegen.python_gen import generate_python_trigger

        trigger = compile_program(program)["A"]
        legacy = generate_python_trigger(trigger)
        dispatched = generate_python_trigger(trigger, dispatch=True)
        assert "@" in legacy and "be." not in legacy
        assert "be.matmul(" in dispatched and "be.add_outer(" in dispatched
        assert "@" not in dispatched


@needs_scipy
class TestAnalyticsBackend:
    def test_pagerank_sparse_matches_dense(self, rng):
        from repro.analytics.pagerank import IncrementalPageRank

        n = 150
        adjacency = (rng.random((n, n)) < 0.05).astype(float)
        np.fill_diagonal(adjacency, 0.0)
        dense = IncrementalPageRank(adjacency.copy(), k=8)
        sparse_p = IncrementalPageRank(adjacency.copy(), k=8,
                                       backend="sparse")
        for _ in range(5):
            src, dst = int(rng.integers(n)), int(rng.integers(n))
            if src == dst:
                continue
            if adjacency[dst, src]:
                dense.remove_edge(src, dst)
                sparse_p.remove_edge(src, dst)
                adjacency[dst, src] = 0.0
            else:
                dense.add_edge(src, dst)
                sparse_p.add_edge(src, dst)
                adjacency[dst, src] = 1.0
        np.testing.assert_allclose(sparse_p.ranks, dense.ranks, atol=1e-10)
        assert sparse_p.revalidate() < 1e-8

    def test_reachability_sparse_matches_dense(self, rng):
        from repro.analytics.reachability import ReachabilityIndex

        n = 80
        adjacency = (rng.random((n, n)) < 0.02).astype(float)
        np.fill_diagonal(adjacency, 0.0)
        dense = ReachabilityIndex(adjacency.copy(), k=4)
        sparse_r = ReachabilityIndex(adjacency.copy(), k=4, backend="sparse")
        added = 0
        for src in range(n):
            dst = (src * 7 + 3) % n
            if src != dst and adjacency[dst, src] == 0.0:
                dense.add_edge(src, dst)
                sparse_r.add_edge(src, dst)
                adjacency[dst, src] = 1.0
                added += 1
            if added >= 6:
                break
        np.testing.assert_allclose(sparse_r.walk_counts(),
                                   dense.walk_counts(), atol=1e-9)
        assert sparse_r.reachable_pairs().sum() == dense.reachable_pairs().sum()
