"""Every plan cell the advisor/planner can emit actually executes.

Kills "planner recommends a configuration no session accepts" bugs by
construction: each (strategy, model, backend, mode, batch_size) cell
from the ranked grids opens a real session/maintainer and survives a
short Zipf-skewed update stream with finite, oracle-consistent output.
"""

import numpy as np
import pytest
from stream_helpers import zipf_row_updates

from repro.cost.advisor import recommend_general, recommend_powers
from repro.frontend import parse_program
from repro.iterative.strategies import make_general, make_powers
from repro.delta.batch import BatchedRefresher
from repro.planner import MaintenancePlan, WorkloadStats, rank_program
from repro.runtime import ReevalSession, open_session


def _sparse_available() -> bool:
    try:
        import scipy  # noqa: F401

        return True
    except ImportError:
        return False


A4_SOURCE = "input A(n, n); B := A * A; C := B * B; output C;"


def _inputs(rng, n: int, density: float = 1.0):
    a = 0.3 * rng.standard_normal((n, n)) / np.sqrt(n)
    if density < 1.0:
        a *= rng.random((n, n)) < density
    return {"A": a}


def _drive(session, rng, n: int, count: int = 6):
    for update in zipf_row_updates(rng, n, count, 2.0, scale=0.02):
        session.apply_update(update)
    return session.output()


class TestSessionGrid:
    """rank_program's full (strategy, backend, mode, batch_size) grid."""

    @pytest.mark.parametrize("density,n", [(1.0, 16), (0.08, 48)])
    @pytest.mark.parametrize("refresh_count", [4, 400])
    def test_every_ranked_plan_opens_and_survives(self, rng, density, n,
                                                  refresh_count):
        if density < 1.0 and not _sparse_available():
            pytest.skip("sparse backend unavailable")
        program = parse_program(A4_SOURCE)
        inputs = _inputs(rng, n, density)
        stats = WorkloadStats(n=1, refresh_count=refresh_count)
        ranked = rank_program(program, inputs, stats=stats)
        assert ranked, "planner emitted no candidates"
        seen = set()
        reference = None
        for plan in ranked:
            seen.add((plan.strategy, plan.backend, plan.mode))
            assert plan.batch_size is not None and plan.batch_size >= 1
            session = open_session(
                program, {k: v.copy() for k, v in inputs.items()},
                plan=plan, refresh_count=refresh_count,
            )
            assert (session.plan.strategy, session.plan.backend) == (
                plan.strategy, plan.backend)
            if plan.batch_size > 1:
                assert session.batch_size == plan.batch_size
            out = _drive(session, np.random.default_rng(7), n)
            assert np.isfinite(out).all()
            if reference is None:
                reference = out
            else:
                scale = max(1.0, float(np.max(np.abs(reference))))
                np.testing.assert_allclose(out, reference, rtol=1e-6,
                                           atol=1e-7 * scale)
        # The grid genuinely covers both strategies and every backend.
        assert {s for s, _, _ in seen} == {"INCR", "REEVAL"}
        if density < 1.0:
            assert {b for _, b, _ in seen} >= {"dense", "sparse"}

    def test_forced_batch_widths_execute_everywhere(self, rng):
        program = parse_program(A4_SOURCE)
        n = 12
        inputs = _inputs(rng, n)
        for strategy in ("incr", "reeval"):
            for width in (2, 4, 16):
                session = open_session(
                    program, {k: v.copy() for k, v in inputs.items()},
                    plan=strategy, batch=width,
                )
                out = _drive(session, np.random.default_rng(3), n, count=9)
                assert np.isfinite(out).all()
                assert session.batch_stats.updates == 9

    def test_plan_attached_batch_survives_reeval_normalization(self, rng):
        """A hand-built plan cell with every axis set still opens."""
        program = parse_program(A4_SOURCE)
        n = 10
        for strategy in ("INCR", "REEVAL"):
            for mode in ("interpret", "codegen"):
                plan = MaintenancePlan(strategy, backend="dense", mode=mode,
                                       batch_size=3)
                session = open_session(program, _inputs(rng, n), plan=plan)
                out = _drive(session, np.random.default_rng(5), n)
                assert np.isfinite(out).all()
                if strategy == "REEVAL":
                    assert isinstance(session, ReevalSession)


class TestIterativeAdvisorGrid:
    """The Table 2 advisor's (strategy, model, s, backend) cells run."""

    def _plan_of(self, rec):
        return MaintenancePlan(rec.strategy, rec.model, rec.s,
                               rec.backend, "interpret")

    @pytest.mark.parametrize("density", [None, 0.05])
    def test_powers_cells(self, rng, density):
        if density is not None and not _sparse_available():
            pytest.skip("sparse backend unavailable")
        n, k = 24, 6
        extra = {} if density is None else {"density": density}
        a = 0.3 * rng.standard_normal((n, n)) / np.sqrt(n)
        if density is not None:
            a *= rng.random((n, n)) < density
        reference = None
        for rec in recommend_powers(n, k, **extra):
            for width in (1, 4):
                runner = make_powers(self._plan_of(rec), a.copy(), k)
                if width > 1:
                    runner = BatchedRefresher(runner, width,
                                              backend=rec.backend)
                stream = np.random.default_rng(11)
                for i in range(5):
                    runner.refresh(np.eye(n)[:, [i % 3]],
                                   0.02 * stream.standard_normal((n, 1)))
                out = runner.result()
                assert np.isfinite(out).all()
                if reference is None:
                    reference = out
                else:
                    np.testing.assert_allclose(out, reference, atol=1e-8)

    def test_general_cells(self, rng):
        n, p, k = 24, 1, 6
        a = 0.3 * rng.standard_normal((n, n)) / np.sqrt(n)
        b = rng.standard_normal((n, p))
        t0 = rng.standard_normal((n, p))
        reference = None
        for rec in recommend_general(n, p, k):
            for width in (1, 3):
                maintainer = make_general(self._plan_of(rec), a.copy(),
                                          b.copy(), t0.copy(), k)
                if width > 1:
                    maintainer = BatchedRefresher(maintainer, width,
                                                  backend=rec.backend)
                stream = np.random.default_rng(13)
                for i in range(5):
                    u = np.zeros((n, 1))
                    u[i % 2, 0] = 1.0
                    maintainer.refresh(u, 0.02 * stream.standard_normal((n, 1)))
                out = maintainer.result()
                assert np.isfinite(out).all()
                if reference is None:
                    reference = out
                else:
                    np.testing.assert_allclose(out, reference, atol=1e-7)
