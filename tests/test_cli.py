"""The ``python -m repro`` compiler CLI."""

import pytest

from repro.cli import main

A4_SOURCE = """
input A(n, n);
B := A * A;
C := B * B;
output C;
"""

OLS_SOURCE = """
input X(m, n);
beta := inv(X' * X) * (X' * eye(m)) ;
output beta;
"""


@pytest.fixture
def a4_file(tmp_path):
    path = tmp_path / "a4.lvw"
    path.write_text(A4_SOURCE)
    return str(path)


class TestShow:
    def test_show_prints_program(self, a4_file, capsys):
        assert main(["show", a4_file]) == 0
        out = capsys.readouterr().out
        assert "B := A * A;" in out and "output: C" in out

    def test_missing_file(self, capsys):
        assert main(["show", "/nonexistent.lvw"]) == 2
        assert "no such file" in capsys.readouterr().err

    def test_syntax_error_reported(self, tmp_path, capsys):
        path = tmp_path / "bad.lvw"
        path.write_text("input A(n, n); B := A *;")
        assert main(["show", str(path)]) == 2
        err = capsys.readouterr().err
        assert "error" in err and "line" in err


class TestCompile:
    def test_default_trigger_backend(self, a4_file, capsys):
        assert main(["compile", a4_file]) == 0
        out = capsys.readouterr().out
        assert "ON UPDATE A BY (u_A, v_A):" in out
        assert "U_B := [u_A, A * u_A + u_A * (v_A' * u_A)];" in out

    def test_python_backend(self, a4_file, capsys):
        assert main(["compile", a4_file, "--backend", "python"]) == 0
        out = capsys.readouterr().out
        assert "def on_update_A(views, u_A, v_A, dims=None):" in out

    def test_octave_backend(self, a4_file, capsys):
        assert main(["compile", a4_file, "--backend", "octave"]) == 0
        out = capsys.readouterr().out
        assert "function on_update_A(u_A, v_A)" in out

    def test_input_filter(self, tmp_path, capsys):
        path = tmp_path / "two.lvw"
        path.write_text("input A(n, n); input B(n, n); C := A * B;")
        assert main(["compile", str(path), "--input", "B"]) == 0
        out = capsys.readouterr().out
        assert "ON UPDATE B" in out and "ON UPDATE A" not in out

    def test_unknown_input_rejected(self, a4_file, capsys):
        assert main(["compile", a4_file, "--input", "Q"]) == 2
        assert "Q" in capsys.readouterr().err

    def test_rank_option(self, a4_file, capsys):
        assert main(["compile", a4_file, "--rank", "3"]) == 0
        out = capsys.readouterr().out
        assert "eye(3)" not in out  # no inversion here, just sanity
        assert "ON UPDATE A" in out

    def test_optimize_flag(self, a4_file, capsys):
        assert main(["compile", a4_file, "--optimize"]) == 0
        assert "ON UPDATE A" in capsys.readouterr().out

    def test_materialize_inversions_flag(self, tmp_path, capsys):
        path = tmp_path / "ols.lvw"
        path.write_text(
            "input X(m, n);\ninput Y(m, p);\n"
            "beta := inv(X' * X) * (X' * Y);\noutput beta;\n"
        )
        assert main(["compile", str(path), "--materialize-inversions",
                     "--input", "X"]) == 0
        out = capsys.readouterr().out
        assert "inv1" in out
        assert "after inverse materialization" in out
