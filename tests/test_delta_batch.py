"""Batch-update compaction (the Table 4 rank insight as a feature)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.delta.batch import (
    BatchCollector,
    compact_factors,
    compact_updates,
    stack_updates,
)
from repro.iterative import IncrementalPowers, Model


def rank1(rng, n, row=None):
    u = np.zeros((n, 1))
    u[rng.integers(n) if row is None else row, 0] = 1.0
    return u, rng.normal(size=(n, 1))


class TestStack:
    def test_widths_equal_count(self, rng):
        updates = [rank1(rng, 6) for _ in range(4)]
        u, v = stack_updates(updates)
        assert u.shape == (6, 4) and v.shape == (6, 4)

    def test_dense_equivalence(self, rng):
        updates = [rank1(rng, 5) for _ in range(3)]
        u, v = stack_updates(updates)
        expected = sum(a @ b.T for a, b in updates)
        np.testing.assert_allclose(u @ v.T, expected, atol=1e-12)

    def test_empty_batch_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            stack_updates([])


class TestCompactFactors:
    def test_value_preserved(self, rng):
        u = rng.normal(size=(8, 5))
        v = rng.normal(size=(8, 5))
        left, right = compact_factors(u, v)
        np.testing.assert_allclose(left @ right.T, u @ v.T, atol=1e-9)

    def test_full_rank_batch_keeps_width(self, rng):
        u = rng.normal(size=(10, 4))
        v = rng.normal(size=(10, 4))
        left, _ = compact_factors(u, v)
        assert left.shape[1] == 4

    def test_duplicate_rows_compact(self, rng):
        # 12 updates, all on row 3: a rank-1 change.
        updates = [rank1(rng, 8, row=3) for _ in range(12)]
        left, right = compact_updates(updates)
        assert left.shape[1] == 1
        expected = sum(a @ b.T for a, b in updates)
        np.testing.assert_allclose(left @ right.T, expected, atol=1e-9)

    def test_zipf_batch_rank_bounded_by_distinct_rows(self, rng):
        rows = [0, 0, 0, 1, 1, 2]  # 6 updates, 3 distinct rows
        updates = [rank1(rng, 10, row=r) for r in rows]
        left, _ = compact_updates(updates)
        assert left.shape[1] <= 3

    def test_cancelling_updates_compact_to_zero(self, rng):
        u, v = rank1(rng, 6)
        left, right = compact_updates([(u, v), (u, -v)])
        assert left.shape[1] == 0

    def test_rectangular_updates(self, rng):
        # Updates to a (rows x cols) matrix: u in R^rows, v in R^cols.
        u = rng.normal(size=(9, 3))
        v = rng.normal(size=(5, 3))
        left, right = compact_factors(u, v)
        np.testing.assert_allclose(left @ right.T, u @ v.T, atol=1e-9)

    def test_shape_validation(self, rng):
        with pytest.raises(ValueError, match="factors must be"):
            compact_factors(rng.normal(size=(4, 2)), rng.normal(size=(4, 3)))

    @settings(max_examples=40, deadline=None)
    @given(
        seed=st.integers(0, 9999),
        n=st.integers(2, 12),
        m=st.integers(1, 8),
        distinct=st.integers(1, 4),
    )
    def test_property_rank_and_value(self, seed, n, m, distinct):
        rng = np.random.default_rng(seed)
        rows = [int(rng.integers(min(distinct, n))) for _ in range(m)]
        updates = [rank1(rng, n, row=r) for r in rows]
        left, right = compact_updates(updates)
        assert left.shape[1] <= min(len(set(rows)), m)
        expected = sum(a @ b.T for a, b in updates)
        np.testing.assert_allclose(left @ right.T, expected, atol=1e-8)


class TestBatchCollector:
    def test_flush_into_powers_maintainer(self, rng):
        n, k = 16, 8
        a = 0.3 * rng.normal(size=(n, n))
        batched = IncrementalPowers(a, k, Model.exponential())
        unbatched = IncrementalPowers(a, k, Model.exponential())

        collector = BatchCollector()
        for _ in range(6):
            u, v = rank1(rng, n, row=int(rng.integers(3)))
            collector.add(u, v)
            unbatched.refresh(u, v)
        size, rank, dropped = collector.flush(batched)

        assert size == 6 and rank <= 3 and dropped == 0.0
        np.testing.assert_allclose(batched.result(), unbatched.result(),
                                   atol=1e-7)

    def test_flush_clears(self, rng):
        collector = BatchCollector()
        collector.add(*rank1(rng, 4))
        assert len(collector) == 1
        collector.flush(IncrementalPowers(np.eye(4) * 0.5, 2, Model.linear()))
        assert len(collector) == 0

    def test_empty_flush_is_noop(self):
        class Exploding:
            def refresh(self, u, v):
                raise AssertionError("refresh must not be called")

        assert BatchCollector().flush(Exploding()) == (0, 0, 0.0)

    def test_rank_cap_truncates_and_reports(self, rng):
        collector = BatchCollector(rank_cap=2)
        for row in (0, 1, 2, 3):
            collector.add(*rank1(rng, 8, row=row))
        left, right, dropped = collector.compacted()
        assert left.shape[1] == 2
        assert dropped > 0.0

    def test_rank_cap_validation(self):
        with pytest.raises(ValueError, match="positive"):
            BatchCollector(rank_cap=0)

    def test_truncation_keeps_dominant_mass(self, rng):
        # One huge update + several tiny ones: a rank-1 cap must keep
        # the huge direction.
        collector = BatchCollector(rank_cap=1)
        u_big = np.zeros((8, 1))
        u_big[0, 0] = 1.0
        v_big = 100.0 * rng.normal(size=(8, 1))
        collector.add(u_big, v_big)
        for row in (1, 2):
            u, v = rank1(rng, 8, row=row)
            collector.add(u, 0.001 * v)
        left, right, dropped = collector.compacted()
        exact = u_big @ v_big.T
        approx_err = np.linalg.norm(left @ right.T - exact, ord=2)
        assert approx_err < 0.01 * np.linalg.norm(exact, ord=2)


class TestCollectorEdgeCases:
    """ISSUE 1 satellite: empty flush, rank deficiency, rtol boundaries."""

    def test_empty_collector_reports_and_touches_nothing(self):
        class Sentinel:
            refreshed = False

            def refresh(self, u, v):
                self.refreshed = True

        collector = BatchCollector()
        sentinel = Sentinel()
        assert len(collector) == 0
        assert collector.flush(sentinel) == (0, 0, 0.0)
        assert not sentinel.refreshed

    def test_compacted_on_empty_collector_raises(self):
        with pytest.raises(ValueError, match="empty"):
            BatchCollector().compacted()

    def test_duplicate_row_batch_compacts_below_batch_size(self, rng):
        n, repeats = 8, 5
        collector = BatchCollector()
        base_v = rng.normal(size=(n, 1))
        for t in range(repeats):
            u = np.zeros((n, 1))
            u[3, 0] = 1.0
            collector.add(u, (t + 1.0) * base_v)  # same row, colinear deltas
        size, rank, dropped = collector.flush(
            IncrementalPowers(np.eye(n), 2, Model.linear())
        )
        assert size == repeats
        assert rank == 1  # one distinct (row, direction) pair
        assert dropped == 0.0

    def test_distinct_rows_bound_collector_rank(self, rng):
        n, rows = 10, (2, 7, 4)
        collector = BatchCollector()
        for _ in range(4):  # 12 updates over 3 distinct rows
            for row in rows:
                u = np.zeros((n, 1))
                u[row, 0] = 1.0
                collector.add(u, rng.normal(size=(n, 1)))
        left, right, dropped = collector.compacted()
        assert len(collector) == 12
        assert left.shape[1] == len(rows)
        assert dropped == 0.0

    def test_rtol_boundary_keeps_just_above_threshold(self):
        from repro.delta.batch import DEFAULT_RTOL

        n = 6
        u = np.eye(n)[:, :2]
        # Second direction sits just above the relative cutoff.
        margin = 1e3
        v = np.zeros((n, 2))
        v[0, 0] = 1.0
        v[1, 1] = DEFAULT_RTOL * margin
        left, right = compact_factors(u, v)
        assert left.shape[1] == 2
        np.testing.assert_allclose(left @ right.T, u @ v.T, atol=1e-13)

    def test_rtol_boundary_drops_just_below_threshold(self):
        from repro.delta.batch import DEFAULT_RTOL

        n = 6
        u = np.eye(n)[:, :2]
        v = np.zeros((n, 2))
        v[0, 0] = 1.0
        v[1, 1] = DEFAULT_RTOL * 1e-3  # below the cutoff: numerical noise
        left, right = compact_factors(u, v)
        assert left.shape[1] == 1
        # The dominant direction survives exactly.
        np.testing.assert_allclose(left @ right.T, np.outer(u[:, 0], v[:, 0]),
                                   atol=1e-12)

    def test_custom_rtol_widens_or_narrows_the_keep_set(self):
        n = 5
        u = np.eye(n)[:, :2]
        v = np.zeros((n, 2))
        v[0, 0] = 1.0
        v[1, 1] = 1e-6
        loose_l, _ = compact_factors(u, v, rtol=1e-4)
        tight_l, _ = compact_factors(u, v, rtol=1e-9)
        assert loose_l.shape[1] == 1
        assert tight_l.shape[1] == 2

    def test_collector_with_explicit_backend_matches_default(self, rng):
        pytest.importorskip("scipy")
        updates = [rank1(rng, 7) for _ in range(4)]
        default = BatchCollector()
        sparse = BatchCollector(backend="sparse")
        for u, v in updates:
            default.add(u, v)
            sparse.add(u, v)
        dl, dr, _ = default.compacted()
        sl, sr, _ = sparse.compacted()
        np.testing.assert_allclose(dl @ dr.T, sl @ sr.T, atol=1e-12)


class TestRankKAndRankCollapse:
    """ISSUE 5 satellite: wide blocks, zero-rank batches, NaN guards."""

    def test_rank_k_blocks_accepted(self, rng):
        # A rank-2 block plus two rank-1 updates: widths accumulate.
        collector = BatchCollector()
        u2 = rng.normal(size=(8, 2))
        v2 = rng.normal(size=(8, 2))
        collector.add(u2, v2)
        u1, v1 = rank1(rng, 8)
        collector.add(u1, v1)
        assert len(collector) == 2
        assert collector.pending_width == 3
        left, right, dropped = collector.compacted()
        expected = u2 @ v2.T + u1 @ v1.T
        np.testing.assert_allclose(left @ right.T, expected, atol=1e-9)
        assert dropped == 0.0

    def test_mismatched_block_widths_rejected(self, rng):
        with pytest.raises(ValueError, match="widths disagree"):
            BatchCollector().add(rng.normal(size=(6, 2)),
                                 rng.normal(size=(6, 3)))

    def test_zero_width_block_contributes_nothing(self, rng):
        collector = BatchCollector()
        collector.add(np.zeros((5, 0)), np.zeros((5, 0)))
        u, v = rank1(rng, 5)
        collector.add(u, v)
        left, right, _ = collector.compacted()
        assert not np.isnan(left).any() and not np.isnan(right).any()
        np.testing.assert_allclose(left @ right.T, u @ v.T, atol=1e-12)

    def test_all_zero_batch_compacts_to_rank_zero_without_nan(self):
        collector = BatchCollector()
        for _ in range(4):
            collector.add(np.zeros((6, 1)), np.zeros((6, 1)))
        left, right, dropped = collector.compacted()
        assert left.shape == (6, 0) and right.shape == (6, 0)
        assert not np.isnan(left).any() and not np.isnan(right).any()
        assert dropped == 0.0

    def test_cancelling_batch_flush_skips_refresh(self, rng):
        class Exploding:
            def refresh(self, u, v):
                raise AssertionError("zero-rank batch must not refresh")

        collector = BatchCollector()
        u, v = rank1(rng, 6)
        collector.add(u, v)
        collector.add(u, -v)
        size, rank, dropped = collector.flush(Exploding())
        assert (size, rank, dropped) == (2, 0, 0.0)
        assert len(collector) == 0

    def test_duplicate_column_batch_no_nan(self, rng):
        # Identical updates repeated: rank collapses to 1, factors stay
        # finite (the QR of a rank-deficient stack must not poison the
        # SVD core).
        collector = BatchCollector()
        u, v = rank1(rng, 7)
        for _ in range(5):
            collector.add(u.copy(), v.copy())
        left, right, _ = collector.compacted()
        assert left.shape[1] == 1
        assert np.isfinite(left).all() and np.isfinite(right).all()
        np.testing.assert_allclose(left @ right.T, 5.0 * (u @ v.T),
                                   atol=1e-9)

    def test_clear_drops_pending(self, rng):
        collector = BatchCollector()
        collector.add(*rank1(rng, 4))
        collector.clear()
        assert len(collector) == 0
        assert collector.flush(object()) == (0, 0, 0.0)


class TestBatchedRefresher:
    def _maintainer(self, n=10, k=4):
        return IncrementalPowers(np.eye(n) * 0.4, k, Model.linear())

    def test_width_flush_and_parity(self, rng):
        from repro.delta.batch import BatchedRefresher

        n = 10
        plain = self._maintainer(n)
        batched = BatchedRefresher(self._maintainer(n), width=3)
        for _ in range(7):
            u, v = rank1(rng, n, row=int(rng.integers(2)))
            plain.refresh(u, v)
            batched.refresh(u, v)
        np.testing.assert_allclose(batched.result(), plain.result(),
                                   atol=1e-9)
        # 2 width-triggered flushes + 1 read-triggered.
        assert len(batched.flushes) == 3

    def test_attribute_read_flushes_first(self, rng):
        from repro.delta.batch import BatchedRefresher

        n = 8
        batched = BatchedRefresher(self._maintainer(n), width=100)
        reference = self._maintainer(n)
        u, v = rank1(rng, n)
        batched.refresh(u, v)
        reference.refresh(u, v)
        # .result is reached through __getattr__, which flushes.
        np.testing.assert_allclose(batched.result(), reference.result(),
                                   atol=1e-12)
        assert len(batched.collector) == 0

    def test_max_staleness_caps_pending(self, rng):
        from repro.delta.batch import BatchedRefresher

        batched = BatchedRefresher(self._maintainer(), width=50,
                                   max_staleness=2)
        for _ in range(5):
            batched.refresh(*rank1(rng, 10))
        assert len(batched.collector) == 1
        assert len(batched.flushes) == 2

    def test_columnwise_replay_matches_block_flush(self, rng):
        from repro.delta.batch import BatchedRefresher

        n = 10
        block = BatchedRefresher(self._maintainer(n), width=4)
        column = BatchedRefresher(self._maintainer(n), width=4,
                                  columnwise=True)
        for _ in range(4):
            u, v = rank1(rng, n, row=int(rng.integers(3)))
            block.refresh(u, v)
            column.refresh(u, v)
        np.testing.assert_allclose(column.result(), block.result(),
                                   atol=1e-9)
        # Columnwise replay still compacted: 4 updates, <= 3 columns.
        assert column.flushes[0][1] <= 3

    def test_validation(self):
        from repro.delta.batch import BatchedRefresher

        with pytest.raises(ValueError, match="positive"):
            BatchedRefresher(self._maintainer(), width=0)
        with pytest.raises(ValueError, match="max_staleness"):
            BatchedRefresher(self._maintainer(), width=2, max_staleness=0)
