"""Legacy setup shim — all real metadata lives in ``pyproject.toml``.

Kept so ancient tooling (``python setup.py ...``-era editable installs
without the ``wheel`` package) still works offline; do not add
configuration here.
"""

from setuptools import setup

setup()
