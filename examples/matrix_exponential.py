"""Linear ODE monitoring via an incrementally maintained matrix exponential.

A controls engineer watches ``x'(t) = A x(t)`` where the system matrix
``A`` drifts as parameters are re-identified online (each
re-identification is a low-rank correction).  The propagator
``expm(A t)`` — a weighted sum of matrix powers (Section 5.2) — is
maintained incrementally, so each re-identification costs matrix-vector
work instead of a fresh ``O(n^3)`` exponential.

Also demonstrates the drift monitor: a production policy re-validating
the maintained view on a fixed refresh schedule.

Run:  python examples/matrix_exponential.py
"""

import numpy as np
from scipy.linalg import expm as scipy_expm

from repro.analytics import IncrementalExpm
from repro.runtime import DriftMonitor

N = 40
ORDER = 14
HORIZON = 0.5  # propagate half a time unit per query


def stable_system(rng: np.random.Generator, n: int) -> np.ndarray:
    """A damped random system (spectral radius < 1 for Taylor accuracy)."""
    a = rng.standard_normal((n, n))
    a = 0.6 * a / np.linalg.norm(a, ord=2)
    return a - 0.2 * np.eye(n)


def main() -> None:
    rng = np.random.default_rng(11)
    a = stable_system(rng, N)
    x0 = rng.standard_normal(N)

    # backend= threads through to the maintained power views; dense is
    # right here (the system matrix is dense), "sparse" would keep the
    # views in CSR for graph-shaped operators.
    view = IncrementalExpm(a, order=ORDER, t=HORIZON, backend="dense")
    monitor = DriftMonitor(view, check_every=5, tolerance=1e-7)

    print(f"x' = A x with A {N}x{N}; maintained expm(A t), t = {HORIZON}\n")
    state = view.propagate(x0)
    print(f"||x(t)|| initially: {np.linalg.norm(state):.6f}")

    for event in range(10):
        # Online re-identification: a small rank-1 correction to A.
        u = 0.03 * rng.standard_normal((N, 1))
        v = 0.03 * rng.standard_normal((N, 1))
        monitor.refresh(u, v)
        state = view.propagate(x0)
        exact = scipy_expm(HORIZON * view.a) @ x0.reshape(-1, 1)
        err = np.abs(state - exact).max()
        print(f"correction {event + 1:>2}: ||x(t)|| = "
              f"{np.linalg.norm(state):.6f}   |error| = {err:.2e}")

    print(f"\ndrift probes run: {len(monitor.reports)}, "
          f"worst drift: {max(r.drift for r in monitor.reports):.2e}")
    print("(probes re-evaluate the Taylor sum from the current A and "
          "compare against the maintained view)")


if __name__ == "__main__":
    main()
