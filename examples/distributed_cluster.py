"""Matrix powers on the simulated cluster (Section 6 / Fig. 3f).

Maintains A^16 on simulated clusters of increasing size and prints the
per-refresh simulated wall-clock for re-evaluation (SUMMA products,
O(n^2/g) bytes reshuffled per worker) versus incremental maintenance
(O(nk) factor broadcasts) — the paper's finding that INCR is largely
insensitive to cluster size while REEVAL needs the whole cluster.

Run:  python examples/distributed_cluster.py
"""

import numpy as np

from repro.distributed import (
    Cluster,
    ClusterConfig,
    DistributedIncrementalPowers,
    DistributedReevalPowers,
)
from repro.iterative import Model
from repro.workloads import spectral_normalized


def main() -> None:
    n, k = 360, 16
    a0 = spectral_normalized(np.random.default_rng(5), n, radius=0.9)
    print(f"A^{k} with A = ({n} x {n}) on simulated g x g clusters")
    print(f"{'workers':>8} {'REEVAL-EXP':>12} {'INCR-EXP':>12} {'speedup':>9} "
          f"{'REEVAL bytes':>13} {'INCR bytes':>12}")

    for grid in (3, 5, 7, 10):
        reeval_cluster = Cluster(ClusterConfig.laptop_scale(grid))
        incr_cluster = Cluster(ClusterConfig.laptop_scale(grid))
        reeval = DistributedReevalPowers(a0, k, Model.exponential(),
                                         reeval_cluster)
        incr = DistributedIncrementalPowers(a0, k, Model.exponential(),
                                            incr_cluster)
        reeval_cluster.reset()
        incr_cluster.reset()

        u = np.zeros((n, 1))
        u[7, 0] = 1.0
        v = 0.01 * np.random.default_rng(grid).normal(size=(n, 1))
        reeval.refresh(u, v)
        incr.refresh(u, v)

        agreement = np.abs(reeval.result() - incr.result()).max()
        assert agreement < 1e-9
        print(
            f"{grid * grid:>8} "
            f"{reeval_cluster.elapsed:>11.3f}s {incr_cluster.elapsed:>11.3f}s "
            f"{reeval_cluster.elapsed / incr_cluster.elapsed:>8.1f}x "
            f"{reeval_cluster.total_bytes:>13,} {incr_cluster.total_bytes:>12,}"
        )

    print("\nREEVAL scales with workers; INCR stays flat (broadcast-bound) —")
    print("the Fig. 3f shape. Results verified equal between strategies.")


if __name__ == "__main__":
    main()
