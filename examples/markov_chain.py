"""Markov chain monitoring: k-step behaviour under live re-estimation.

A fraud-detection team models customer journeys as a Markov chain over
page states.  Transition probabilities are re-estimated continuously;
each re-estimate replaces one column of the transition matrix (a rank-1
update).  Two maintained views answer the team's standing questions
without re-running the chain:

* the full k-step matrix ``P^k`` (matrix powers, Section 5.2), and
* the k-step distribution from the landing page (the general form with
  p = 1, Section 5.3 — maintained with the HYBRID strategy the paper
  recommends there).

Run:  python examples/markov_chain.py
"""

import numpy as np

from repro.analytics import (
    KStepDistribution,
    KStepTransitionMatrix,
    random_walk_matrix,
    reference_k_step,
)
from repro.cost import Counter

STATES = ["landing", "search", "product", "cart", "checkout", "support"]
K = 16


def initial_chain(rng: np.random.Generator) -> np.ndarray:
    """A random-walk chain over a sparse page graph."""
    n = len(STATES)
    adjacency = (rng.uniform(size=(n, n)) < 0.45).astype(float)
    np.fill_diagonal(adjacency, 0.0)
    return random_walk_matrix(adjacency)


def reestimated_column(rng: np.random.Generator, old: np.ndarray) -> np.ndarray:
    """A fresh probability estimate near the old one (new observations)."""
    noisy = np.clip(old + 0.15 * rng.standard_normal(old.shape), 0.01, None)
    return noisy / noisy.sum()


def main() -> None:
    rng = np.random.default_rng(42)
    p = initial_chain(rng)
    n = len(STATES)

    counter = Counter()
    # strategy="auto": the cost-driven planner picks strategy, model and
    # backend from the chain's measured density.
    k_step = KStepTransitionMatrix(p, k=K, strategy="auto", counter=counter)
    pi0 = np.zeros(n)
    pi0[STATES.index("landing")] = 1.0
    journey = KStepDistribution(p, pi0, k=K, strategy="HYBRID")

    print(f"{n}-state chain, k = {K} steps, incremental maintenance")
    print(f"planned configuration for P^k: {k_step.plan.label}\n")
    print(f"initial P(checkout | landing, {K} steps) = "
          f"{k_step.hitting_probability(STATES.index('checkout'), pi0):.4f}")

    # Live re-estimation: five columns get fresh probabilities.
    for step in range(5):
        state = int(rng.integers(n))
        new_col = reestimated_column(rng, k_step.p[:, state])
        counter.reset()
        k_step.perturb_column(state, new_col)
        journey.perturb_column(state, new_col)
        prob = k_step.hitting_probability(STATES.index("checkout"), pi0)
        print(f"re-estimated {STATES[state]:<9} -> "
              f"P(checkout) = {prob:.4f}  "
              f"({counter.total_flops:,} FLOPs for the {K}-step view)")

    # The maintained views still match from-scratch computation.
    exact = reference_k_step(k_step.p, K)
    drift = np.abs(k_step.result() - exact).max()
    dist_drift = np.abs(
        journey.result() - exact @ pi0.reshape(-1, 1)
    ).max()
    print(f"\nview drift vs recomputation: P^k {drift:.2e}, "
          f"distribution {dist_drift:.2e}")
    print("k-step distribution from landing:")
    for state, mass in zip(STATES, journey.result().reshape(-1)):
        print(f"  {state:<9} {mass:.4f}")


if __name__ == "__main__":
    main()
