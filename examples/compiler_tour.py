"""A tour of the LINVIEW compiler pipeline (Section 6's system).

Walks one program through every stage: source text -> AST -> Algorithm 1
triggers -> optimizer passes -> Python and Octave code generation —
printing the artifacts at each step.

Run:  python examples/compiler_tour.py
"""

from repro.expr import trigger_to_latex
from repro.compiler import (
    compile_program,
    generate_octave_trigger,
    generate_spark_trigger,
    optimize_trigger_chains,
    generate_python_trigger,
    optimize_trigger,
)
from repro.expr import count_nodes
from repro.frontend import parse_program, tokenize

SOURCE = """
# Ordinary least squares with an explicitly materialized inverse
input X(m, n);
input Y(m, p);
Z := X' * X;
W := inv(Z);
C := X' * Y;
beta := W * C;
output beta;
"""


def main() -> None:
    print("=== 1. Source ===")
    print(SOURCE)

    print("=== 2. Tokens (first 12) ===")
    for token in tokenize(SOURCE)[:12]:
        print(" ", token)

    program = parse_program(SOURCE)
    print("\n=== 3. Parsed program (AST) ===")
    print(program)

    print("\n=== 4. Algorithm 1: trigger for updates to X ===")
    trigger = compile_program(program, dynamic_inputs=["X"])["X"]
    print(trigger)
    print("\nNote: dW references the materialized view W (Sherman-Morrison/")
    print("Woodbury, Example 4.3) — no n x n matrix is ever re-inverted.")

    print("\n=== 5. Optimizer (CSE + copy propagation + DCE) ===")
    optimized = optimize_trigger(trigger)
    before = sum(count_nodes(a.expr) for a in trigger.assigns)
    after = sum(count_nodes(a.expr) for a in optimized.assigns)
    print(optimized)
    print(f"\nassign-expression AST nodes: {before} -> {after}")

    print("\n=== 6. Generated Python/NumPy backend ===")
    print(generate_python_trigger(optimized))

    print("=== 7. Generated Octave backend ===")
    print(generate_octave_trigger(optimized))

    print("=== 8. Generated Spark (Scala) backend ===")
    print(generate_spark_trigger(optimized))

    print("=== 9. Chain-ordered for concrete sizes (Section 5.1) ===")
    sized = optimize_trigger_chains(optimized, {"m": 4096, "n": 512, "p": 1})
    print(sized)
    print("\n(products re-associated by the matrix-chain DP for"
          " m=4096, n=512, p=1)")

    print("\n=== 10. The trigger as LaTeX (the paper's Example layout) ===")
    print(trigger_to_latex(optimized))


if __name__ == "__main__":
    main()
