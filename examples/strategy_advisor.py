"""Choosing a maintenance strategy with the Table 2 cost advisor.

Section 5 answers "which strategy and iterative model should I run?"
analytically; this example mechanizes the analysis for three workloads
from the paper's evaluation and then *checks* the advice by counting
actual FLOPs of the recommended and rejected configurations.

Run:  python examples/strategy_advisor.py
"""

import numpy as np

from repro.cost import Counter, recommend_general, recommend_powers
from repro.cost.advisor import speedup_estimate
from repro.iterative import make_general, parse_model
from repro.workloads import spectral_normalized


def show(title: str, ranked, top: int = 4) -> None:
    print(f"\n{title}")
    print(f"  {'rank':<5} {'config':<14} {'predicted ops':>14} "
          f"{'memory (entries)':>18}")
    for i, rec in enumerate(ranked[:top], start=1):
        print(f"  {i:<5} {rec.label:<14} {rec.time:>14.3g} "
              f"{rec.space:>18.3g}")
    print(f"  predicted gain over best re-evaluation: "
          f"{speedup_estimate(ranked):.1f}x")


def main() -> None:
    # Fig. 3a/3b regime: A^16 at n = 10K.
    show("Matrix powers A^16, n = 10,000 (Fig. 3a):",
         recommend_powers(n=10_000, k=16))

    # Fig. 3g regime: T_{i+1} = A T_i with p = 1 — hybrid territory.
    show("General form, n = 30,000, p = 1, k = 16 (Fig. 3g):",
         recommend_general(n=30_000, p=1, k=16))

    # Fig. 3h regime: gradient-descent LR, p = 1000.
    show("General form, n = 30,000, p = 1,000, k = 16 (Fig. 3h):",
         recommend_general(n=30_000, p=1000, k=16))

    # Memory-constrained variant: budget of ~3 matrices forbids INCR.
    n = 10_000
    show(f"Powers under a 3-matrix memory budget (n = {n}):",
         recommend_powers(n=n, k=16, memory_budget=3.0 * n * n))

    # Density-aware grid: the same p = 1 workload over a 1%-dense graph
    # operator ranks the sparse execution backend first.
    show("General form, n = 2,000, p = 1, k = 16 at 1% density:",
         recommend_general(n=2000, p=1, k=16, density=0.01))

    # The planner folds the whole decision into one call.
    from repro.planner import WorkloadStats, plan_general

    plan = plan_general(WorkloadStats(n=2000, p=1, k=16, density=0.01))
    print(f"\nplanner's one-call answer for the sparse workload: {plan.label}")

    # Validate the p = 1 advice by counting real FLOPs at small scale.
    n, p, k = 256, 1, 16
    rng = np.random.default_rng(5)
    a = spectral_normalized(rng, n, radius=0.8)
    t0 = rng.standard_normal((n, p))
    u = np.zeros((n, 1))
    u[7, 0] = 1.0
    v = 0.01 * rng.standard_normal((n, 1))

    print(f"\nMeasured FLOPs for one refresh (n={n}, p={p}, k={k}):")
    for label in ("HYBRID-LIN", "INCR-LIN", "REEVAL-LIN"):
        strategy, model = label.split("-", 1)
        counter = Counter()
        maintainer = make_general(strategy, a, None, t0, k,
                                  parse_model(model), counter)
        counter.reset()
        maintainer.refresh(u, v)
        print(f"  {label:<12} {counter.total_flops:>12,}")
    print("(the advisor's p = 1 ranking — HYBRID cheapest — "
          "holds in measured operations)")


if __name__ == "__main__":
    main()
