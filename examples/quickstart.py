"""Quickstart: incremental maintenance of A^4 (the paper's Example 1.1).

Defines the two-statement program ``B := A*A; C := B*B``, compiles it
into an update trigger (Algorithm 1), and maintains all views under a
stream of rank-1 updates — comparing cost and results against full
re-evaluation.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.compiler import compile_program, generate_octave_trigger
from repro.cost import Counter
from repro.frontend import parse_program
from repro.runtime import IVMSession, ReevalSession
from repro.workloads import spectral_normalized, update_stream

SOURCE = """
# Example 1.1: the fourth power of a matrix, as two statements.
input A(n, n);
B := A * A;
C := B * B;
output C;
"""


def main() -> None:
    program = parse_program(SOURCE)
    print("Program:")
    print(program)

    # Compile once: one trigger per dynamic input (Algorithm 1).
    trigger = compile_program(program)["A"]
    print("\nCompiled trigger (Example 4.6 of the paper):")
    print(trigger)
    print("\nSame trigger as generated Octave source:")
    print(generate_octave_trigger(trigger))

    # Maintain the views over a stream of rank-1 row updates.
    n = 300
    rng = np.random.default_rng(0)
    a0 = spectral_normalized(rng, n, radius=0.9)

    incr_counter, reeval_counter = Counter(), Counter()
    incr = IVMSession(program, {"A": a0}, dims={"n": n}, counter=incr_counter)
    reeval = ReevalSession(program, {"A": a0}, dims={"n": n},
                           counter=reeval_counter)
    incr_counter.reset()
    reeval_counter.reset()

    updates = list(update_stream(rng, "A", n, n, count=10, scale=0.01))
    for event in updates:
        incr.apply_update(event)
        reeval.apply_update(event)

    error = np.abs(incr["C"] - reeval["C"]).max()
    print(f"\nAfter {len(updates)} rank-1 updates at n={n}:")
    print(f"  max |INCR - REEVAL| on C : {error:.2e}")
    print(f"  INCR   FLOPs/update      : {incr_counter.total_flops // len(updates):,}")
    print(f"  REEVAL FLOPs/update      : {reeval_counter.total_flops // len(updates):,}")
    ratio = reeval_counter.total_flops / max(incr_counter.total_flops, 1)
    print(f"  operation-count advantage: {ratio:.1f}x for incremental")
    print(f"  numerical drift check    : {incr.revalidate():.2e}")


if __name__ == "__main__":
    main()
