"""Streaming ordinary least squares (Section 5.1 / Fig. 3e).

A regression model whose design matrix receives continuous row updates
(e.g. measurements being corrected).  The incremental estimator
maintains ``inv(X'X)`` with Sherman–Morrison steps instead of
re-inverting, keeping every refresh O(n^2 + mn).

Run:  python examples/ols_streaming.py
"""

import time

import numpy as np

from repro.analytics import ReevalOLS, make_ols
from repro.workloads import regression_data, row_update_factors


def main() -> None:
    rng = np.random.default_rng(42)
    m, n = 600, 300
    x, y, beta_true = regression_data(rng, m, n, p=1, noise=0.05)

    # make_ols routes through the planner: the Section 5.1 cost
    # comparison picks incremental maintenance for this regime.
    incr = make_ols(x, y)               # Example 4.3's maintenance plan
    print(f"planned OLS configuration: {incr.plan.label}")
    reeval = ReevalOLS(x, y)            # rebuild-from-scratch baseline

    updates = list(row_update_factors(rng, m, n, count=20, scale=0.05))

    start = time.perf_counter()
    for u, v in updates:
        incr.refresh(u, v)
    incr_seconds = (time.perf_counter() - start) / len(updates)

    start = time.perf_counter()
    for u, v in updates:
        reeval.refresh(u, v)
    reeval_seconds = (time.perf_counter() - start) / len(updates)

    print(f"OLS with X = ({m} x {n}), Y = ({m} x 1), {len(updates)} row updates")
    print(f"  incremental refresh : {incr_seconds * 1e3:8.2f} ms/update")
    print(f"  re-evaluation       : {reeval_seconds * 1e3:8.2f} ms/update")
    print(f"  speedup             : {reeval_seconds / incr_seconds:8.1f}x")

    agreement = np.abs(incr.beta - reeval.beta).max()
    fit = np.abs(incr.beta - beta_true).max()
    print(f"  INCR vs REEVAL beta : {agreement:.2e}")
    print(f"  distance to truth   : {fit:.3f} (noise-limited)")
    print(f"  accumulated drift   : {incr.revalidate():.2e}")


if __name__ == "__main__":
    main()
