"""Bounded-hop reachability over a changing network.

A network operator keeps a "can A reach B within k hops" oracle over a
router topology that gains and loses links.  The oracle is the power
sum ``I + A + ... + A^{k-1}`` (Section 5.2.3) maintained incrementally:
every link event is a rank-1 update, repaired in ``O(n^2 k)`` instead
of re-running the whole ``O(n^gamma log k)`` computation.

Run:  python examples/reachability_index.py
"""

import numpy as np

from repro.analytics import ReachabilityIndex, reference_reachable_pairs

ROUTERS = 24
MAX_HOPS = 8


def ring_with_chords(rng: np.random.Generator, n: int) -> np.ndarray:
    """A ring topology plus a few random chords (both directions)."""
    adjacency = np.zeros((n, n))
    for i in range(n):
        adjacency[(i + 1) % n, i] = 1.0
    for _ in range(4):
        a, b = rng.integers(n), rng.integers(n)
        if a != b:
            adjacency[b, a] = 1.0
    return adjacency


def main() -> None:
    rng = np.random.default_rng(7)
    adjacency = ring_with_chords(rng, ROUTERS)
    index = ReachabilityIndex(adjacency, k=MAX_HOPS)

    src, dst = 0, ROUTERS // 2
    print(f"{ROUTERS}-router ring+chords topology, k < {MAX_HOPS} hops\n")
    print(f"router {src} -> router {dst} reachable: "
          f"{index.reachable(src, dst)}")
    print(f"routers reachable from {src}: {index.reachable_set(src)}")

    # A shortcut link comes up.
    shortcut = (0, dst - 1)
    if index.adjacency[shortcut[1], shortcut[0]] == 0:
        index.add_edge(*shortcut)
        print(f"\n+ link {shortcut[0]} -> {shortcut[1]} came up")
        print(f"router {src} -> router {dst} reachable: "
              f"{index.reachable(src, dst)}")

    # A ring segment fails.
    index.remove_edge(2, 3)
    print("\n- link 2 -> 3 failed")
    print(f"router {src} -> router {dst} reachable: "
          f"{index.reachable(src, dst)}")
    print(f"routers reachable from {src}: {index.reachable_set(src)}")

    # Verify the oracle against from-scratch BFS-style recomputation.
    expected = reference_reachable_pairs(index.adjacency, MAX_HOPS)
    mismatches = int((index.reachable_pairs() != expected).sum())
    reachable_pairs = int(expected.sum())
    print(f"\noracle vs recomputation: {mismatches} mismatches over "
          f"{ROUTERS * ROUTERS} pairs ({reachable_pairs} reachable)")


if __name__ == "__main__":
    main()
