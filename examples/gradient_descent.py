"""Gradient-descent linear regression under data churn (Fig. 3h's workload).

Trains ``Theta_{i+1} = Theta_i - eta X'(X Theta_i - Y)`` for a fixed
number of steps and keeps the trained parameters fresh as rows of ``X``
change — comparing the three evaluation strategies across the three
iterative models, like the Fig. 3h matrix of the paper.

Run:  python examples/gradient_descent.py
"""

import time

import numpy as np

from repro.analytics import GradientDescentLR, reference_gradient_descent
from repro.iterative import Model
from repro.workloads import regression_data, row_update_factors

MODELS = [Model.linear(), Model.skip(4), Model.exponential()]
STRATEGIES = ["REEVAL", "INCR", "HYBRID"]


def main() -> None:
    rng = np.random.default_rng(3)
    m, n, p, k = 500, 250, 8, 16
    eta = 0.05 / n
    x, y, _ = regression_data(rng, m, n, p=p, noise=0.05)

    print(f"GD linear regression: X=({m}x{n}), Y=({m}x{p}), k={k} steps")
    print(f"{'':14}" + "".join(f"{s:>12}" for s in STRATEGIES))

    reference = None
    for model in MODELS:
        row = [f"{model.name:<14}"]
        for strategy in STRATEGIES:
            gd = GradientDescentLR(x, y, k=k, eta=eta, model=model,
                                   strategy=strategy)
            updates = list(row_update_factors(
                np.random.default_rng(99), m, n, count=6, scale=0.02))
            start = time.perf_counter()
            for u, v in updates:
                gd.refresh_x(u, v)
            per_update = (time.perf_counter() - start) / len(updates)
            row.append(f"{per_update * 1e3:10.2f}ms")
            if reference is None:
                reference = reference_gradient_descent(gd.x, y, k, eta)
            drift = np.abs(gd.theta - reference).max()
            assert drift < 1e-8, (model.name, strategy, drift)
        print("".join(row))

    print("\nall strategy/model combinations agree with the reference "
          "loop to < 1e-8")

    # Let the cost-driven planner pick the cell of the matrix above.
    auto = GradientDescentLR(x, y, k=k, eta=eta, strategy="auto")
    print(f"planner's pick for this workload: {auto.plan.label}")


if __name__ == "__main__":
    main()
