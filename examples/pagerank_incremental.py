"""Incremental PageRank over an evolving link graph (Section 5.3).

PageRank's power iteration is the general form ``T_{i+1} = A T_i + B``
with ``p = 1``, where Section 5.3 recommends the HYBRID strategy: the
rank vector's delta stays dense while the expensive square views are
maintained in factored form.  Edge insertions/removals are rank-1
column updates of the transition matrix.

Run:  python examples/pagerank_incremental.py
"""

import time

import numpy as np

from repro.analytics import IncrementalPageRank
from repro.iterative import Model
from repro.workloads import random_adjacency


def main() -> None:
    rng = np.random.default_rng(7)
    nodes = 400
    adjacency = random_adjacency(rng, nodes, avg_out_degree=6)

    # Exponential model: REEVAL must maintain the P/S views with dense
    # O(n^3) products, while HYBRID keeps them in factored form and the
    # p=1 rank vector delta dense (Section 5.3's recommendation).
    maintained = IncrementalPageRank(adjacency, k=32, strategy="HYBRID",
                                     model=Model.exponential())
    baseline = IncrementalPageRank(adjacency, k=32, strategy="REEVAL",
                                   model=Model.exponential())

    print(f"PageRank over {nodes} nodes, k=32 iterations, damping 0.85")
    print("initial top-5:", [(node, round(score, 5))
                             for node, score in maintained.top(5)])

    churn = []
    for _ in range(30):
        src = int(rng.integers(0, nodes))
        dst = int(rng.integers(0, nodes))
        if src != dst:
            churn.append((src, dst))

    start = time.perf_counter()
    for src, dst in churn:
        maintained.add_edge(src, dst)
    hybrid_seconds = (time.perf_counter() - start) / len(churn)

    start = time.perf_counter()
    for src, dst in churn:
        baseline.add_edge(src, dst)
    reeval_seconds = (time.perf_counter() - start) / len(churn)

    agreement = np.abs(maintained.ranks - baseline.ranks).max()
    print(f"\nafter {len(churn)} edge insertions:")
    print("updated top-5:", [(node, round(score, 5))
                             for node, score in maintained.top(5)])
    print(f"  HYBRID refresh : {hybrid_seconds * 1e3:7.2f} ms/edge")
    print(f"  REEVAL refresh : {reeval_seconds * 1e3:7.2f} ms/edge")
    print(f"  speedup        : {reeval_seconds / hybrid_seconds:7.1f}x")
    print(f"  strategy accord: {agreement:.2e}")
    print(f"  rank mass      : {maintained.ranks.sum():.9f} (should be 1)")
    print(f"  drift check    : {maintained.revalidate():.2e}")


if __name__ == "__main__":
    main()
