#!/usr/bin/env python
"""Fail on missing docstrings across the exported API surface.

The local mirror of the CI ``docs-check`` ruff selection
(``D100,D101,D102,D103``): every gated module must carry a module
docstring, and every public class, method, and function in it must
too.  AST-based — nothing is imported, so it runs in any environment
(ruff is a dev extra; this script is not).

"Public" follows pydocstyle: names not starting with ``_``, at module
top level or directly inside a class body.  ``__init__`` and other
dunders are exempt (that is D105/D107 territory, deliberately not
gated — the class docstring documents construction here).

Usage::

    python tools/check_docstrings.py            # gate the default set
    python tools/check_docstrings.py FILE...    # gate specific files

Exit status is the number of missing docstrings (0 = all good).
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

#: The exported-API modules the docs tier promises are documented:
#: session factories and plan records, the deferral layer, the serving
#: and distributed entry points, and every analytics driver.  Keep in
#: sync with the ``docs-check`` job's ruff file list in
#: .github/workflows/ci.yml.
GATED = (
    "src/repro/__init__.py",
    "src/repro/runtime/session.py",
    "src/repro/runtime/batching.py",
    "src/repro/runtime/heavylight.py",
    "src/repro/runtime/serving.py",
    "src/repro/runtime/checkpoint.py",
    "src/repro/testing/faults.py",
    "src/repro/runtime/workspace.py",
    "src/repro/planner/plan.py",
    "src/repro/distributed/workers.py",
    "src/repro/analytics/pagerank.py",
    "src/repro/analytics/markov.py",
    "src/repro/analytics/ols.py",
    "src/repro/analytics/expm.py",
    "src/repro/analytics/reachability.py",
    "src/repro/catalog.py",
    "src/repro/expr/structural.py",
)

DEFS = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)


def public(name: str) -> bool:
    return not name.startswith("_")


def missing(path: Path) -> list[str]:
    """Missing-docstring messages for one source file."""
    tree = ast.parse(path.read_text(encoding="utf-8"))
    rel = path.relative_to(REPO)
    problems: list[str] = []
    if ast.get_docstring(tree) is None:
        problems.append(f"{rel}:1: missing module docstring")
    for node in tree.body:
        if not isinstance(node, DEFS) or not public(node.name):
            continue
        if ast.get_docstring(node) is None:
            kind = "class" if isinstance(node, ast.ClassDef) else "function"
            problems.append(
                f"{rel}:{node.lineno}: missing docstring on {kind} "
                f"{node.name}")
        if isinstance(node, ast.ClassDef):
            for item in node.body:
                if (isinstance(item, DEFS) and public(item.name)
                        and ast.get_docstring(item) is None):
                    problems.append(
                        f"{rel}:{item.lineno}: missing docstring on "
                        f"{node.name}.{item.name}")
    return problems


def main(argv: list[str]) -> int:
    files = ([Path(a).resolve() for a in argv] if argv
             else [REPO / rel for rel in GATED])
    problems: list[str] = []
    for path in files:
        if not path.exists():
            problems.append(f"{path}: gated file does not exist")
            continue
        problems.extend(missing(path))
    for message in problems:
        print(message, file=sys.stderr)
    print(f"checked {len(files)} files: "
          f"{len(problems)} missing docstring(s)")
    return min(len(problems), 125)


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
