#!/usr/bin/env python
"""Fail on dead intra-repo links in the markdown docs.

Scans README.md, ROADMAP.md, CHANGES.md and everything under docs/ for
markdown links, and checks that every *relative* target resolves to a
real file or directory in the repo — including ``#fragment`` anchors,
which are slugified the way GitHub renders headings.  External links
(``http(s)://``) are not fetched: CI must not depend on the network,
and the intra-repo links are the ones refactors silently break.

Usage::

    python tools/check_links.py            # check the default doc set
    python tools/check_links.py FILE...    # check specific files

Exit status is the number of dead links (0 = all good).
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

DEFAULT_DOCS = ("README.md", "ROADMAP.md", "CHANGES.md")

#: ``[text](target)`` — target captured up to the closing paren.
#: Images (``![alt](src)``) match too; they resolve the same way.
LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

#: Markdown headings, for anchor resolution.
HEADING = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)


def slugify(heading: str) -> str:
    """GitHub's heading-to-anchor rule: lowercase, drop punctuation,
    spaces to hyphens (hyphens survive, backticks and parens do not)."""
    text = heading.strip().lower()
    text = re.sub(r"[`*_~]", "", text)          # inline markup
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)  # links -> text
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def anchors_of(path: Path) -> set[str]:
    """Every anchor a markdown file exposes (deduplicated GitHub-style:
    repeated headings get ``-1``, ``-2``, ... suffixes)."""
    seen: dict[str, int] = {}
    out: set[str] = set()
    for match in HEADING.finditer(path.read_text(encoding="utf-8")):
        slug = slugify(match.group(1))
        count = seen.get(slug, 0)
        seen[slug] = count + 1
        out.add(slug if count == 0 else f"{slug}-{count}")
    return out


def check_file(path: Path) -> list[str]:
    """Dead-link messages for one markdown file."""
    problems: list[str] = []
    text = path.read_text(encoding="utf-8")
    for match in LINK.finditer(text):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        line = text[: match.start()].count("\n") + 1
        base, _, fragment = target.partition("#")
        if base:
            resolved = (path.parent / base).resolve()
            if not resolved.is_relative_to(REPO):
                # GitHub-relative idioms (the ../../actions/... CI
                # badge) resolve on github.com, not on disk.
                continue
            if not resolved.exists():
                problems.append(f"{path.relative_to(REPO)}:{line}: "
                                f"dead link target {target!r}")
                continue
        else:
            resolved = path.resolve()
        if fragment and resolved.suffix == ".md":
            if fragment not in anchors_of(resolved):
                problems.append(f"{path.relative_to(REPO)}:{line}: "
                                f"dead anchor {target!r}")
    return problems


def main(argv: list[str]) -> int:
    if argv:
        files = [Path(a).resolve() for a in argv]
    else:
        files = [REPO / name for name in DEFAULT_DOCS]
        files += sorted((REPO / "docs").glob("**/*.md"))
    files = [f for f in files if f.exists()]
    problems: list[str] = []
    for path in files:
        problems.extend(check_file(path))
    for message in problems:
        print(message, file=sys.stderr)
    print(f"checked {len(files)} files: "
          f"{len(problems)} dead link(s)")
    return min(len(problems), 125)


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
