"""Fig. 3g — T_{i+1} = A T_i (B = 0) across iterate widths p.

Paper (Spark, n = 30K, k = 16, LIN model): at p = 1 HYBRID-LIN wins
(16% over REEVAL-LIN, 53% over INCR-LIN) because factoring a rank-1
``(n x 1)`` delta is pure overhead; REEVAL and HYBRID cost grows
linearly with p while INCR stays flat, so INCR takes over once p is
large enough to justify the factored form.

Reproduced at n = 512 with p in {1, 16, 128}: the crossover — HYBRID
at-or-near the best for p = 1, INCR strictly best at p = 128 — is the
assertion; FLOP counters back the same ordering deterministically in
``tests/test_iterative_general.py``.
"""

import numpy as np
import pytest

from conftest import make_matrix, refresh_timer, row_update
from repro.bench import time_refresh
from repro.iterative import Model, make_general

N = 512
K = 16
WIDTHS = [1, 16, 128]
STRATEGIES = ["REEVAL", "INCR", "HYBRID"]
PAPER = "Spark n=30K p=1: HYBRID > REEVAL (16%) > INCR (53%); INCR wins at large p"


def _maintainer(strategy: str, p: int):
    t0 = np.random.default_rng(11).standard_normal((N, p))
    return make_general(strategy, make_matrix(N), None, t0, K, Model.linear())


@pytest.mark.parametrize("p", WIDTHS)
@pytest.mark.parametrize("strategy", STRATEGIES)
def test_general_refresh(benchmark, strategy, p):
    maintainer = _maintainer(strategy, p)
    benchmark.pedantic(refresh_timer(maintainer, N), rounds=3, iterations=1,
                       warmup_rounds=1)


def test_report_fig3g(benchmark, capsys, bench_record):
    times: dict[int, dict[str, float]] = {}
    for p in WIDTHS:
        times[p] = {}
        for strategy in STRATEGIES:
            maintainer = _maintainer(strategy, p)
            updates = [row_update(N, seed) for seed in range(5)]
            times[p][strategy] = time_refresh(maintainer, updates)

    maintainer = _maintainer("HYBRID", 1)
    benchmark.pedantic(refresh_timer(maintainer, N), rounds=3, iterations=1,
                       warmup_rounds=1)

    with capsys.disabled():
        print(f"\n== Fig 3g: T=A*T, LIN model, n={N} (paper: {PAPER}) ==")
        print(f"{'p':>6}" + "".join(f"{s:>12}" for s in STRATEGIES))
        for p in WIDTHS:
            row = "".join(f"{times[p][s] * 1e3:>10.2f}ms" for s in STRATEGIES)
            print(f"{p:>6}{row}")
    bench_record({"seconds": times}, n=N, paper=PAPER)

    # p = 1: the factored form is overhead — HYBRID beats INCR.
    assert times[1]["HYBRID"] < times[1]["INCR"]
    # Large p: INCR is the clear winner over both.
    assert times[128]["INCR"] < times[128]["HYBRID"]
    assert times[128]["INCR"] < times[128]["REEVAL"]
    # REEVAL cost grows with p; INCR's is comparatively flat.
    reeval_growth = times[128]["REEVAL"] / times[1]["REEVAL"]
    incr_growth = times[128]["INCR"] / times[1]["INCR"]
    assert incr_growth < reeval_growth
