"""Fused in-place trigger path vs the interpreter / generic codegen.

The PR-4 claim: steady-state maintenance cost should be FLOPs, not
Python dispatch and allocator churn.  Three session scenarios (the same
regimes ``bench_planner_auto.py`` grids over) are driven with identical
update streams under three trigger execution paths:

* **interpret** — the AST executor (the PR 3 default baseline);
* **codegen** — generic generated Python, backend-dispatched kernels,
  copy-on-write applies (the PR 3 ``mode="codegen"`` path);
* **fused** — the specialized in-place path (``mode="codegen"`` default
  since this PR): preallocated workspace buffers, ``out=`` kernels,
  views repaired in place.

Two metrics per path:

* **wall time per update** (best-of-``repeats`` over the stream);
* **allocations per update** — net ``tracemalloc`` bytes and block
  count across a steady-state window (warm-up excluded), plus the
  workspace's own allocation counter.  The fused dense path must
  measure **zero** steady-state allocations.

Acceptance (checked by the script exit code and the pytest entry):

* fused >= 2x faster than the interpreter on the dense-small scenario;
* zero steady-state workspace allocations and ~zero net traced bytes
  for dense fused sessions;
* parity: all three paths end bit-identical (dense) / close (sparse).

Run as a script (or ``--smoke`` in CI)::

    PYTHONPATH=src python benchmarks/bench_fused_hotpath.py
    PYTHONPATH=src python benchmarks/bench_fused_hotpath.py --smoke --json out.json

``check_fused_trend.py`` compares the emitted JSON against the
committed baseline and fails CI on a >25% fused-speedup regression.
"""

from __future__ import annotations

import argparse
import gc
import time
import tracemalloc

import numpy as np

from conftest import add_json_flag, write_bench_json

#: Script acceptance: fused speedup over the interpreter, dense-small.
MIN_DENSE_SPEEDUP = 2.0

#: Net traced bytes per update above which "zero-allocation" fails
#: (tracemalloc's own bookkeeping shows up as a few dozen bytes).
MAX_STEADY_BYTES_PER_UPDATE = 256.0

A4_SOURCE = "input A(n, n); B := A * A; C := B * B; output C;"
STREAM_SOURCE = (
    "input A(n, n); input X(n, p); Y := A * X; Z := A * Y; output Z;"
)


def _program(source: str):
    from repro.frontend import parse_program

    return parse_program(source)


def _row_updates(rng, n: int, count: int, target: str = "A",
                 row_density: float = 1.0, scale: float = 0.01):
    from repro.runtime import FactoredUpdate

    updates = []
    for i in range(count):
        u = np.zeros((n, 1))
        u[i % n, 0] = 1.0
        v = scale * rng.standard_normal((n, 1))
        if row_density < 1.0:
            v *= rng.random((n, 1)) < row_density
        updates.append(FactoredUpdate(target, u, v))
    return updates


def _drive_seconds(session, updates) -> float:
    start = time.perf_counter()
    for update in updates:
        session.apply_update(update)
    return time.perf_counter() - start


def _steady_allocations(session, updates) -> dict:
    """Net traced memory and block growth across a steady-state window."""
    for update in updates:  # warm-up: buffers allocate here
        session.apply_update(update)
    ws = getattr(session, "workspace", None)
    ws_alloc_before = ws.allocations if ws is not None else None
    gc.collect()
    tracemalloc.start()
    before_bytes = tracemalloc.get_traced_memory()[0]
    snap_before = tracemalloc.take_snapshot()
    for update in updates:
        session.apply_update(update)
    gc.collect()
    after_bytes = tracemalloc.get_traced_memory()[0]
    snap_after = tracemalloc.take_snapshot()
    tracemalloc.stop()
    # Count only blocks attributable to this repo's code, so the
    # tracemalloc/driver bookkeeping doesn't pollute the metric.
    repo_growth = 0
    for stat in snap_after.compare_to(snap_before, "filename"):
        fname = stat.traceback[0].filename
        if ("repro" in fname or "trigger" in fname) and stat.count_diff > 0:
            repo_growth += stat.count_diff
    return {
        "updates": len(updates),
        "net_bytes": max(after_bytes - before_bytes, 0),
        "net_bytes_per_update": max(after_bytes - before_bytes, 0)
        / max(len(updates), 1),
        "repo_block_growth": repo_growth,
        "workspace_allocations": (
            None if ws is None else ws.allocations - ws_alloc_before
        ),
    }


def bench_scenario(
    label: str,
    source: str,
    inputs: dict,
    dims: dict,
    updates,
    backend: str,
    repeats: int = 3,
    alloc_window: int = 100,
) -> dict:
    """Per-update seconds for interpret/codegen/fused + fused allocations."""
    from repro.runtime.session import IVMSession

    program = _program(source)
    configs = (
        ("interpret", {"mode": "interpret"}),
        ("codegen", {"mode": "codegen", "fused": False}),
        ("fused", {"mode": "codegen", "fused": True}),
    )
    seconds = {name: float("inf") for name, _ in configs}
    outputs = {}
    for _ in range(max(repeats, 1)):
        for name, kwargs in configs:
            session = IVMSession(
                program,
                {k: v.copy() for k, v in inputs.items()},
                dims=dims, backend=backend, **kwargs,
            )
            seconds[name] = min(seconds[name],
                                _drive_seconds(session, updates))
            outputs[name] = np.array(session.output())

    drift = max(
        float(np.max(np.abs(outputs["fused"] - outputs[name])))
        for name in ("interpret", "codegen")
    )
    scale = max(1.0, float(np.max(np.abs(outputs["interpret"]))))
    if drift / scale > 1e-8:
        raise AssertionError(f"{label}: paths diverged (drift={drift})")

    alloc_session = IVMSession(
        program, {k: v.copy() for k, v in inputs.items()},
        dims=dims, backend=backend, mode="codegen",
    )
    allocations = _steady_allocations(alloc_session, updates[:alloc_window])

    per_update = {name: s / max(len(updates), 1)
                  for name, s in seconds.items()}
    return {
        "scenario": label,
        "backend": backend,
        "updates": len(updates),
        "seconds_per_update": per_update,
        "speedup_fused_vs_interpret":
            per_update["interpret"] / per_update["fused"],
        "speedup_fused_vs_codegen":
            per_update["codegen"] / per_update["fused"],
        "steady_state": allocations,
        "max_abs_drift": drift,
    }


def run_all(smoke: bool = False) -> dict:
    rng = np.random.default_rng(14036968)
    results = {}

    # Dense-small: the A^4 chain session where Python overhead dominates.
    n = 96 if smoke else 192
    count = 150 if smoke else 400
    a0 = 0.1 * rng.standard_normal((n, n))
    results["dense_small"] = bench_scenario(
        "dense-small", A4_SOURCE, {"A": a0}, {"n": n},
        _row_updates(rng, n, count), backend="dense",
        repeats=3 if smoke else 5,
    )

    # 1%-sparse: graph-shaped operator, CSR state, sparse row edits.
    n = 384 if smoke else 768
    count = 80 if smoke else 200
    a0 = ((rng.random((n, n)) < 0.01) * (0.05 * rng.standard_normal((n, n))))
    results["sparse_1pct"] = bench_scenario(
        "1%-sparse", A4_SOURCE.replace("C := B * B; output C;", "output B;"),
        {"A": a0}, {"n": n},
        _row_updates(rng, n, count, row_density=0.01), backend="sparse",
        repeats=3,
    )

    # p=16 long stream: thin iterate views over a dense operator.
    n = 256 if smoke else 512
    p = 16
    count = 300 if smoke else 800
    a0 = 0.05 * rng.standard_normal((n, n))
    x0 = rng.standard_normal((n, p))
    results["stream_p16"] = bench_scenario(
        "p=16 long-stream", STREAM_SOURCE, {"A": a0, "X": x0},
        {"n": n, "p": p}, _row_updates(rng, n, count), backend="dense",
        repeats=3,
    )
    return results


def report(results: dict) -> None:
    for scenario in results.values():
        print(f"{scenario['scenario']} (backend={scenario['backend']}, "
              f"{scenario['updates']} updates)")
        for name, sec in sorted(scenario["seconds_per_update"].items(),
                                key=lambda kv: kv[1]):
            print(f"  {name:<10} {sec * 1e6:10.1f} us/update")
        print(f"  -> fused {scenario['speedup_fused_vs_interpret']:.2f}x vs "
              f"interpret, {scenario['speedup_fused_vs_codegen']:.2f}x vs "
              f"generic codegen")
        steady = scenario["steady_state"]
        print(f"  -> steady state: {steady['net_bytes_per_update']:.0f} "
              f"B/update net, workspace allocations "
              f"{steady['workspace_allocations']}, repo block growth "
              f"{steady['repo_block_growth']}")


def check(results: dict, smoke: bool = False) -> list[str]:
    """Acceptance violations (empty = pass)."""
    problems = []
    dense = results["dense_small"]
    min_speedup = MIN_DENSE_SPEEDUP
    if dense["speedup_fused_vs_interpret"] < min_speedup:
        problems.append(
            f"dense-small fused speedup "
            f"{dense['speedup_fused_vs_interpret']:.2f}x < {min_speedup}x "
            f"vs interpreter"
        )
    for key in ("dense_small", "stream_p16"):
        steady = results[key]["steady_state"]
        if steady["workspace_allocations"] not in (0, None):
            problems.append(
                f"{key}: workspace grew by "
                f"{steady['workspace_allocations']} buffers in steady state"
            )
        if steady["net_bytes_per_update"] > MAX_STEADY_BYTES_PER_UPDATE:
            problems.append(
                f"{key}: {steady['net_bytes_per_update']:.0f} net B/update "
                f"in steady state (expected ~0)"
            )
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="small fast run for CI harness-rot checks")
    add_json_flag(parser)
    args = parser.parse_args(argv)
    results = run_all(smoke=args.smoke)
    report(results)
    if args.json:
        path = write_bench_json(args.json, "fused_hotpath", results,
                                smoke=args.smoke)
        print(f"\nresults -> {path}")
    problems = check(results, smoke=args.smoke)
    for problem in problems:
        print(f"\nWARNING: {problem}")
    if not problems:
        print("\nfused hot path: zero-allocation steady state, speedup "
              "targets met")
    return 1 if problems else 0


def test_report_fused_hotpath(bench_record):
    """Smoke-size run: speedup + zero-allocation acceptance."""
    results = run_all(smoke=True)
    report(results)
    bench_record(results, smoke=True)
    problems = check(results, smoke=True)
    assert not problems, "; ".join(problems)


if __name__ == "__main__":
    raise SystemExit(main())
