"""Checkpoint+tail recovery vs full log replay (the ISSUE 9 claim).

LINVIEW's recovery economics (Section 1's motivation for logged IVM):
views are cheap to *maintain* but expensive to *recompute*, so crash
recovery should restore the newest durable snapshot and replay only the
short delta tail — not re-evaluate the program and replay the whole
update log.  This benchmark measures both recovery paths against the
same crashed state:

* **restore** — ``restore_session`` (newest valid snapshot, checksum
  verified) + replay of the tail logged since that snapshot;
* **log replay** — rebuild from the original inputs (re-evaluate every
  view) + replay the *entire* update log.

Both must land on state **bitwise identical** to the lost live session
(the exactness invariant; allclose would hide real state corruption),
and restore must win by a margin that scales with ``updates/cadence``.
Also reported: what checkpointing cost the write path (snapshot cut
time as a fraction of maintenance time — the durability overhead).

Run as a script (or ``--smoke`` in CI)::

    PYTHONPATH=src python benchmarks/bench_recovery.py
    PYTHONPATH=src python benchmarks/bench_recovery.py --smoke --json out.json

``check_recovery_trend.py`` compares the emitted JSON against the
committed baseline and fails CI on a >25% recovery-speedup regression
or any exactness violation.
"""

from __future__ import annotations

import argparse
import tempfile
import time

import numpy as np

from conftest import add_json_flag, write_bench_json

A4_SOURCE = "input A(n, n); B := A * A; C := B * B; output C;"

#: Script acceptance: checkpoint+tail recovery must beat full log
#: replay by this factor (it replays ``cadence`` updates instead of
#: ``updates``, so the floor is deliberately far below the expected
#: ``updates/cadence`` ratio).
MIN_RECOVERY_SPEEDUP = 1.5

VIEW_NAMES = ("A", "B", "C")


def _build(program, a0, directory=None, every: int = 16):
    from repro.runtime import open_session

    checkpoint = None
    if directory is not None:
        checkpoint = {"directory": directory, "every": every}
    return open_session(program, {"A": a0.copy()}, plan="incr",
                        backend="dense", mode="interpret", batch="off",
                        partition="off", checkpoint=checkpoint)


def _stream(rng, n: int, count: int):
    from repro.runtime import FactoredUpdate

    updates = []
    for _ in range(count):
        u = np.zeros((n, 1))
        u[rng.integers(n), 0] = 1.0
        updates.append(FactoredUpdate("A", u,
                                      0.01 * rng.standard_normal((n, 1))))
    return updates


def _views(session) -> dict:
    return {name: np.asarray(session[name]).copy() for name in VIEW_NAMES}


def _bitwise(a: dict, b: dict) -> bool:
    return all(np.array_equal(a[name], b[name]) for name in VIEW_NAMES)


def run_all(smoke: bool = False) -> dict:
    from repro.frontend import parse_program
    from repro.runtime import restore_session

    n = 48 if smoke else 128
    # Not a cadence multiple: the tail-replay leg must be exercised.
    updates_total = 85 if smoke else 325
    cadence = 8 if smoke else 16
    rng = np.random.default_rng(20140622)
    program = parse_program(A4_SOURCE)
    a0 = 0.2 * rng.standard_normal((n, n)) / np.sqrt(n)
    updates = _stream(rng, n, updates_total)

    with tempfile.TemporaryDirectory() as directory:
        live = _build(program, a0, directory, every=cadence)
        started = time.perf_counter()
        for update in updates:
            live.apply_update(update)
        maintain_seconds = time.perf_counter() - started
        checkpointer = live.checkpointer
        want = _views(live)
        saves = checkpointer.saves
        tail = len(updates) - saves * cadence

        # Recovery path 1: newest snapshot + tail replay.  The "crash"
        # loses the process but not the directory; the tail comes from
        # the update log (here: the slice the snapshot does not cover).
        started = time.perf_counter()
        restored = restore_session(program, directory)
        for update in updates[restored.update_count:]:
            restored.apply_update(update)
        restore_seconds = time.perf_counter() - started
        exact_restore = _bitwise(want, _views(restored))

        # Recovery path 2: no snapshot — re-evaluate from the original
        # inputs and replay the whole log.
        started = time.perf_counter()
        replayed = _build(program, a0)
        for update in updates:
            replayed.apply_update(update)
        replay_seconds = time.perf_counter() - started
        exact_replay = _bitwise(want, _views(replayed))

        # Durability overhead: time one snapshot cut costs the writer.
        started = time.perf_counter()
        checkpointer.checkpoint()
        snapshot_seconds = time.perf_counter() - started

    results = {
        "n": n,
        "updates": updates_total,
        "cadence": cadence,
        "snapshots": saves,
        "tail_updates": tail,
        "maintain_seconds": maintain_seconds,
        "restore_seconds": restore_seconds,
        "log_replay_seconds": replay_seconds,
        "snapshot_cut_seconds": snapshot_seconds,
        "exact_restore": bool(exact_restore),
        "exact_log_replay": bool(exact_replay),
        "derived": {
            "recovery_speedup": replay_seconds / max(restore_seconds, 1e-9),
            "snapshot_overhead_fraction": (
                saves * snapshot_seconds / max(maintain_seconds, 1e-9)
            ),
        },
    }
    return results


def report(results: dict) -> None:
    print(f"n={results['n']}  {results['updates']} updates, snapshot "
          f"every {results['cadence']} ({results['snapshots']} cut, "
          f"{results['tail_updates']} tail)")
    print(f"maintenance      : {results['maintain_seconds'] * 1e3:9.1f} ms")
    print(f"restore + tail   : {results['restore_seconds'] * 1e3:9.1f} ms  "
          f"(bitwise exact: {results['exact_restore']})")
    print(f"full log replay  : {results['log_replay_seconds'] * 1e3:9.1f} ms  "
          f"(bitwise exact: {results['exact_log_replay']})")
    print(f"one snapshot cut : {results['snapshot_cut_seconds'] * 1e3:9.1f} ms")
    derived = results["derived"]
    print(f"recovery speedup : {derived['recovery_speedup']:.1f}x; "
          f"durability cost {derived['snapshot_overhead_fraction']:.1%} "
          f"of maintenance time")


def check(results: dict) -> list[str]:
    """Acceptance violations (empty = pass)."""
    problems = []
    if not results["exact_restore"]:
        problems.append("restore+tail recovery is not bitwise exact")
    if not results["exact_log_replay"]:
        problems.append("log-replay recovery is not bitwise exact")
    speedup = results["derived"]["recovery_speedup"]
    if speedup < MIN_RECOVERY_SPEEDUP:
        problems.append(
            f"checkpoint recovery only {speedup:.1f}x faster than full "
            f"log replay (floor {MIN_RECOVERY_SPEEDUP}x)"
        )
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="small fast run for CI harness-rot checks")
    add_json_flag(parser)
    args = parser.parse_args(argv)
    results = run_all(smoke=args.smoke)
    report(results)
    if args.json:
        path = write_bench_json(args.json, "recovery", results,
                                smoke=args.smoke)
        print(f"\nresults -> {path}")
    problems = check(results)
    for problem in problems:
        print(f"\nWARNING: {problem}")
    if not problems:
        print("\nrecovery: checkpoint+tail restore is exact and beats "
              "full log replay")
    return 1 if problems else 0


def test_report_recovery(bench_record):
    """Smoke-size run: exactness + recovery-speedup acceptance."""
    results = run_all(smoke=True)
    report(results)
    bench_record(results, smoke=True)
    problems = check(results)
    assert not problems, "; ".join(problems)


if __name__ == "__main__":
    raise SystemExit(main())
