"""Table 4 — batch updates with Zipf-distributed row frequencies.

Paper (A^16, batch of 1000 row updates): with a high Zipf factor the
batch collapses onto few distinct rows (a low-rank factored update) and
INCR-EXP is an order of magnitude faster than one re-evaluation; as the
factor drops to 0 the batch spreads uniformly, the merged update's rank
approaches min(batch, n), and "IncrExp loses its advantage over
ReevalExp" (Octave 10K: 6.3 s at factor 5 vs 236.5 s at factor 0,
against 99.1 s for one re-evaluation).

Reproduced at n = 384 with batches of 96 row updates (the batch/n ratio
matters, not the absolute count — see EXPERIMENTS.md): refresh time must
rise monotonically-ish as theta drops, beating REEVAL at high skew and
losing its advantage at theta = 0.
"""

import numpy as np
import pytest

from conftest import make_matrix
from repro.bench import format_seconds
from repro.iterative import Model, make_powers
from repro.workloads import zipf_batch

import time

N = 384
K = 16
BATCH = 96
THETAS = [5.0, 3.0, 2.0, 1.0, 0.0]
PAPER = "Octave 10K/batch 1000: 6.3s (z=5) .. 236.5s (z=0); one REEVAL = 99.1s"


def _batch_factors(theta: float, seed: int):
    rng = np.random.default_rng(seed)
    rows, deltas = zipf_batch(rng, N, N, BATCH, theta, scale=0.01)
    k = rows.shape[0]
    u = np.zeros((N, k))
    u[rows, np.arange(k)] = 1.0
    return u, deltas.T


@pytest.mark.parametrize("theta", THETAS)
def test_incr_batch_refresh(benchmark, theta):
    maintainer = make_powers("INCR", make_matrix(N), K, Model.exponential())
    state = {"seed": 0}

    def call():
        state["seed"] += 1
        u, v = _batch_factors(theta, state["seed"])
        maintainer.refresh(u, v)

    benchmark.pedantic(call, rounds=2, iterations=1, warmup_rounds=1)


def test_reeval_batch_refresh(benchmark):
    maintainer = make_powers("REEVAL", make_matrix(N), K, Model.exponential())
    state = {"seed": 0}

    def call():
        state["seed"] += 1
        u, v = _batch_factors(1.0, state["seed"])
        maintainer.refresh(u, v)

    benchmark.pedantic(call, rounds=2, iterations=1, warmup_rounds=1)


def test_report_table4(benchmark, capsys, bench_record):
    incr_times = {}
    ranks = {}
    for theta in THETAS:
        maintainer = make_powers("INCR", make_matrix(N), K,
                                 Model.exponential())
        u, v = _batch_factors(theta, 1)  # warm
        maintainer.refresh(u, v)
        u, v = _batch_factors(theta, 2)
        ranks[theta] = u.shape[1]
        start = time.perf_counter()
        maintainer.refresh(u, v)
        incr_times[theta] = time.perf_counter() - start

    reeval = make_powers("REEVAL", make_matrix(N), K, Model.exponential())
    u, v = _batch_factors(1.0, 1)
    reeval.refresh(u, v)
    u, v = _batch_factors(1.0, 2)
    start = time.perf_counter()
    reeval.refresh(u, v)
    reeval_time = time.perf_counter() - start

    maintainer = make_powers("INCR", make_matrix(N), K, Model.exponential())

    def call():
        u, v = _batch_factors(5.0, 9)
        maintainer.refresh(u, v)

    benchmark.pedantic(call, rounds=2, iterations=1, warmup_rounds=1)

    with capsys.disabled():
        print(f"\n== Table 4: INCR-EXP refresh per {BATCH}-update Zipf batch, "
              f"n={N} (paper: {PAPER}) ==")
        print(f"{'zipf':>6} {'batch rank':>11} {'INCR time':>12}")
        for theta in THETAS:
            print(f"{theta:>6.1f} {ranks[theta]:>11} "
                  f"{format_seconds(incr_times[theta]):>12}")
        print(f"{'REEVAL':>6} {'-':>11} {format_seconds(reeval_time):>12}"
              "   (batch-rank independent)")
    bench_record({"incr_seconds": incr_times, "batch_ranks": ranks,
                  "reeval_seconds": reeval_time}, n=N, batch=BATCH)

    # Shape: rank grows as skew drops; cost follows; INCR wins at high
    # skew and loses its advantage in the uniform case.
    assert ranks[5.0] < ranks[1.0] < ranks[0.0]
    assert incr_times[5.0] < incr_times[0.0]
    assert incr_times[5.0] < reeval_time
    assert incr_times[0.0] > 0.4 * reeval_time


def _raw_zipf_updates(theta: float, seed: int):
    """The batch as raw rank-1 updates (no row merging)."""
    rng = np.random.default_rng(seed)
    from repro.workloads.zipf import sample_rows

    rows = sample_rows(rng, N, BATCH, theta)
    updates = []
    for row in rows:
        u = np.zeros((N, 1))
        u[row, 0] = 1.0
        updates.append((u, 0.01 * rng.standard_normal((N, 1))))
    return updates


def test_report_table4_compaction(benchmark, capsys):
    """Batch compaction recovers the Table 4 rank from raw updates.

    Applying a skewed 96-update batch one rank-1 refresh at a time pays
    96 full propagations; collecting and flushing one compacted rank-r
    refresh pays one (r = distinct rows touched).  Both must maintain
    identical views.
    """
    from repro.delta import BatchCollector

    theta = 3.0
    per_update = make_powers("INCR", make_matrix(N), K, Model.exponential())
    batched = make_powers("INCR", make_matrix(N), K, Model.exponential())

    updates = _raw_zipf_updates(theta, seed=4)
    start = time.perf_counter()
    for u, v in updates:
        per_update.refresh(u, v)
    naive_time = time.perf_counter() - start

    collector = BatchCollector()
    for u, v in updates:
        collector.add(u, v)
    start = time.perf_counter()
    size, rank, dropped = collector.flush(batched)
    compacted_time = time.perf_counter() - start

    drift = float(np.max(np.abs(per_update.result() - batched.result())))

    def call():
        fresh = BatchCollector()
        for u, v in _raw_zipf_updates(theta, seed=5):
            fresh.add(u, v)
        fresh.flush(make_powers("INCR", make_matrix(N), K,
                                Model.exponential()))

    benchmark.pedantic(call, rounds=2, iterations=1, warmup_rounds=1)

    with capsys.disabled():
        print(f"\n== Table 4 extension: batch compaction (theta={theta}) ==")
        print(f"  {size} rank-1 refreshes, one at a time: "
              f"{format_seconds(naive_time):>10}")
        print(f"  one compacted rank-{rank} refresh:        "
              f"{format_seconds(compacted_time):>10}")
        print(f"  speedup {naive_time / compacted_time:.1f}x, "
              f"views agree to {drift:.1e}, dropped mass {dropped:g}")

    assert dropped == 0.0
    assert rank < size
    assert drift < 1e-6
    assert compacted_time < naive_time
