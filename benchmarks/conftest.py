"""Shared helpers for the figure/table benchmarks.

Every benchmark follows the paper's protocol: maintainers are built
once (initial materialization untimed), then a *view refresh* — one
rank-1 row update propagated through every materialized view — is the
timed operation.  Sizes are laptop-scale (see DESIGN.md substitutions);
each module also contains a ``test_report_*`` that prints the series in
the figure's layout with paper-reported factors alongside.

Machine-readable results (the CI perf-trajectory artifacts):

* script-style benchmarks take ``--json PATH`` (:func:`add_json_flag` +
  :func:`write_bench_json`) and write a ``BENCH_<name>.json`` file;
* every ``test_report_*`` records its measured series through the
  :func:`bench_record` fixture, which writes ``BENCH_<module>.json``
  into the directory given by ``pytest --bench-json DIR`` (and is a
  no-op otherwise).

Both paths share one schema: ``{schema, bench, platform, python,
results, ...meta}``; CI uploads the files with ``actions/upload-artifact``
so the perf trajectory is recorded per-run instead of scrolling away in
logs.

The ``comm`` block (distributed runs)
-------------------------------------

Sharded runs — ``repro run --nodes N --json`` and the cells of
``bench_fig3g_distributed.py`` — attach one ``comm`` object of
*measured* IPC traffic, harvested from the engine's
:class:`~repro.distributed.comm.CommLog`:

``bytes``
    ``{kind: int}`` — real pickled payload bytes by kind
    (``broadcast`` / ``shuffle`` / ``gather``).  Fan-out ops count
    payload x workers (each worker receives its own copy); fan-in
    counts reply payloads as ``gather``.
``messages``
    ``{kind: int}`` — pipe messages by kind (one per worker per op).
``seconds``
    ``{kind: float}`` — wall seconds by kind: send time for fan-out,
    reply-wait time for fan-in (the first roundtrip after spawn
    absorbs worker startup, by design — latency as experienced).
``bytes_by_label``
    ``{label: int}`` — bytes by operation label (``add_lowrank``,
    ``mat_lowrank``, ...), the series the modeled-vs-measured tests
    compare against ``est_broadcast`` / ``est_shuffle``.
``total_bytes`` / ``total_messages``
    Sums over kinds.
``worker_seconds``
    ``[float]`` — per-worker cumulative busy seconds (kernel time
    reported by each worker, excludes pipe wait).
``partition``
    :meth:`RowShardPartitioner.describe()
    <repro.distributed.partitioner.RowShardPartitioner.describe>`:
    ``{n, nodes, strategy, tile_rows, n_tiles, shard_rows}`` — shard
    sizes in rows per worker.
"""

from __future__ import annotations

import json
import os
import platform
from pathlib import Path

# Cap BLAS threads BEFORE NumPy loads.  The paper's asymptotics compare
# per-operation work; on a many-core machine an O(n^3) GEMM parallelizes
# far better than the memory-bound O(n^2) delta passes, which would hide
# the complexity gap at laptop-scale n.  One thread restores the
# machine balance the analysis (and the paper's per-node accounting)
# assumes; Fig. 3f covers the scale-out story explicitly.
for _var in ("OMP_NUM_THREADS", "OPENBLAS_NUM_THREADS", "MKL_NUM_THREADS",
             "NUMEXPR_NUM_THREADS", "VECLIB_MAXIMUM_THREADS"):
    os.environ.setdefault(_var, "1")

import numpy as np

try:
    import pytest
except ImportError:
    # Script-mode benchmarks import this module for the JSON helpers
    # only; the fixture/hook surface below needs pytest, scripts don't.
    pytest = None

from repro.workloads import spectral_normalized

_HERE = os.path.dirname(os.path.abspath(__file__))


def pytest_addoption(parser):
    parser.addoption(
        "--bench-json", action="store", default=None, metavar="DIR",
        help="write BENCH_<module>.json result files from report tests "
             "into DIR",
    )


def pytest_collection_modifyitems(config, items):
    """Benchmark report tests are long-running: keep them out of the
    default CI tier (run with ``-m slow`` or no marker filter)."""
    for item in items:
        if str(item.path).startswith(_HERE):
            item.add_marker(pytest.mark.slow)


def write_bench_json(path, name: str, results, **meta) -> Path:
    """Write one benchmark result file in the shared schema.

    ``results`` must be JSON-serializable (dicts of label -> seconds /
    speedups); ``meta`` lands at the top level next to it.
    """
    payload = {
        "schema": 1,
        "bench": name,
        "platform": platform.platform(),
        "python": platform.python_version(),
        "results": results,
    }
    payload.update(meta)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True,
                               default=str) + "\n")
    return path


def add_json_flag(parser) -> None:
    """Give a script-style benchmark's argparse parser the --json flag."""
    parser.add_argument(
        "--json", metavar="PATH", default=None,
        help="write a machine-readable BENCH_<name>.json result file",
    )




if pytest is not None:
    @pytest.fixture(scope="module")
    def bench_rng():
        """Module-scoped deterministic generator for benchmark inputs."""
        return np.random.default_rng(1403_6968)  # the paper's arXiv id

    @pytest.fixture
    def bench_record(request):
        """Record a report test's measured series as a BENCH_*.json file.

        Call ``bench_record(results, **meta)`` with whatever the test
        printed; the file is written only when pytest ran with
        ``--bench-json DIR`` (CI), so local runs stay side-effect free.
        """
        directory = request.config.getoption("--bench-json")

        def record(results, **meta):
            if not directory:
                return None
            stem = Path(str(request.node.path)).stem.removeprefix("bench_")
            return write_bench_json(Path(directory) / f"BENCH_{stem}.json",
                                    stem, results, **meta)

        return record


def make_matrix(n: int, seed: int = 7, radius: float = 0.9) -> np.ndarray:
    """Spectrally normalized dense input (stable under long update streams)."""
    return spectral_normalized(np.random.default_rng(seed), n, radius)


def row_update(n: int, seed: int, scale: float = 0.01):
    """One deterministic rank-1 row update ``(u, v)``."""
    rng = np.random.default_rng(seed)
    u = np.zeros((n, 1))
    u[int(rng.integers(0, n)), 0] = 1.0
    v = scale * rng.standard_normal((n, 1))
    return u, v


def refresh_timer(maintainer, n: int, scale: float = 0.01):
    """A zero-argument callable applying a fresh row update per call."""
    state = {"seed": 0}

    def call():
        state["seed"] += 1
        u, v = row_update(n, state["seed"], scale)
        maintainer.refresh(u, v)

    return call
