"""Shared helpers for the figure/table benchmarks.

Every benchmark follows the paper's protocol: maintainers are built
once (initial materialization untimed), then a *view refresh* — one
rank-1 row update propagated through every materialized view — is the
timed operation.  Sizes are laptop-scale (see DESIGN.md substitutions);
each module also contains a ``test_report_*`` that prints the series in
the figure's layout with paper-reported factors alongside.
"""

from __future__ import annotations

import os

# Cap BLAS threads BEFORE NumPy loads.  The paper's asymptotics compare
# per-operation work; on a many-core machine an O(n^3) GEMM parallelizes
# far better than the memory-bound O(n^2) delta passes, which would hide
# the complexity gap at laptop-scale n.  One thread restores the
# machine balance the analysis (and the paper's per-node accounting)
# assumes; Fig. 3f covers the scale-out story explicitly.
for _var in ("OMP_NUM_THREADS", "OPENBLAS_NUM_THREADS", "MKL_NUM_THREADS",
             "NUMEXPR_NUM_THREADS", "VECLIB_MAXIMUM_THREADS"):
    os.environ.setdefault(_var, "1")

import numpy as np
import pytest

from repro.workloads import spectral_normalized

_HERE = os.path.dirname(os.path.abspath(__file__))


def pytest_collection_modifyitems(config, items):
    """Benchmark report tests are long-running: keep them out of the
    default CI tier (run with ``-m slow`` or no marker filter)."""
    for item in items:
        if str(item.path).startswith(_HERE):
            item.add_marker(pytest.mark.slow)


@pytest.fixture(scope="module")
def bench_rng():
    """Module-scoped deterministic generator for benchmark inputs."""
    return np.random.default_rng(1403_6968)  # the paper's arXiv id


def make_matrix(n: int, seed: int = 7, radius: float = 0.9) -> np.ndarray:
    """Spectrally normalized dense input (stable under long update streams)."""
    return spectral_normalized(np.random.default_rng(seed), n, radius)


def row_update(n: int, seed: int, scale: float = 0.01):
    """One deterministic rank-1 row update ``(u, v)``."""
    rng = np.random.default_rng(seed)
    u = np.zeros((n, 1))
    u[int(rng.integers(0, n)), 0] = 1.0
    v = scale * rng.standard_normal((n, 1))
    return u, v


def refresh_timer(maintainer, n: int, scale: float = 0.01):
    """A zero-argument callable applying a fresh row update per call."""
    state = {"seed": 0}

    def call():
        state["seed"] += 1
        u, v = row_update(n, state["seed"], scale)
        maintainer.refresh(u, v)

    return call
