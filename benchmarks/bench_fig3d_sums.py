"""Fig. 3d — Sums of matrix powers I + A + ... + A^15 over n.

Paper: same complexity as matrix powers, so the same picture — speedups
grow with n (5.0x at n = 4K to 15.2x at n = 20K in Octave; 8.4x to 53x
in Spark).  Reproduced over n in {128, 256, 512}.
"""

import pytest

from conftest import make_matrix, refresh_timer, row_update
from repro.bench import time_refresh
from repro.iterative import Model, make_sums

K = 16
SIZES = [128, 256, 512]
PAPER = "Octave: 5.0x (4K) .. 15.2x (20K); Spark: 8.4x .. 53.1x"


@pytest.mark.parametrize("n", SIZES)
@pytest.mark.parametrize("strategy", ["REEVAL", "INCR"])
def test_sums_scale_n(benchmark, strategy, n):
    maintainer = make_sums(strategy, make_matrix(n), K, Model.exponential())
    benchmark.pedantic(refresh_timer(maintainer, n), rounds=3, iterations=1,
                       warmup_rounds=1)


def test_report_fig3d(benchmark, capsys, bench_record):
    speedups = {}
    for n in SIZES:
        times = {}
        for strategy in ("REEVAL", "INCR"):
            maintainer = make_sums(strategy, make_matrix(n), K,
                                   Model.exponential())
            updates = [row_update(n, seed) for seed in range(5)]
            times[strategy] = time_refresh(maintainer, updates)
        speedups[n] = times["REEVAL"] / times["INCR"]

    maintainer = make_sums("INCR", make_matrix(SIZES[-1]), K,
                           Model.exponential())
    benchmark.pedantic(refresh_timer(maintainer, SIZES[-1]), rounds=3,
                       iterations=1, warmup_rounds=1)

    with capsys.disabled():
        print(f"\n== Fig 3d: sums-of-powers speedup vs n (paper: {PAPER}) ==")
        for n in SIZES:
            print(f"  n={n:>5}: INCR-EXP is {speedups[n]:5.1f}x faster")
    bench_record({"speedups": speedups}, k=K, paper=PAPER)

    assert speedups[SIZES[-1]] > speedups[SIZES[0]]
    assert speedups[SIZES[-1]] > 2.5
