"""Fail CI when heavy-light maintenance regresses against the baseline.

Usage::

    python benchmarks/check_hl_trend.py CURRENT.json BASELINE.json

Both files are ``bench_heavylight.py --json`` outputs.  Absolute seconds
are not comparable across machines, so the guarded metric is the
**heavy-light-vs-best-uniform speedup ratio** per skewed scenario — both
paths run on the same machine in the same process, so the ratio isolates
the partitioned pipeline's relative health.  A scenario regresses when
its current speedup falls more than ``MAX_REGRESSION`` (25%) below the
baseline's; three machine-independent invariants are re-checked
absolutely: the speedup must clear the 2x acceptance bar, the planner
must still recommend ``heavy-light`` on the skewed streams, and it must
keep ``uniform`` on the flat stream.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

#: Allowed fractional drop of the heavy-light speedup vs the baseline.
MAX_REGRESSION = 0.25

#: The ISSUE 8 acceptance bar, re-checked absolutely every run.
MIN_SKEWED_SPEEDUP = 2.0

#: Scenarios guarded by the ratio check (the skewed cells).
GUARDED = ("theta1.2", "theta2")


def load(path: str) -> dict:
    data = json.loads(Path(path).read_text())
    return data.get("results", data)


def main(argv=None) -> int:
    argv = argv if argv is not None else sys.argv[1:]
    if len(argv) != 2:
        print(__doc__)
        return 2
    current, baseline = load(argv[0]), load(argv[1])

    failures = []
    for key in GUARDED:
        if key not in current or key not in baseline:
            failures.append(f"{key}: missing from current or baseline JSON")
            continue
        now = float(current[key]["speedup_hl_vs_best_uniform"])
        then = float(baseline[key]["speedup_hl_vs_best_uniform"])
        floor = max(then * (1.0 - MAX_REGRESSION), MIN_SKEWED_SPEEDUP)
        status = "OK" if now >= floor else "REGRESSED"
        print(f"{key}: heavy-light speedup {now:.2f}x (baseline {then:.2f}x, "
              f"floor {floor:.2f}x) {status}")
        if now < floor:
            failures.append(
                f"{key}: heavy-light per-update wall time regressed "
                f"(speedup {now:.2f}x < floor {floor:.2f}x)"
            )
        if current[key]["recommended_partition"] != "heavy-light":
            failures.append(
                f"{key}: planner no longer recommends heavy-light "
                f"(got {current[key]['recommended_partition']!r})"
            )
    flat = current.get("theta0")
    if flat is not None and flat["recommended_partition"] != "uniform":
        failures.append(
            "theta0: planner recommends "
            f"{flat['recommended_partition']!r} on a uniform stream "
            "(heavy set must collapse, keeping uniform)"
        )

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print("heavy-light maintenance trend: within baseline envelope")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
