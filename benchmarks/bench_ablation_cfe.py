"""Ablation — common-factor extraction in delta propagation (Section 4.3).

Section 4.3: without extracting common factors, the ``A^8`` program's
deltas stack to widths 3, 9, 27 (3x per statement); with extraction the
widths are 2, 4, 8.  Width drives every downstream cost, so CFE keeps
the factored representation viable over long squaring chains.

Both arms are numerically identical — only the block bookkeeping
differs:

* CFE:    ``dP_2i = [U | P U + U (V'U)] [P'V | V]'``        (width 2w)
* no-CFE: ``dP_2i = [U | P U | U (V'U)] [P'V | V | V]'``    (width 3w)
"""

import numpy as np
import pytest

from conftest import make_matrix, row_update
from repro.bench import time_refresh_trimmed
from repro.iterative import Model

N = 256
K = 16


class _SquaringChain:
    """Shared power-view plumbing for the two propagation arms."""

    def __init__(self, a: np.ndarray, k: int):
        self.k = k
        self.schedule = Model.exponential().schedule(k)
        self.powers = {1: np.array(a, dtype=np.float64)}
        for i in self.schedule[1:]:
            half = self.powers[i // 2]
            self.powers[i] = half @ half
        self.last_widths: dict[int, int] = {}

    def refresh(self, u: np.ndarray, v: np.ndarray) -> None:
        factors = {1: (u.reshape(-1, 1), v.reshape(-1, 1))}
        self.last_widths = {1: 1}
        for i in self.schedule[1:]:
            big_u, big_v = factors[i // 2]
            factors[i] = self._propagate(self.powers[i // 2], big_u, big_v)
            self.last_widths[i] = factors[i][0].shape[1]
        for i in self.schedule:
            big_u, big_v = factors[i]
            self.powers[i] += big_u @ big_v.T

    def _propagate(self, p, big_u, big_v):
        raise NotImplementedError

    def result(self) -> np.ndarray:
        return self.powers[self.k]


class WithCFE(_SquaringChain):
    """Width 2w per level — the paper's Section 4.3 construction."""

    def _propagate(self, p, big_u, big_v):
        left = np.hstack([big_u, p @ big_u + big_u @ (big_v.T @ big_u)])
        right = np.hstack([p.T @ big_v, big_v])
        return left, right


class WithoutCFE(_SquaringChain):
    """Width 3w per level — one block per monomial, no sharing."""

    def _propagate(self, p, big_u, big_v):
        left = np.hstack([big_u, p @ big_u, big_u @ (big_v.T @ big_u)])
        right = np.hstack([p.T @ big_v, big_v, big_v])
        return left, right


@pytest.mark.parametrize("arm", ["CFE", "NO-CFE"])
def test_cfe_refresh(benchmark, arm):
    cls = WithCFE if arm == "CFE" else WithoutCFE
    maintainer = cls(make_matrix(N), K)
    state = {"seed": 0}

    def call():
        state["seed"] += 1
        u, v = row_update(N, state["seed"])
        maintainer.refresh(u, v)

    benchmark.pedantic(call, rounds=3, iterations=1, warmup_rounds=1)


def test_report_ablation_cfe(benchmark, capsys, bench_record):
    # Widths match Section 4.3: CFE doubles per level, no-CFE triples —
    # and both arms equal dense reference values.
    a = make_matrix(64)
    cfe = WithCFE(a, 8)
    naive = WithoutCFE(a, 8)
    dense = a.copy()
    for seed in range(3):
        u, v = row_update(64, seed)
        cfe.refresh(u, v)
        naive.refresh(u, v)
        dense += u @ v.T
    assert cfe.last_widths == {1: 1, 2: 2, 4: 4, 8: 8}
    assert naive.last_widths == {1: 1, 2: 3, 4: 9, 8: 27}
    expected = np.linalg.matrix_power(dense, 8)
    np.testing.assert_allclose(cfe.result(), expected, atol=1e-8)
    np.testing.assert_allclose(naive.result(), expected, atol=1e-8)

    updates = [row_update(N, seed) for seed in range(12)]
    times = {}
    for arm, cls in (("CFE", WithCFE), ("NO-CFE", WithoutCFE)):
        times[arm] = time_refresh_trimmed(cls(make_matrix(N), K),
                                          list(updates))

    with capsys.disabled():
        print(f"\n== Ablation: common-factor extraction (A^{K}, n={N}) ==")
        print(f"  widths with CFE:    2, 4, 8, 16")
        print(f"  widths without CFE: 3, 9, 27, 81")
        for arm, seconds in times.items():
            print(f"  {arm:<7}: {seconds * 1e3:8.2f} ms/refresh")
        print(f"  CFE speedup: {times['NO-CFE'] / times['CFE']:.1f}x")
    bench_record({"seconds": times,
                  "speedup": times["NO-CFE"] / times["CFE"]})

    # Widths 81 vs 16 at the last level: the no-CFE arm must be
    # substantially slower.
    assert times["CFE"] < times["NO-CFE"]

    maintainer = WithCFE(make_matrix(N), K)
    state = {"seed": 100}

    def call():
        state["seed"] += 1
        u, v = row_update(N, state["seed"])
        maintainer.refresh(u, v)

    benchmark.pedantic(call, rounds=3, iterations=1, warmup_rounds=1)
