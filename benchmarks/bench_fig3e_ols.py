"""Fig. 3e — Ordinary least squares (X'X)^-1 X'Y under row updates.

Paper (Octave, X = (n x n), Y = (n x 1)): INCR beats REEVAL by 3.6x at
n = 4K growing to 11.5x at n = 20K — re-evaluation is dominated by the
O(n^gamma) re-inversion while the Sherman–Morrison path stays O(n^2).
Reproduced with square X at n in {128, 256, 512}.
"""

import pytest

from conftest import row_update
from repro.analytics import IncrementalOLS, ReevalOLS
from repro.bench import time_refresh_trimmed
from repro.workloads import well_conditioned_design

import numpy as np

SIZES = [128, 256, 512]
PAPER = {4000: 3.6, 8000: 5.2, 10000: 6.3, 16000: 10.6, 20000: 11.5}


def _model(strategy: str, n: int):
    rng = np.random.default_rng(17)
    x = well_conditioned_design(rng, n, n, ridge=2.0)
    y = rng.standard_normal((n, 1))
    if strategy == "REEVAL":
        return ReevalOLS(x, y)
    return IncrementalOLS(x, y)


def _updates(n, count, scale=0.01):
    return [row_update(n, seed, scale) for seed in range(count)]


@pytest.mark.parametrize("n", SIZES)
@pytest.mark.parametrize("strategy", ["REEVAL", "INCR"])
def test_ols_refresh(benchmark, strategy, n):
    maintainer = _model(strategy, n)
    state = {"seed": 100}

    def call():
        state["seed"] += 1
        u, v = row_update(n, state["seed"], 0.01)
        maintainer.refresh(u, v)

    benchmark.pedantic(call, rounds=3, iterations=1, warmup_rounds=1)


def test_report_fig3e(benchmark, capsys, bench_record):
    speedups = {}
    for n in SIZES:
        times = {}
        for strategy in ("REEVAL", "INCR"):
            maintainer = _model(strategy, n)
            times[strategy] = time_refresh_trimmed(maintainer, _updates(n, 12))
        speedups[n] = times["REEVAL"] / times["INCR"]

    maintainer = _model("INCR", SIZES[-1])
    state = {"seed": 200}

    def call():
        state["seed"] += 1
        u, v = row_update(SIZES[-1], state["seed"], 0.01)
        maintainer.refresh(u, v)

    benchmark.pedantic(call, rounds=3, iterations=1, warmup_rounds=1)

    with capsys.disabled():
        print("\n== Fig 3e: OLS speedup vs n "
              "(paper: 3.6x @4K .. 11.5x @20K) ==")
        for n in SIZES:
            print(f"  n={n:>5}: INCR is {speedups[n]:5.1f}x faster than REEVAL")
    bench_record({"speedups": speedups})

    # Shape: INCR wins and the gap grows with n (asymptotics differ).
    assert speedups[SIZES[-1]] > speedups[SIZES[0]]
    assert speedups[SIZES[-1]] > 3.0
