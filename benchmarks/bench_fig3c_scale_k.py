"""Fig. 3c — Matrix powers scalability in the iteration count k.

Paper (Octave, n = 10K): the INCR-EXP advantage is roughly flat in k
(13.9x at k = 4 up to 17.1x at k = 128) until the stacked delta factors
``(n x k)`` become comparable to the matrix itself (k = 256 dips to
15.5x; Spark, communication-bound, decays earlier).  Reproduced at
n = 384 with k in {4, 16, 64, 128}: INCR must win clearly at small k
and lose ground as k approaches n (the k ~ n erosion is the paper's
own explanation).
"""

import pytest

from conftest import make_matrix, refresh_timer, row_update
from repro.bench import time_refresh
from repro.iterative import Model, make_powers

N = 384
KS = [4, 16, 64, 128]
PAPER = "Octave n=10K: 13.9x (k=4) .. 17.1x (k=128), 15.5x at k=256"


@pytest.mark.parametrize("k", KS)
@pytest.mark.parametrize("strategy", ["REEVAL", "INCR"])
def test_powers_scale_k(benchmark, strategy, k):
    maintainer = make_powers(strategy, make_matrix(N), k, Model.exponential())
    benchmark.pedantic(refresh_timer(maintainer, N), rounds=3, iterations=1,
                       warmup_rounds=1)


def test_report_fig3c(benchmark, capsys, bench_record):
    speedups = {}
    for k in KS:
        times = {}
        for strategy in ("REEVAL", "INCR"):
            maintainer = make_powers(strategy, make_matrix(N), k,
                                     Model.exponential())
            updates = [row_update(N, seed) for seed in range(5)]
            times[strategy] = time_refresh(maintainer, updates)
        speedups[k] = times["REEVAL"] / times["INCR"]

    maintainer = make_powers("INCR", make_matrix(N), 16, Model.exponential())
    benchmark.pedantic(refresh_timer(maintainer, N), rounds=3, iterations=1,
                       warmup_rounds=1)

    with capsys.disabled():
        print(f"\n== Fig 3c: A^k speedup vs k at n={N} (paper: {PAPER}) ==")
        for k in KS:
            print(f"  k={k:>4}: INCR-EXP is {speedups[k]:5.1f}x faster")
    bench_record({"speedups": speedups}, n=N, paper=PAPER)

    # Shape: clear wins at k << n; eroding advantage as k -> n.
    assert speedups[4] > 2.0
    assert speedups[16] > 2.0
    assert speedups[128] < speedups[4]
