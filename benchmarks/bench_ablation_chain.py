"""Ablation — cost-based product-chain ordering (Section 5.1).

"The optimum evaluation order for this expression depends on the size
of X and Y."  This ablation evaluates the same delta-style expression
``A B v`` (square views times a vector) under the naive left-to-right
association vs the chain-DP order from :mod:`repro.compiler.chain`:
left-to-right runs an ``O(n^3)`` view-by-view product; the optimized
order is two ``O(n^2)`` matrix–vector passes.
"""

import numpy as np
import pytest

from conftest import make_matrix
from repro.compiler.chain import chain_cost, optimize_chains
from repro.expr import MatMul, MatrixSymbol
from repro.runtime import evaluate

N = 512


def _expression(n: int):
    a = MatrixSymbol("A", n, n)
    b = MatrixSymbol("B", n, n)
    v = MatrixSymbol("v", n, 1)
    return MatMul([MatMul([a, b]), v])  # left-to-right association


def _env(n: int):
    return {
        "A": make_matrix(n, seed=11),
        "B": make_matrix(n, seed=12),
        "v": np.random.default_rng(13).standard_normal((n, 1)),
    }


@pytest.mark.parametrize("arm", ["LEFT-TO-RIGHT", "CHAIN-DP"])
def test_chain_order_evaluation(benchmark, arm):
    expr = _expression(N)
    if arm == "CHAIN-DP":
        expr = optimize_chains(expr, {})
    env = _env(N)
    benchmark.pedantic(lambda: evaluate(expr, env), rounds=3, iterations=1,
                       warmup_rounds=1)


def test_report_ablation_chain(benchmark, capsys, bench_record):
    import time

    # Both associations agree numerically.
    small_expr = _expression(128)
    small_env = _env(128)
    np.testing.assert_allclose(
        evaluate(optimize_chains(small_expr, {}), small_env),
        evaluate(small_expr, small_env),
        atol=1e-8,
    )

    expr = _expression(N)
    optimized = optimize_chains(expr, {})
    env = _env(N)

    def timed(target, repeats=7):
        samples = []
        for _ in range(repeats):
            start = time.perf_counter()
            evaluate(target, env)
            samples.append(time.perf_counter() - start)
        samples.sort()
        return sum(samples[1:-1]) / (repeats - 2)

    naive_t = timed(expr)
    opt_t = timed(optimized)
    naive_flops = chain_cost(expr, {})
    opt_flops = chain_cost(optimized, {})

    with capsys.disabled():
        print(f"\n== Ablation: chain ordering (A B v, n={N}) ==")
        print(f"  left-to-right: {naive_t * 1e3:8.2f} ms "
              f"({naive_flops:,} flops)")
        print(f"  chain-DP:      {opt_t * 1e3:8.2f} ms "
              f"({opt_flops:,} flops)")
        print(f"  predicted flop ratio: {naive_flops / opt_flops:.0f}x, "
              f"measured time ratio: {naive_t / opt_t:.0f}x")
    bench_record({"naive_seconds": naive_t, "optimized_seconds": opt_t,
                  "naive_flops": naive_flops, "optimized_flops": opt_flops})

    # Predicted: 2n^3 + 2n^2 vs 4n^2 -> ratio ~ n/2.
    assert opt_flops * 10 < naive_flops
    assert opt_t < naive_t

    benchmark.pedantic(lambda: evaluate(optimized, env), rounds=3,
                       iterations=1, warmup_rounds=1)
