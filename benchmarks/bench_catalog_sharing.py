"""Shared-catalog vs independent-session maintenance across tenant counts.

The multi-view catalog's pitch (ISSUE 10): N tenants whose programs
overlap should cost as much as the *distinct* subexpressions they
define, not N times a private session.  Each cell streams the same
rank-1 update workload through:

* **shared_nN** — N fully-overlapping tenants (the same two-statement
  chain ``B := A * A; C := B * B``) registered on one
  :class:`~repro.catalog.ViewCatalog`: one inner session maintains the
  two distinct nodes whatever N is;
* **independent_nN** — the strawman: N private
  :class:`~repro.runtime.session.IVMSession`\\ s each absorbing every
  update;
* **mixed_nN** — tenants sharing the chain prefix but each adding one
  private statement (a distinct scalar weighting of the chain tip):
  distinct nodes grow as ``2 + N``, and shared work must track *that*,
  not N x 3.

The acceptance metrics are counted FLOPs (deterministic and
machine-independent, so the CI trend gate is tight): ``flatness`` =
shared FLOPs at N=8 over N=1 (floor: near-flat, <= 1.3x) and
``speedup_at_8`` = independent FLOPs over shared FLOPs at N=8 (floor:
>= 3x, the ISSUE criterion).  Wall seconds ride along for reporting.

Run as a script (or ``--smoke`` in CI)::

    PYTHONPATH=src python benchmarks/bench_catalog_sharing.py
    PYTHONPATH=src python benchmarks/bench_catalog_sharing.py --smoke --json out.json

``check_catalog_trend.py`` compares the emitted JSON against the
committed baseline and fails CI on regression.
"""

from __future__ import annotations

import argparse
import time

import numpy as np

from conftest import add_json_flag, write_bench_json

CHAIN_SOURCE = "input A(n, n); B := A * A; C := B * B; output C;"

#: Tenant-count sweep (the ISSUE names N=8 as the acceptance point).
TENANT_SWEEP = (1, 2, 4, 8)
TENANT_SWEEP_SMOKE = (1, 8)

#: Acceptance: shared FLOPs at the top tenant count over N=1 —
#: "near-flat in N for fully-overlapping views".  The only per-tenant
#: work is registration bookkeeping, which is outside the maintenance
#: window, so the measured ratio is exactly 1.0; the margin covers
#: counter jitter if kernels ever become adaptive.
MAX_FLATNESS = 1.3

#: Acceptance: independent FLOPs over shared FLOPs at the top tenant
#: count (the ISSUE's ">= 3x over independent at N=8" criterion; the
#: fully-overlapping chain actually yields ~N x).
MIN_SPEEDUP_AT_TOP = 3.0

#: Mixed sweep: shared work must track distinct-node growth, not tenant
#: count.  FLOPs(N)/FLOPs(1) may exceed nodes(N)/nodes(1) only by this
#: factor.  Private nodes are scalar weightings of the shared tip, so
#: they cost *less* per update than the chain nodes and the honest
#: ratio sits below 1; re-maintaining the chain per tenant would put it
#: near N / nodes and breach the ceiling.
MAX_MIXED_TRACKING = 1.5


def _stream(rng, n: int, count: int, scale: float = 0.01):
    updates = []
    for _ in range(count):
        u = np.zeros((n, 1))
        u[rng.integers(n), 0] = 1.0
        updates.append((u, scale * rng.standard_normal((n, 1))))
    return updates


def _mixed_program(index: int):
    """The shared chain plus one tenant-private statement.

    Privates are distinct scalar weightings of the shared chain tip so
    every tenant adds exactly one node of identical maintenance cost —
    that keeps FLOPs-per-node uniform and the tracking metric honest.
    """
    from repro.frontend import parse_program

    coeff = float(index + 2)
    return parse_program(
        f"input A(n, n); B := A * A; C := B * B; "
        f"P := {coeff:g} * C + A; output P;")


def bench_shared(program_for, tenants: int, inputs, n: int, stream) -> dict:
    """One catalog, ``tenants`` registrants, the stream applied once."""
    from repro.catalog import ViewCatalog
    from repro.cost.counters import Counter
    from repro.runtime.updates import FactoredUpdate

    counter = Counter()
    catalog = ViewCatalog(counter=counter)
    for index in range(tenants):
        catalog.open(program_for(index),
                     {"A": inputs["A"].copy()} if index == 0 else None,
                     dims={"n": n})
    counter.reset()
    start = time.perf_counter()
    for u, v in stream:
        catalog.apply_update(FactoredUpdate("A", u, v))
    catalog.flush()
    seconds = time.perf_counter() - start
    return {
        "tenants": tenants,
        "seconds": seconds,
        "flops": counter.total_flops,
        "distinct_nodes": catalog.distinct_nodes,
        "node_refreshes": catalog.stats.node_refreshes,
        "shared_hits": catalog.stats.shared_hits,
    }


def bench_independent(program_for, tenants: int, inputs, n: int,
                      stream) -> dict:
    """N private sessions, each absorbing every update."""
    from repro.cost.counters import Counter
    from repro.runtime.session import IVMSession
    from repro.runtime.updates import FactoredUpdate

    counter = Counter()
    sessions = [
        IVMSession(program_for(index), {"A": inputs["A"].copy()},
                   dims={"n": n}, counter=counter)
        for index in range(tenants)
    ]
    counter.reset()
    start = time.perf_counter()
    for u, v in stream:
        for session in sessions:
            session.apply_update(FactoredUpdate("A", u.copy(), v.copy()))
    for session in sessions:
        session.flush()
    seconds = time.perf_counter() - start
    return {
        "tenants": tenants,
        "seconds": seconds,
        "flops": counter.total_flops,
    }


def run_all(smoke: bool = False) -> dict:
    from repro.frontend import parse_program

    rng = np.random.default_rng(20140622)
    n = 48 if smoke else 96
    count = 12 if smoke else 40
    sweep = TENANT_SWEEP_SMOKE if smoke else TENANT_SWEEP
    top = max(sweep)
    chain = parse_program(CHAIN_SOURCE)
    inputs = {"A": 0.2 * rng.standard_normal((n, n)) / np.sqrt(n)}
    stream = _stream(rng, n, count)

    results: dict = {"n": n, "updates": count}
    for tenants in sweep:
        results[f"shared_n{tenants}"] = bench_shared(
            lambda _: chain, tenants, inputs, n, stream)
        results[f"independent_n{tenants}"] = bench_independent(
            lambda _: chain, tenants, inputs, n, stream)
        results[f"mixed_n{tenants}"] = bench_shared(
            _mixed_program, tenants, inputs, n, stream)

    shared_low = results[f"shared_n{min(sweep)}"]
    shared_top = results[f"shared_n{top}"]
    mixed_low = results[f"mixed_n{min(sweep)}"]
    mixed_top = results[f"mixed_n{top}"]
    results["derived"] = {
        "top_tenants": top,
        "flatness": shared_top["flops"] / max(shared_low["flops"], 1),
        "speedup_at_top": (results[f"independent_n{top}"]["flops"]
                           / max(shared_top["flops"], 1)),
        "seconds_speedup_at_top": (
            results[f"independent_n{top}"]["seconds"]
            / max(shared_top["seconds"], 1e-9)),
        "mixed_flops_ratio": mixed_top["flops"] / max(mixed_low["flops"], 1),
        "mixed_nodes_ratio": (mixed_top["distinct_nodes"]
                              / max(mixed_low["distinct_nodes"], 1)),
    }
    return results


def report(results: dict) -> None:
    print(f"n={results['n']}  {results['updates']} rank-1 updates per cell")
    for key, cell in results.items():
        if not isinstance(cell, dict) or "flops" not in cell:
            continue
        nodes = (f"  {cell['distinct_nodes']} nodes"
                 if "distinct_nodes" in cell else "")
        print(f"{key:<16} {cell['tenants']} tenants  "
              f"{cell['flops']:>14,} FLOPs  "
              f"{cell['seconds'] * 1e3:8.2f} ms{nodes}")
    derived = results["derived"]
    print(f"shared scaling N=1 -> N={derived['top_tenants']}: "
          f"{derived['flatness']:.2f}x FLOPs (flat = 1.0); "
          f"shared vs independent at N={derived['top_tenants']}: "
          f"{derived['speedup_at_top']:.1f}x FLOPs, "
          f"{derived['seconds_speedup_at_top']:.1f}x wall")
    print(f"mixed families: {derived['mixed_nodes_ratio']:.1f}x nodes -> "
          f"{derived['mixed_flops_ratio']:.1f}x FLOPs "
          f"(work tracks distinct subexpressions)")


def check(results: dict) -> list[str]:
    """Acceptance violations (empty = pass)."""
    problems = []
    derived = results["derived"]
    if derived["flatness"] > MAX_FLATNESS:
        problems.append(
            f"shared FLOPs grew {derived['flatness']:.2f}x from N=1 to "
            f"N={derived['top_tenants']} fully-overlapping tenants "
            f"(near-flat ceiling {MAX_FLATNESS}x)"
        )
    if derived["speedup_at_top"] < MIN_SPEEDUP_AT_TOP:
        problems.append(
            f"shared maintenance only {derived['speedup_at_top']:.1f}x "
            f"cheaper than independent at N={derived['top_tenants']} "
            f"(floor {MIN_SPEEDUP_AT_TOP}x)"
        )
    tracking = (derived["mixed_flops_ratio"]
                / max(derived["mixed_nodes_ratio"], 1e-9))
    if tracking > MAX_MIXED_TRACKING:
        problems.append(
            f"mixed-family shared FLOPs outgrew distinct-node growth "
            f"{tracking:.2f}x (ceiling {MAX_MIXED_TRACKING}x): work is "
            f"scaling with tenants, not subexpressions"
        )
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="small fast run for CI harness-rot checks")
    add_json_flag(parser)
    args = parser.parse_args(argv)
    results = run_all(smoke=args.smoke)
    report(results)
    if args.json:
        path = write_bench_json(args.json, "catalog_sharing", results,
                                smoke=args.smoke)
        print(f"\nresults -> {path}")
    problems = check(results)
    for problem in problems:
        print(f"\nWARNING: {problem}")
    if not problems:
        print("\nmulti-view catalog: shared maintenance is flat in tenant "
              "count and tracks distinct subexpressions")
    return 1 if problems else 0


def test_report_catalog_sharing(bench_record):
    """Smoke-size run: flatness + sharing-speedup acceptance."""
    results = run_all(smoke=True)
    report(results)
    bench_record(results, smoke=True)
    problems = check(results)
    assert not problems, "; ".join(problems)


if __name__ == "__main__":
    raise SystemExit(main())
