"""Fig. 3a — Matrix powers A^16: REEVAL vs INCR across iterative models.

Paper (Octave, n = 10K): INCR beats REEVAL by 18.1x / 18.0x / 16.9x /
16.4x / 17.0x for LIN / SKIP-2 / SKIP-4 / SKIP-8 / EXP; INCR-EXP is the
fastest incremental variant.  Reproduced at n = 512 — absolute times
differ (BLAS on one laptop core vs 12-core Xeon), the ordering and
who-wins must hold.
"""

import pytest

from conftest import make_matrix, refresh_timer, row_update
from repro.bench import Series, time_refresh
from repro.iterative import make_powers, parse_model

N = 512
K = 16
MODELS = ["LIN", "SKIP-2", "SKIP-4", "SKIP-8", "EXP"]
PAPER_SPEEDUPS = {"LIN": 18.1, "SKIP-2": 18.0, "SKIP-4": 16.9,
                  "SKIP-8": 16.4, "EXP": 17.0}


@pytest.mark.parametrize("model_label", MODELS)
@pytest.mark.parametrize("strategy", ["REEVAL", "INCR"])
def test_powers_refresh(benchmark, strategy, model_label):
    maintainer = make_powers(strategy, make_matrix(N), K,
                             parse_model(model_label))
    benchmark.pedantic(refresh_timer(maintainer, N), rounds=3, iterations=1,
                       warmup_rounds=1)


def test_report_fig3a(benchmark, capsys, bench_record):
    """Print the Fig. 3a series and check the paper's shape."""
    speedups = {}
    incr_times = {}
    for label in MODELS:
        series = Series(f"A^{K}, n={N}, {label}")
        for strategy in ("REEVAL", "INCR"):
            maintainer = make_powers(strategy, make_matrix(N), K,
                                     parse_model(label))
            updates = [row_update(N, seed) for seed in range(4)]
            series.add(strategy, time_refresh(maintainer, updates))
        speedups[label] = series.speedup("REEVAL", "INCR")
        incr_times[label] = series.value("INCR")

    # Register the headline configuration with pytest-benchmark as well.
    maintainer = make_powers("INCR", make_matrix(N), K, parse_model("EXP"))
    benchmark.pedantic(refresh_timer(maintainer, N), rounds=3, iterations=1,
                       warmup_rounds=1)

    with capsys.disabled():
        print("\n== Fig 3a: avg time / view refresh, A^16, n=512 ==")
        print(f"{'model':>8} {'INCR time':>12} {'speedup':>9} {'paper(10K)':>11}")
        for label in MODELS:
            print(f"{label:>8} {incr_times[label] * 1e3:>10.2f}ms "
                  f"{speedups[label]:>8.1f}x {PAPER_SPEEDUPS[label]:>10.1f}x")
    bench_record({"speedups": speedups, "incr_seconds": incr_times},
                 n=N, k=K, paper=PAPER_SPEEDUPS)

    # Shape assertions: INCR wins everywhere; LIN is the costliest
    # incremental model and EXP clearly beats SKIP-2 (Table 2 orders
    # them n^2 k^2 > n^2 k^2/2 > ... > n^2 k; SKIP-8 coincides with EXP
    # at k = 16, so only the robust inequalities are asserted).
    assert all(s > 1.0 for s in speedups.values()), speedups
    assert incr_times["LIN"] == max(incr_times.values()), incr_times
    assert incr_times["EXP"] < incr_times["SKIP-2"], incr_times
