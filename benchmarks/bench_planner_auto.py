"""Does ``plan="auto"`` match the best hand-picked configuration?

The cost-driven planner (``repro.planner``) chooses strategy x model x
backend x mode from input statistics.  This benchmark measures it
against an exhaustive manual grid on three regimes the Section 5
analysis (and the PR 1 backend work) says want *different* answers:

* **dense-small** — an ``A^4`` program session at small dense ``n``:
  incremental triggers on the dense backend should win;
* **sparse-pagerank** — the general form at ``p = 1`` over a ~1%-dense
  graph operator: the sparse backend should win by ~density, with the
  LIN-model strategies (REEVAL/HYBRID) ahead of factored INCR;
* **hybrid-stream** — a long rank-1 update stream against a dense
  general form with ``p = 16``: amortized setup should favor the
  maintained-view families (HYBRID/INCR with SKIP models) over plain
  re-evaluation.

For each scenario every manual configuration is timed on the same
update stream, then the planner's choice is timed identically (when the
chosen configuration is one of the manual cells — the common case —
its manual timing is reused, so the ratio isn't polluted by measuring
one configuration twice); the headline is ``auto / best-manual``
(1.0 = the planner found the best).
The planner is given the *workload spec* (a long expected stream,
``refresh_count = 200``); timing then samples a prefix of that stream,
so smoke runs measure fewer updates without changing the regime being
planned for.
Run as a script for the full sizes (or ``--smoke`` in CI)::

    PYTHONPATH=src python benchmarks/bench_planner_auto.py
    PYTHONPATH=src python benchmarks/bench_planner_auto.py --smoke

The pytest entry point runs reduced sizes and asserts the ratio stays
within noise of 1.0 on every scenario, so planner rot shows up in CI.
"""

from __future__ import annotations

import argparse
import time

import numpy as np

from conftest import add_json_flag, write_bench_json

#: Acceptance threshold: auto within 10% of the best manual run.
TOLERANCE = 1.10

#: Smoke sizes sample very few updates, so scheduler jitter can move
#: individual cells by tens of percent; the full-size run holds the
#: 10% line, smoke only guards against gross planning rot.
SMOKE_TOLERANCE = 1.5

#: Expected stream length given to the planner (the workload spec);
#: timing may sample fewer updates than this without changing the plan.
EXPECTED_REFRESHES = 200


def _time_per_update(drive, updates) -> float:
    start = time.perf_counter()
    for update in updates:
        drive(update)
    return (time.perf_counter() - start) / len(updates)


def _sparse_operator(rng: np.random.Generator, n: int,
                     density: float) -> np.ndarray:
    from repro.workloads import spectral_scale

    a = (rng.random((n, n)) < density) * rng.standard_normal((n, n))
    # Scale toward spectral radius ~0.9 so k iterations stay tame.
    return spectral_scale(rng, a, radius=0.9, iterations=15)


def _manual_key(plan) -> str:
    """The manual-grid label a plan corresponds to (maintainer scenarios).

    Plan labels are ``STRATEGY-MODEL@backend/mode``; the manual grid
    has no mode axis, so drop it.
    """
    return plan.label.rsplit("/", 1)[0]


def _report(title: str, results: dict[str, float], auto_label: str,
            auto_seconds: float) -> float:
    best_label = min(results, key=results.get)
    best = results[best_label]
    ratio = auto_seconds / best
    print(f"\n{title}")
    for label in sorted(results, key=results.get):
        marker = "  <- best manual" if label == best_label else ""
        print(f"  {label:<28} {results[label] * 1e3:9.3f} ms/update{marker}")
    print(f"  auto plan: {auto_label}")
    print(f"  auto: {auto_seconds * 1e3:.3f} ms/update "
          f"-> {ratio:.2f}x the best manual")
    return ratio


# ---------------------------------------------------------------------------
# Scenario 1: dense small-n program session
# ---------------------------------------------------------------------------

def scenario_dense_session(n: int = 96, updates: int = 60,
                           seed: int = 14036968):
    from repro.frontend import parse_program
    from repro.runtime import FactoredUpdate, open_session
    from repro.runtime.session import IVMSession, ReevalSession

    program = parse_program("input A(n, n); B := A * A; C := B * B; output C;")
    rng = np.random.default_rng(seed)
    a0 = rng.standard_normal((n, n)) / (2.0 * np.sqrt(n))
    stream = [
        FactoredUpdate("A", col, 0.01 * rng.standard_normal((n, 1)))
        for col in (np.eye(n)[:, [int(rng.integers(n))]] for _ in range(updates))
    ]

    results: dict[str, float] = {}
    for backend in ("dense", "sparse"):
        for mode in ("interpret", "codegen"):
            session = IVMSession(program, {"A": a0}, dims={"n": n},
                                 mode=mode, backend=backend)
            results[f"INCR@{backend}/{mode}"] = _time_per_update(
                session.apply_update, stream)
        session = ReevalSession(program, {"A": a0}, dims={"n": n},
                                backend=backend)
        results[f"REEVAL@{backend}"] = _time_per_update(
            session.apply_update, stream)

    auto = open_session(program, {"A": a0}, dims={"n": n},
                        refresh_count=EXPECTED_REFRESHES)
    plan = auto.plan
    key = (f"{plan.strategy}@{plan.backend}/{plan.mode}"
           if plan.strategy == "INCR" else f"REEVAL@{plan.backend}")
    auto_seconds = results.get(key)
    if auto_seconds is None:
        auto_seconds = _time_per_update(auto.apply_update, stream)
    return results, plan.label, auto_seconds, plan


# ---------------------------------------------------------------------------
# Scenario 2: sparse pagerank-style general form (p = 1)
# ---------------------------------------------------------------------------

def scenario_sparse_pagerank(n: int = 1000, k: int = 16, updates: int = 12,
                             density: float = 0.01, seed: int = 14036968):
    from repro.iterative import make_general, parse_model
    from repro.planner import WorkloadStats, plan_general

    rng = np.random.default_rng(seed)
    a = _sparse_operator(rng, n, density)
    b = np.full((n, 1), 0.15 / n)
    t0 = np.full((n, 1), 1.0 / n)
    stream = []
    for _ in range(updates):
        source = int(rng.integers(n))
        u = np.zeros((n, 1))
        u[rng.choice(n, size=max(int(n * density), 1), replace=False), 0] = (
            0.01 * rng.standard_normal(max(int(n * density), 1))
        )
        v = np.zeros((n, 1))
        v[source, 0] = 1.0
        stream.append((u, v))

    grid = [("REEVAL", "LIN"), ("HYBRID", "LIN"), ("INCR", "LIN"),
            ("HYBRID", "SKIP-4"), ("INCR", "EXP")]
    results: dict[str, float] = {}
    for backend in ("dense", "sparse"):
        for strategy, model in grid:
            maintainer = make_general(strategy, a, b, t0, k,
                                      parse_model(model), backend=backend)
            results[f"{strategy}-{model}@{backend}"] = _time_per_update(
                lambda uv, m=maintainer: m.refresh(*uv), stream)

    stats = WorkloadStats.from_matrix(a, p=1, k=k,
                                      refresh_count=EXPECTED_REFRESHES)
    plan = plan_general(stats)
    auto_seconds = results.get(_manual_key(plan))
    if auto_seconds is None:
        maintainer = make_general(plan, a, b, t0, k)
        auto_seconds = _time_per_update(
            lambda uv, m=maintainer: m.refresh(*uv), stream)
    return results, plan.label, auto_seconds, plan


# ---------------------------------------------------------------------------
# Scenario 3: high-update-rate dense stream (maintained views win, p = 16)
# ---------------------------------------------------------------------------

def scenario_hybrid_stream(n: int = 1000, p: int = 16, k: int = 16,
                           updates: int = 20, seed: int = 14036968):
    from repro.iterative import make_general, parse_model
    from repro.planner import WorkloadStats, plan_general

    rng = np.random.default_rng(seed)
    a = _sparse_operator(rng, n, 1.0)
    b = 0.01 * rng.standard_normal((n, p))
    t0 = rng.standard_normal((n, p))
    stream = []
    for _ in range(updates):
        u = np.zeros((n, 1))
        u[int(rng.integers(n)), 0] = 1.0
        stream.append((u, 0.01 * rng.standard_normal((n, 1))))

    grid = [("REEVAL", "LIN"),
            ("INCR", "LIN"), ("INCR", "EXP"), ("INCR", "SKIP-4"),
            ("HYBRID", "LIN"), ("HYBRID", "EXP"), ("HYBRID", "SKIP-4")]
    results: dict[str, float] = {}
    for strategy, model in grid:
        maintainer = make_general(strategy, a, b, t0, k, parse_model(model))
        results[f"{strategy}-{model}@dense"] = _time_per_update(
            lambda uv, m=maintainer: m.refresh(*uv), stream)

    stats = WorkloadStats.from_matrix(a, p=p, k=k,
                                      refresh_count=EXPECTED_REFRESHES)
    plan = plan_general(stats)
    auto_seconds = results.get(_manual_key(plan))
    if auto_seconds is None:
        maintainer = make_general(plan, a, b, t0, k)
        auto_seconds = _time_per_update(
            lambda uv, m=maintainer: m.refresh(*uv), stream)
    return results, plan.label, auto_seconds, plan


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------

def run_all(smoke: bool = False) -> dict[str, dict]:
    scenarios = {}
    results, label, secs, _ = scenario_dense_session(
        n=64 if smoke else 96, updates=20 if smoke else 60)
    ratio = _report("dense-small (A^4 session)", results, label, secs)
    scenarios["dense-small"] = {"manual": results, "auto_plan": label,
                                "auto_seconds": secs, "ratio": ratio}
    results, label, secs, _ = scenario_sparse_pagerank(
        n=600 if smoke else 1000, updates=6 if smoke else 12)
    ratio = _report("sparse-pagerank (general, p=1, ~1% dense)",
                    results, label, secs)
    scenarios["sparse-pagerank"] = {"manual": results, "auto_plan": label,
                                    "auto_seconds": secs, "ratio": ratio}
    results, label, secs, _ = scenario_hybrid_stream(
        n=500 if smoke else 1000, updates=10 if smoke else 20)
    ratio = _report("hybrid-stream (general, p=16, dense, long stream)",
                    results, label, secs)
    scenarios["hybrid-stream"] = {"manual": results, "auto_plan": label,
                                  "auto_seconds": secs, "ratio": ratio}
    return scenarios


def _ratios(scenarios: dict[str, dict]) -> list[float]:
    return [s["ratio"] for s in scenarios.values()]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="small fast run for CI harness-rot checks")
    add_json_flag(parser)
    args = parser.parse_args(argv)
    scenarios = run_all(smoke=args.smoke)
    if args.json:
        write_bench_json(args.json, "planner_auto", scenarios,
                         smoke=args.smoke)
    worst = max(_ratios(scenarios))
    threshold = SMOKE_TOLERANCE if args.smoke else TOLERANCE
    print(f"\nworst auto/best-manual ratio: {worst:.2f}x "
          f"(threshold {threshold:.2f}x)")
    if worst > threshold:
        print("WARNING: auto plan fell outside the noise band")
        return 1
    print("auto-planned maintenance matches the best manual configuration")
    return 0


def test_report_planner_auto(bench_record):
    """Reduced-size run: the auto plan must stay near the manual best."""
    scenarios = run_all(smoke=True)
    bench_record(scenarios, smoke=True)
    ratios = _ratios(scenarios)
    # CI boxes are noisy; the full-size script holds the 1.10x line.
    assert max(ratios) < SMOKE_TOLERANCE, \
        f"auto plan too far from best: {ratios}"


if __name__ == "__main__":
    raise SystemExit(main())
