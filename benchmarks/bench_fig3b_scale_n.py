"""Fig. 3b — Matrix powers scalability in n (REEVAL-EXP vs INCR-EXP).

Paper: the speedup *grows* with the dimension — 6.2x at n = 4K up to
31.3x at n = 20K (Octave), 5.5x to 53x (Spark).  Reproduced over
n in {128, 256, 512, 768}: absolute factors are smaller at laptop
scale, but the growth with n (the asymptotic n^gamma vs n^2 gap) must
be monotone.
"""

import pytest

from conftest import make_matrix, refresh_timer, row_update
from repro.bench import time_refresh
from repro.iterative import Model, make_powers

K = 16
SIZES = [128, 256, 512, 768]
PAPER = {"note": "Octave n=4K..20K: 6.2x -> 31.3x; Spark n=10K..50K: 5.5x -> 53.3x"}


@pytest.mark.parametrize("n", SIZES)
@pytest.mark.parametrize("strategy", ["REEVAL", "INCR"])
def test_powers_scale_n(benchmark, strategy, n):
    maintainer = make_powers(strategy, make_matrix(n), K, Model.exponential())
    benchmark.pedantic(refresh_timer(maintainer, n), rounds=3, iterations=1,
                       warmup_rounds=1)


def test_report_fig3b(benchmark, capsys, bench_record):
    speedups = {}
    for n in SIZES:
        times = {}
        for strategy in ("REEVAL", "INCR"):
            maintainer = make_powers(strategy, make_matrix(n), K,
                                     Model.exponential())
            updates = [row_update(n, seed) for seed in range(5)]
            times[strategy] = time_refresh(maintainer, updates)
        speedups[n] = times["REEVAL"] / times["INCR"]

    maintainer = make_powers("INCR", make_matrix(SIZES[-1]), K,
                             Model.exponential())
    benchmark.pedantic(refresh_timer(maintainer, SIZES[-1]), rounds=3,
                       iterations=1, warmup_rounds=1)

    with capsys.disabled():
        print(f"\n== Fig 3b: A^16 speedup vs n ({PAPER['note']}) ==")
        for n in SIZES:
            print(f"  n={n:>5}: INCR-EXP is {speedups[n]:5.1f}x faster "
                  f"than REEVAL-EXP")
    bench_record({"speedups": speedups}, k=K, paper=PAPER["note"])

    # Shape: INCR wins from n=256 up, and the gap grows with n.
    assert speedups[SIZES[-1]] > speedups[SIZES[0]]
    assert speedups[SIZES[-1]] > speedups[SIZES[1]]
    assert speedups[SIZES[-1]] > 3.0
    assert speedups[512] > 1.5
