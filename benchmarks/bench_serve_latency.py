"""Snapshot serving vs flush-on-read under concurrent load (the PR-6 claim).

The serving layer's pitch: splitting one session into a writer thread
plus immutable epoch snapshots turns reads from "take the lock, flush
the batch, copy the view" into one dict lookup — so read tail latency
drops by orders of magnitude and adding readers does not collapse
writer throughput.  Each cell drives :func:`repro.runtime.run_load`
(write pressure thread + paced reader threads) against one server:

* **baseline_r8** — :class:`FlushOnReadServer`: one mutex, reads flush
  (what naively sharing a session between threads costs);
* **snap_rK_s32** — :class:`ViewServer`, ``K`` readers at staleness
  bound 32 (the reader-scaling sweep);
* **snap_r8_sS** — 8 readers at staleness bound ``S`` (the
  freshness-vs-overhead sweep: tighter bounds publish more epochs).

Derived metrics: ``speedup_p99`` (baseline read p99 / snapshot read
p99, same reader count — the headline, acceptance floor 5x) and
``writer_scaling_r8_vs_r1`` (writer throughput with 8 readers vs 1 —
acceptance floor 0.25, i.e. readers must not starve the writer).

Run as a script (or ``--smoke`` in CI)::

    PYTHONPATH=src python benchmarks/bench_serve_latency.py
    PYTHONPATH=src python benchmarks/bench_serve_latency.py --smoke --json out.json

``check_serve_trend.py`` compares the emitted JSON against the
committed baseline and fails CI on a >25% p99-speedup regression or a
staleness-bound violation.
"""

from __future__ import annotations

import argparse

import numpy as np

from conftest import add_json_flag, write_bench_json

A2_SOURCE = "input A(n, n); B := A * A; output B;"

#: Reader-count sweep at the default staleness bound.
READER_SWEEP = (1, 4, 8)
READER_SWEEP_SMOKE = (1, 8)

#: Staleness-bound sweep at the full reader count.
STALENESS_SWEEP = (1, 8, 64)
STALENESS_SWEEP_SMOKE = (4,)

#: The bound used by the headline cells.
DEFAULT_BOUND = 32

#: Script acceptance: snapshot reads must beat flush-on-read p99 by
#: this factor at 8 readers (the ISSUE's 5x criterion, with margin).
MIN_P99_SPEEDUP = 5.0

#: Script acceptance: writer throughput at 8 readers vs 1 reader.
MIN_WRITER_SCALING = 0.25


def _make_server(program, inputs, baseline: bool, **server_options):
    from repro.runtime import FlushOnReadServer, ViewServer, open_session

    session = open_session(
        program, {k: v.copy() for k, v in inputs.items()},
        plan="incr", backend="dense", mode="codegen",
    )
    if baseline:
        return FlushOnReadServer(session, views=("B",))
    return ViewServer(session, views=("B",), **server_options)


def _update_pool(rng, n: int, count: int = 512):
    from repro.runtime import FactoredUpdate

    pool = []
    for _ in range(count):
        u = np.zeros((n, 1))
        u[rng.integers(n), 0] = 1.0
        pool.append(FactoredUpdate("A", u,
                                   0.01 * rng.standard_normal((n, 1))))
    return pool


def bench_cell(program, inputs, pool, *, baseline: bool, readers: int,
               duration: float, bound: int | None = DEFAULT_BOUND,
               reader_rate: float = 300.0) -> dict:
    from repro.runtime import run_load

    if baseline:
        server = _make_server(program, inputs, True)
    else:
        server = _make_server(program, inputs, False, max_staleness=bound)
    try:
        return run_load(server, lambda i: pool[i % len(pool)],
                        read_names=("B",), duration=duration,
                        readers=readers, reader_rate=reader_rate)
    finally:
        server.close()


def run_all(smoke: bool = False) -> dict:
    from repro.frontend import parse_program

    rng = np.random.default_rng(20140622)
    n = 64 if smoke else 128
    duration = 0.3 if smoke else 1.5
    program = parse_program(A2_SOURCE)
    inputs = {"A": 0.2 * rng.standard_normal((n, n)) / np.sqrt(n)}
    pool = _update_pool(rng, n)

    readers_sweep = READER_SWEEP_SMOKE if smoke else READER_SWEEP
    staleness_sweep = STALENESS_SWEEP_SMOKE if smoke else STALENESS_SWEEP
    top_readers = max(readers_sweep)

    results: dict = {"n": n, "duration": duration}
    results[f"baseline_r{top_readers}"] = bench_cell(
        program, inputs, pool, baseline=True, readers=top_readers,
        duration=duration,
    )
    for readers in readers_sweep:
        results[f"snap_r{readers}_s{DEFAULT_BOUND}"] = bench_cell(
            program, inputs, pool, baseline=False, readers=readers,
            duration=duration, bound=DEFAULT_BOUND,
        )
    for bound in staleness_sweep:
        key = f"snap_r{top_readers}_s{bound}"
        if key not in results:
            results[key] = bench_cell(
                program, inputs, pool, baseline=False, readers=top_readers,
                duration=duration, bound=bound,
            )

    head = results[f"snap_r{top_readers}_s{DEFAULT_BOUND}"]
    base = results[f"baseline_r{top_readers}"]
    solo = results[f"snap_r1_s{DEFAULT_BOUND}"]
    results["derived"] = {
        "top_readers": top_readers,
        "speedup_p99": base["read_p99_ms"] / max(head["read_p99_ms"], 1e-9),
        "speedup_p50": base["read_p50_ms"] / max(head["read_p50_ms"], 1e-9),
        "writer_scaling_r8_vs_r1": (
            head["writer_updates_per_second"]
            / max(solo["writer_updates_per_second"], 1e-9)
        ),
    }
    return results


def report(results: dict) -> None:
    print(f"n={results['n']}  window={results['duration']}s per cell")
    for key, cell in results.items():
        if not isinstance(cell, dict) or "read_p99_ms" not in cell:
            continue
        bound = cell["staleness_bound"]
        bound_text = "flush" if bound == 0 else f"s<={bound}"
        print(f"{key:<16} {cell['readers']} readers  "
              f"p50 {cell['read_p50_ms']:8.3f} ms  "
              f"p99 {cell['read_p99_ms']:8.3f} ms  "
              f"writer {cell['writer_updates_per_second']:9.0f}/s  "
              f"staleness {cell['max_staleness_observed']:>3} ({bound_text})")
    derived = results["derived"]
    print(f"snapshot vs flush-on-read @ {derived['top_readers']} readers: "
          f"p99 {derived['speedup_p99']:.1f}x, p50 "
          f"{derived['speedup_p50']:.1f}x; writer keeps "
          f"{derived['writer_scaling_r8_vs_r1']:.0%} of its 1-reader "
          f"throughput")


def check(results: dict) -> list[str]:
    """Acceptance violations (empty = pass)."""
    problems = []
    derived = results["derived"]
    if derived["speedup_p99"] < MIN_P99_SPEEDUP:
        problems.append(
            f"snapshot read p99 only {derived['speedup_p99']:.1f}x better "
            f"than flush-on-read (floor {MIN_P99_SPEEDUP}x)"
        )
    if derived["writer_scaling_r8_vs_r1"] < MIN_WRITER_SCALING:
        problems.append(
            f"writer throughput collapsed to "
            f"{derived['writer_scaling_r8_vs_r1']:.0%} with "
            f"{derived['top_readers']} readers (floor "
            f"{MIN_WRITER_SCALING:.0%})"
        )
    for key, cell in results.items():
        if not isinstance(cell, dict) or "staleness_bound" not in cell:
            continue
        bound = cell["staleness_bound"]
        if bound and cell["max_staleness_observed"] > bound:
            problems.append(
                f"{key}: observed staleness "
                f"{cell['max_staleness_observed']} exceeds bound {bound}"
            )
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="small fast run for CI harness-rot checks")
    add_json_flag(parser)
    args = parser.parse_args(argv)
    results = run_all(smoke=args.smoke)
    report(results)
    if args.json:
        path = write_bench_json(args.json, "serve_latency", results,
                                smoke=args.smoke)
        print(f"\nresults -> {path}")
    problems = check(results)
    for problem in problems:
        print(f"\nWARNING: {problem}")
    if not problems:
        print("\nconcurrent serving: snapshot reads beat flush-on-read, "
              "readers do not starve the writer, staleness bounds held")
    return 1 if problems else 0


def test_report_serve_latency(bench_record):
    """Smoke-size run: p99 speedup + staleness-bound acceptance."""
    results = run_all(smoke=True)
    report(results)
    bench_record(results, smoke=True)
    problems = check(results)
    assert not problems, "; ".join(problems)


if __name__ == "__main__":
    raise SystemExit(main())
