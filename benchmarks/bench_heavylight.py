"""Heavy-light partitioned maintenance vs the best uniform-batching plan.

The PR-8 claim: on a Zipf-skewed row-update stream, splitting updates by
target row — heavy hitters merged eagerly into accumulator rows, the
light tail deferred into a compacted pending block — beats uniform
batching at *any* width, because heavy mass stops paying per-window
refresh rank entirely and tail repeats compact across the whole deferral
window instead of one batch.  For each skew theta the same stream drives:

* **unit** — per-update propagation (the floor);
* **uniform w** — plan-driven batched maintenance (the PR-5 pipeline) at
  every width on the planner's grid; the best one is the bar;
* **heavy-light** — ``Session.set_partition`` at the budget the planner
  recommends from a sketch of this stream.

The planner's pricing is demonstrated alongside the measurement: the
ranked plan for the skewed streams must carry ``partition="heavy-light"``
(:func:`repro.cost.estimate.heavy_light_unit_cost` undercuts the uniform
unit cost), while the uniform stream must keep ``partition="uniform"``.
Parity against the unit session is asserted per scenario.

Run as a script (or ``--smoke`` in CI)::

    PYTHONPATH=src python benchmarks/bench_heavylight.py
    PYTHONPATH=src python benchmarks/bench_heavylight.py --smoke --json out.json

``check_hl_trend.py`` compares the emitted JSON against the committed
baseline and fails CI on a >25% heavy-light-throughput regression or if
the speedup over the best uniform plan drops below the 2x acceptance bar.
"""

from __future__ import annotations

import argparse
import time

import numpy as np

from conftest import add_json_flag, write_bench_json

#: Zipf skews measured (theta = 0 is uniform; 1.2 is the acceptance cell).
THETAS = (0.0, 1.2, 2.0)

#: Script acceptance: heavy-light speedup over the *best* uniform plan
#: on the skewed streams (the ISSUE 8 bar).
MIN_SKEWED_SPEEDUP = 2.0

#: Uniform-batching widths raced to find the bar (the planner's grid).
UNIFORM_WIDTHS = (8, 16, 32)

A2_SOURCE = "input A(n, n); B := A * A; output B;"


def _stream(rng, n: int, count: int, theta: float, scale: float = 0.01):
    from repro.runtime import FactoredUpdate
    from repro.workloads.zipf import sample_rows

    rows = sample_rows(rng, n, count, theta)
    updates = []
    for row in rows:
        u = np.zeros((n, 1))
        u[row, 0] = 1.0
        updates.append(FactoredUpdate("A", u,
                                      scale * rng.standard_normal((n, 1))))
    return updates


def _recommended(program, inputs, updates, count):
    """(partition, heavy_budget) the planner picks after seeing the stream."""
    from repro.planner import StreamSketch, WorkloadStats, rank_program

    sketch = StreamSketch()
    for update in updates:
        sketch.observe(update)
    ranked = rank_program(
        program, inputs,
        stats=WorkloadStats(n=1, refresh_count=count,
                            distinct_fraction=sketch),
        strategies=("INCR",), backends=["dense"], calibration=None,
        price_batching=True,
    )
    return ranked[0].partition, ranked[0].heavy_budget


def _session(program, inputs):
    from repro.runtime import IVMSession

    return IVMSession(program, {k: v.copy() for k, v in inputs.items()},
                      mode="interpret")


def _drive_seconds(session, updates) -> float:
    start = time.perf_counter()
    for update in updates:
        session.apply_update(update)
    session.flush()
    return time.perf_counter() - start


def bench_scenario(program, inputs, theta: float, n: int, count: int,
                   repeats: int, seed: int) -> dict:
    updates = _stream(np.random.default_rng(seed), n, count, theta)
    partition, budget = _recommended(program, inputs, updates, count)

    seconds: dict[str, float] = {"unit": float("inf"),
                                 "heavy_light": float("inf")}
    for width in UNIFORM_WIDTHS:
        seconds[f"uniform_w{width}"] = float("inf")
    outputs = {}
    hl_stats = None
    for _ in range(max(repeats, 1)):
        unit = _session(program, inputs)
        seconds["unit"] = min(seconds["unit"], _drive_seconds(unit, updates))
        outputs["unit"] = unit.output()

        for width in UNIFORM_WIDTHS:
            batched = _session(program, inputs)
            batched.set_batching(width)
            seconds[f"uniform_w{width}"] = min(
                seconds[f"uniform_w{width}"], _drive_seconds(batched, updates))

        split = _session(program, inputs)
        split.set_partition("heavy-light", heavy_budget=budget or 16)
        seconds["heavy_light"] = min(seconds["heavy_light"],
                                     _drive_seconds(split, updates))
        outputs["heavy_light"] = split.output()
        hl_stats = split.partition_stats

    drift = float(np.max(np.abs(outputs["heavy_light"] - outputs["unit"])))
    scale = max(1.0, float(np.max(np.abs(outputs["unit"]))))
    if drift / scale > 1e-8:
        raise AssertionError(
            f"theta={theta}: heavy-light diverged (drift={drift})"
        )

    best_uniform = min(seconds[f"uniform_w{w}"] for w in UNIFORM_WIDTHS)
    per_update = {k: v / max(count, 1) for k, v in seconds.items()}
    return {
        "theta": theta,
        "n": n,
        "updates": count,
        "recommended_partition": partition,
        "recommended_budget": budget,
        "seconds_per_update": per_update,
        "best_uniform_seconds_per_update": best_uniform / max(count, 1),
        "speedup_hl_vs_best_uniform": best_uniform / seconds["heavy_light"],
        "speedup_hl_vs_unit": seconds["unit"] / seconds["heavy_light"],
        "amortization": hl_stats.amortization if hl_stats else 1.0,
        "folds": hl_stats.folds if hl_stats else 0,
        "max_abs_drift": drift,
    }


def run_all(smoke: bool = False) -> dict:
    from repro.frontend import parse_program

    rng = np.random.default_rng(84211)
    n = 128 if smoke else 256
    count = 256 if smoke else 512
    repeats = 3 if smoke else 4

    program = parse_program(A2_SOURCE)
    inputs = {"A": 0.2 * rng.standard_normal((n, n)) / np.sqrt(n)}

    results = {}
    for theta in THETAS:
        key = f"theta{theta:g}"
        results[key] = bench_scenario(program, inputs, theta, n, count,
                                      repeats, seed=int(1000 * theta) + 23)
    return results


def report(results: dict) -> None:
    for scenario in results.values():
        per = scenario["seconds_per_update"]
        print(f"theta={scenario['theta']:<4g} "
              f"plan={scenario['recommended_partition']:<11} "
              f"unit {per['unit'] * 1e6:8.1f} us/upd  "
              f"best-uniform "
              f"{scenario['best_uniform_seconds_per_update'] * 1e6:8.1f}  "
              f"heavy-light {per['heavy_light'] * 1e6:8.1f}  "
              f"-> {scenario['speedup_hl_vs_best_uniform']:5.2f}x over best "
              f"uniform (amortization "
              f"{scenario['amortization']:.1f} cols/rank)")


def check(results: dict) -> list[str]:
    """Acceptance violations (empty = pass)."""
    problems = []
    for theta in THETAS:
        scenario = results[f"theta{theta:g}"]
        if theta == 0.0:
            # No skew: the estimator must keep heavy-light unchosen.
            if scenario["recommended_partition"] != "uniform":
                problems.append(
                    "theta0: planner recommended "
                    f"{scenario['recommended_partition']} on a uniform "
                    "stream (expected uniform)"
                )
            continue
        if scenario["recommended_partition"] != "heavy-light":
            problems.append(
                f"theta{theta:g}: planner recommended "
                f"{scenario['recommended_partition']} (expected heavy-light)"
            )
        if scenario["speedup_hl_vs_best_uniform"] < MIN_SKEWED_SPEEDUP:
            problems.append(
                f"theta{theta:g}: heavy-light speedup over best uniform "
                f"{scenario['speedup_hl_vs_best_uniform']:.2f}x "
                f"< {MIN_SKEWED_SPEEDUP}x"
            )
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="small fast run for CI harness-rot checks")
    add_json_flag(parser)
    args = parser.parse_args(argv)
    results = run_all(smoke=args.smoke)
    report(results)
    if args.json:
        path = write_bench_json(args.json, "heavylight", results,
                                smoke=args.smoke)
        print(f"\nresults -> {path}")
    problems = check(results)
    for problem in problems:
        print(f"\nWARNING: {problem}")
    if not problems:
        print("\nheavy-light maintenance: planner prices the split, and the "
              "split beats every uniform width on the skewed streams")
    return 1 if problems else 0


def test_report_heavylight(bench_record):
    """Smoke-size run: heavy-light-vs-uniform speedup + parity acceptance."""
    results = run_all(smoke=True)
    report(results)
    bench_record(results, smoke=True)
    problems = check(results)
    assert not problems, "; ".join(problems)


if __name__ == "__main__":
    raise SystemExit(main())
