"""Fig. 3h — Gradient-descent linear regression: T_{i+1} = A T_i + B.

Paper (Spark, n = 30K, p = 1K, k = 16): REEVAL is cheapest under LIN,
INCR is cheapest under SKIP-4, and the best incremental variant beats
the best re-evaluation variant by 36.7x overall.  The driving ratio is
``p*s/k`` (Appendix B: REEVAL-LIN ~ p n^2 k vs INCR-SKIP ~ (n^2+np)k^2/s).

Reproduced at n = 512, p = 32 — p << n as in the paper (p/n ~ 0.06),
which is what drives the LIN-vs-EXP re-evaluation ordering (REEVAL-LIN ~
p n^2 k wins only while p << n), with p large enough that the predicted
incremental margin (~ p s / k) survives the GEMM-vs-matvec efficiency
gap at laptop scale — all five models for both strategies.
"""

import numpy as np
import pytest

from conftest import make_matrix, refresh_timer, row_update
from repro.bench import time_refresh_trimmed
from repro.iterative import make_general, parse_model

N = 512
P = 32
K = 16
MODELS = ["LIN", "SKIP-2", "SKIP-4", "SKIP-8", "EXP"]
PAPER = "Spark n=30K p=1K: best REEVAL = LIN, best INCR = SKIP-4, 36.7x overall"


def _maintainer(strategy: str, model_label: str):
    rng = np.random.default_rng(23)
    a = make_matrix(N)
    b = rng.standard_normal((N, P))
    t0 = rng.standard_normal((N, P))
    return make_general(strategy, a, b, t0, K, parse_model(model_label))


@pytest.mark.parametrize("model_label", MODELS)
@pytest.mark.parametrize("strategy", ["REEVAL", "INCR"])
def test_lr_refresh(benchmark, strategy, model_label):
    maintainer = _maintainer(strategy, model_label)
    benchmark.pedantic(refresh_timer(maintainer, N), rounds=3, iterations=1,
                       warmup_rounds=1)


def test_report_fig3h(benchmark, capsys, bench_record):
    times: dict[str, dict[str, float]] = {"REEVAL": {}, "INCR": {}}
    for strategy in ("REEVAL", "INCR"):
        for label in MODELS:
            maintainer = _maintainer(strategy, label)
            updates = [row_update(N, seed) for seed in range(12)]
            times[strategy][label] = time_refresh_trimmed(maintainer, updates)

    maintainer = _maintainer("INCR", "SKIP-4")
    benchmark.pedantic(refresh_timer(maintainer, N), rounds=3, iterations=1,
                       warmup_rounds=1)

    best_reeval = min(times["REEVAL"], key=times["REEVAL"].get)
    best_incr = min(times["INCR"], key=times["INCR"].get)
    overall = times["REEVAL"][best_reeval] / times["INCR"][best_incr]

    with capsys.disabled():
        print(f"\n== Fig 3h: LR (T = A T + B), n={N}, p={P} (paper: {PAPER}) ==")
        print(f"{'model':>8}{'REEVAL':>12}{'INCR':>12}")
        for label in MODELS:
            print(f"{label:>8}{times['REEVAL'][label] * 1e3:>10.2f}ms"
                  f"{times['INCR'][label] * 1e3:>10.2f}ms")
        print(f"best REEVAL: {best_reeval}; best INCR: {best_incr}; "
              f"overall incremental advantage {overall:.1f}x "
              f"(paper: 36.7x at 60x larger n)")
    bench_record({"seconds": times, "overall_speedup": overall},
                 n=N, p=P, paper=PAPER)

    # Shape: LIN is the best re-evaluation model (Table 2: p << n).
    assert best_reeval == "LIN"
    # The best incremental variant clearly beats the best re-evaluation.
    assert overall > 2.0
    # Incremental's best sits in the skip/exp family, not LIN (k^2 cost).
    assert best_incr != "LIN"
