"""Plan-driven batched maintenance vs unit-at-a-time propagation (Table 4).

The PR-5 claim: the planner's ``batch_size`` recommendation, now honored
by ``Session.apply_updates``, turns into measured end-to-end throughput.
For each Zipf skew theta the same row-update stream drives two sessions:

* **unit** — ``batch="off"``: every update propagates immediately (the
  pre-PR-5 behavior);
* **batched** — the width the planner recommends for this stream (its
  Zipf-aware ``distinct_fraction`` sketch is primed from the stream's
  row frequencies), flushed as QR+SVD-compacted rank-``r`` refreshes.

Table 4's shape: higher skew -> fewer distinct rows per batch -> smaller
compacted rank -> bigger batched win.  Both INCR (factored trigger
propagation) and REEVAL (re-evaluation amortization: ``m`` updates, one
recompute) scenarios are measured; parity against the unit session is
asserted per scenario.

Run as a script (or ``--smoke`` in CI)::

    PYTHONPATH=src python benchmarks/bench_batch_pipeline.py
    PYTHONPATH=src python benchmarks/bench_batch_pipeline.py --smoke --json out.json

``check_batch_trend.py`` compares the emitted JSON against the committed
baseline and fails CI on a >25% batched-throughput regression.
"""

from __future__ import annotations

import argparse
import time

import numpy as np

from conftest import add_json_flag, write_bench_json

#: Zipf skews measured (theta = 0 is uniform; the paper sweeps 0..4).
THETAS = (0.0, 1.0, 2.0)

#: Script acceptance: batched speedup over unit at the highest skew.
MIN_SKEWED_SPEEDUP = {"INCR": 1.2, "REEVAL": 2.0}

A2_SOURCE = "input A(n, n); B := A * A; output B;"


def _stream(rng, n: int, count: int, theta: float, scale: float = 0.01):
    from repro.runtime import FactoredUpdate
    from repro.workloads.zipf import sample_rows

    rows = sample_rows(rng, n, count, theta)
    updates = []
    for row in rows:
        u = np.zeros((n, 1))
        u[row, 0] = 1.0
        updates.append(FactoredUpdate("A", u,
                                      scale * rng.standard_normal((n, 1))))
    return updates


def _recommended_width(program, inputs, strategy, updates, count) -> int:
    """The width the planner picks once it has seen this stream's skew."""
    from repro.planner import StreamSketch, WorkloadStats, rank_program

    sketch = StreamSketch()
    for update in updates:
        sketch.observe(update)
    ranked = rank_program(
        program, inputs,
        stats=WorkloadStats(n=1, refresh_count=count,
                            distinct_fraction=sketch),
        strategies=(strategy,), backends=["dense"], calibration=None,
    )
    return int(ranked[0].batch_size or 1)


def _session(program, inputs, strategy):
    from repro.runtime import IVMSession, ReevalSession

    inputs = {k: v.copy() for k, v in inputs.items()}
    if strategy == "REEVAL":
        return ReevalSession(program, inputs)
    return IVMSession(program, inputs, mode="interpret")


def _drive_seconds(session, updates) -> float:
    start = time.perf_counter()
    for update in updates:
        session.apply_update(update)
    session.flush()
    return time.perf_counter() - start


def bench_scenario(program, inputs, strategy: str, theta: float, n: int,
                   count: int, repeats: int, seed: int) -> dict:
    updates = _stream(np.random.default_rng(seed), n, count, theta)
    width = _recommended_width(program, inputs, strategy, updates, count)

    seconds = {"unit": float("inf"), "batched": float("inf")}
    outputs = {}
    compression = 1.0
    for _ in range(max(repeats, 1)):
        unit = _session(program, inputs, strategy)
        seconds["unit"] = min(seconds["unit"], _drive_seconds(unit, updates))
        outputs["unit"] = unit.output()

        batched = _session(program, inputs, strategy)
        batched.set_batching(width)
        seconds["batched"] = min(seconds["batched"],
                                 _drive_seconds(batched, updates))
        outputs["batched"] = batched.output()
        stats = batched.batch_stats
        compression = stats.compression if stats is not None else 1.0

    drift = float(np.max(np.abs(outputs["batched"] - outputs["unit"])))
    scale = max(1.0, float(np.max(np.abs(outputs["unit"]))))
    if drift / scale > 1e-8:
        raise AssertionError(
            f"{strategy} theta={theta}: batched diverged (drift={drift})"
        )

    per_update = {k: v / max(count, 1) for k, v in seconds.items()}
    return {
        "strategy": strategy,
        "theta": theta,
        "n": n,
        "updates": count,
        "recommended_width": width,
        "seconds_per_update": per_update,
        "speedup_batched_vs_unit": per_update["unit"] / per_update["batched"],
        "achieved_compression": compression,
        "max_abs_drift": drift,
    }


def run_all(smoke: bool = False) -> dict:
    from repro.frontend import parse_program

    rng = np.random.default_rng(14036968)
    n = 128 if smoke else 256
    count = 96 if smoke else 256
    repeats = 2 if smoke else 3

    program = parse_program(A2_SOURCE)
    a0 = 0.2 * rng.standard_normal((n, n)) / np.sqrt(n)
    inputs = {"A": a0}

    results = {}
    for strategy in ("INCR", "REEVAL"):
        for theta in THETAS:
            key = f"{strategy.lower()}_theta{theta:g}"
            results[key] = bench_scenario(
                program, inputs, strategy, theta, n, count, repeats,
                seed=int(1000 * theta) + 17,
            )
    return results


def report(results: dict) -> None:
    for scenario in results.values():
        per = scenario["seconds_per_update"]
        print(f"{scenario['strategy']:<7} theta={scenario['theta']:<4g} "
              f"width={scenario['recommended_width']:<3} "
              f"unit {per['unit'] * 1e6:9.1f} us/upd  "
              f"batched {per['batched'] * 1e6:9.1f} us/upd  "
              f"-> {scenario['speedup_batched_vs_unit']:5.2f}x  "
              f"(compression {scenario['achieved_compression']:.1f}x)")


def check(results: dict) -> list[str]:
    """Acceptance violations (empty = pass)."""
    problems = []
    top = f"theta{max(THETAS):g}"
    for strategy, floor in MIN_SKEWED_SPEEDUP.items():
        scenario = results[f"{strategy.lower()}_{top}"]
        if scenario["recommended_width"] <= 1:
            problems.append(
                f"{strategy} @ {top}: planner recommended width "
                f"{scenario['recommended_width']} (expected > 1)"
            )
        if scenario["speedup_batched_vs_unit"] < floor:
            problems.append(
                f"{strategy} @ {top}: batched speedup "
                f"{scenario['speedup_batched_vs_unit']:.2f}x < {floor}x"
            )
    # Table 4's shape: skew cannot *hurt* the compacted rank.
    for strategy in ("incr", "reeval"):
        flat = results[f"{strategy}_theta0"]["achieved_compression"]
        skewed = results[f"{strategy}_{top}"]["achieved_compression"]
        if skewed < flat * 0.9:
            problems.append(
                f"{strategy}: compression fell with skew "
                f"({skewed:.2f}x @ {top} vs {flat:.2f}x @ theta0)"
            )
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="small fast run for CI harness-rot checks")
    add_json_flag(parser)
    args = parser.parse_args(argv)
    results = run_all(smoke=args.smoke)
    report(results)
    if args.json:
        path = write_bench_json(args.json, "batch_pipeline", results,
                                smoke=args.smoke)
        print(f"\nresults -> {path}")
    problems = check(results)
    for problem in problems:
        print(f"\nWARNING: {problem}")
    if not problems:
        print("\nbatched maintenance: planner width honored, batched beats "
              "unit-at-a-time on the skewed stream")
    return 1 if problems else 0


def test_report_batch_pipeline(bench_record):
    """Smoke-size run: batched-vs-unit speedup + parity acceptance."""
    results = run_all(smoke=True)
    report(results)
    bench_record(results, smoke=True)
    problems = check(results)
    assert not problems, "; ".join(problems)


if __name__ == "__main__":
    raise SystemExit(main())
