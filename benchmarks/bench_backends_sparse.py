"""Sparse vs dense execution backends on graph-shaped maintenance.

LINVIEW's factored deltas make view *refreshes* cheap, but the seed
executor materialized every operand densely — a pagerank refresh paid
``O(n^2)`` per power-iteration step even when the graph stores ~1% of
its possible edges.  This benchmark maintains pagerank and bounded-hop
reachability under streams of edge insertions/deletions with the same
maintainer code on both backends and reports the per-update speedup of
``backend="sparse"`` (SciPy CSR state, thin dense delta factors) over
``backend="dense"``.

Run as a script for the headline numbers (or ``--smoke`` in CI)::

    PYTHONPATH=src python benchmarks/bench_backends_sparse.py
    PYTHONPATH=src python benchmarks/bench_backends_sparse.py --smoke

The pytest entry point runs a reduced size and asserts the pagerank
speedup is real, so harness rot shows up in CI.
"""

from __future__ import annotations

import argparse
import time

import numpy as np

from conftest import add_json_flag, write_bench_json
from repro.analytics.pagerank import IncrementalPageRank
from repro.analytics.reachability import ReachabilityIndex

DENSITY = 0.01  # ~1% of possible edges, the sparse-graph regime


def random_adjacency(rng: np.random.Generator, n: int,
                     density: float = DENSITY) -> np.ndarray:
    """0/1 adjacency with ~``density`` of possible edges, no self-loops."""
    adjacency = (rng.random((n, n)) < density).astype(np.float64)
    np.fill_diagonal(adjacency, 0.0)
    return adjacency


def edge_stream(rng: np.random.Generator, adjacency: np.ndarray,
                count: int) -> list[tuple[str, int, int]]:
    """Alternating insert/delete edge events valid against ``adjacency``.

    Events are generated against a scratch copy so each one is legal at
    its position in the stream (no duplicate inserts, no absent deletes).
    """
    n = adjacency.shape[0]
    scratch = adjacency.copy()
    events: list[tuple[str, int, int]] = []
    while len(events) < count:
        src, dst = int(rng.integers(n)), int(rng.integers(n))
        if src == dst:
            continue
        if scratch[dst, src] == 0.0:
            scratch[dst, src] = 1.0
            events.append(("add", src, dst))
        else:
            scratch[dst, src] = 0.0
            events.append(("remove", src, dst))
    return events


def _drive(index, events) -> float:
    """Apply the event stream; return seconds per update."""
    start = time.perf_counter()
    for kind, src, dst in events:
        if kind == "add":
            index.add_edge(src, dst)
        else:
            index.remove_edge(src, dst)
    return (time.perf_counter() - start) / len(events)


def bench_pagerank(n: int, updates: int, k: int = 16,
                   seed: int = 14036968) -> dict[str, float]:
    """Per-update pagerank maintenance time for both backends."""
    rng = np.random.default_rng(seed)
    adjacency = random_adjacency(rng, n)
    events = edge_stream(rng, adjacency, updates)
    results: dict[str, float] = {}
    outputs = {}
    for backend in ("dense", "sparse"):
        index = IncrementalPageRank(adjacency.copy(), k=k,
                                    strategy="HYBRID", backend=backend)
        results[backend] = _drive(index, events)
        outputs[backend] = index.ranks.copy()
    drift = float(np.max(np.abs(outputs["dense"] - outputs["sparse"])))
    if drift > 1e-8:
        raise AssertionError(f"backend results diverged: drift={drift}")
    return results


def bench_reachability(n: int, updates: int, k: int = 8,
                       seed: int = 14036968) -> dict[str, float]:
    """Per-update reachability maintenance time for both backends."""
    rng = np.random.default_rng(seed)
    adjacency = random_adjacency(rng, n)
    events = edge_stream(rng, adjacency, updates)
    results: dict[str, float] = {}
    counts = {}
    for backend in ("dense", "sparse"):
        index = ReachabilityIndex(adjacency.copy(), k=k,
                                  strategy="INCR", backend=backend)
        results[backend] = _drive(index, events)
        counts[backend] = index.walk_counts()
    drift = float(np.max(np.abs(counts["dense"] - counts["sparse"])))
    scale = max(1.0, float(np.max(np.abs(counts["dense"]))))
    if drift / scale > 1e-8:
        raise AssertionError(f"backend results diverged: drift={drift}")
    return results


def report(title: str, results: dict[str, float]) -> float:
    speedup = results["dense"] / results["sparse"]
    print(f"{title}")
    print(f"  dense : {results['dense'] * 1e3:9.3f} ms/update")
    print(f"  sparse: {results['sparse'] * 1e3:9.3f} ms/update")
    print(f"  -> sparse speedup: {speedup:.1f}x")
    return speedup


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--n", type=int, default=2000,
                        help="graph order (default 2000)")
    parser.add_argument("--updates", type=int, default=20,
                        help="edge events per benchmark (default 20)")
    parser.add_argument("--smoke", action="store_true",
                        help="small fast run for CI harness-rot checks")
    add_json_flag(parser)
    args = parser.parse_args(argv)
    n, updates = (600, 8) if args.smoke else (args.n, args.updates)
    print(f"backend comparison at n={n}, density~{DENSITY:.0%}, "
          f"{updates} edge events\n")
    pagerank = bench_pagerank(n, updates)
    pr = report(f"pagerank (HYBRID, k=16, n={n})", pagerank)
    print()
    reach = bench_reachability(n, updates)
    report(f"reachability (INCR, k=8, n={n})", reach)
    if args.json:
        write_bench_json(args.json, "backends_sparse",
                         {"pagerank": pagerank, "reachability": reach},
                         n=n, updates=updates, density=DENSITY,
                         smoke=args.smoke)
    if pr <= 1.0:
        print("\nWARNING: sparse backend did not beat dense on pagerank")
        return 1
    return 0


def test_report_backend_speedup(bench_record):
    """Reduced-size figure run: sparse must beat dense on pagerank."""
    results = bench_pagerank(n=1200, updates=10)
    speedup = report("pagerank (HYBRID, k=16, n=1200)", results)
    reach = bench_reachability(n=400, updates=6)
    report("reachability (INCR, k=8, n=400)", reach)
    bench_record({"pagerank": results, "reachability": reach},
                 pagerank_speedup=speedup)
    assert speedup > 1.5, f"sparse backend too slow: {speedup:.2f}x"


if __name__ == "__main__":
    raise SystemExit(main())
