"""Fail CI when concurrent serving regresses against the committed baseline.

Usage::

    python benchmarks/check_serve_trend.py CURRENT.json BASELINE.json

Both files are ``bench_serve_latency.py --json`` outputs.  Absolute
latencies are not comparable across machines, so the guarded metric is
the **snapshot-vs-flush-on-read p99 speedup** — both servers run on the
same machine in the same process, so the ratio isolates the serving
layer's relative health.  It regresses when the current speedup falls
more than ``MAX_REGRESSION`` (25%) below the baseline's; three
machine-independent invariants are re-checked absolutely: the speedup
must clear the ISSUE's 5x floor, no snapshot cell may exceed its
staleness bound, and adding readers must not collapse writer
throughput.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

#: Allowed fractional drop of the p99 speedup vs the baseline ratio.
MAX_REGRESSION = 0.25

#: Baseline speedups are capped here before the floor is derived:
#: healthy snapshot reads are single-digit microseconds, so the raw
#: ratio swings 2x with timer noise, while any real regression (a read
#: that flushes, blocks, or copies) crashes it to near 1x.  The cap
#: keeps the gate sensitive to the failure mode without flapping on
#: how fast a dict lookup timed today.
BASELINE_SPEEDUP_CAP = 40.0

#: Absolute floors, machine-independent (mirrors bench_serve_latency).
MIN_P99_SPEEDUP = 5.0
MIN_WRITER_SCALING = 0.25


def load(path: str) -> dict:
    data = json.loads(Path(path).read_text())
    return data.get("results", data)


def main(argv=None) -> int:
    argv = argv if argv is not None else sys.argv[1:]
    if len(argv) != 2:
        print(__doc__)
        return 2
    current, baseline = load(argv[0]), load(argv[1])

    failures = []
    now = float(current["derived"]["speedup_p99"])
    then = min(float(baseline["derived"]["speedup_p99"]),
               BASELINE_SPEEDUP_CAP)
    floor = then * (1.0 - MAX_REGRESSION)
    status = "OK" if now >= floor else "REGRESSED"
    print(f"snapshot read p99 speedup {now:.1f}x (baseline {then:.1f}x, "
          f"floor {floor:.1f}x) {status}")
    if now < floor:
        failures.append(
            f"read p99 speedup regressed >{MAX_REGRESSION:.0%} "
            f"({now:.1f}x < floor {floor:.1f}x)"
        )
    if now < MIN_P99_SPEEDUP:
        failures.append(
            f"read p99 speedup {now:.1f}x below the absolute "
            f"{MIN_P99_SPEEDUP}x floor"
        )

    scaling = float(current["derived"]["writer_scaling_r8_vs_r1"])
    print(f"writer throughput scaling at {current['derived']['top_readers']} "
          f"readers: {scaling:.0%} of 1-reader throughput")
    if scaling < MIN_WRITER_SCALING:
        failures.append(
            f"writer throughput collapsed to {scaling:.0%} under readers "
            f"(floor {MIN_WRITER_SCALING:.0%})"
        )

    for key, cell in current.items():
        if not isinstance(cell, dict) or "staleness_bound" not in cell:
            continue
        bound = cell["staleness_bound"]
        observed = int(cell["max_staleness_observed"])
        if bound and observed > int(bound):
            failures.append(
                f"{key}: observed staleness {observed} exceeds bound {bound}"
            )

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print("concurrent serving trend: within baseline envelope")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
