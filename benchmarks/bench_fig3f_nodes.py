"""Fig. 3f — Matrix powers across cluster sizes (simulated Spark).

Paper (Spark, n = 30K, k = 16, grids of 9..100 workers): re-evaluation
scales with the number of nodes, while incremental evaluation "is less
susceptible to the number of nodes" (10-26 s across every grid) because
its time is bounded by broadcasting small factors, not compute.

Reproduced on the BSP cluster simulator at n = 360 with the
laptop-calibrated rate configuration (see DESIGN.md): the *simulated*
wall-clock must show REEVAL strong-scaling and INCR staying flat.
pytest-benchmark times the real in-process execution of one refresh.
"""

import numpy as np
import pytest

from conftest import make_matrix
from repro.distributed import (
    Cluster,
    ClusterConfig,
    DistributedIncrementalPowers,
    DistributedReevalPowers,
)
from repro.iterative import Model

N = 360
K = 16
GRIDS = [3, 5, 7, 10]  # 9 .. 100 workers, like the paper's sweep
PAPER = "Spark n=30K: REEVAL needs the cluster, INCR flat at 10-26s"


def _maintainer(strategy: str, grid: int):
    cluster = Cluster(ClusterConfig.laptop_scale(grid))
    a0 = make_matrix(N)
    if strategy == "REEVAL":
        return DistributedReevalPowers(a0, K, Model.exponential(), cluster)
    return DistributedIncrementalPowers(a0, K, Model.exponential(), cluster)


def _one_update(seed: int):
    rng = np.random.default_rng(seed)
    u = np.zeros((N, 1))
    u[int(rng.integers(0, N)), 0] = 1.0
    return u, 0.01 * rng.standard_normal((N, 1))


@pytest.mark.parametrize("grid", GRIDS)
@pytest.mark.parametrize("strategy", ["REEVAL", "INCR"])
def test_distributed_refresh(benchmark, strategy, grid):
    maintainer = _maintainer(strategy, grid)
    state = {"seed": 0}

    def call():
        state["seed"] += 1
        u, v = _one_update(state["seed"])
        maintainer.refresh(u, v)

    benchmark.pedantic(call, rounds=2, iterations=1, warmup_rounds=1)


def test_report_fig3f(benchmark, capsys, bench_record):
    simulated = {"REEVAL": [], "INCR": []}
    for grid in GRIDS:
        for strategy in ("REEVAL", "INCR"):
            maintainer = _maintainer(strategy, grid)
            maintainer.cluster.reset()
            u, v = _one_update(42)
            maintainer.refresh(u, v)
            simulated[strategy].append(maintainer.cluster.elapsed)

    maintainer = _maintainer("INCR", GRIDS[-1])

    def call():
        u, v = _one_update(7)
        maintainer.refresh(u, v)

    benchmark.pedantic(call, rounds=2, iterations=1, warmup_rounds=1)

    with capsys.disabled():
        print(f"\n== Fig 3f: simulated view refresh vs workers (paper: {PAPER}) ==")
        print(f"{'workers':>8} {'REEVAL-EXP':>12} {'INCR-EXP':>10} {'speedup':>9}")
        for grid, reeval, incr in zip(GRIDS, simulated["REEVAL"],
                                      simulated["INCR"]):
            print(f"{grid * grid:>8} {reeval:>11.3f}s {incr:>9.3f}s "
                  f"{reeval / incr:>8.1f}x")
    bench_record({"simulated_seconds": simulated,
                  "workers": [g * g for g in GRIDS]})

    reeval, incr = simulated["REEVAL"], simulated["INCR"]
    # REEVAL strong-scales with workers.
    assert reeval[0] > 2 * reeval[-1]
    # INCR is far less sensitive to the cluster size than REEVAL.
    assert max(incr) / min(incr) < (reeval[0] / reeval[-1])
    # And INCR wins at every size.
    assert all(i < r for i, r in zip(incr, reeval))
