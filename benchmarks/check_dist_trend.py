"""Fail CI when distributed scaling regresses against the committed baseline.

Usage::

    python benchmarks/check_dist_trend.py CURRENT.json BASELINE.json

Both files are ``bench_fig3g_distributed.py --json`` outputs (full
mode).  Absolute wall-clock is not comparable across machines, so the
guarded metric is the **4-worker speedup over single-process** — both
cells run on the same machine in the same invocation, so the ratio
isolates the engine's relative health.  It regresses when the current
speedup falls more than ``MAX_REGRESSION`` (25%) below the baseline's.

The acceptance-criteria absolute floor (>= 2x at n >= 2048) is only
meaningful where the hardware can parallelize at all, so it is enforced
when the *current* artifact reports ``cpu_count >= 4`` at full size —
on smaller boxes (1-core CI runners, the committed baseline machine)
the relative gate plus the machine-independent invariants carry the
check:

* results bitwise-identical across engines and shard strategies,
* maintained chain still matches ground-truth recompute,
* modeled-vs-measured broadcast bytes agree within 10%,
* real (nonzero) traffic was actually measured.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

#: Allowed fractional drop of the 4-worker speedup vs the baseline's.
MAX_REGRESSION = 0.25

#: Baseline speedups are capped before the floor is derived: near-linear
#: scaling swings with scheduler noise, while any real regression (a
#: serialized shard, a copy on the hot path, chatty comm) crashes the
#: ratio toward the IPC floor.  The cap keeps the gate sensitive to the
#: failure mode without flapping on a lucky baseline run.
BASELINE_SPEEDUP_CAP = 8.0

#: The ISSUE's absolute floor, applied only where it is physical.
MIN_SPEEDUP_W4 = 2.0
MIN_SPEEDUP_N = 2048
MIN_SPEEDUP_CPUS = 4

#: Modeled-vs-measured broadcast-byte agreement (pickle framing is the
#: only legitimate divergence).
MAX_COMM_MODEL_ERROR = 0.10


def load(path: str) -> dict:
    data = json.loads(Path(path).read_text())
    return data.get("results", data)


def main(argv=None) -> int:
    argv = argv if argv is not None else sys.argv[1:]
    if len(argv) != 2:
        print(__doc__)
        return 2
    current, baseline = load(argv[0]), load(argv[1])

    failures = []
    now = float(current["derived"]["speedup_w4"])
    then = min(float(baseline["derived"]["speedup_w4"]), BASELINE_SPEEDUP_CAP)
    floor = then * (1.0 - MAX_REGRESSION)
    status = "OK" if now >= floor else "REGRESSED"
    print(f"4-worker speedup {now:.2f}x (baseline {then:.2f}x, "
          f"floor {floor:.2f}x, cpu_count={current.get('cpu_count')}) "
          f"{status}")
    if now < floor:
        failures.append(
            f"4-worker speedup regressed >{MAX_REGRESSION:.0%} "
            f"({now:.2f}x < floor {floor:.2f}x)"
        )
    if (int(current.get("cpu_count") or 0) >= MIN_SPEEDUP_CPUS
            and int(current.get("n", 0)) >= MIN_SPEEDUP_N
            and now < MIN_SPEEDUP_W4):
        failures.append(
            f"4-worker speedup {now:.2f}x below the absolute "
            f"{MIN_SPEEDUP_W4}x floor (n={current.get('n')}, "
            f"cpu_count={current.get('cpu_count')})"
        )

    parity = current["parity"]
    print(f"parity: bitwise={parity['bitwise_all_engines']} "
          f"allclose={parity['allclose_vs_recompute']} "
          f"comm_model_error={float(parity['comm_model_error']):.3%} "
          f"broadcast_bytes={parity['measured_broadcast_bytes']:,}")
    if not parity["bitwise_all_engines"]:
        failures.append("sharded results are not bitwise identical to "
                        "single-process")
    if not parity["allclose_vs_recompute"]:
        failures.append("maintained chain diverged from ground-truth "
                        "recompute")
    if float(parity["comm_model_error"]) > MAX_COMM_MODEL_ERROR:
        failures.append(
            f"modeled-vs-measured broadcast bytes disagree by "
            f"{float(parity['comm_model_error']):.1%} "
            f"(tolerance {MAX_COMM_MODEL_ERROR:.0%})"
        )
    if int(parity["measured_broadcast_bytes"]) <= 0:
        failures.append("no broadcast traffic was measured — the comm "
                        "layer is not instrumenting real bytes")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print("distributed scaling trend: within baseline envelope")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
