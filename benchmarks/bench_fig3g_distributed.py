"""Fig. 3g distributed — simulated p-sweep plus *real* multiprocess scaling.

The paper's Fig. 3g *is* a Spark experiment (n = 30K, k = 16): at p = 1
HYBRID-LIN beats REEVAL-LIN by 16% and INCR-LIN by 53%; REEVAL/HYBRID
grow linearly in p while INCR takes over at large p.  The single-node
variant lives in ``bench_fig3g_general.py``; this file keeps the
original *simulated*-cluster reproduction (per-worker compute +
broadcast/gather traffic + latency rounds) and graduates the scaling
claim to **wall-clock** on the real engine: ``A^2``/``A^3`` chain
maintenance on :class:`~repro.distributed.sharded.ShardedChainMaintainer`
over 1 / 2 / 4 shared-memory worker processes, with measured comm
traffic, bit-identity across engines and shard strategies, and a
modeled-vs-measured broadcast-bytes check.

Script mode writes the CI artifact gated by ``check_dist_trend.py``::

    python benchmarks/bench_fig3g_distributed.py --json BENCH.json
    python benchmarks/bench_fig3g_distributed.py --smoke   # tiny, fast
"""

import argparse
import os
import sys
import time

import numpy as np

try:
    import pytest
except ImportError:  # script mode does not need pytest
    pytest = None

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from conftest import add_json_flag, make_matrix, row_update, write_bench_json
from repro.distributed import Cluster, ClusterConfig, make_distributed_general

N = 256
K = 16
GRID = 4
P_VALUES = [1, 16, 128]
STRATEGIES = ["REEVAL", "INCR", "HYBRID"]


def _simulated_refresh_time(strategy: str, p: int, refreshes: int = 3) -> float:
    cluster = Cluster(config=ClusterConfig.laptop_scale(GRID))
    rng = np.random.default_rng(31)
    t0 = rng.standard_normal((N, p))
    maintainer = make_distributed_general(
        strategy, make_matrix(N), None, t0, K, cluster
    )
    cluster.reset()  # initial materialization is preloaded, untimed
    for seed in range(refreshes):
        u, v = row_update(N, seed)
        maintainer.refresh(u, v)
    return cluster.elapsed / refreshes


@pytest.mark.parametrize("strategy", STRATEGIES)
def test_distributed_general_refresh(benchmark, strategy):
    cluster = Cluster(config=ClusterConfig.laptop_scale(GRID))
    rng = np.random.default_rng(31)
    maintainer = make_distributed_general(
        strategy, make_matrix(N), None, rng.standard_normal((N, 1)), K, cluster
    )
    state = {"seed": 0}

    def call():
        state["seed"] += 1
        u, v = row_update(N, state["seed"])
        maintainer.refresh(u, v)

    benchmark.pedantic(call, rounds=3, iterations=1, warmup_rounds=1)


def test_report_fig3g_distributed(benchmark, capsys, bench_record):
    times = {
        (strategy, p): _simulated_refresh_time(strategy, p)
        for strategy in STRATEGIES
        for p in P_VALUES
    }

    cluster = Cluster(config=ClusterConfig.laptop_scale(GRID))
    rng = np.random.default_rng(31)
    maintainer = make_distributed_general(
        "HYBRID", make_matrix(N), None, rng.standard_normal((N, 1)), K, cluster
    )
    state = {"seed": 100}

    def call():
        state["seed"] += 1
        u, v = row_update(N, state["seed"])
        maintainer.refresh(u, v)

    benchmark.pedantic(call, rounds=3, iterations=1, warmup_rounds=1)

    with capsys.disabled():
        print(f"\n== Fig 3g (distributed): T=A*T on the simulated cluster, "
              f"n={N}, grid {GRID}x{GRID} (paper: Spark n=30K, p=1: "
              f"HYBRID > REEVAL by 16%, > INCR by 53%) ==")
        print(f"{'p':>6} " + "".join(f"{s:>12}" for s in STRATEGIES))
        for p in P_VALUES:
            row = "".join(f"{times[(s, p)] * 1e3:>10.2f}ms" for s in STRATEGIES)
            print(f"{p:>6} {row}")
    bench_record({f"{s}@p={p}": seconds
                  for (s, p), seconds in times.items()}, n=N, grid=GRID)

    # The paper's p = 1 ordering on simulated wall-clock: HYBRID wins,
    # INCR pays for factor growth it cannot amortize on a vector.
    assert times[("HYBRID", 1)] <= times[("REEVAL", 1)]
    assert times[("HYBRID", 1)] < times[("INCR", 1)]
    # And the large-p crossover: INCR takes over.
    assert times[("INCR", 128)] < times[("REEVAL", 128)]
    assert times[("INCR", 128)] < times[("HYBRID", 128)]


# -- real multiprocess scaling (wall clock, measured comm) ---------------
#
# Cells share one update stream and one tile decomposition, so every
# engine executes the identical kernel calls: results must be *bitwise*
# equal across single-process / 2-worker / 4-worker / hash-vs-range.

SCALE_N = 2048          # full mode (the acceptance-criteria size)
SCALE_UPDATES = 8
SCALE_TILE_ROWS = 128   # 16 tiles: divisible work for 2 and 4 workers
SMOKE_N = 256           # smoke mode: seconds, not minutes
SMOKE_UPDATES = 4
SMOKE_TILE_ROWS = 32


def _updates(n: int, count: int, base_seed: int = 1):
    return [row_update(n, base_seed + i) for i in range(count)]


def _measure_cell(a, updates, *, nodes, strategy, tile_rows, process):
    """One scaling cell: timed refresh loop + comm harvest + results."""
    from repro.distributed import ShardedChainMaintainer, power_chain

    maintainer = ShardedChainMaintainer(
        a, power_chain(3), nodes=nodes, strategy=strategy,
        tile_rows=tile_rows, process=process,
    )
    try:
        # Warm-up refresh (same for every cell, so parity holds): for
        # process engines this also absorbs any residual spawn latency.
        warm_u, warm_v = row_update(a.shape[0], 999_983)
        maintainer.refresh(warm_u, warm_v)
        maintainer.engine.comm.reset()
        maintainer.engine.model.reset()
        start = time.perf_counter()
        for u, v in updates:
            maintainer.refresh(u, v)
        seconds = time.perf_counter() - start
        cell = {
            "nodes": nodes if process else 1,
            "strategy": strategy,
            "seconds": seconds,
            "updates_per_second": len(updates) / seconds,
            "comm": maintainer.engine.comm.as_dict(),
            "modeled": maintainer.engine.model.as_dict(),
            "worker_seconds": maintainer.engine.worker_seconds(),
            "partition": maintainer.engine.part.describe(),
        }
        results = {name: maintainer.result(name) for name in ("A", "P2", "P3")}
    finally:
        maintainer.close()
    return cell, results


def run_scaling(n: int, updates_count: int, tile_rows: int,
                worker_counts: tuple[int, ...]) -> tuple[dict, dict]:
    """All cells at one size.  Returns ``(payload, results_by_cell)``."""
    a = make_matrix(n)
    updates = _updates(n, updates_count)
    cells: dict[str, dict] = {}
    results: dict[str, dict] = {}
    cells["single"], results["single"] = _measure_cell(
        a, updates, nodes=1, strategy="range", tile_rows=tile_rows,
        process=False)
    for w in worker_counts:
        key = f"w{w}_range"
        cells[key], results[key] = _measure_cell(
            a, updates, nodes=w, strategy="range", tile_rows=tile_rows,
            process=True)
    hash_w = max(worker_counts)
    cells[f"w{hash_w}_hash"], results[f"w{hash_w}_hash"] = _measure_cell(
        a, updates, nodes=hash_w, strategy="hash", tile_rows=tile_rows,
        process=True)

    single = results["single"]
    bitwise = all(
        np.array_equal(single[name], res[name])
        for res in results.values() for name in ("A", "P2", "P3")
    )
    # Ground truth from the maintained input: P3 must still be A^3.
    a_final = results["single"]["A"]
    allclose = bool(np.allclose(results["single"]["P3"],
                                a_final @ a_final @ a_final,
                                rtol=1e-8, atol=1e-10))
    # Modeled-vs-measured broadcast bytes on the widest process cell
    # (pickle framing is the only divergence; thin factors at this n
    # keep it well under the 10% gate).
    wide = cells[f"w{max(worker_counts)}_range"]
    measured = wide["comm"]["bytes"]["broadcast"]
    modeled = wide["modeled"]["bytes"]["broadcast"]
    comm_model_error = abs(measured - modeled) / modeled if modeled else 1.0

    payload = {
        "n": n,
        "updates": updates_count,
        "chain_k": 3,
        "tile_rows": tile_rows,
        "cpu_count": os.cpu_count(),
        "cells": cells,
        "parity": {
            "bitwise_all_engines": bool(bitwise),
            "allclose_vs_recompute": allclose,
            "comm_model_error": comm_model_error,
            "measured_broadcast_bytes": measured,
        },
        "derived": {
            f"speedup_w{w}": cells["single"]["seconds"]
            / cells[f"w{w}_range"]["seconds"]
            for w in worker_counts
        },
    }
    return payload, results


def _print_scaling(payload: dict) -> None:
    print(f"\n== Fig 3g (real engine): A^2/A^3 maintenance, n={payload['n']}, "
          f"{payload['updates']} updates, tile_rows={payload['tile_rows']}, "
          f"cpu_count={payload['cpu_count']} ==")
    for key, cell in payload["cells"].items():
        comm = cell["comm"]
        print(f"{key:>10}: {cell['seconds'] * 1e3:9.1f} ms  "
              f"({cell['updates_per_second']:7.2f} upd/s, "
              f"{comm['total_bytes']:>10,} comm bytes)")
    for key, value in payload["derived"].items():
        print(f"{key:>10}: {value:.2f}x")
    parity = payload["parity"]
    print(f"    parity: bitwise={parity['bitwise_all_engines']} "
          f"allclose={parity['allclose_vs_recompute']} "
          f"comm_model_error={parity['comm_model_error']:.3%}")


if pytest is not None:
    def test_report_fig3g_scaling(capsys, bench_record):
        """Smoke-scale real-engine scaling: parity must hold even where
        the IPC tax swamps 1-core speedup (speedups are reported, not
        asserted, at this size — check_dist_trend.py gates the full
        artifact)."""
        payload, _ = run_scaling(SMOKE_N, SMOKE_UPDATES, SMOKE_TILE_ROWS,
                                 worker_counts=(2,))
        with capsys.disabled():
            _print_scaling(payload)
        bench_record(payload, mode="smoke")
        assert payload["parity"]["bitwise_all_engines"]
        assert payload["parity"]["allclose_vs_recompute"]
        assert payload["parity"]["comm_model_error"] <= 0.10
        assert payload["parity"]["measured_broadcast_bytes"] > 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    add_json_flag(parser)
    parser.add_argument("--smoke", action="store_true",
                        help="tiny configuration (seconds, not minutes)")
    args = parser.parse_args(argv)
    if args.smoke:
        payload, _ = run_scaling(SMOKE_N, SMOKE_UPDATES, SMOKE_TILE_ROWS,
                                 worker_counts=(2,))
    else:
        payload, _ = run_scaling(SCALE_N, SCALE_UPDATES, SCALE_TILE_ROWS,
                                 worker_counts=(2, 4))
    _print_scaling(payload)
    if args.json:
        path = write_bench_json(args.json, "fig3g_distributed", payload,
                                mode="smoke" if args.smoke else "full")
        print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())