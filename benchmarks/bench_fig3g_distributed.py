"""Fig. 3g on the simulated cluster — T := A·T, p sweep, all strategies.

The paper's Fig. 3g *is* a Spark experiment (n = 30K, k = 16): at p = 1
HYBRID-LIN beats REEVAL-LIN by 16% and INCR-LIN by 53%; REEVAL/HYBRID
grow linearly in p while INCR takes over at large p.  The single-node
variant lives in ``bench_fig3g_general.py``; this file reproduces the
*distributed* setting on the cluster simulator, reporting simulated
wall-clock (per-worker compute + broadcast/gather traffic + latency
rounds) per view refresh.
"""

import numpy as np
import pytest

from conftest import make_matrix, row_update
from repro.distributed import Cluster, ClusterConfig, make_distributed_general

N = 256
K = 16
GRID = 4
P_VALUES = [1, 16, 128]
STRATEGIES = ["REEVAL", "INCR", "HYBRID"]


def _simulated_refresh_time(strategy: str, p: int, refreshes: int = 3) -> float:
    cluster = Cluster(config=ClusterConfig.laptop_scale(GRID))
    rng = np.random.default_rng(31)
    t0 = rng.standard_normal((N, p))
    maintainer = make_distributed_general(
        strategy, make_matrix(N), None, t0, K, cluster
    )
    cluster.reset()  # initial materialization is preloaded, untimed
    for seed in range(refreshes):
        u, v = row_update(N, seed)
        maintainer.refresh(u, v)
    return cluster.elapsed / refreshes


@pytest.mark.parametrize("strategy", STRATEGIES)
def test_distributed_general_refresh(benchmark, strategy):
    cluster = Cluster(config=ClusterConfig.laptop_scale(GRID))
    rng = np.random.default_rng(31)
    maintainer = make_distributed_general(
        strategy, make_matrix(N), None, rng.standard_normal((N, 1)), K, cluster
    )
    state = {"seed": 0}

    def call():
        state["seed"] += 1
        u, v = row_update(N, state["seed"])
        maintainer.refresh(u, v)

    benchmark.pedantic(call, rounds=3, iterations=1, warmup_rounds=1)


def test_report_fig3g_distributed(benchmark, capsys, bench_record):
    times = {
        (strategy, p): _simulated_refresh_time(strategy, p)
        for strategy in STRATEGIES
        for p in P_VALUES
    }

    cluster = Cluster(config=ClusterConfig.laptop_scale(GRID))
    rng = np.random.default_rng(31)
    maintainer = make_distributed_general(
        "HYBRID", make_matrix(N), None, rng.standard_normal((N, 1)), K, cluster
    )
    state = {"seed": 100}

    def call():
        state["seed"] += 1
        u, v = row_update(N, state["seed"])
        maintainer.refresh(u, v)

    benchmark.pedantic(call, rounds=3, iterations=1, warmup_rounds=1)

    with capsys.disabled():
        print(f"\n== Fig 3g (distributed): T=A*T on the simulated cluster, "
              f"n={N}, grid {GRID}x{GRID} (paper: Spark n=30K, p=1: "
              f"HYBRID > REEVAL by 16%, > INCR by 53%) ==")
        print(f"{'p':>6} " + "".join(f"{s:>12}" for s in STRATEGIES))
        for p in P_VALUES:
            row = "".join(f"{times[(s, p)] * 1e3:>10.2f}ms" for s in STRATEGIES)
            print(f"{p:>6} {row}")
    bench_record({f"{s}@p={p}": seconds
                  for (s, p), seconds in times.items()}, n=N, grid=GRID)

    # The paper's p = 1 ordering on simulated wall-clock: HYBRID wins,
    # INCR pays for factor growth it cannot amortize on a vector.
    assert times[("HYBRID", 1)] <= times[("REEVAL", 1)]
    assert times[("HYBRID", 1)] < times[("INCR", 1)]
    # And the large-p crossover: INCR takes over.
    assert times[("INCR", 128)] < times[("REEVAL", 128)]
    assert times[("INCR", 128)] < times[("HYBRID", 128)]