"""Fail CI when the fused hot path regresses against the committed baseline.

Usage::

    python benchmarks/check_fused_trend.py CURRENT.json BASELINE.json

Both files are ``bench_fused_hotpath.py --json`` outputs.  Absolute
seconds are not comparable across machines (the baseline was committed
from one box, CI runs on another), so the guarded metric is the
**fused-vs-interpreter speedup ratio** per scenario — both paths run on
the same machine in the same process, so the ratio isolates the fused
path's relative health.  A scenario regresses when its current speedup
falls more than ``MAX_REGRESSION`` (25%) below the baseline's; the
zero-allocation property is re-checked absolutely (it is
machine-independent).
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

#: Allowed fractional drop of the fused speedup vs the baseline ratio.
MAX_REGRESSION = 0.25

#: Scenarios guarded by the ratio check (sparse is excluded: its win is
#: small enough that CI noise swamps a ratio-of-ratios bound).
GUARDED = ("dense_small", "stream_p16")


def load(path: str) -> dict:
    data = json.loads(Path(path).read_text())
    return data.get("results", data)


def main(argv=None) -> int:
    argv = argv if argv is not None else sys.argv[1:]
    if len(argv) != 2:
        print(__doc__)
        return 2
    current, baseline = load(argv[0]), load(argv[1])

    failures = []
    for key in GUARDED:
        if key not in current or key not in baseline:
            failures.append(f"{key}: missing from current or baseline JSON")
            continue
        now = float(current[key]["speedup_fused_vs_interpret"])
        then = float(baseline[key]["speedup_fused_vs_interpret"])
        floor = then * (1.0 - MAX_REGRESSION)
        status = "OK" if now >= floor else "REGRESSED"
        print(f"{key}: fused speedup {now:.2f}x (baseline {then:.2f}x, "
              f"floor {floor:.2f}x) {status}")
        if now < floor:
            failures.append(
                f"{key}: fused per-update wall time regressed >"
                f"{MAX_REGRESSION:.0%} (speedup {now:.2f}x < floor "
                f"{floor:.2f}x)"
            )
        steady = current[key].get("steady_state", {})
        if steady.get("workspace_allocations") not in (0, None):
            failures.append(
                f"{key}: steady-state workspace allocations = "
                f"{steady['workspace_allocations']} (expected 0)"
            )

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print("fused hot-path trend: within baseline envelope")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
