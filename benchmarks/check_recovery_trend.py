"""Fail CI when checkpoint recovery regresses against the committed baseline.

Usage::

    python benchmarks/check_recovery_trend.py CURRENT.json BASELINE.json

Both files are ``bench_recovery.py --json`` outputs.  Absolute restore
times are not comparable across machines, so the guarded metric is the
**recovery speedup** — full-log-replay time over restore+tail time,
measured in the same process on the same machine, isolating the
checkpoint path's relative health.  It regresses when the current
speedup falls more than ``MAX_REGRESSION`` (25%) below the baseline's;
two machine-independent invariants are re-checked absolutely: both
recovery paths must be **bitwise exact** (an inexact recovery is state
corruption, not a slowdown), and the speedup must clear the bench's
absolute floor.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

#: Allowed fractional drop of the recovery speedup vs the baseline's.
MAX_REGRESSION = 0.25

#: Baseline speedups are capped before the floor is derived: the raw
#: ratio scales with ``updates/cadence`` and swings with disk-cache
#: luck, while the failure mode being guarded (restore doing hidden
#: re-evaluation, or checksum passes getting quadratically slower)
#: crashes it toward 1x.  The cap keeps the gate sensitive without
#: flapping on how fast the filesystem felt today.
BASELINE_SPEEDUP_CAP = 20.0

#: Absolute floor, machine-independent (mirrors bench_recovery).
MIN_RECOVERY_SPEEDUP = 1.5


def load(path: str) -> dict:
    data = json.loads(Path(path).read_text())
    return data.get("results", data)


def main(argv=None) -> int:
    argv = argv if argv is not None else sys.argv[1:]
    if len(argv) != 2:
        print(__doc__)
        return 2
    current, baseline = load(argv[0]), load(argv[1])

    failures = []
    for key in ("exact_restore", "exact_log_replay"):
        if not current.get(key, False):
            failures.append(f"{key} is False — recovery corrupted state")

    now = float(current["derived"]["recovery_speedup"])
    then = min(float(baseline["derived"]["recovery_speedup"]),
               BASELINE_SPEEDUP_CAP)
    floor = then * (1.0 - MAX_REGRESSION)
    status = "OK" if now >= floor else "REGRESSED"
    print(f"checkpoint recovery speedup {now:.1f}x (baseline {then:.1f}x, "
          f"floor {floor:.1f}x) {status}")
    if now < floor:
        failures.append(
            f"recovery speedup regressed >{MAX_REGRESSION:.0%} "
            f"({now:.1f}x < floor {floor:.1f}x)"
        )
    if now < MIN_RECOVERY_SPEEDUP:
        failures.append(
            f"recovery speedup {now:.1f}x below the absolute "
            f"{MIN_RECOVERY_SPEEDUP}x floor"
        )

    overhead = float(current["derived"]["snapshot_overhead_fraction"])
    print(f"durability overhead: {overhead:.1%} of maintenance time "
          f"({current['snapshots']} snapshots over "
          f"{current['updates']} updates)")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print("checkpoint recovery trend: within baseline envelope")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
