"""Ablation — factored vs dense delta propagation (Example 4.4).

The paper's central design choice: deltas are kept in factored form
``U V'`` because naive (dense) propagation suffers the avalanche effect
— by ``A^8`` the delta is fully dense and each further statement costs
two extra ``O(n^gamma)`` products, *worse than re-evaluation*.  This
ablation makes that concrete on the ``A^16`` squaring chain:

* INCR (factored)   — the paper's strategy, ``O(n^2 k)``;
* DENSE-INCR        — same delta rules, deltas stored as one matrix:
  ``dP_2i = dP_i P_i + P_i dP_i + dP_i dP_i`` (three dense products per
  level vs re-evaluation's one);
* REEVAL            — one dense product per level.

Expected ordering: factored << reeval <= dense-incr.
"""

import numpy as np
import pytest

from conftest import make_matrix, refresh_timer, row_update
from repro.bench import time_refresh_trimmed
from repro.iterative import IncrementalPowers, Model, ReevalPowers

N = 384
K = 16


class DenseDeltaPowers:
    """Incremental maintenance with *unfactored* deltas (the ablation arm).

    Follows the delta rules of Section 4.1 exactly, but stores every
    ``dP_i`` as a single dense matrix, so each squaring level costs
    three dense ``O(n^gamma)`` products — Example 4.4's anti-pattern.
    """

    def __init__(self, a: np.ndarray, k: int):
        self.k = k
        self.model = Model.exponential()
        self.schedule = self.model.schedule(k)
        self.powers = {1: np.array(a, dtype=np.float64)}
        for i in self.schedule[1:]:
            half = self.powers[i // 2]
            self.powers[i] = half @ half

    def refresh(self, u: np.ndarray, v: np.ndarray) -> None:
        delta = u @ v.T  # dense from the start
        deltas = {1: delta}
        for i in self.schedule[1:]:
            half = self.powers[i // 2]
            d_half = deltas[i // 2]
            deltas[i] = d_half @ half + half @ d_half + d_half @ d_half
        for i in self.schedule:
            self.powers[i] += deltas[i]

    def result(self) -> np.ndarray:
        return self.powers[self.k]


def _maintainer(arm: str):
    a = make_matrix(N)
    if arm == "FACTORED":
        return IncrementalPowers(a, K, Model.exponential())
    if arm == "DENSE-INCR":
        return DenseDeltaPowers(a, K)
    return ReevalPowers(a, K, Model.exponential())


@pytest.mark.parametrize("arm", ["FACTORED", "DENSE-INCR", "REEVAL"])
def test_delta_representation_refresh(benchmark, arm):
    maintainer = _maintainer(arm)
    benchmark.pedantic(refresh_timer(maintainer, N), rounds=3, iterations=1,
                       warmup_rounds=1)


def test_report_ablation_factored(benchmark, capsys, bench_record):
    # The ablation arm is *correct*, just slow — same maintained values.
    factored = _maintainer("FACTORED")
    dense = _maintainer("DENSE-INCR")
    for seed in range(3):
        u, v = row_update(N, seed)
        factored.refresh(u, v)
        dense.refresh(u, v)
    np.testing.assert_allclose(factored.result(), dense.result(), atol=1e-6)

    updates = [row_update(N, seed) for seed in range(12)]
    times = {arm: time_refresh_trimmed(_maintainer(arm), list(updates))
             for arm in ("FACTORED", "DENSE-INCR", "REEVAL")}

    with capsys.disabled():
        print(f"\n== Ablation: delta representation (A^{K}, n={N}) ==")
        for arm, seconds in times.items():
            print(f"  {arm:<11}: {seconds * 1e3:8.2f} ms/refresh")
        print(f"  factored speedup vs dense-incr: "
              f"{times['DENSE-INCR'] / times['FACTORED']:.1f}x")
        print(f"  factored speedup vs reeval:     "
              f"{times['REEVAL'] / times['FACTORED']:.1f}x")
    bench_record({"seconds": times})

    # The paper's claim (Example 4.4): dense incremental propagation is
    # no better than re-evaluation, while factored propagation is far
    # cheaper than either.
    assert times["FACTORED"] < times["REEVAL"] / 2
    assert times["FACTORED"] < times["DENSE-INCR"] / 2
    assert times["DENSE-INCR"] > times["REEVAL"] * 0.8

    # Register the winning arm with pytest-benchmark as well.
    benchmark.pedantic(refresh_timer(_maintainer("FACTORED"), N),
                       rounds=3, iterations=1, warmup_rounds=1)
