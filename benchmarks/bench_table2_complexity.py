"""Table 2 — measured cost growth vs the closed-form complexity table.

Table 2 is analytic; this benchmark *validates it empirically*: refresh
FLOPs are counted over doubling sweeps of n and k and the fitted growth
exponents are compared with the formulas' predictions for every
strategy x model cell of the matrix-powers program (the general form's
crossovers are asserted in tests/test_iterative_general.py).

Predictions under rank-1 updates, k fixed:
  REEVAL (any model):  ~ n^3        INCR (any model): ~ n^2
and n fixed, k swept:
  REEVAL-EXP ~ log k   INCR-LIN ~ k^2   INCR-EXP ~ k
"""

import numpy as np
import pytest

from conftest import make_matrix
from repro.cost import Counter
from repro.cost.complexity import fitted_exponent
from repro.iterative import make_powers, parse_model

N_SWEEP = [32, 64, 128, 256]
K_SWEEP = [8, 16, 32, 64]


def _refresh_flops(strategy: str, model_label: str, n: int, k: int) -> int:
    counter = Counter()
    maintainer = make_powers(strategy, make_matrix(n), k,
                             parse_model(model_label), counter)
    u = np.zeros((n, 1))
    u[0, 0] = 1.0
    counter.reset()
    maintainer.refresh(u, 0.01 * np.ones((n, 1)))
    return counter.total_flops


@pytest.mark.parametrize("model_label", ["LIN", "SKIP-4", "EXP"])
@pytest.mark.parametrize("strategy", ["REEVAL", "INCR"])
def test_flop_count_one_refresh(benchmark, strategy, model_label):
    benchmark.pedantic(
        lambda: _refresh_flops(strategy, model_label, 128, 16),
        rounds=2, iterations=1,
    )


def test_report_table2(benchmark, capsys, bench_record):
    rows = []
    for strategy, model_label, expected in [
        ("REEVAL", "LIN", 3.0),
        ("REEVAL", "SKIP-4", 3.0),
        ("REEVAL", "EXP", 3.0),
        ("INCR", "LIN", 2.0),
        ("INCR", "SKIP-4", 2.0),
        ("INCR", "EXP", 2.0),
    ]:
        flops = [_refresh_flops(strategy, model_label, n, 16) for n in N_SWEEP]
        measured = fitted_exponent([float(n) for n in N_SWEEP],
                                   [float(f) for f in flops])
        rows.append((f"{strategy}-{model_label}", "n", expected, measured))

    for strategy, model_label, expected in [
        ("INCR", "LIN", 2.0),   # n^2 k^2
        ("INCR", "EXP", 1.0),   # n^2 k
    ]:
        flops = [_refresh_flops(strategy, model_label, 64, k) for k in K_SWEEP]
        measured = fitted_exponent([float(k) for k in K_SWEEP],
                                   [float(f) for f in flops])
        rows.append((f"{strategy}-{model_label}", "k", expected, measured))

    benchmark.pedantic(
        lambda: _refresh_flops("INCR", "EXP", 128, 16), rounds=2, iterations=1
    )

    with capsys.disabled():
        print("\n== Table 2: growth-exponent check (formula vs measured) ==")
        print(f"{'cell':>14} {'var':>4} {'formula':>8} {'measured':>9}")
        for cell, var, expected, measured in rows:
            print(f"{cell:>14} {var:>4} {expected:>8.1f} {measured:>9.2f}")
    bench_record([
        {"cell": cell, "var": var, "formula": expected, "measured": measured}
        for cell, var, expected, measured in rows
    ])

    for cell, var, expected, measured in rows:
        assert abs(measured - expected) < 0.45, (cell, var, expected, measured)


def test_report_table2_incr_never_cubic(benchmark, capsys):
    """No INCR cell performs an O(n^3)-class operation on a refresh."""
    findings = []
    for model_label in ("LIN", "SKIP-4", "EXP"):
        n, k = 192, 16
        counter = Counter()
        maintainer = make_powers("INCR", make_matrix(n), k,
                                 parse_model(model_label), counter)
        u = np.zeros((n, 1))
        u[0, 0] = 1.0
        counter.reset()
        maintainer.refresh(u, 0.01 * np.ones((n, 1)))
        dense_product = 2 * n**3
        findings.append((model_label, counter.total_flops, dense_product))

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    with capsys.disabled():
        print("\n== Table 2 corollary: INCR refresh vs ONE dense product ==")
        for model_label, total, dense in findings:
            print(f"  INCR-{model_label:<7} {total:>14,} FLOPs "
                  f"(one n^3 product = {dense:,})")

    for model_label, total, dense in findings:
        budget = 16 if model_label == "LIN" else 4
        assert total < budget * dense, (model_label, total, dense)
