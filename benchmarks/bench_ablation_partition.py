"""Ablation — hybrid (row + column) data partitioning (Section 6).

"Linview partitions large matrices both horizontally and vertically
... Although such a hybrid partitioning strategy doubles the memory
consumption, it allows the system to avoid expensive reshuffling of
large matrices."  The incremental trigger needs *both* product
orientations per level (``P U`` and ``P' V``); with row-only
partitioning the ``P' V`` orientation becomes an all-reduce of
per-worker partials (``workers x`` the gather traffic), while hybrid
partitioning keeps it a thin gather.

The arms replay the comm ledger of one INCR refresh of ``A^16``:
hybrid traffic is measured; the row-only cost is derived by re-pricing
every column-orientation gather at the all-reduce volume.
"""


from conftest import make_matrix, row_update
from repro.distributed import (
    Cluster,
    ClusterConfig,
    DistributedIncrementalPowers,
    GATHER,
    hybrid_extra_bytes,
)
from repro.iterative import Model

N = 240
K = 16
GRID = 4


def _refresh_ledger():
    """Comm events for one INCR refresh (initial build excluded)."""
    cluster = Cluster(config=ClusterConfig.laptop_scale(GRID))
    maintainer = DistributedIncrementalPowers(
        make_matrix(N), K, Model.exponential(), cluster
    )
    cluster.reset()
    u, v = row_update(N, seed=3)
    maintainer.refresh(u, v)
    return cluster


def _row_only_bytes(cluster) -> int:
    """Total traffic if column-orientation gathers were all-reduces."""
    workers = cluster.config.grid ** 2
    total = 0
    for event in cluster.comm.events:
        if event.kind == GATHER:
            # Row-only: every worker holds a partial (n x k) sum that
            # must be combined — `workers` times the hybrid gather.
            total += event.nbytes * workers
        else:
            total += event.nbytes
    return total


def test_partitioning_refresh(benchmark):
    cluster = Cluster(config=ClusterConfig.laptop_scale(GRID))
    maintainer = DistributedIncrementalPowers(
        make_matrix(N), K, Model.exponential(), cluster
    )
    state = {"seed": 0}

    def call():
        state["seed"] += 1
        u, v = row_update(N, state["seed"])
        maintainer.refresh(u, v)

    benchmark.pedantic(call, rounds=3, iterations=1, warmup_rounds=1)


def test_report_ablation_partition(benchmark, capsys, bench_record):
    assert hybrid_extra_bytes(N, N) == N * N * 8

    cluster = _refresh_ledger()
    workers = GRID * GRID
    hybrid_bytes = cluster.comm.total_bytes
    row_only = _row_only_bytes(cluster)
    hybrid_gather = cluster.comm.gathered_bytes
    row_only_gather = hybrid_gather * workers
    extra_mem = hybrid_extra_bytes(N, N)

    with capsys.disabled():
        print(f"\n== Ablation: hybrid partitioning "
              f"(A^{K} INCR refresh, n={N}, grid {GRID}x{GRID}) ==")
        print(f"  column-orientation traffic, hybrid:   "
              f"{hybrid_gather:>12,} bytes (thin gather)")
        print(f"  column-orientation traffic, row-only: "
              f"{row_only_gather:>12,} bytes (all-reduce of partials)")
        print(f"  total refresh traffic: {hybrid_bytes:,} (hybrid) vs "
              f"{row_only:,} (row-only), {row_only / hybrid_bytes:.2f}x")
        print(f"  memory cost of hybrid: {extra_mem:,} bytes "
              f"(one extra replica of A) per view")
    bench_record({"hybrid_bytes": hybrid_bytes, "row_only_bytes": row_only,
                  "hybrid_gather_bytes": hybrid_gather,
                  "row_only_gather_bytes": row_only_gather,
                  "hybrid_extra_memory_bytes": extra_mem},
                 n=N, grid=GRID)

    # The Section 6 trade: the column-orientation traffic shrinks by
    # exactly the worker count (thin gather vs all-reduce of full
    # partials); total refresh traffic shrinks by a diluted but real
    # factor (broadcasts are orientation-independent).
    assert row_only_gather == hybrid_gather * workers
    assert hybrid_bytes < row_only
    assert row_only / hybrid_bytes > 1.2

    # An INCR refresh never shuffles; it broadcasts factors and gathers
    # thin partials.
    kinds = cluster.comm.bytes_by_kind()
    assert kinds["shuffle"] == 0
    assert kinds["broadcast"] > 0
    assert kinds["gather"] > 0

    sim = Cluster(config=ClusterConfig.laptop_scale(GRID))
    maintainer = DistributedIncrementalPowers(
        make_matrix(N), K, Model.exponential(), sim
    )
    state = {"seed": 100}

    def call():
        state["seed"] += 1
        u, v = row_update(N, state["seed"])
        maintainer.refresh(u, v)

    benchmark.pedantic(call, rounds=3, iterations=1, warmup_rounds=1)
