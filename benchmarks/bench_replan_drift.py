"""Online re-planning on a density-drifting stream, and calibration flips.

A long-lived ``A^2`` walk-count session (the reachability building
block) over a graph-shaped operator whose density *drifts* —
reachability-style fill-in: each update makes another row of ``A``
substantially dense, so the input walks from ~0.4% occupied to well
past the sparse/dense boundary.  Any plan frozen at session open is
wrong for half the stream:

* ``backend="sparse"`` is right early (thin passes against a tiny-nnz
  CSR operator) and pays dearly late (CSR structure merges per update,
  indirect-indexed products at >10% density);
* ``backend="dense"`` pays O(n^2) passes against a nearly empty matrix
  early and wins late.

The re-planning session (:class:`repro.runtime.drift.ReplanMonitor`)
re-prices the plan grid from live state every ``check_every`` updates
and converts sparse state to dense mid-stream — no rebuild — so its
end-to-end time must beat **both** frozen plans.

The second experiment feeds :mod:`repro.calibrate` into the planner: a
microbenchmark pass fits this machine's call-overhead and sparse-kernel
penalties, then a sweep over boundary workloads (n x density grid)
counts planner decisions that *flip* versus the shipped class
constants — evidence the calibrated constants actually move the
dense/sparse frontier rather than just rescaling every estimate.

Run as a script for the full sizes (or ``--smoke`` in CI)::

    PYTHONPATH=src python benchmarks/bench_replan_drift.py
    PYTHONPATH=src python benchmarks/bench_replan_drift.py --smoke
    PYTHONPATH=src python benchmarks/bench_replan_drift.py --json out.json

The pytest entry point runs the smoke sizes, asserts the adaptive
session stays ahead of both frozen plans (with CI noise headroom), and
records the series via the shared ``bench_record`` fixture.
"""

from __future__ import annotations

import argparse
import time

import numpy as np

from conftest import add_json_flag, write_bench_json

#: Script acceptance: adaptive strictly beats the best frozen plan.
TOLERANCE = 1.0

#: Smoke runs sample few updates per phase; guard the shape, not the
#: full margin.
SMOKE_TOLERANCE = 1.15

#: The maintained program: one walk-count hop (``B[i, j] > 0`` iff some
#: length-2 path j -> i exists).  Deeper chains (``A^4``) derive most of
#: their cost from views that fill in — and densify — almost at once
#: under every backend, which mutes the backend axis; one hop keeps the
#: cost concentrated in the state whose density actually drifts.
A2_SOURCE = "input A(n, n); B := A * A; output B;"


def _program():
    from repro.frontend import parse_program

    return parse_program(A2_SOURCE)


def sparse_operator(rng: np.random.Generator, n: int,
                    density: float) -> np.ndarray:
    """Random operator with ~``density`` nnz, entries small and tame."""
    return ((rng.random((n, n)) < density)
            * (0.05 * rng.standard_normal((n, n))))


def drifting_stream(rng: np.random.Generator, n: int, sparse_count: int,
                    fill_count: int, fill: float = 0.8,
                    scale: float = 0.05):
    """A two-phase stream whose density regime flips mid-way.

    Phase 1 (``sparse_count`` updates): ordinary sparse row edits —
    each touches ~1% of a row, so the operator stays in the regime the
    sparse backend was planned for.  Phase 2 (``fill_count`` updates):
    reachability-style fill-in — update ``i`` rewrites row ``i mod n``
    with a ~``fill``-dense vector (every new edge batch makes another
    vertex broadly connected), ramping input density linearly toward
    ``fill * fill_count / n``.  Any plan frozen at open is wrong for
    one of the phases.
    """
    from repro.runtime import FactoredUpdate

    updates = []
    for i in range(sparse_count + fill_count):
        u = np.zeros((n, 1))
        u[i % n, 0] = 1.0
        row_fill = 0.01 if i < sparse_count else fill
        v = ((rng.random((n, 1)) < row_fill)
             * (scale * rng.standard_normal((n, 1))))
        updates.append(FactoredUpdate("A", u, v))
    return updates


def _drive(session, updates) -> float:
    start = time.perf_counter()
    for update in updates:
        session.apply_update(update)
    return time.perf_counter() - start


def bench_replan(n: int, sparse_updates: int, fill_updates: int,
                 check_every: int, d0: float = 0.004,
                 repeats: int = 1, seed: int = 14036968) -> dict:
    """End-to-end seconds for frozen-dense/frozen-sparse/re-planning.

    Each driver is run ``repeats`` times on a fresh session over the
    same stream and the minimum end-to-end time is kept — transient
    scheduler load hits whole drives, and the minimum is the standard
    de-noised estimate for a deterministic workload.  Rounds are
    *interleaved* (every driver once per round) so a load burst falls
    across all drivers instead of swallowing one driver's every sample.
    """
    from repro.runtime import open_session

    program = _program()
    rng = np.random.default_rng(seed)
    a0 = sparse_operator(rng, n, d0)
    stream = drifting_stream(rng, n, sparse_updates, fill_updates)
    updates = len(stream)

    # Frozen baselines cover the planner's one-shot choice per backend
    # AND the forced-INCR cells (the strongest static configurations on
    # this workload), so "beats the best frozen plan" is not an
    # artifact of the opening plan being weak.  Batching is pinned OFF
    # for every driver: update batching compresses the gap between all
    # configurations on this stream (CSR-merge amortization mostly
    # cancels the fill-in penalty), which would measure batching, not
    # adaptive planning — bench_batch_pipeline.py owns the batching
    # story; this benchmark isolates the re-planning one.
    configs = (
        ("frozen-dense", {"backend": "dense"}),
        ("frozen-sparse", {"backend": "sparse"}),
        ("frozen-dense-incr", {"backend": "dense", "plan": "incr"}),
        ("frozen-sparse-incr", {"backend": "sparse", "plan": "incr"}),
        ("replan", {"replan": {"check_every": check_every}}),
    )
    configs = tuple(
        (label, {**kwargs, "batch": "off"}) for label, kwargs in configs
    )
    results: dict[str, float] = {label: float("inf") for label, _ in configs}
    outputs = {}
    for _ in range(max(repeats, 1)):
        for label, kwargs in configs:
            start = time.perf_counter()
            session = open_session(program, {"A": a0.copy()}, dims={"n": n},
                                   refresh_count=updates, **kwargs)
            setup = time.perf_counter() - start
            results[label] = min(results[label], setup + _drive(session, stream))
            outputs[label] = np.array(session.output())
            if label == "replan":
                replan_info = {
                    "switches": session.switch_count,
                    "final_plan": session.plan.label,
                    "events": [
                        {"refreshes": e.refreshes, "from": e.from_label,
                         "to": e.to_label, "switched": e.switched}
                        for e in session.replans
                    ],
                }
                final_density = (float(np.count_nonzero(session["A"]))
                                 / (n * n))

    drift = max(
        float(np.max(np.abs(outputs["replan"] - outputs[label])))
        for label in results if label != "replan"
    )
    scale = max(1.0, float(np.max(np.abs(outputs["frozen-dense"]))))
    if drift / scale > 1e-8:
        raise AssertionError(f"drivers diverged: drift={drift}")

    best_frozen = min(seconds for label, seconds in results.items()
                      if label != "replan")
    return {
        "n": n,
        "updates": updates,
        "sparse_updates": sparse_updates,
        "fill_updates": fill_updates,
        "check_every": check_every,
        "initial_density": d0,
        "final_density": final_density,
        "seconds": results,
        "ratio_vs_best_frozen": results["replan"] / best_frozen,
        **replan_info,
    }


def calibration_flips(quick: bool = True, repeats: int = 3) -> dict:
    """Planner decisions that move once measured constants are loaded.

    Sweeps session planning over an (n x density) grid straddling the
    dense/sparse boundary and compares the chosen (strategy, backend)
    with ``calibration=None`` (shipped class constants) against the
    fresh :func:`repro.calibrate.run_calibration` fit.
    """
    from repro.calibrate import run_calibration
    from repro.planner import WorkloadStats, plan_program

    calibration = run_calibration(quick=quick, repeats=repeats)
    program = _program()
    rng = np.random.default_rng(20140622)
    stats = WorkloadStats(n=1, refresh_count=200)

    flips = []
    cells = 0
    for n in (96, 192, 384):
        for density in np.geomspace(0.002, 0.3, 8):
            a = sparse_operator(rng, n, float(density))
            inputs = {"A": a}
            cells += 1
            shipped = plan_program(program, inputs, stats=stats,
                                   calibration=None)
            measured = plan_program(program, inputs, stats=stats,
                                    calibration=calibration)
            if (shipped.strategy, shipped.backend) != (
                    measured.strategy, measured.backend):
                flips.append({
                    "n": n,
                    "density": round(float(density), 5),
                    "shipped": shipped.label,
                    "calibrated": measured.label,
                })
    sparse_cal = calibration.get("sparse")
    dense_cal = calibration.get("dense")
    return {
        "cells": cells,
        "flip_count": len(flips),
        "flips": flips,
        "constants": {
            "dense_call_overhead_flops":
                None if dense_cal is None else dense_cal.call_overhead_flops,
            "sparse_call_overhead_flops":
                None if sparse_cal is None else sparse_cal.call_overhead_flops,
            "sparse_overhead":
                None if sparse_cal is None else sparse_cal.sparse_overhead,
            "sparse_update_overhead":
                None if sparse_cal is None
                else sparse_cal.sparse_update_overhead,
        },
    }


def run_all(smoke: bool = False) -> dict:
    # Smoke keeps n large enough that the per-phase backend gaps stay
    # well clear of scheduler noise (they scale ~n^2), fills in to a
    # density where the late phase decisively favors dense (~0.3), and
    # de-noises with best-of-2 drives; only the stream shortens.
    replan = bench_replan(
        n=640 if smoke else 1024,
        sparse_updates=150 if smoke else 300,
        fill_updates=240 if smoke else 320,
        check_every=10 if smoke else 20,
        repeats=3 if smoke else 1,
    )
    flips = calibration_flips(quick=smoke, repeats=2 if smoke else 3)
    return {"replan_drift": replan, "calibration": flips}


def report(results: dict) -> None:
    replan = results["replan_drift"]
    print(f"density-drifting A^2 stream: n={replan['n']}, "
          f"{replan['updates']} updates, density "
          f"{replan['initial_density']:.3f} -> {replan['final_density']:.3f}")
    for label, seconds in sorted(replan["seconds"].items(),
                                 key=lambda kv: kv[1]):
        print(f"  {label:<14} {seconds * 1e3:9.1f} ms end-to-end")
    print(f"  -> replanning at {replan['ratio_vs_best_frozen']:.2f}x the "
          f"best frozen plan ({replan['switches']} switch(es), final plan "
          f"{replan['final_plan']})")
    for event in replan["events"]:
        verb = "switched" if event["switched"] else "considered"
        print(f"     @ {event['refreshes']:>4}: {verb} "
              f"{event['from']} -> {event['to']}")

    cal = results["calibration"]
    print(f"\ncalibrated constants vs shipped: "
          f"{cal['flip_count']}/{cal['cells']} boundary decisions flipped")
    for flip in cal["flips"][:6]:
        print(f"  n={flip['n']:>4} d={flip['density']:<8g} "
              f"{flip['shipped']} -> {flip['calibrated']}")
    if len(cal["flips"]) > 6:
        print(f"  ... and {len(cal['flips']) - 6} more")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="small fast run for CI harness-rot checks")
    add_json_flag(parser)
    args = parser.parse_args(argv)
    results = run_all(smoke=args.smoke)
    report(results)
    if args.json:
        path = write_bench_json(args.json, "replan_drift", results,
                                smoke=args.smoke)
        print(f"\nresults -> {path}")

    threshold = SMOKE_TOLERANCE if args.smoke else TOLERANCE
    ratio = results["replan_drift"]["ratio_vs_best_frozen"]
    if ratio > threshold:
        print(f"\nWARNING: re-planning fell behind the best frozen plan "
              f"({ratio:.2f}x > {threshold:.2f}x)")
        return 1
    if results["calibration"]["flip_count"] < 1:
        print("\nWARNING: calibration changed no planner decision at the "
              "boundary")
        return 1
    verdict = ("beats every frozen plan" if ratio <= 1.0
               else f"within the smoke noise band ({ratio:.2f}x best frozen)")
    print(f"\nre-planning {verdict}; calibration moves the dense/sparse "
          "frontier")
    return 0


def test_report_replan_drift(bench_record):
    """Smoke-size run: adaptive must stay ahead of both frozen plans."""
    results = run_all(smoke=True)
    report(results)
    bench_record(results, smoke=True)
    replan = results["replan_drift"]
    assert replan["switches"] >= 1, "expected a mid-stream backend switch"
    assert replan["ratio_vs_best_frozen"] < SMOKE_TOLERANCE, (
        f"re-planning too slow: {replan['ratio_vs_best_frozen']:.2f}x "
        f"best frozen"
    )
    assert results["calibration"]["flip_count"] >= 1, (
        "calibrated constants changed no boundary decision"
    )


if __name__ == "__main__":
    raise SystemExit(main())
