"""Gate catalog-sharing results against the committed baseline.

Usage::

    python benchmarks/check_catalog_trend.py BASELINE.json CURRENT.json

Compares the ``derived`` metrics emitted by
``bench_catalog_sharing.py --json`` against the baseline.  The metrics
are counted FLOP ratios — deterministic and machine-independent — so a
regression here means the catalog genuinely started doing more work,
not that the runner was noisy.

Guards:

* ``speedup_at_top`` (shared vs independent FLOPs at the top tenant
  count) may not fall more than ``MAX_REGRESSION`` below baseline, and
  never below the absolute floor ``MIN_SPEEDUP``.
* ``flatness`` (shared FLOPs at top N over N=1) may not rise more than
  ``MAX_REGRESSION`` above baseline, and never above ``MAX_FLATNESS``.
* ``mixed_flops_ratio / mixed_nodes_ratio`` (work growth per
  distinct-node growth) may not exceed ``MAX_TRACKING``.

Exit status: 0 = within bounds, 1 = regression, 2 = usage error.
"""

from __future__ import annotations

import json
import sys

#: Relative slack against the baseline ratio before a change counts as
#: a regression (same convention as check_serve_trend.py).
MAX_REGRESSION = 0.25

#: Absolute floors/ceilings — the ISSUE's acceptance criteria.  These
#: hold regardless of how generous the baseline happens to be.
MIN_SPEEDUP = 3.0
MAX_FLATNESS = 1.3
MAX_TRACKING = 1.5


def load(path: str) -> dict:
    with open(path, encoding="utf-8") as handle:
        data = json.load(handle)
    return data.get("results", data)


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if len(argv) != 2:
        print(__doc__)
        return 2
    baseline = load(argv[0])["derived"]
    current = load(argv[1])["derived"]
    failures: list[str] = []

    base_speedup = baseline["speedup_at_top"]
    cur_speedup = current["speedup_at_top"]
    speedup_floor = max(MIN_SPEEDUP, base_speedup * (1 - MAX_REGRESSION))
    status = "ok" if cur_speedup >= speedup_floor else "REGRESSED"
    print(f"speedup_at_top  baseline {base_speedup:6.2f}x  "
          f"current {cur_speedup:6.2f}x  floor {speedup_floor:6.2f}x  "
          f"[{status}]")
    if cur_speedup < speedup_floor:
        failures.append(
            f"sharing speedup fell to {cur_speedup:.2f}x "
            f"(floor {speedup_floor:.2f}x)")

    base_flat = baseline["flatness"]
    cur_flat = current["flatness"]
    flat_ceiling = min(MAX_FLATNESS, base_flat * (1 + MAX_REGRESSION))
    status = "ok" if cur_flat <= flat_ceiling else "REGRESSED"
    print(f"flatness        baseline {base_flat:6.2f}x  "
          f"current {cur_flat:6.2f}x  ceiling {flat_ceiling:6.2f}x  "
          f"[{status}]")
    if cur_flat > flat_ceiling:
        failures.append(
            f"shared work now grows {cur_flat:.2f}x with tenant count "
            f"(ceiling {flat_ceiling:.2f}x)")

    cur_tracking = (current["mixed_flops_ratio"]
                    / max(current["mixed_nodes_ratio"], 1e-9))
    status = "ok" if cur_tracking <= MAX_TRACKING else "REGRESSED"
    print(f"mixed tracking  current {cur_tracking:6.2f}x  "
          f"ceiling {MAX_TRACKING:6.2f}x  [{status}]")
    if cur_tracking > MAX_TRACKING:
        failures.append(
            f"mixed-family work outgrew distinct nodes {cur_tracking:.2f}x "
            f"(ceiling {MAX_TRACKING:.2f}x)")

    for failure in failures:
        print(f"FAIL: {failure}")
    if not failures:
        print("catalog sharing trend: within bounds")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
