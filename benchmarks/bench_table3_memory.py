"""Table 3 — memory requirements vs refresh-time speedup for A^16.

Paper (Spark): REEVAL-EXP holds ~n^2 state while INCR-EXP materializes
every scheduled power (log k of them, plus hybrid-partitioning copies);
the speedup-to-memory-overhead ratio *grows* with n (2.99 at 20K to
16.00 at 50K) — "the benefit of investing more memory resources
increases with higher dimensionality".

Reproduced at n in {128, 256, 512}: memory comes from the maintainers'
``memory_bytes()`` accounting, time from measured refreshes.
"""

import pytest

from conftest import make_matrix, refresh_timer, row_update
from repro.bench import time_refresh
from repro.cost.memory import MemoryComparison
from repro.iterative import Model, make_powers

K = 16
SIZES = [128, 256, 512]
PAPER = "Spark: speedup/memory = 2.99 @20K .. 16.00 @50K (ratio grows with n)"


@pytest.mark.parametrize("n", SIZES)
def test_incr_refresh_at_size(benchmark, n):
    maintainer = make_powers("INCR", make_matrix(n), K, Model.exponential())
    benchmark.pedantic(refresh_timer(maintainer, n), rounds=3, iterations=1,
                       warmup_rounds=1)


def test_report_table3(benchmark, capsys, bench_record):
    comparisons = []
    for n in SIZES:
        reeval = make_powers("REEVAL", make_matrix(n), K, Model.exponential())
        incr = make_powers("INCR", make_matrix(n), K, Model.exponential())
        updates = [row_update(n, seed) for seed in range(5)]
        reeval_time = time_refresh(reeval, updates)
        incr_time = time_refresh(incr, list(updates))
        comparisons.append(
            MemoryComparison(
                n=n,
                reeval_bytes=reeval.memory_bytes(),
                incr_bytes=incr.memory_bytes(),
                reeval_time=reeval_time,
                incr_time=incr_time,
            )
        )

    maintainer = make_powers("INCR", make_matrix(SIZES[-1]), K,
                             Model.exponential())
    benchmark.pedantic(refresh_timer(maintainer, SIZES[-1]), rounds=3,
                       iterations=1, warmup_rounds=1)

    with capsys.disabled():
        print(f"\n== Table 3: memory vs speedup, A^16 (paper: {PAPER}) ==")
        print(f"{'n':>6} {'REEVAL MB':>10} {'INCR MB':>9} {'time spdup':>11} "
              f"{'mem cost':>9} {'spdup/mem':>10}")
        for c in comparisons:
            print(f"{c.n:>6} {c.reeval_bytes / 1e6:>9.1f} "
                  f"{c.incr_bytes / 1e6:>8.1f} {c.speedup:>10.1f}x "
                  f"{c.memory_overhead:>8.2f}x {c.speedup_per_memory:>9.2f}")
    bench_record([
        {"n": c.n, "reeval_bytes": c.reeval_bytes,
         "incr_bytes": c.incr_bytes, "speedup": c.speedup,
         "memory_overhead": c.memory_overhead}
        for c in comparisons
    ], k=K)

    # Memory overhead is the schedule length (5 powers vs ~3 matrices),
    # identical across sizes; the speedup/memory ratio must grow with n.
    overheads = [c.memory_overhead for c in comparisons]
    assert max(overheads) - min(overheads) < 0.2
    ratios = [c.speedup_per_memory for c in comparisons]
    assert ratios[-1] > ratios[0]
