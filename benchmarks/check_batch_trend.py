"""Fail CI when batched maintenance regresses against the committed baseline.

Usage::

    python benchmarks/check_batch_trend.py CURRENT.json BASELINE.json

Both files are ``bench_batch_pipeline.py --json`` outputs.  Absolute
seconds are not comparable across machines, so the guarded metric is the
**batched-vs-unit speedup ratio** per scenario — both paths run on the
same machine in the same process, so the ratio isolates the batching
pipeline's relative health.  A scenario regresses when its current
speedup falls more than ``MAX_REGRESSION`` (25%) below the baseline's;
two machine-independent invariants are re-checked absolutely: the
planner must still recommend a width > 1 on the skewed stream, and the
achieved compression there must not collapse.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

#: Allowed fractional drop of the batched speedup vs the baseline ratio.
MAX_REGRESSION = 0.25

#: Scenarios guarded by the ratio check (the highest-skew cells, where
#: the Table 4 win is the headline; flat cells are noisier).
GUARDED = ("incr_theta2", "reeval_theta2")


def load(path: str) -> dict:
    data = json.loads(Path(path).read_text())
    return data.get("results", data)


def main(argv=None) -> int:
    argv = argv if argv is not None else sys.argv[1:]
    if len(argv) != 2:
        print(__doc__)
        return 2
    current, baseline = load(argv[0]), load(argv[1])

    failures = []
    for key in GUARDED:
        if key not in current or key not in baseline:
            failures.append(f"{key}: missing from current or baseline JSON")
            continue
        now = float(current[key]["speedup_batched_vs_unit"])
        then = float(baseline[key]["speedup_batched_vs_unit"])
        floor = then * (1.0 - MAX_REGRESSION)
        status = "OK" if now >= floor else "REGRESSED"
        print(f"{key}: batched speedup {now:.2f}x (baseline {then:.2f}x, "
              f"floor {floor:.2f}x) {status}")
        if now < floor:
            failures.append(
                f"{key}: batched per-update wall time regressed >"
                f"{MAX_REGRESSION:.0%} (speedup {now:.2f}x < floor "
                f"{floor:.2f}x)"
            )
        if int(current[key]["recommended_width"]) <= 1:
            failures.append(
                f"{key}: planner no longer recommends batching "
                f"(width {current[key]['recommended_width']})"
            )
        compression = float(current[key]["achieved_compression"])
        if compression < 1.5:
            failures.append(
                f"{key}: skewed-stream compression collapsed to "
                f"{compression:.2f}x (expected >= 1.5x)"
            )

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print("batched maintenance trend: within baseline envelope")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
