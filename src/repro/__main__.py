"""``python -m repro`` — the compiler CLI (see :mod:`repro.cli`)."""

import sys

from .cli import main

sys.exit(main())
