"""Runtime FLOP and byte counters.

A :class:`Counter` is threaded through the executor (and the distributed
engine) so every experiment can report *operation counts* as well as
wall-clock time.  Counts are grouped per operation kind, which lets the
Table 2 benchmarks verify that incremental triggers really do avoid
``matmul``-class work in favour of matrix-vector products.
"""

from __future__ import annotations

from collections import defaultdict
from contextlib import contextmanager
from typing import Iterator


class Counter:
    """Accumulates FLOPs by operation kind plus allocated bytes."""

    def __init__(self) -> None:
        self.flops_by_op: dict[str, int] = defaultdict(int)
        self.calls_by_op: dict[str, int] = defaultdict(int)
        self.bytes_allocated: int = 0

    def record(self, op: str, flops: int, out_bytes: int = 0) -> None:
        """Charge ``flops`` to operation kind ``op``."""
        self.flops_by_op[op] += flops
        self.calls_by_op[op] += 1
        self.bytes_allocated += out_bytes

    @property
    def total_flops(self) -> int:
        """Sum of FLOPs over all operation kinds."""
        return sum(self.flops_by_op.values())

    def flops(self, op: str) -> int:
        """FLOPs charged to one operation kind (0 if never used)."""
        return self.flops_by_op.get(op, 0)

    def reset(self) -> None:
        """Zero all tallies."""
        self.flops_by_op.clear()
        self.calls_by_op.clear()
        self.bytes_allocated = 0

    def snapshot(self) -> dict[str, int]:
        """A plain-dict copy of the per-op FLOP tallies."""
        return dict(self.flops_by_op)

    def merge(self, other: "Counter") -> None:
        """Fold another counter's tallies into this one."""
        for op, flops in other.flops_by_op.items():
            self.flops_by_op[op] += flops
        for op, calls in other.calls_by_op.items():
            self.calls_by_op[op] += calls
        self.bytes_allocated += other.bytes_allocated

    def __repr__(self) -> str:
        parts = ", ".join(f"{op}={v:,}" for op, v in sorted(self.flops_by_op.items()))
        return f"Counter(total={self.total_flops:,}; {parts})"


class NullCounter(Counter):
    """A counter that ignores everything (zero-overhead default)."""

    def record(self, op: str, flops: int, out_bytes: int = 0) -> None:  # noqa: D102
        pass


NULL_COUNTER = NullCounter()


@contextmanager
def counting() -> Iterator[Counter]:
    """Context manager yielding a fresh counter.

    Purely a readability helper::

        with counting() as ops:
            evaluate(expr, env, counter=ops)
        assert ops.flops("matmul") == 0
    """
    yield Counter()
