"""FLOP-counted, backend-dispatched matrix operations.

The iterative-model maintainers and the analytics layer execute
hand-specialized trigger bodies directly over arrays (the moral
equivalent of the paper's generated Octave code).  Routing their array
math through :class:`Ops` keeps FLOP accounting consistent with the
expression executor, so REEVAL/INCR/HYBRID comparisons report both
seconds *and* operations from one bookkeeping scheme.

The actual kernels live in a :class:`~repro.backends.base.Backend`
(dense NumPy by default, SciPy CSR via ``backend="sparse"``); charged
FLOPs come from the backend's cost hooks, so a sparse matvec is billed
at its nnz-proportional cost rather than the dense ``2 n^2``.
"""

from __future__ import annotations

import numpy as np

from . import counters


def outer_update_flops(backend, a, u, v) -> int:
    """FLOPs of applying ``a += u @ v.T`` under ``backend``.

    Dense state pays the full rank-k GEMM; sparse state accumulates a
    sparse outer product whose work scales with the factors' nonzeros.
    """
    rows, cols = backend.shape(a)
    k = u.shape[1]
    if backend.density(a) < 1.0:
        u_nnz = int(np.count_nonzero(u))
        v_nnz = int(np.count_nonzero(v))
        return 2 * max(u_nnz, 1) * max(v_nnz, 1) // max(k, 1)
    return 2 * rows * k * cols


class Ops:
    """Counted wrappers around one backend's kernels."""

    def __init__(
        self,
        counter: counters.Counter = counters.NULL_COUNTER,
        backend=None,
    ):
        # Imported here, not at module level: the backends package sits
        # above the cost formulas it charges with, and importing it at
        # the top would close an import cycle through ``repro.cost``.
        from ..backends import get_backend

        self.counter = counter
        self.backend = get_backend(backend)

    def mm(self, a, b):
        """Matrix product ``a @ b`` (charges ``2 n m p`` dense-equivalent)."""
        n, m = self.backend.shape(a)
        m2, p = self.backend.shape(b)
        if m != m2:
            raise ValueError(f"shape mismatch in product: {(n, m)} @ {(m2, p)}")
        self.counter.record(
            "matmul",
            self.backend.matmul_flops(a, b),
            n * p * 8,
        )
        return self.backend.matmul(a, b)

    def add(self, a, b):
        """Element-wise sum (charges ``n m``, nnz for sparse)."""
        self.counter.record("add", self.backend.add_flops(a))
        return self.backend.add(a, b)

    def sub(self, a, b):
        """Element-wise difference (charges ``n m``, nnz for sparse)."""
        self.counter.record("add", self.backend.add_flops(a))
        return self.backend.sub(a, b)

    def add_inplace(self, a, b):
        """``a += b`` where the representation allows; use the return value."""
        self.counter.record("add", self.backend.add_flops(a))
        return self.backend.add_inplace(a, b)

    def add_outer_inplace(self, a, u, v):
        """The trigger update ``a += u @ v.T``; use the return value.

        Dense state accumulates in one BLAS ``dgemm`` pass (see
        :meth:`repro.backends.dense.DenseBackend.add_outer`); sparse
        state adds a sparse outer product and may return a new (possibly
        densified) matrix, so callers must rebind the result.
        """
        self.counter.record("matmul", outer_update_flops(self.backend, a, u, v))
        self.counter.record("add", self.backend.add_flops(a))
        return self.backend.add_outer(a, u, v)

    def scale(self, coeff: float, a):
        """Scalar multiple (charges ``n m``, nnz for sparse)."""
        self.counter.record("scalar_mul", self.backend.scale_flops(a))
        return self.backend.scale(coeff, a)

    def inv(self, a):
        """Matrix inverse (charges ``~2 n^3``; result is dense)."""
        n = self.backend.shape(a)[0]
        self.counter.record("inverse", self.backend.inverse_flops(a), n * n * 8)
        return self.backend.inv(a)

    def hstack(self, blocks):
        """Horizontal concatenation (no arithmetic charged)."""
        return self.backend.hstack(blocks)

    def vstack(self, blocks):
        """Vertical concatenation (no arithmetic charged)."""
        return self.backend.vstack(blocks)

    def outer(self, u, v):
        """Outer-product-style product ``u @ v.T`` (charged as a matmul)."""
        return self.mm(u, self.backend.transpose(v))
