"""FLOP-counted NumPy operations.

The iterative-model maintainers and the analytics layer execute
hand-specialized trigger bodies directly over NumPy (the moral
equivalent of the paper's generated Octave code).  Routing their array
math through :class:`Ops` keeps FLOP accounting consistent with the
expression executor, so REEVAL/INCR/HYBRID comparisons report both
seconds *and* operations from one bookkeeping scheme.
"""

from __future__ import annotations

import numpy as np

from . import counters, flops

try:  # SciPy gives direct BLAS access for single-pass rank-k updates.
    from scipy.linalg import blas as _blas
except ImportError:  # pragma: no cover - scipy is a soft dependency
    _blas = None


class Ops:
    """Counted wrappers around the dense kernels used by the maintainers."""

    def __init__(self, counter: counters.Counter = counters.NULL_COUNTER):
        self.counter = counter

    def mm(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Matrix product ``a @ b`` (charges ``2 n m p``)."""
        n, m = a.shape
        m2, p = b.shape
        if m != m2:
            raise ValueError(f"shape mismatch in product: {a.shape} @ {b.shape}")
        self.counter.record(
            "matmul", flops.matmul_flops(n, m, p), flops.matrix_bytes(n, p)
        )
        return a @ b

    def add(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Element-wise sum (charges ``n m``)."""
        self.counter.record("add", flops.add_flops(*a.shape))
        return a + b

    def sub(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Element-wise difference (charges ``n m``)."""
        self.counter.record("add", flops.add_flops(*a.shape))
        return a - b

    def add_inplace(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """In-place sum ``a += b`` (charges ``n m``; returns ``a``)."""
        self.counter.record("add", flops.add_flops(*a.shape))
        a += b
        return a

    def add_outer_inplace(
        self, a: np.ndarray, u: np.ndarray, v: np.ndarray
    ) -> np.ndarray:
        """The trigger update ``a += u @ v.T`` in one memory pass.

        Uses BLAS ``dgemm`` with ``beta = 1`` accumulating straight into
        ``a`` (via its transposed Fortran-order view), halving memory
        traffic against the materialize-then-add form — this is what the
        paper's generated BLAS backends do for ``A += U V'`` updates.
        Falls back to two passes when SciPy or the layout rules it out.
        """
        rows, cols = a.shape
        k = u.shape[1]
        self.counter.record("matmul", flops.matmul_flops(rows, k, cols))
        self.counter.record("add", flops.add_flops(rows, cols))
        if (
            _blas is not None
            and a.flags.c_contiguous
            and a.dtype == np.float64
            and u.dtype == np.float64
            and v.dtype == np.float64
        ):
            # a.T (Fortran view) = v @ u.T + a.T, computed in place.
            _blas.dgemm(1.0, v, u, beta=1.0, c=a.T, trans_b=True,
                        overwrite_c=1)
            return a
        a += u @ v.T
        return a

    def scale(self, coeff: float, a: np.ndarray) -> np.ndarray:
        """Scalar multiple (charges ``n m``)."""
        self.counter.record("scalar_mul", flops.scalar_mul_flops(*a.shape))
        return coeff * a

    def inv(self, a: np.ndarray) -> np.ndarray:
        """Dense inverse (charges ``~2 n^3``)."""
        n = a.shape[0]
        self.counter.record("inverse", flops.inverse_flops(n), flops.matrix_bytes(n, n))
        return np.linalg.inv(a)

    def hstack(self, blocks: list[np.ndarray]) -> np.ndarray:
        """Horizontal concatenation (no arithmetic charged)."""
        return np.hstack(blocks)

    def vstack(self, blocks: list[np.ndarray]) -> np.ndarray:
        """Vertical concatenation (no arithmetic charged)."""
        return np.vstack(blocks)

    def outer(self, u: np.ndarray, v: np.ndarray) -> np.ndarray:
        """Outer-product-style product ``u @ v.T`` (charged as a matmul)."""
        return self.mm(u, v.T)
