"""FLOP-counted, backend-dispatched matrix operations.

The iterative-model maintainers and the analytics layer execute
hand-specialized trigger bodies directly over arrays (the moral
equivalent of the paper's generated Octave code).  Routing their array
math through :class:`Ops` keeps FLOP accounting consistent with the
expression executor, so REEVAL/INCR/HYBRID comparisons report both
seconds *and* operations from one bookkeeping scheme.

The actual kernels live in a :class:`~repro.backends.base.Backend`
(dense NumPy by default, SciPy CSR via ``backend="sparse"``); charged
FLOPs come from the backend's cost hooks, so a sparse matvec is billed
at its nnz-proportional cost rather than the dense ``2 n^2``.

With a :class:`~repro.runtime.workspace.Workspace` attached
(``workspace=``), the allocating kernels (:meth:`Ops.mm`,
:meth:`Ops.add`, :meth:`Ops.sub`, :meth:`Ops.scale`, :meth:`Ops.hstack`,
:meth:`Ops.vstack`) lease their result buffers from the arena instead of
allocating — the maintainers' per-refresh hot loops then allocate
nothing once warm.  Results are valid until the next refresh's frame
recycles the buffers (see the workspace module docs); maintainers open
one :meth:`Ops.frame` per refresh.
"""

from __future__ import annotations

from contextlib import nullcontext

import numpy as np

from . import counters


def outer_update_flops(backend, a, u, v) -> int:
    """FLOPs of applying ``a += u @ v.T`` under ``backend``.

    Dense state pays the full rank-k GEMM; sparse state accumulates a
    sparse outer product whose work scales with the factors' nonzeros.
    """
    rows, cols = backend.shape(a)
    k = u.shape[1]
    if backend.density(a) < 1.0:
        u_nnz = int(np.count_nonzero(u))
        v_nnz = int(np.count_nonzero(v))
        return 2 * max(u_nnz, 1) * max(v_nnz, 1) // max(k, 1)
    return 2 * rows * k * cols


class Ops:
    """Counted wrappers around one backend's kernels."""

    def __init__(
        self,
        counter: counters.Counter = counters.NULL_COUNTER,
        backend=None,
        workspace=None,
    ):
        # Imported here, not at module level: the backends package sits
        # above the cost formulas it charges with, and importing it at
        # the top would close an import cycle through ``repro.cost``.
        from ..backends import get_backend
        from ..runtime.workspace import as_workspace

        self.counter = counter
        self.backend = get_backend(backend)
        self.workspace = as_workspace(workspace)

    def frame(self):
        """One refresh's scratch scope (a no-op without a workspace).

        Maintainers wrap each refresh in ``with self.ops.frame():`` so
        every scratch buffer leased inside is reissued — not
        reallocated — on the next refresh.  Frames nest: a maintainer
        driving sub-maintainers that share the workspace keeps one
        coherent scope.
        """
        if self.workspace is None:
            return nullcontext(self)
        return self.workspace.frame()

    def _lease(self, rows: int, cols: int, *operands):
        """A scratch result buffer, if the workspace and operands allow."""
        if self.workspace is None:
            return None
        for operand in operands:
            if not isinstance(operand, np.ndarray):
                return None  # sparse results can't land in dense buffers
        return self.workspace.lease(rows, cols)

    def mm(self, a, b):
        """Matrix product ``a @ b`` (charges ``2 n m p`` dense-equivalent)."""
        n, m = self.backend.shape(a)
        m2, p = self.backend.shape(b)
        if m != m2:
            raise ValueError(f"shape mismatch in product: {(n, m)} @ {(m2, p)}")
        self.counter.record(
            "matmul",
            self.backend.matmul_flops(a, b),
            n * p * 8,
        )
        return self.backend.matmul_into(a, b, self._lease(n, p, a, b))

    def mm_into(self, a, b, out):
        """``a @ b`` written into ``out`` when the backend allows.

        The re-evaluation maintainers recompute state *into its own
        storage* with this (``out`` is the previous refresh's view, a
        legal destination because every recurrence reads strictly
        earlier entries).  ``out=None``, shape mismatches, and sparse
        operands all fall back to allocation; use the returned object.
        """
        n, m = self.backend.shape(a)
        m2, p = self.backend.shape(b)
        if m != m2:
            raise ValueError(f"shape mismatch in product: {(n, m)} @ {(m2, p)}")
        self.counter.record(
            "matmul",
            self.backend.matmul_flops(a, b),
            n * p * 8,
        )
        if (
            not isinstance(out, np.ndarray)
            or out.shape != (n, p)
            or not isinstance(a, np.ndarray)
            or not isinstance(b, np.ndarray)
        ):
            out = None
        return self.backend.matmul_into(a, b, out)

    def add(self, a, b):
        """Element-wise sum (charges ``n m``, nnz for sparse)."""
        self.counter.record("add", self.backend.add_flops(a))
        rows, cols = self.backend.shape(a)
        return self.backend.add_into(a, b, self._lease(rows, cols, a, b))

    def add_into(self, a, b, out):
        """``a + b`` into ``out`` (which may alias ``a``: accumulation)."""
        self.counter.record("add", self.backend.add_flops(a))
        if not isinstance(out, np.ndarray) or out.shape != tuple(
            self.backend.shape(a)
        ):
            out = None
        return self.backend.add_into(a, b, out)

    def sub(self, a, b):
        """Element-wise difference (charges ``n m``, nnz for sparse)."""
        self.counter.record("add", self.backend.add_flops(a))
        rows, cols = self.backend.shape(a)
        return self.backend.sub_into(a, b, self._lease(rows, cols, a, b))

    def add_inplace(self, a, b):
        """``a += b`` where the representation allows; use the return value."""
        self.counter.record("add", self.backend.add_flops(a))
        return self.backend.add_inplace(a, b)

    def add_outer_inplace(self, a, u, v):
        """The trigger update ``a += u @ v.T``; use the return value.

        Dense state accumulates in one BLAS ``dgemm`` pass straight into
        ``a`` (the explicit in-place contract of
        :meth:`~repro.backends.base.Backend.add_outer_inplace`); sparse
        state reuses its index arrays when the update lands on the
        existing pattern and merges otherwise, so callers must rebind
        the result either way.
        """
        self.counter.record("matmul", outer_update_flops(self.backend, a, u, v))
        self.counter.record("add", self.backend.add_flops(a))
        return self.backend.add_outer_inplace(a, u, v)

    def scale(self, coeff: float, a):
        """Scalar multiple (charges ``n m``, nnz for sparse)."""
        self.counter.record("scalar_mul", self.backend.scale_flops(a))
        rows, cols = self.backend.shape(a)
        return self.backend.scale_into(coeff, a, self._lease(rows, cols, a))

    def inv(self, a):
        """Matrix inverse (charges ``~2 n^3``; result is dense)."""
        n = self.backend.shape(a)[0]
        self.counter.record("inverse", self.backend.inverse_flops(a), n * n * 8)
        return self.backend.inv(a)

    def hstack(self, blocks):
        """Horizontal concatenation (no arithmetic charged)."""
        blocks = list(blocks)
        rows = self.backend.shape(blocks[0])[0]
        cols = sum(self.backend.shape(b)[1] for b in blocks)
        return self.backend.hstack_into(
            blocks, self._lease(rows, cols, *blocks)
        )

    def vstack(self, blocks):
        """Vertical concatenation (no arithmetic charged)."""
        blocks = list(blocks)
        rows = sum(self.backend.shape(b)[0] for b in blocks)
        cols = self.backend.shape(blocks[0])[1]
        return self.backend.vstack_into(
            blocks, self._lease(rows, cols, *blocks)
        )

    def outer(self, u, v):
        """Outer-product-style product ``u @ v.T`` (charged as a matmul)."""
        return self.mm(u, self.backend.transpose(v))
