"""Backend-aware maintenance cost estimates (the planner's cost model).

:mod:`repro.cost.complexity` exposes Table 2's closed forms — dense,
leading-order, per-refresh.  This module predicts the same quantities
*per backend* from input statistics (order, density, update rank,
expected refresh count), by walking the iterative models' actual
recurrence schedules and pricing every term through the backend's
``est_*`` cost hooks (:class:`repro.backends.base.Backend`).  A sparse
matvec is billed at ``O(nnz)`` with the sparse kernels' constant-factor
overhead, a power view that fills in is billed dense — so rankings over
the full (strategy, model, skip, backend) grid reflect what the kernels
would really do.

Two deliberate simplifications, documented so nobody mistakes these for
wall-clock predictions:

* densities of derived views follow the expected-walk-count heuristic
  ``density(A^i) ~ min(1, (d n)^i / n)`` for an input of density ``d``
  (exact fill-in is data-dependent);
* sums-of-powers views are priced like the matching power views (their
  factored recurrences have the same shape and widths, Appendix B).

Estimates split **setup** (initial materialization, paid once) from
**refresh** (paid per update), so high-update-rate workloads amortize
expensive view builds — the regime where HYBRID shines — while
one-shot workloads fall back to plain re-evaluation.

Two further axes the planner prices through this module:

* **in-place execution** (``inplace=True``): the fused codegen path
  runs kernels through ``out=`` buffers, shedding the allocation share
  of every per-call overhead — refresh costs charge
  ``Backend.est_call_overhead(inplace=True)`` instead of the full
  constant (setup is always priced out-of-place: it runs once, through
  the evaluator);
* **batching** (:func:`compaction_cost`, :func:`batch_unit_cost`): a
  width-``m`` batch pays one QR+SVD compaction
  (:mod:`repro.delta.batch`) plus one rank-``r`` propagation instead of
  ``m`` rank-1 propagations, amortizing per-call overhead — the Table 4
  trade :func:`repro.planner.plan_program` folds into the plan grid.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import exp, log

from ..iterative.models import Model

#: Strategy names (shared with the advisor).
REEVAL = "REEVAL"
INCR = "INCR"
HYBRID = "HYBRID"

# Per-kernel-call overhead lives on the backend
# (``Backend.est_call_overhead_flops``): Python dispatch + allocation +
# BLAS/CSR call setup costs the same whether the operands are thin or
# square, so strategies that trade a few big products for many
# matrix-vector-shaped ones (factored INCR, HYBRID's per-step thin
# terms) are charged per *call* as well as per flop -- otherwise the
# model recommends sophistication that loses to call overhead at small
# scale, exactly what measurements show.


@dataclass(frozen=True)
class CostEstimate:
    """Predicted operation counts of one maintenance configuration."""

    setup: float    #: initial materialization (paid once)
    refresh: float  #: per-update maintenance cost
    space: float    #: stored entries between updates

    def total(self, refreshes: float) -> float:
        """Setup plus ``refreshes`` maintained updates."""
        return self.setup + refreshes * self.refresh


def power_density(n: int, density: float, i: int) -> float:
    """Expected density of ``A^i`` for an input of density ``density``.

    A random graph with average degree ``c = density * n`` has roughly
    ``c^i`` walks of length ``i`` from each node, hence
    ``min(1, c^i / n)`` of the matrix occupied.  Dense inputs stay
    dense; sub-critical graphs (``c < 1``) thin out.
    """
    if density >= 1.0:
        return 1.0
    c = density * n
    if c <= 0.0:
        return 0.0
    # Log space: c**i overflows a double once i*log(c) passes ~709.
    log_est = i * log(c) - log(n)
    if log_est >= 0.0:
        return 1.0
    return float(min(1.0, max(exp(log_est), density)))


def sums_density(n: int, density: float, i: int) -> float:
    """Expected density of ``S_i = I + A + ... + A^{i-1}`` (union bound)."""
    if density >= 1.0:
        return 1.0
    acc = 1.0 / max(n, 1)
    for j in range(1, i):
        acc += power_density(n, density, j)
        if acc >= 1.0:
            return 1.0
    return float(min(1.0, acc))


def _model_of(model: str, s: int | None) -> Model:
    if model == "linear":
        return Model.linear()
    if model == "exponential":
        return Model.exponential()
    if model == "skip":
        assert s is not None
        return Model.skip(s)
    raise ValueError(f"unknown model {model!r}")


def _mm(be, a_shape, b_shape, da=1.0, db=1.0) -> float:
    return be.est_matmul_flops(a_shape, b_shape, da, db)


def _powers_recompute(be, n: int, mdl: Model, k: int, density: float,
                      inplace: bool = False) -> float:
    """Full products along the schedule (REEVAL refresh / INCR setup)."""
    cost = 0.0
    for i in mdl.schedule(k)[1:]:
        j = mdl.predecessor(i)
        h = i - j
        cost += _mm(be, (n, n), (n, n),
                    power_density(n, density, h), power_density(n, density, j))
        cost += be.est_call_overhead(inplace)
    return cost


def _powers_incr_refresh(be, n: int, mdl: Model, k: int, density: float,
                         rank: int, u_nnz: float,
                         inplace: bool = False) -> float:
    """Factored propagation along the schedule (Appendix A widths)."""
    call = be.est_call_overhead(inplace)
    cost = 0.0
    for i in mdl.schedule(k)[1:]:
        j = mdl.predecessor(i)
        h = i - j
        w_h, w_j = h * rank, j * rank
        d_h = power_density(n, density, h)
        d_j = power_density(n, density, j)
        # P_h @ U_j, P_j' @ V_h, plus the thin core u_h (v_h' u_j).
        cost += _mm(be, (n, n), (n, w_j), d_h)
        cost += _mm(be, (n, n), (n, w_h), d_j)
        cost += 4.0 * n * w_h * w_j
        cost += be.est_add_outer_flops((n, n), power_density(n, density, i),
                                       i * rank, u_nnz)
        cost += 8.0 * call  # mm x4, hstack x2, add, apply
    cost += be.est_add_outer_flops((n, n), density, rank, u_nnz)
    cost += call
    return cost


def powers_cost(
    be,
    strategy: str,
    n: int,
    k: int,
    model: str,
    s: int | None = None,
    density: float = 1.0,
    rank: int = 1,
    update_nnz_per_col: float = 1.0,
    inplace: bool = False,
) -> CostEstimate:
    """Predicted costs of maintaining ``A^k`` under ``be``.

    ``inplace=True`` prices the refresh through the in-place kernel
    path (workspace-backed maintainers, fused triggers); setup is
    always priced out-of-place — it runs once, allocating its views.
    """
    mdl = _model_of(model, s)
    recompute = _powers_recompute(be, n, mdl, k, density)
    if strategy == REEVAL:
        space = 3.0 * be.est_entries((n, n), density)
        refresh = (be.est_add_outer_flops((n, n), density, rank,
                                          update_nnz_per_col)
                   + be.est_call_overhead(inplace)
                   + _powers_recompute(be, n, mdl, k, density, inplace))
        return CostEstimate(recompute, refresh, space)
    if strategy == INCR:
        space = sum(
            be.est_entries((n, n), power_density(n, density, i))
            for i in mdl.schedule(k)
        )
        refresh = _powers_incr_refresh(be, n, mdl, k, density, rank,
                                       update_nnz_per_col, inplace)
        return CostEstimate(recompute, refresh, space)
    raise ValueError(f"matrix powers has no {strategy!r} strategy")


def _horizon(mdl: Model, k: int) -> int:
    """Highest P/S index the general recurrence reads (0 = none)."""
    if mdl.kind == Model.LINEAR or k <= 1:
        return 0
    if mdl.kind == Model.EXPONENTIAL:
        return k // 2
    assert mdl.s is not None
    return min(mdl.s, k // 2)


def general_cost(
    be,
    strategy: str,
    n: int,
    p: int,
    k: int,
    model: str,
    s: int | None = None,
    density: float = 1.0,
    rank: int = 1,
    has_b: bool = True,
    update_nnz_per_col: float = 1.0,
    inplace: bool = False,
) -> CostEstimate:
    """Predicted costs of maintaining ``T_k`` (``T_{i+1} = A T_i + B``).

    ``inplace=True`` prices refreshes through the in-place kernel path
    (see :func:`powers_cost`).
    """
    mdl = _model_of(model, s)
    schedule = mdl.schedule(k)
    horizon = _horizon(mdl, k)
    d_a = density
    u_nnz = update_nnz_per_col
    call = be.est_call_overhead(inplace)

    def step_cost(call: float = call) -> float:
        """One pass of the recurrence with dense ``(n x p)`` iterates."""
        cost = 0.0
        for i in schedule:
            j = mdl.predecessor(i) if i > 1 else 0
            h = i - j if i > 1 else 1
            cost += _mm(be, (n, n), (n, p), power_density(n, d_a, h))
            cost += call
            if has_b:
                if h > 1:
                    cost += _mm(be, (n, n), (n, p), sums_density(n, d_a, h))
                    cost += call
                cost += float(n * p) + call
        return cost

    # View-building work shared by every strategy's setup.
    ps_build = 0.0
    ps_space = 0.0
    if horizon > 1:
        ps_build += _powers_recompute(be, n, mdl, horizon, d_a)
        ps_space += sum(
            be.est_entries((n, n), power_density(n, d_a, i))
            for i in mdl.schedule(horizon)
        )
        if has_b:
            ps_build += _powers_recompute(be, n, mdl, horizon, d_a)
            ps_space += sum(
                be.est_entries((n, n), sums_density(n, d_a, i))
                for i in mdl.schedule(horizon)
            )
    setup = ps_build + step_cost(call=be.est_call_overhead_flops)
    iterate_space = float(n * p) * len(schedule)
    a_entries = be.est_entries((n, n), d_a)
    apply_a = be.est_add_outer_flops((n, n), d_a, rank, u_nnz)

    if strategy == REEVAL:
        # P/S rebuilt per refresh (ReevalPowers recomputes), T re-run.
        ps_rebuild = (
            _powers_recompute(be, n, mdl, horizon, d_a, inplace) * 2.0
            if horizon > 1 and has_b
            else _powers_recompute(be, n, mdl, horizon, d_a, inplace)
            if horizon > 1
            else 0.0
        )
        refresh = apply_a + call + ps_rebuild + step_cost()
        space = a_entries + float(n * p) + (2.0 * a_entries if horizon > 1 else 0.0)
        return CostEstimate(setup, refresh, space)

    # INCR/HYBRID maintain P/S incrementally at the horizon.
    ps_refresh = 0.0
    if horizon > 1:
        ps_refresh += _powers_incr_refresh(be, n, mdl, horizon, d_a, rank,
                                           u_nnz, inplace)
        if has_b:
            ps_refresh += _powers_incr_refresh(be, n, mdl, horizon, d_a, rank,
                                               u_nnz, inplace)

    if strategy == INCR:
        refresh = apply_a + ps_refresh
        for i in schedule:
            j = mdl.predecessor(i) if i > 1 else 0
            h = i - j if i > 1 else 1
            w_i, w_j, w_h = i * rank, j * rank, h * rank
            if i == 1:
                refresh += 2.0 * n * p * rank          # T0' v
            else:
                d_h = power_density(n, d_a, h)
                refresh += _mm(be, (n, n), (n, w_j), d_h)   # P_h @ U_j
                refresh += 4.0 * n * w_h * w_j              # thin core
                refresh += 2.0 * n * p * w_h                # T_j' V_h
                if has_b and h > 1:
                    refresh += 2.0 * n * p * w_h            # B' W_h
            refresh += 2.0 * n * p * w_i                    # apply dT_i
            refresh += 7.0 * call                           # mm x4, hstack x2, apply
        space = a_entries + iterate_space + ps_space
        return CostEstimate(setup, refresh, space)

    if strategy == HYBRID:
        refresh = apply_a + ps_refresh
        for i in schedule:
            j = mdl.predecessor(i) if i > 1 else 0
            h = i - j if i > 1 else 1
            w_h = h * rank
            if i == 1:
                refresh += 2.0 * n * p * rank               # u (v' T0)
            else:
                d_h = power_density(n, d_a, h)
                refresh += _mm(be, (n, n), (n, p), d_h)     # P_h @ dT_j
                refresh += 4.0 * n * p * w_h                # q (r' T_j), q (r' dT_j)
                if has_b and h > 1:
                    refresh += 2.0 * n * p * w_h            # z (w' B)
            refresh += float(n * p)                         # apply dense dT_i
            refresh += 8.0 * call                           # mm x5, add x2, apply
        space = a_entries + iterate_space + ps_space
        return CostEstimate(setup, refresh, space)

    raise ValueError(f"unknown strategy {strategy!r}")


def compaction_cost(be, rows: int, cols: int, width: int) -> float:
    """Predicted FLOPs of :meth:`BatchCollector.flush`'s rank compaction.

    The :mod:`repro.delta.batch` kernel: thin QR of each stacked factor
    (``2 rows m^2`` and ``2 cols m^2`` for width ``m``), an ``m x m``
    core SVD (``Backend.est_compaction_factor`` passes of ``m^3`` —
    a few dozen in LAPACK practice, fitted per machine by ``repro
    calibrate``), and the two thin products rebuilding the compacted
    factors.  Charged per flush; a batch of ``m`` updates amortizes it
    ``m`` ways.
    """
    m = float(max(width, 1))
    qr = 2.0 * (rows + cols) * m * m
    svd = be.est_compaction_factor * m ** 3
    rebuild = 2.0 * (rows + cols) * m * m
    return qr + svd + rebuild + 6.0 * be.est_call_overhead_flops


def batch_unit_cost(
    be,
    refresh_cost,
    rows: int,
    cols: int,
    batch: int,
    rank: int = 1,
    distinct_fraction: float = 1.0,
) -> float:
    """Predicted per-*update* cost of refreshing in batches of ``batch``.

    ``refresh_cost`` is a callable ``rank -> per-refresh flops`` (e.g. a
    closure over :func:`repro.planner.programcost.program_cost`);
    ``distinct_fraction`` estimates how much of the stacked width
    survives compaction (Table 4: a Zipf-skewed batch touching few
    distinct rows compacts far below its size).  ``batch=1`` skips
    compaction entirely — the plain per-update path.
    """
    if batch <= 1:
        return float(refresh_cost(rank))
    effective = max(1, int(round(batch * rank * distinct_fraction)))
    per_flush = (
        compaction_cost(be, rows, cols, batch * rank)
        + float(refresh_cost(effective))
    )
    return per_flush / batch


#: Per-update bookkeeping overhead of the heavy-light split (the column
#: nonzero scan, the heavy-set dict probe, the sketch update) as a
#: fraction of one backend call overhead — pure Python work, far below
#: a kernel dispatch but not free.  Keeps ``heavy-light`` priced
#: strictly above the best uniform width on streams with no skew to
#: exploit, so it stays unchosen there.
HL_BOOKKEEPING_CALL_FRACTION = 0.25

#: Longest deferral window (updates between light-tail folds) the cost
#: model will credit — a read/staleness horizon, not a correctness
#: bound (reads always fold first).
HL_MAX_FOLD_PERIOD = 4096.0


def heavy_light_unit_cost(
    be,
    refresh_cost,
    rows: int,
    cols: int,
    budget: int,
    rank: int = 1,
    heavy_share: float = 0.0,
    light_fraction: float = 1.0,
    rank_bound: int = 64,
) -> float:
    """Predicted per-*update* cost of heavy-light partitioned maintenance.

    Prices :class:`repro.runtime.heavylight.HeavyLightMaintainer`:
    heavy-hitter columns (observed mass ``heavy_share``) merge into
    preallocated dense accumulator rows — ``O(cols)`` per hit, zero
    marginal refresh rank — and the heavy block is folded as one
    rank-``budget`` refresh only at the read/staleness horizon
    (``HL_MAX_FOLD_PERIOD``), not per light fold.  Light indicator
    columns merge by row the same exact way; the light tail folds when
    its distinct merged rank reaches ``rank_bound``.  ``refresh_cost``
    is the same ``rank -> flops`` closure :func:`batch_unit_cost`
    takes; ``light_fraction`` is the sketch's distinct share of tail
    draws (:meth:`~repro.planner.plan.StreamSketch.light_fraction`),
    the light-rank growth rate that sets the fold period

        T  =  rank_bound / (light_mass * rank * light_fraction).

    Per update that is: an ``O(cols * rank)`` accumulate plus the
    bookkeeping overhead, ``1/T``-th of a rank-``rank_bound`` light
    fold, and the horizon-amortized heavy fold.  With no skew
    (``heavy_share`` near 0) the tail carries the full mass with
    ``light_fraction`` near 1, and the price lands at-or-above uniform
    batching at the same width — the planner keeps ``uniform``.
    """
    share = min(max(float(heavy_share), 0.0), 1.0)
    light_mass = 1.0 - share
    accumulate = (2.0 * cols * rank
                  + HL_BOOKKEEPING_CALL_FRACTION * be.est_call_overhead_flops)
    per_update = accumulate
    if share > 0.0:
        per_update += (float(refresh_cost(max(int(budget), 1)))
                       / HL_MAX_FOLD_PERIOD)
    light_rate = light_mass * rank * min(max(float(light_fraction), 0.0), 1.0)
    if light_rate > 0.0:
        period = min(HL_MAX_FOLD_PERIOD, max(float(rank_bound) / light_rate, 1.0))
        light_rank = max(1, min(int(round(light_rate * period)), int(rank_bound)))
        per_fold = (float(refresh_cost(light_rank))
                    + 2.0 * be.est_call_overhead_flops)
        per_update += per_fold / period
    return per_update


#: Fraction of a sharded refresh that stays serial on the coordinator
#: (factor assembly, the k x k cross terms, hstacks, result scatter).
#: The Amdahl term that keeps predicted speedup sublinear in nodes.
SHARDED_SERIAL_FRACTION = 0.1


def sharded_refresh_cost(
    be,
    base_refresh: float,
    n: int,
    n_statements: int,
    rank: int,
    nodes: int,
) -> float:
    """Per-refresh cost (dense-FLOP equivalents) of the factored chain
    refresh executed on ``nodes`` shared-memory workers.

    The compute term is an Amdahl split of the single-process refresh
    (``base_refresh``): the big per-tile dgemms divide across nodes,
    the thin coordinator-side algebra does not.  The comm term prices
    what the real engine actually ships per refresh — per statement,
    two thin-factor broadcasts and two thin gathered partials; per
    view, one stacked factor-pair broadcast whose width roughly doubles
    along the chain — through the backend's fitted IPC hooks
    (:meth:`est_broadcast` / :meth:`est_shuffle`).
    """
    if nodes <= 1:
        return float(base_refresh)
    compute = base_refresh * (
        SHARDED_SERIAL_FRACTION + (1.0 - SHARDED_SERIAL_FRACTION) / nodes
    )
    factor_bytes = 8.0 * n * max(rank, 1)
    broadcast_bytes = (4.0 * n_statements + 2.0) * factor_bytes
    gather_bytes = 2.0 * n_statements * factor_bytes
    comm = (be.est_broadcast(broadcast_bytes, nodes)
            + be.est_shuffle(gather_bytes, nodes))
    return float(compute + comm)


# -- fault tolerance ------------------------------------------------------
#
# Checkpointing is priced in the same flop-equivalent ranking units as
# maintenance: a snapshot streams every stored byte once through
# serialization + checksum + write, which on the machines the planner
# models costs a small constant per byte relative to one dense flop.

#: Flop-equivalents charged per checkpoint byte written (serialize +
#: SHA-256 + buffered write, amortized).
CHECKPOINT_BYTE_FLOPS = 4.0
#: Fixed per-snapshot overhead (header encode, fsync, rename).
CHECKPOINT_BASE_FLOPS = 1.0e6
#: Default tolerated write-path overhead of auto-cadenced checkpointing.
CHECKPOINT_TARGET_OVERHEAD = 0.05
#: Cadence clamp: even tiny sessions checkpoint no more than every
#: update, and huge ones at least once per this many updates.
CHECKPOINT_MAX_EVERY = 1_000_000


def checkpoint_write_cost(views_bytes: float) -> float:
    """Predicted cost of cutting one snapshot of ``views_bytes`` state."""
    return CHECKPOINT_BASE_FLOPS + CHECKPOINT_BYTE_FLOPS * max(views_bytes, 0.0)


def restore_cost(views_bytes: float, tail_updates: float,
                 refresh_flops: float) -> float:
    """Predicted cost of recovery: read the snapshot, replay the tail.

    The quantity the log+checkpoint discipline minimizes — compare
    against REEVAL's setup cost to see why restoring beats recomputing
    (``benchmarks/bench_recovery.py`` measures the same ratio).
    """
    read = CHECKPOINT_BYTE_FLOPS * max(views_bytes, 0.0)
    return read + max(tail_updates, 0.0) * max(refresh_flops, 0.0)


def recommend_checkpoint_every(
    views_bytes: float,
    refresh_flops: float,
    target_overhead: float = CHECKPOINT_TARGET_OVERHEAD,
) -> int:
    """Snapshot cadence keeping checkpoint cost under ``target_overhead``.

    Amortizes one :func:`checkpoint_write_cost` over enough updates
    that the write path pays at most ``target_overhead`` of its
    maintenance work to durability — the ``every="auto"`` policy of
    :class:`repro.runtime.checkpoint.Checkpointer`.  Larger views or
    cheaper refreshes stretch the cadence (more replay on recovery);
    the clamp keeps degenerate inputs sane.
    """
    if target_overhead <= 0.0:
        raise ValueError("target_overhead must be positive")
    per_update = target_overhead * max(refresh_flops, 1.0)
    every = checkpoint_write_cost(views_bytes) / per_update
    return int(min(max(every, 1.0), CHECKPOINT_MAX_EVERY))


# -- multi-view catalog pricing (shared vs private maintenance) ----------

#: Flop-equivalents charged per tenant view for fan-out bookkeeping on
#: every update absorbed by a shared catalog (alias resolution, epoch
#: accounting) — the per-tenant term that stays after maintenance work
#: has collapsed onto the distinct nodes.
CATALOG_FANOUT_FLOPS = 64.0
#: Hysteresis on hit-priced re-admission: an evicted intermediate must
#: burn this multiple of its one-shot admission cost in on-demand
#: re-evaluations before the catalog pins it back in.  >1 keeps a node
#: read exactly once after eviction from thrashing straight back.
CATALOG_READMIT_HYSTERESIS = 2.0


def catalog_refresh_cost(rows: int, cols: int, rank: int = 1) -> float:
    """Per-update FLOPs of keeping one admitted intermediate fresh.

    The factored-propagation shape: two rank-``rank`` gemm touches per
    maintained view (delta derivation plus the outer-product apply),
    which is what the INCR triggers cost per statement per update.
    """
    return 4.0 * max(rank, 1) * rows * cols


def catalog_demand_cost(rows: int, cols: int, inner: int) -> float:
    """FLOPs to re-evaluate one *evicted* intermediate on demand.

    An evicted node demotes to REEVAL: one full product of its shape
    against an ``inner``-wide dependency chain instead of a factored
    touch — the Table 3 memory/compute tradeoff, paid per read.
    """
    return 2.0 * rows * max(inner, 1) * cols


def catalog_admission_cost(
    rows: int,
    cols: int,
    inner: int,
    updates_per_read: float = 1.0,
    rank: int = 1,
) -> float:
    """Cost of holding an intermediate: materialize once, then maintain.

    One on-demand evaluation's worth of setup plus the factored refresh
    the node will absorb for every update that lands between reads.
    The catalog re-admits an evicted node once its accumulated
    :func:`catalog_demand_cost` charges exceed this (scaled by
    :data:`CATALOG_READMIT_HYSTERESIS`) — cache-aside admission priced
    in the same FLOP currency as eviction.
    """
    refresh = catalog_refresh_cost(rows, cols, rank)
    return (catalog_demand_cost(rows, cols, inner)
            + max(updates_per_read, 0.0) * refresh)


def shared_maintenance_cost(
    distinct_nodes: int,
    tenant_views: int,
    refresh_flops: float,
) -> float:
    """Per-update cost of catalog-shared maintenance.

    Each *distinct* subexpression refreshes once (that is the whole
    point of the lineage DAG), plus :data:`CATALOG_FANOUT_FLOPS` of
    fan-out bookkeeping per tenant view.  Compare against
    :func:`private_maintenance_cost` to price a session into or out of
    a catalog: sharing wins once tenants overlap enough that
    ``distinct_nodes`` grows slower than ``tenant_views``.
    """
    return (distinct_nodes * max(refresh_flops, 0.0)
            + tenant_views * CATALOG_FANOUT_FLOPS)


def private_maintenance_cost(tenant_views: int, refresh_flops: float) -> float:
    """Per-update cost of N independent sessions: every view pays full."""
    return tenant_views * max(refresh_flops, 0.0)


__all__ = [
    "CATALOG_FANOUT_FLOPS",
    "CATALOG_READMIT_HYSTERESIS",
    "CHECKPOINT_BASE_FLOPS",
    "CHECKPOINT_BYTE_FLOPS",
    "CHECKPOINT_MAX_EVERY",
    "CHECKPOINT_TARGET_OVERHEAD",
    "CostEstimate",
    "HL_BOOKKEEPING_CALL_FRACTION",
    "HL_MAX_FOLD_PERIOD",
    "checkpoint_write_cost",
    "recommend_checkpoint_every",
    "restore_cost",
    "SHARDED_SERIAL_FRACTION",
    "batch_unit_cost",
    "catalog_admission_cost",
    "catalog_demand_cost",
    "catalog_refresh_cost",
    "compaction_cost",
    "general_cost",
    "heavy_light_unit_cost",
    "power_density",
    "powers_cost",
    "private_maintenance_cost",
    "sharded_refresh_cost",
    "shared_maintenance_cost",
    "sums_density",
]
