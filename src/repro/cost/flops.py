"""Per-operation FLOP formulas.

These are the standard dense-kernel counts used throughout the cost
model, the runtime executor's instrumentation, and the Table 2
complexity formulas.  Counting convention: one multiply-add pair is two
FLOPs (the LAPACK convention), so a matrix product ``(n x m) * (m x p)``
costs ``2nmp``.

The paper writes matrix-multiplication cost as ``O(n^gamma)`` with
``2 <= gamma <= 3``; the executor implements the classical kernel, so
``gamma = 3`` here, and :func:`matmul_flops` is the exact count for it.
"""

from __future__ import annotations


def matmul_flops(n: int, m: int, p: int) -> int:
    """FLOPs of a dense ``(n x m) @ (m x p)`` product: ``2 n m p``."""
    return 2 * n * m * p


def add_flops(n: int, m: int) -> int:
    """FLOPs of an element-wise add/subtract of ``(n x m)`` matrices."""
    return n * m


def scalar_mul_flops(n: int, m: int) -> int:
    """FLOPs of scaling an ``(n x m)`` matrix by a constant."""
    return n * m


def inverse_flops(n: int) -> int:
    """FLOPs of a dense ``(n x n)`` inversion via LU: ``~ 2 n^3``.

    (``2/3 n^3`` for the factorization plus ``4/3 n^3`` for the solve
    against the identity.)
    """
    return 2 * n * n * n


def transpose_flops(n: int, m: int) -> int:
    """Transpose moves data but performs no arithmetic."""
    return 0


def matrix_bytes(n: int, m: int, itemsize: int = 8) -> int:
    """Memory footprint of a dense ``(n x m)`` matrix of float64."""
    return n * m * itemsize
