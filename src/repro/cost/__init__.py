"""Cost model: FLOP formulas, runtime counters, Table 2 complexity, memory."""

from . import advisor, complexity, counters, estimate, flops, memory
from .advisor import (
    Recommendation,
    best_general,
    best_powers,
    recommend_general,
    recommend_powers,
)
from .counters import NULL_COUNTER, Counter, counting
from .memory import MemoryComparison, gigabytes
from .ops import Ops

__all__ = [
    "Counter",
    "Recommendation",
    "MemoryComparison",
    "NULL_COUNTER",
    "Ops",
    "advisor",
    "best_general",
    "best_powers",
    "complexity",
    "counters",
    "counting",
    "estimate",
    "flops",
    "gigabytes",
    "memory",
    "recommend_general",
    "recommend_powers",
]
