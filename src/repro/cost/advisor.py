"""Strategy/model advisor built on the Table 2 cost formulas.

Section 5 derives, by hand, which (strategy x iterative model) cell of
Table 2 wins for given problem parameters — e.g. "the Lin model incurs
the lowest time complexity when p << n", "HYBRID ... when the dimension
p or n is comparable with k".  This module mechanizes that analysis:
:func:`recommend_powers` and :func:`recommend_general` rank every
admissible configuration by predicted refresh cost, optionally under a
memory budget (incremental maintenance trades memory for time —
Table 3), and pick the best skip size automatically.

Predicted costs are *operation counts* from
:mod:`repro.cost.complexity`; they rank configurations, they are not
wall-clock estimates.
"""

from __future__ import annotations

from dataclasses import dataclass

from . import complexity as cx

#: Strategy names.
REEVAL = "REEVAL"
INCR = "INCR"
HYBRID = "HYBRID"


@dataclass(frozen=True)
class Recommendation:
    """One ranked configuration: strategy, model (with skip size), costs."""

    strategy: str
    model: str
    s: int | None
    time: float
    space: float

    @property
    def label(self) -> str:
        """Paper-style label, e.g. ``INCR-EXP`` or ``HYBRID-SKIP-4``."""
        model = {"linear": "LIN", "exponential": "EXP"}.get(self.model)
        if model is None:
            model = f"SKIP-{self.s}"
        return f"{self.strategy}-{model}"


def _skip_sizes(k: int) -> list[int]:
    """Admissible skip sizes: powers of two dividing ``k``, ``1 < s < k``."""
    sizes = []
    s = 2
    while s < k:
        if k % s == 0:
            sizes.append(s)
        s *= 2
    return sizes


def _model_grid(k: int) -> list[tuple[str, int | None]]:
    models: list[tuple[str, int | None]] = [("linear", None)]
    if k >= 2 and (k & (k - 1)) == 0:
        models.append(("exponential", None))
        models.extend(("skip", s) for s in _skip_sizes(k))
    return models


def recommend_powers(
    n: int,
    k: int,
    gamma: float = 3.0,
    memory_budget: float | None = None,
) -> list[Recommendation]:
    """Ranked configurations for maintaining ``A^k`` under rank-1 updates.

    ``memory_budget`` (in matrix *entries*, like the space formulas)
    filters configurations whose view footprint exceeds it.  Raises
    ``ValueError`` if the budget excludes everything.
    """
    candidates = []
    for model, s in _model_grid(k):
        candidates.append(Recommendation(
            REEVAL, model, s,
            cx.powers_reeval_time(n, k, model, s, gamma),
            cx.powers_reeval_space(n, k, model, s),
        ))
        candidates.append(Recommendation(
            INCR, model, s,
            cx.powers_incr_time(n, k, model, s),
            cx.powers_incr_space(n, k, model, s),
        ))
    return _rank(candidates, memory_budget)


def recommend_general(
    n: int,
    p: int,
    k: int,
    gamma: float = 3.0,
    memory_budget: float | None = None,
) -> list[Recommendation]:
    """Ranked configurations for ``T_{i+1} = A T_i + B`` maintenance."""
    if p < 1:
        raise ValueError(f"need p >= 1, got {p}")
    candidates = []
    for model, s in _model_grid(k):
        candidates.append(Recommendation(
            REEVAL, model, s,
            cx.general_reeval_time(n, p, k, model, s, gamma),
            cx.general_reeval_space(n, p, k, model, s),
        ))
        candidates.append(Recommendation(
            INCR, model, s,
            cx.general_incr_time(n, p, k, model, s),
            cx.general_incr_space(n, p, k, model, s),
        ))
        candidates.append(Recommendation(
            HYBRID, model, s,
            cx.general_hybrid_time(n, p, k, model, s),
            cx.general_hybrid_space(n, p, k, model, s),
        ))
    return _rank(candidates, memory_budget)


def _rank(
    candidates: list[Recommendation], memory_budget: float | None
) -> list[Recommendation]:
    if memory_budget is not None:
        candidates = [c for c in candidates if c.space <= memory_budget]
        if not candidates:
            raise ValueError(
                f"no configuration fits within {memory_budget:g} entries; "
                "REEVAL-LIN needs the least memory"
            )
    return sorted(candidates, key=lambda c: (c.time, c.space))


def best_powers(n: int, k: int, **kwargs) -> Recommendation:
    """The single cheapest powers configuration."""
    return recommend_powers(n, k, **kwargs)[0]


def best_general(n: int, p: int, k: int, **kwargs) -> Recommendation:
    """The single cheapest general-form configuration."""
    return recommend_general(n, p, k, **kwargs)[0]


def speedup_estimate(ranked: list[Recommendation]) -> float:
    """Predicted gain of the best configuration over the best REEVAL.

    Returns 1.0 when re-evaluation itself is ranked best (the advisor's
    honest answer in regimes like large-batch updates).
    """
    best = ranked[0]
    reeval_times = [c.time for c in ranked if c.strategy == REEVAL]
    if not reeval_times or best.strategy == REEVAL:
        return 1.0
    return min(reeval_times) / best.time


__all__ = [
    "HYBRID",
    "INCR",
    "REEVAL",
    "Recommendation",
    "best_general",
    "best_powers",
    "recommend_general",
    "recommend_powers",
    "speedup_estimate",
]
