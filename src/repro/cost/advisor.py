"""Strategy/model/backend advisor built on the Table 2 cost formulas.

Section 5 derives, by hand, which (strategy x iterative model) cell of
Table 2 wins for given problem parameters — e.g. "the Lin model incurs
the lowest time complexity when p << n", "HYBRID ... when the dimension
p or n is comparable with k".  This module mechanizes that analysis:
:func:`recommend_powers` and :func:`recommend_general` rank every
admissible configuration by predicted refresh cost, optionally under a
memory budget (incremental maintenance trades memory for time —
Table 3), and pick the best skip size automatically.

With the default ``density=None`` the ranking uses the paper's dense
closed forms (:mod:`repro.cost.complexity`) over the dense-only grid —
the exact Table 2 analysis.  Passing a ``density`` widens the grid with
an execution-backend axis: every (strategy, model, skip) cell is priced
per backend through the nnz-aware estimates of
:mod:`repro.cost.estimate` (built on the ``Backend.est_*`` cost hooks),
and ``refreshes`` amortizes one-time view building over the expected
update stream, so sparse graph workloads rank ``backend="sparse"``
first while small dense problems stay on BLAS.

Predicted costs are *operation counts*; they rank configurations, they
are not wall-clock estimates.
"""

from __future__ import annotations

from dataclasses import dataclass

from . import complexity as cx
from . import estimate as est

#: Strategy names.
REEVAL = "REEVAL"
INCR = "INCR"
HYBRID = "HYBRID"

#: Default expected refresh count when amortizing setup in nnz mode.
DEFAULT_REFRESHES = 100


@dataclass(frozen=True)
class Recommendation:
    """One ranked configuration: strategy, model (with skip size), costs.

    ``time`` is the predicted per-refresh operation count (amortizing
    setup over the expected refresh count in density-aware mode);
    ``space`` the predicted stored entries; ``backend`` the execution
    backend the prediction assumed (``"dense"`` for the classic Table 2
    cells).
    """

    strategy: str
    model: str
    s: int | None
    time: float
    space: float
    backend: str = "dense"

    @property
    def label(self) -> str:
        """Paper-style label, e.g. ``INCR-EXP`` or ``HYBRID-SKIP-4``.

        Non-default backends are suffixed: ``REEVAL-LIN@sparse``.
        """
        model = {"linear": "LIN", "exponential": "EXP"}.get(self.model)
        if model is None:
            model = f"SKIP-{self.s}"
        base = f"{self.strategy}-{model}"
        return base if self.backend == "dense" else f"{base}@{self.backend}"

    def as_dict(self) -> dict:
        """JSON-friendly form (the CLI's ``--json`` output)."""
        return {
            "label": self.label,
            "strategy": self.strategy,
            "model": self.model,
            "s": self.s,
            "backend": self.backend,
            "time": self.time,
            "space": self.space,
        }


def _skip_sizes(k: int) -> list[int]:
    """Admissible skip sizes: powers of two dividing ``k``, ``1 < s < k``."""
    sizes = []
    s = 2
    while s < k:
        if k % s == 0:
            sizes.append(s)
        s *= 2
    return sizes


def _model_grid(k: int) -> list[tuple[str, int | None]]:
    models: list[tuple[str, int | None]] = [("linear", None)]
    if k >= 2 and (k & (k - 1)) == 0:
        models.append(("exponential", None))
        models.extend(("skip", s) for s in _skip_sizes(k))
    return models


def _backend_grid(backends, calibration="auto") -> list:
    """Backend instances to rank over; dense first (tie-break winner).

    Cost constants come from the :mod:`repro.calibrate` cache when one
    exists for this machine (``calibration="auto"``), so rankings near
    the dense/sparse boundary reflect measured kernel overheads.
    """
    from ..backends import available_backends
    from ..calibrate import calibrated  # deferred: backends import this pkg

    if backends is None:
        names = [n for n in ("dense", "sparse") if n in available_backends()]
    else:
        names = list(backends)
    resolved = []
    for name in names:
        try:
            resolved.append(calibrated(name, calibration))
        except (ValueError, RuntimeError):  # e.g. sparse without scipy
            continue
    return resolved


def recommend_powers(
    n: int,
    k: int,
    gamma: float = 3.0,
    memory_budget: float | None = None,
    density: float | None = None,
    rank: int = 1,
    refreshes: int = DEFAULT_REFRESHES,
    backends=None,
    calibration="auto",
) -> list[Recommendation]:
    """Ranked configurations for maintaining ``A^k`` under rank-r updates.

    ``memory_budget`` (in matrix *entries*, like the space formulas)
    filters configurations whose view footprint exceeds it.  Raises
    ``ValueError`` if the budget excludes everything.  ``density``
    switches to the backend-aware grid (see module docstring); in that
    mode ``gamma`` is ignored — the estimates price the classical
    (``gamma = 3``) kernels the backends actually run.
    """
    candidates = []
    if density is None:
        for model, s in _model_grid(k):
            candidates.append(Recommendation(
                REEVAL, model, s,
                cx.powers_reeval_time(n, k, model, s, gamma),
                cx.powers_reeval_space(n, k, model, s),
            ))
            candidates.append(Recommendation(
                INCR, model, s,
                cx.powers_incr_time(n, k, model, s),
                cx.powers_incr_space(n, k, model, s),
            ))
        return _rank(candidates, memory_budget)

    for be in _backend_grid(backends, calibration):
        for model, s in _model_grid(k):
            for strategy in (REEVAL, INCR):
                cost = est.powers_cost(be, strategy, n, k, model, s,
                                       density=density, rank=rank)
                candidates.append(Recommendation(
                    strategy, model, s,
                    cost.total(refreshes) / max(refreshes, 1),
                    cost.space, be.name,
                ))
    return _rank(candidates, memory_budget)


def recommend_general(
    n: int,
    p: int,
    k: int,
    gamma: float = 3.0,
    memory_budget: float | None = None,
    density: float | None = None,
    rank: int = 1,
    refreshes: int = DEFAULT_REFRESHES,
    has_b: bool = True,
    backends=None,
    calibration="auto",
) -> list[Recommendation]:
    """Ranked configurations for ``T_{i+1} = A T_i + B`` maintenance."""
    if p < 1:
        raise ValueError(f"need p >= 1, got {p}")
    candidates = []
    if density is None:
        for model, s in _model_grid(k):
            candidates.append(Recommendation(
                REEVAL, model, s,
                cx.general_reeval_time(n, p, k, model, s, gamma),
                cx.general_reeval_space(n, p, k, model, s),
            ))
            candidates.append(Recommendation(
                INCR, model, s,
                cx.general_incr_time(n, p, k, model, s),
                cx.general_incr_space(n, p, k, model, s),
            ))
            candidates.append(Recommendation(
                HYBRID, model, s,
                cx.general_hybrid_time(n, p, k, model, s),
                cx.general_hybrid_space(n, p, k, model, s),
            ))
        return _rank(candidates, memory_budget)

    for be in _backend_grid(backends, calibration):
        for model, s in _model_grid(k):
            for strategy in (REEVAL, INCR, HYBRID):
                cost = est.general_cost(be, strategy, n, p, k, model, s,
                                        density=density, rank=rank,
                                        has_b=has_b)
                candidates.append(Recommendation(
                    strategy, model, s,
                    cost.total(refreshes) / max(refreshes, 1),
                    cost.space, be.name,
                ))
    return _rank(candidates, memory_budget)


def _rank(
    candidates: list[Recommendation], memory_budget: float | None
) -> list[Recommendation]:
    if memory_budget is not None:
        candidates = [c for c in candidates if c.space <= memory_budget]
        if not candidates:
            raise ValueError(
                f"no configuration fits within {memory_budget:g} entries; "
                "REEVAL-LIN needs the least memory"
            )
    return sorted(candidates, key=lambda c: (c.time, c.space))


def best_powers(n: int, k: int, **kwargs) -> Recommendation:
    """The single cheapest powers configuration."""
    return recommend_powers(n, k, **kwargs)[0]


def best_general(n: int, p: int, k: int, **kwargs) -> Recommendation:
    """The single cheapest general-form configuration."""
    return recommend_general(n, p, k, **kwargs)[0]


def speedup_estimate(ranked: list[Recommendation]) -> float:
    """Predicted gain of the best configuration over the best REEVAL.

    Returns 1.0 when re-evaluation itself is ranked best (the advisor's
    honest answer in regimes like large-batch updates).
    """
    best = ranked[0]
    reeval_times = [c.time for c in ranked if c.strategy == REEVAL]
    if not reeval_times or best.strategy == REEVAL:
        return 1.0
    return min(reeval_times) / best.time


__all__ = [
    "DEFAULT_REFRESHES",
    "HYBRID",
    "INCR",
    "REEVAL",
    "Recommendation",
    "best_general",
    "best_powers",
    "recommend_general",
    "recommend_powers",
    "speedup_estimate",
]
