"""Memory accounting helpers (the Table 3 experiment).

Table 3 reports, for ``A^16`` at several matrix sizes, the bytes REEVAL
and INCR must keep resident, the per-update times, and the ratio of
achieved speedup to memory overhead.  The maintainers expose
``memory_bytes()``; these helpers format and combine the numbers the
way the table does.
"""

from __future__ import annotations

from dataclasses import dataclass


def gigabytes(n_bytes: int) -> float:
    """Bytes to (decimal) gigabytes, as Table 3 reports them."""
    return n_bytes / 1e9


@dataclass(frozen=True)
class MemoryComparison:
    """One column of Table 3: REEVAL vs INCR at a given matrix size."""

    n: int
    reeval_bytes: int
    incr_bytes: int
    reeval_time: float
    incr_time: float

    @property
    def speedup(self) -> float:
        """Refresh-time speedup of INCR over REEVAL."""
        return self.reeval_time / self.incr_time

    @property
    def memory_overhead(self) -> float:
        """Memory ratio INCR / REEVAL (the cost of materializing views)."""
        return self.incr_bytes / self.reeval_bytes

    @property
    def speedup_per_memory(self) -> float:
        """Table 3's bottom row: speedup divided by memory overhead.

        The paper concludes this ratio *grows* with dimensionality —
        "the benefit of investing more memory resources increases with
        higher dimensionality of the computation".
        """
        return self.speedup / self.memory_overhead

    def row(self) -> dict[str, float]:
        """The comparison as a flat dict (benchmark reporting)."""
        return {
            "n": self.n,
            "reeval_gb": gigabytes(self.reeval_bytes),
            "incr_gb": gigabytes(self.incr_bytes),
            "reeval_time": self.reeval_time,
            "incr_time": self.incr_time,
            "speedup": self.speedup,
            "memory_overhead": self.memory_overhead,
            "speedup_per_memory": self.speedup_per_memory,
        }
