"""Closed-form cost formulas of Table 2 (and Appendices A/B).

Every cell of Table 2 — {matrix powers / sums, general form} x {REEVAL,
INCR, HYBRID} x {linear, exponential, skip-s} — is exposed as a Python
function of the problem dimensions.  The Table 2 benchmark fits measured
FLOP counts against these formulas (growth-rate agreement), and the
space formulas back the Table 3 memory experiment.

``gamma`` is the matrix-multiplication exponent; the executor's kernel
is classical, so empirical checks use ``gamma = 3``.  Formulas return
*leading-order operation counts* (constants from the appendix sums where
the paper gives them), not exact FLOPs — tests compare growth, not
absolute values.
"""

from __future__ import annotations

from math import log2


def _check(n: int, k: int, s: int | None = None) -> None:
    if n < 1 or k < 1:
        raise ValueError(f"need n, k >= 1, got n={n}, k={k}")
    if s is not None and (s < 1 or k % s != 0):
        raise ValueError(f"need s >= 1 and s | k, got s={s}, k={k}")


# --------------------------------------------------------------------------
# Matrix powers / sums of powers (Table 2 left half)
# --------------------------------------------------------------------------

def powers_reeval_time(n: int, k: int, model: str, s: int | None = None,
                       gamma: float = 3.0) -> float:
    """REEVAL time for ``A^k``: one ``O(n^gamma)`` product per step."""
    _check(n, k, s)
    if model == "linear":
        return n**gamma * k
    if model == "exponential":
        return n**gamma * max(log2(k), 1.0)
    if model == "skip":
        assert s is not None
        return n**gamma * (max(log2(s), 1.0) + k / s)
    raise ValueError(f"unknown model {model!r}")


def powers_incr_time(n: int, k: int, model: str, s: int | None = None) -> float:
    """INCR time for ``A^k`` (Appendix A): no ``n^gamma`` term survives."""
    _check(n, k, s)
    if model == "linear":
        return float(n * n * k * k)
    if model == "exponential":
        return float(n * n * k)
    if model == "skip":
        assert s is not None
        return float(n * n * k * k / s)
    raise ValueError(f"unknown model {model!r}")


def powers_reeval_space(n: int, k: int, model: str, s: int | None = None) -> float:
    """REEVAL space: ``O(n^2)`` regardless of model."""
    _check(n, k, s)
    return float(n * n)


def powers_incr_space(n: int, k: int, model: str, s: int | None = None) -> float:
    """INCR space: every scheduled power is materialized."""
    _check(n, k, s)
    if model == "linear":
        return float(n * n * k)
    if model == "exponential":
        return float(n * n * max(log2(k), 1.0))
    if model == "skip":
        assert s is not None
        return float(n * n * (max(log2(s), 1.0) + k / s))
    raise ValueError(f"unknown model {model!r}")


# --------------------------------------------------------------------------
# General form T_{i+1} = A T_i + B (Table 2 right half)
# --------------------------------------------------------------------------

def general_reeval_time(n: int, p: int, k: int, model: str,
                        s: int | None = None, gamma: float = 3.0) -> float:
    """REEVAL time for the general form."""
    _check(n, k, s)
    if model == "linear":
        return float(p * n * n * k)
    if model == "exponential":
        return (n**gamma + p * n * n) * max(log2(k), 1.0)
    if model == "skip":
        assert s is not None
        logs = max(log2(s), 1.0)
        return n**gamma * logs + p * n * n * (logs + k / s)
    raise ValueError(f"unknown model {model!r}")


def general_incr_time(n: int, p: int, k: int, model: str,
                      s: int | None = None) -> float:
    """INCR time for the general form (Appendix B)."""
    _check(n, k, s)
    if model == "linear":
        return float((n * n + p * n) * k * k)
    if model == "exponential":
        return float((n * n + p * n) * k)
    if model == "skip":
        assert s is not None
        return float((n * n + n * p) * k * k / s)
    raise ValueError(f"unknown model {model!r}")


def general_hybrid_time(n: int, p: int, k: int, model: str,
                        s: int | None = None) -> float:
    """HYBRID time for the general form (Appendix B)."""
    _check(n, k, s)
    if model == "linear":
        return float(p * n * n * k)
    if model == "exponential":
        return float(p * n * n * max(log2(k), 1.0) + n * n * k)
    if model == "skip":
        assert s is not None
        return float(p * n * n * (max(log2(s), 1.0) + k / s) + n * n * s)
    raise ValueError(f"unknown model {model!r}")


def general_reeval_space(n: int, p: int, k: int, model: str,
                         s: int | None = None) -> float:
    """REEVAL space: current iterate plus inputs (model-independent)."""
    _check(n, k, s)
    return float(n * n + n * p)


def general_incr_space(n: int, p: int, k: int, model: str,
                       s: int | None = None) -> float:
    """INCR space: all iterates plus P/S views along the schedule."""
    _check(n, k, s)
    if model == "linear":
        return float(n * n + k * n * p)
    if model == "exponential":
        return float((n * n + n * p) * max(log2(k), 1.0))
    if model == "skip":
        assert s is not None
        return float((n * n + n * p) * max(log2(s), 1.0) + n * p * k / s)
    raise ValueError(f"unknown model {model!r}")


def general_hybrid_space(n: int, p: int, k: int, model: str,
                         s: int | None = None) -> float:
    """HYBRID space: same asymptotics as INCR (Table 2 bottom-right)."""
    return general_incr_space(n, p, k, model, s)


# --------------------------------------------------------------------------
# OLS (Section 5.1)
# --------------------------------------------------------------------------

def ols_reeval_time(m: int, n: int, p: int = 1, gamma: float = 3.0) -> float:
    """REEVAL OLS: re-inversion plus the dense products."""
    return n**gamma + m * n * n + m * n * p + n * n * min(m, p)


def ols_incr_time(m: int, n: int, p: int = 1) -> float:
    """INCR OLS: ``O(n^2 + mn + np + mp)`` (Section 5.1)."""
    return float(n * n + m * n + n * p + m * p)


def fitted_exponent(xs: list[float], ys: list[float]) -> float:
    """Least-squares slope of ``log y`` against ``log x``.

    Used by the Table 2 benchmark to check measured-cost growth rates
    against the formulas (e.g. REEVAL powers grow ~n^3, INCR ~n^2).
    """
    from math import log

    if len(xs) != len(ys) or len(xs) < 2:
        raise ValueError("need two or more paired observations")
    lx = [log(x) for x in xs]
    ly = [log(y) for y in ys]
    mean_x = sum(lx) / len(lx)
    mean_y = sum(ly) / len(ly)
    num = sum((a - mean_x) * (b - mean_y) for a, b in zip(lx, ly))
    den = sum((a - mean_x) ** 2 for a in lx)
    return num / den
