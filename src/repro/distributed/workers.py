"""Persistent multiprocessing workers over shared-memory shards.

The real (non-simulated) distributed engine: a coordinator spawns one
persistent process per node, ships each maintained view into a
shared-memory segment (:mod:`repro.distributed.shm`), and drives the
workers over per-worker duplex pipes.  Only thin rank-k factors and
thin gathered partials cross the pipes — the ``O(n^2)`` view blocks
never move, which is exactly LINVIEW's Figure 3(g) argument, now
measured in real bytes and real seconds through the same
:class:`~repro.distributed.comm.CommLog` the simulator uses.

Start method: ``spawn`` is the default (and the only safe choice once
BLAS threads exist in the parent — ``fork`` duplicates OpenBLAS's
thread pool state and can deadlock).  Workers are spawned with BLAS
pinned to one thread: the shards already divide the matrix, so nested
BLAS threading would only oversubscribe cores.

Bit-identity: the per-tile kernels below are the *single* source of
truth — the in-process reference engine and the worker loop call the
same functions over the same fixed tile decomposition
(:class:`~repro.distributed.partitioner.RowShardPartitioner`), so
sharded results are bitwise equal to single-process results, not just
``allclose``.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import pickle
import time
import traceback
import weakref
from dataclasses import dataclass

import numpy as np

from ..runtime.workspace import Workspace
from ..testing import faults
from .comm import BROADCAST, GATHER, CommLog
from .partitioner import RowShardPartitioner
from .shm import SharedArray

#: Seconds the coordinator waits on a worker reply before declaring it
#: hung (a dead worker is detected much faster via ``is_alive``).
DEFAULT_TIMEOUT = 120.0

#: Supervised recovery: respawn attempts per failed call, and the
#: capped exponential backoff between them.
DEFAULT_MAX_RETRIES = 2
DEFAULT_BACKOFF = 0.05
DEFAULT_BACKOFF_CAP = 1.0
#: Completed factored refreshes retained for recovery replay before the
#: coordinator refreshes its basis copy instead (bounds both the replay
#: cost of a recovery and the log's memory).
DEFAULT_OPLOG_LIMIT = 64

#: Environment knobs pinned to one BLAS thread in spawned workers.
_BLAS_VARS = ("OPENBLAS_NUM_THREADS", "OMP_NUM_THREADS",
              "MKL_NUM_THREADS", "NUMEXPR_NUM_THREADS")


class WorkerFailedError(RuntimeError):
    """A worker died, hung, or raised; the cluster is poisoned.

    Carries the worker index and, when the worker managed to report it,
    the remote traceback — so the coordinator-side exception reads like
    the worker's own crash instead of an opaque pipe error.
    """

    def __init__(self, worker: int, reason: str,
                 worker_traceback: str | None = None):
        message = f"worker {worker} failed: {reason}"
        if worker_traceback:
            message += "\n--- worker traceback ---\n" + worker_traceback
        super().__init__(message)
        self.worker = worker
        self.reason = reason
        self.traceback = worker_traceback


class _WorkerUnavailable(Exception):
    """Internal: one worker cannot answer (dead, hung, or pipe gone).

    The supervised path turns this into a recovery; the unsupervised
    path turns it into :class:`WorkerFailedError` + poison.
    """

    def __init__(self, worker: int, reason: str):
        super().__init__(reason)
        self.worker = worker
        self.reason = reason


@dataclass(frozen=True)
class RecoveryEvent:
    """One logged worker recovery (what a ``kill -9`` becomes)."""

    worker: int            #: index of the recovered worker
    label: str             #: op in flight when the failure was detected
    reason: str            #: what the supervisor observed (died/hung/...)
    attempts: int          #: respawns needed (1 = first respawn worked)
    replayed: int          #: oplog refreshes replayed into the new shard
    restored_views: int    #: views whose shard rows were reseeded
    seconds: float         #: wall time from detection to recovery


# -- per-tile kernels (shared by worker processes and the in-process
# -- reference engine; identical calls => bitwise identical views) ------

def tile_add_lowrank(view: np.ndarray, r0: int, r1: int, u: np.ndarray,
                     vt: np.ndarray, workspace: Workspace) -> None:
    """``view[r0:r1] += u[r0:r1] @ vt`` staged through a leased buffer."""
    prod = workspace.lease(r1 - r0, vt.shape[1])
    np.matmul(u[r0:r1], vt, out=prod)
    view[r0:r1] += prod


def tile_mat_lowrank(view: np.ndarray, r0: int, r1: int, u: np.ndarray,
                     out: np.ndarray) -> None:
    """``out[:] = view[r0:r1] @ u`` (thin ``(r1-r0, k)`` partial)."""
    np.matmul(view[r0:r1], u, out=out)


def tile_matT_lowrank(view: np.ndarray, c0: int, c1: int, v: np.ndarray,
                      out: np.ndarray) -> None:
    """``out[:] = view[:, c0:c1].T @ v`` (thin ``(c1-c0, k)`` partial)."""
    np.matmul(view[:, c0:c1].T, v, out=out)


def tile_matmul(out: np.ndarray, a: np.ndarray, b: np.ndarray,
                r0: int, r1: int) -> None:
    """``out[r0:r1] = a[r0:r1] @ b`` — the REEVAL shard product."""
    np.matmul(a[r0:r1], b, out=out[r0:r1])


# -- worker process ------------------------------------------------------

def _execute(op: tuple, views: dict, segments: dict,
             tile_bounds: tuple, owned: tuple, ws: Workspace):
    """Run one coordinator op against this worker's shard."""
    kind = op[0]
    if kind == "ping":
        return None
    if kind == "attach":
        _, name, shm_name, shape = op
        seg = SharedArray.attach(shm_name, shape)
        segments[name] = seg
        views[name] = seg.array
        return None
    if kind == "detach":
        _, name = op
        views.pop(name, None)
        seg = segments.pop(name, None)
        if seg is not None:
            seg.close()
        return None
    if kind == "add_lowrank":
        _, name, u, v = op
        view = views[name]
        vt = v.T
        with ws.frame():
            for t in owned:
                r0, r1 = tile_bounds[t]
                tile_add_lowrank(view, r0, r1, u, vt, ws)
        return None
    if kind == "mat_lowrank":
        _, name, u = op
        view = views[name]
        k = u.shape[1]
        partials = {}
        with ws.frame():
            for t in owned:
                r0, r1 = tile_bounds[t]
                buf = ws.lease(r1 - r0, k)
                tile_mat_lowrank(view, r0, r1, u, buf)
                partials[t] = buf
            # Pickled into the reply before the next op reuses the
            # leased buffers, so returning them out of the frame is
            # safe.
            return partials
    if kind == "matT_lowrank":
        _, name, v = op
        view = views[name]
        k = v.shape[1]
        partials = {}
        with ws.frame():
            for t in owned:
                c0, c1 = tile_bounds[t]
                buf = ws.lease(c1 - c0, k)
                tile_matT_lowrank(view, c0, c1, v, buf)
                partials[t] = buf
            return partials
    if kind == "matmul":
        _, out_name, a_name, b_name = op
        out, a, b = views[out_name], views[a_name], views[b_name]
        for t in owned:
            r0, r1 = tile_bounds[t]
            tile_matmul(out, a, b, r0, r1)
        return None
    raise ValueError(f"unknown worker op {kind!r}")


def _worker_main(conn, worker_id: int, tile_bounds: tuple,
                 owned: tuple) -> None:
    """Worker loop: recv op, execute on the shard, reply (ok|err)."""
    ws = Workspace()
    segments: dict[str, SharedArray] = {}
    views: dict[str, np.ndarray] = {}
    try:
        while True:
            try:
                payload = conn.recv_bytes()
            except (EOFError, OSError):
                break
            op = pickle.loads(payload)
            kind = op[0]
            if kind == "exit":
                try:
                    conn.send_bytes(pickle.dumps(("ok", 0.0, None)))
                except (BrokenPipeError, OSError):
                    pass
                break
            if kind == "die":
                # Test hook: crash without cleanup, as a real fault would.
                os._exit(17)
            if kind == "hang":
                # Test hook: go quiet without replying, as a livelock
                # would — the supervisor's deadline must catch this.
                time.sleep(op[1])
                continue
            try:
                started = time.perf_counter()
                data = _execute(op, views, segments, tile_bounds, owned, ws)
                reply = ("ok", time.perf_counter() - started, data)
            except Exception:
                reply = ("err", traceback.format_exc())
            try:
                conn.send_bytes(
                    pickle.dumps(reply, protocol=pickle.HIGHEST_PROTOCOL)
                )
            except (BrokenPipeError, OSError):
                break
    finally:
        # Attach side of the shm protocol: close mappings, never unlink.
        for seg in segments.values():
            seg.close()
        try:
            conn.close()
        except OSError:
            pass


# -- coordinator ---------------------------------------------------------

def _cleanup(procs, conns, segments, views=None) -> None:
    """Best-effort teardown shared by close(), failure, and GC.

    The coordinator's view dict is cleared *before* the segments close
    so the unmap-safety refcount check in :meth:`SharedArray.close`
    sees only references the caller still holds.
    """
    for proc in procs:
        if proc.is_alive():
            proc.terminate()
    for proc in procs:
        proc.join(timeout=1.0)
    for conn in conns:
        try:
            conn.close()
        except OSError:
            pass
    if views is not None:
        views.clear()
    for seg in list(segments.values()):
        seg.close()
        seg.unlink()
    segments.clear()


class ProcessCluster:
    """Coordinator over ``nodes`` persistent spawned workers.

    Owns the shared-memory segments (creator side of the shm protocol)
    and the per-worker pipes.  All traffic is recorded into ``comm``
    with real byte counts (pickled payload sizes) and real wall time.

    A worker failure — crash, raised exception, hang past ``timeout``
    or a dropped pipe — raises :class:`WorkerFailedError`, terminates
    the remaining workers, releases every segment, and poisons the
    cluster: every later call re-raises instead of hanging.

    With ``supervise=True`` the coordinator instead *recovers*: the
    dead (or hung — terminated) worker is respawned with capped
    exponential backoff, its shard rows are reseeded from the
    coordinator's basis copy of every view, the completed factored
    refreshes since that basis are replayed **inside the respawned
    worker** (same pinned single-thread BLAS, same tile kernels, same
    order — so the rebuilt shard is bitwise identical to an unfailed
    one), the in-flight op is retried, and a :class:`RecoveryEvent` is
    appended to ``recoveries``.  Only exhausted retries — or a worker
    *raising* (a deterministic application error, which a respawn would
    just repeat) — poison the cluster.  Supervision costs one
    coordinator-side copy of every view plus a bounded oplog; leave it
    off (the default) when a failure should simply fail.
    """

    def __init__(self, partitioner: RowShardPartitioner,
                 start_method: str = "spawn", comm: CommLog | None = None,
                 timeout: float = DEFAULT_TIMEOUT, supervise: bool = False,
                 max_retries: int = DEFAULT_MAX_RETRIES,
                 backoff: float = DEFAULT_BACKOFF,
                 backoff_cap: float = DEFAULT_BACKOFF_CAP,
                 oplog_limit: int = DEFAULT_OPLOG_LIMIT):
        self.partitioner = partitioner
        self.nodes = partitioner.nodes
        self.comm = comm if comm is not None else CommLog()
        self.timeout = timeout
        self.supervise = bool(supervise)
        self.max_retries = int(max_retries)
        self.backoff = float(backoff)
        self.backoff_cap = float(backoff_cap)
        self.oplog_limit = int(oplog_limit)
        self.failure: WorkerFailedError | None = None
        self.worker_seconds = [0.0] * self.nodes
        #: Logged :class:`RecoveryEvent`\s (supervised clusters only).
        self.recoveries: list[RecoveryEvent] = []
        self._basis: dict[str, np.ndarray] = {}
        self._oplog: list[tuple[str, np.ndarray, np.ndarray]] = []
        self._segments: dict[str, SharedArray] = {}
        self._views: dict[str, np.ndarray] = {}
        self._procs: list = [None] * self.nodes
        self._conns: list = [None] * self.nodes
        self._closed = False
        self._ctx = mp.get_context(start_method)
        for worker in range(self.nodes):
            self._spawn_worker(worker)
        self._finalizer = weakref.finalize(
            self, _cleanup, self._procs, self._conns, self._segments,
            self._views,
        )

    def _spawn_worker(self, worker: int) -> None:
        """(Re)spawn one worker process with BLAS pinned to one thread.

        Replaces the slot in place so the GC finalizer always sees the
        current incarnation.
        """
        saved = {var: os.environ.get(var) for var in _BLAS_VARS}
        for var in _BLAS_VARS:
            os.environ[var] = "1"
        try:
            parent_conn, child_conn = self._ctx.Pipe()
            proc = self._ctx.Process(
                target=_worker_main,
                args=(child_conn, worker,
                      tuple(self.partitioner.tile_bounds),
                      tuple(self.partitioner.shards[worker])),
                daemon=True, name=f"repro-shard-{worker}",
            )
            proc.start()
            child_conn.close()
            self._procs[worker] = proc
            self._conns[worker] = parent_conn
        finally:
            for var, value in saved.items():
                if value is None:
                    os.environ.pop(var, None)
                else:
                    os.environ[var] = value

    # -- failure handling ------------------------------------------------
    def _fail(self, worker: int, reason: str, tb: str | None = None):
        error = WorkerFailedError(worker, reason, tb)
        self.failure = error
        self._finalizer()
        raise error

    def _check_open(self) -> None:
        if self.failure is not None:
            raise WorkerFailedError(
                self.failure.worker,
                "cluster poisoned by an earlier worker failure",
                self.failure.traceback,
            )
        if self._closed:
            raise RuntimeError("cluster is closed")

    def _try_recv(self, worker: int) -> bytes:
        """One worker's reply bytes, or :class:`_WorkerUnavailable`."""
        conn, proc = self._conns[worker], self._procs[worker]
        deadline = time.perf_counter() + self.timeout
        while True:
            if conn.poll(0.05):
                try:
                    return conn.recv_bytes()
                except (EOFError, OSError):
                    raise _WorkerUnavailable(worker, "pipe closed mid-reply")
            if not proc.is_alive():
                raise _WorkerUnavailable(
                    worker,
                    f"worker process died (exit code {proc.exitcode})",
                )
            if time.perf_counter() > deadline:
                raise _WorkerUnavailable(
                    worker, f"no reply within {self.timeout}s (hung?)")

    def _recv(self, worker: int) -> bytes:
        try:
            return self._try_recv(worker)
        except _WorkerUnavailable as exc:
            self._fail(exc.worker, exc.reason)

    def roundtrip(self, op: tuple, kind: str, label: str) -> dict:
        """Broadcast one op to every worker and gather the replies.

        Records two comm events: the fan-out (``kind``) with the real
        pickled payload bytes per worker, and the fan-in (``gather``)
        with the real reply bytes — both with measured wall time.

        Unsupervised, a worker failure poisons the cluster.  Supervised,
        the failed workers are recovered (respawn + reseed + replay +
        retry, see the class docstring) and the call completes as if
        nothing happened; the surviving workers' shard rows are
        untouched throughout, so state never regresses.
        """
        self._check_open()
        faults.fire("cluster.roundtrip", cluster=self, label=label)
        payload = pickle.dumps(op, protocol=pickle.HIGHEST_PROTOCOL)
        started = time.perf_counter()
        failed: dict[int, str] = {}
        for worker in range(self.nodes):
            try:
                self._conns[worker].send_bytes(payload)
            except (BrokenPipeError, OSError):
                reason = "pipe closed while sending (worker dead?)"
                if not self.supervise:
                    self._fail(worker, reason)
                failed[worker] = reason
        send_seconds = time.perf_counter() - started
        self.comm.record(kind, label, len(payload) * self.nodes,
                         messages=self.nodes, seconds=send_seconds)
        replies = {}
        reply_bytes = 0
        started = time.perf_counter()
        for worker in range(self.nodes):
            if worker in failed:
                continue
            try:
                raw = self._try_recv(worker)
            except _WorkerUnavailable as exc:
                if not self.supervise:
                    self._fail(exc.worker, exc.reason)
                failed[worker] = exc.reason
                continue
            reply = pickle.loads(raw)
            if reply[0] == "err":
                self._fail(worker, f"raised during {label!r}", reply[1])
            _, seconds, data = reply
            self.worker_seconds[worker] += seconds
            reply_bytes += len(raw)
            replies[worker] = data
        gather_seconds = time.perf_counter() - started
        self.comm.record(GATHER, label, reply_bytes,
                         messages=self.nodes, seconds=gather_seconds)
        for worker, reason in failed.items():
            replies[worker] = self._recover_worker(worker, reason, op,
                                                   payload, label)
        if self.supervise:
            if op[0] == "add_lowrank":
                self._log_refresh(op)
            elif op[0] == "matmul":
                self._refresh_basis()
        return replies

    # -- supervision -----------------------------------------------------
    def _refresh_basis(self) -> None:
        """Re-copy every view into the recovery basis; drop the oplog."""
        if not self.supervise:
            return
        self._basis = {name: np.array(view)
                       for name, view in self._views.items()}
        self._oplog.clear()

    def _log_refresh(self, op: tuple) -> None:
        """Append one completed factored refresh to the recovery oplog."""
        _, name, u, v = op
        self._oplog.append((name, np.array(u), np.array(v)))
        if len(self._oplog) > self.oplog_limit:
            self._refresh_basis()

    def _retire_worker(self, worker: int) -> None:
        """Make sure a failed incarnation is dead and its pipe closed.

        A *hung* worker is still alive and would otherwise wake up later
        and apply a stale op to rows its successor now owns — terminate
        before respawning, escalating to SIGKILL if need be.
        """
        proc, conn = self._procs[worker], self._conns[worker]
        if proc.is_alive():
            proc.terminate()
            proc.join(timeout=2.0)
            if proc.is_alive():
                proc.kill()
                proc.join(timeout=2.0)
        try:
            conn.close()
        except OSError:
            pass

    def _recover_worker(self, worker: int, reason: str, op: tuple,
                        payload: bytes, label: str):
        """Respawn + reseed + replay + retry one failed worker.

        Returns the retried op's reply data.  Exhausted retries poison
        the cluster like an unsupervised failure would.
        """
        started = time.perf_counter()
        self._retire_worker(worker)
        if not self.supervise:
            self._fail(worker, reason)
        last_reason = reason
        for attempt in range(self.max_retries + 1):
            if attempt:
                time.sleep(min(self.backoff * (2 ** (attempt - 1)),
                               self.backoff_cap))
            self._spawn_worker(worker)
            try:
                data = self._rebuild_worker(worker, op, payload, label)
            except _WorkerUnavailable as exc:
                last_reason = exc.reason
                self._retire_worker(worker)
                continue
            self.recoveries.append(RecoveryEvent(
                worker=worker, label=label, reason=reason,
                attempts=attempt + 1, replayed=len(self._oplog),
                restored_views=len(self._basis),
                seconds=time.perf_counter() - started,
            ))
            return data
        self._fail(
            worker,
            f"unrecoverable after {self.max_retries + 1} respawn attempts "
            f"({last_reason}); first failure: {reason}",
        )

    def _rebuild_worker(self, worker: int, op: tuple, payload: bytes,
                        label: str):
        """Bring a freshly spawned worker to the pre-op state, retry.

        Three phases, each bitwise-safe: (1) re-attach every live
        segment; (2) reseed the worker's own tile rows from the basis —
        pure copies, coordinator-side, erasing any torn partial write
        the dead incarnation left; (3) replay the oplog's completed
        refreshes *in the worker* (pinned single-thread BLAS, same
        kernels, same tile order as the lost incarnation ran them).
        Then the in-flight op is re-sent.  Surviving workers already
        applied it to their disjoint rows, so after the retry every row
        of every view is exactly where a fault-free run would be.
        """
        conn = self._conns[worker]
        sent_bytes = 0
        messages = 0
        recover_started = time.perf_counter()

        def call(message: tuple):
            nonlocal sent_bytes, messages
            blob = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
            try:
                conn.send_bytes(blob)
            except (BrokenPipeError, OSError):
                raise _WorkerUnavailable(
                    worker, "pipe closed during recovery")
            sent_bytes += len(blob)
            messages += 1
            raw = self._try_recv(worker)
            reply = pickle.loads(raw)
            if reply[0] == "err":
                self._fail(worker, "raised during recovery replay", reply[1])
            return reply[2]

        # An in-flight attach re-attaches via the retried op itself.
        skip_attach = op[1] if op[0] == "attach" else None
        for name, seg in self._segments.items():
            if name == skip_attach:
                continue
            call(("attach", name, seg.name, seg.shape))
        owned = self.partitioner.shards[worker]
        bounds = self.partitioner.tile_bounds
        for name, block in self._basis.items():
            view = self._views.get(name)
            if view is None:
                continue
            for t in owned:
                r0, r1 = bounds[t]
                view[r0:r1] = block[r0:r1]
        for name, u, v in self._oplog:
            call(("add_lowrank", name, u, v))
        try:
            conn.send_bytes(payload)
        except (BrokenPipeError, OSError):
            raise _WorkerUnavailable(worker, "pipe closed during retry")
        sent_bytes += len(payload)
        messages += 1
        raw = self._try_recv(worker)
        reply = pickle.loads(raw)
        if reply[0] == "err":
            self._fail(worker, f"raised during {label!r}", reply[1])
        _, seconds, data = reply
        self.worker_seconds[worker] += seconds
        self.comm.record(BROADCAST, "recover", sent_bytes,
                         messages=messages,
                         seconds=time.perf_counter() - recover_started)
        return data

    # -- shared-memory views ---------------------------------------------
    def put(self, name: str, value: np.ndarray) -> np.ndarray:
        """Store ``value`` under ``name`` in shared memory; all workers
        attach.  Overwrites in place if the name already exists."""
        self._check_open()
        arr = np.ascontiguousarray(value, dtype=np.float64)
        if arr.ndim != 2:
            raise ValueError(f"expected a matrix, got shape {arr.shape}")
        if name in self._segments:
            existing = self._views[name]
            if existing.shape != arr.shape:
                raise ValueError(
                    f"view {name!r} exists with shape {existing.shape}, "
                    f"cannot overwrite with {arr.shape}"
                )
            existing[...] = arr
            if self.supervise:
                self._refresh_basis()
            return existing
        seg = SharedArray.create(arr.shape)
        seg.array[...] = arr
        self._segments[name] = seg
        self._views[name] = seg.array
        self.roundtrip(("attach", name, seg.name, arr.shape),
                       BROADCAST, "attach")
        if self.supervise:
            self._refresh_basis()
        return seg.array

    def alloc(self, name: str, shape: tuple[int, int]) -> np.ndarray:
        """Allocate a zero-filled shared view (for matmul targets)."""
        return self.put(name, np.zeros(shape))

    def get(self, name: str) -> np.ndarray:
        """The coordinator's zero-copy view of a stored matrix."""
        self._check_open()
        return self._views[name]

    def names(self):
        """Names of every view currently stored on the cluster."""
        return tuple(self._views)

    def free(self, name: str) -> None:
        """Release one view: workers detach, the segment is unlinked."""
        seg = self._segments.pop(name, None)
        if seg is None:
            return
        self._views.pop(name, None)
        self._basis.pop(name, None)
        self._oplog = [entry for entry in self._oplog if entry[0] != name]
        if self.failure is None and not self._closed:
            self.roundtrip(("detach", name), BROADCAST, "detach")
        seg.close()
        seg.unlink()

    # -- lifecycle -------------------------------------------------------
    def ping(self) -> None:
        """Round-trip a no-op to every worker (liveness check)."""
        self.roundtrip(("ping",), BROADCAST, "ping")

    def kill_worker(self, worker: int) -> None:
        """Test hook: make ``worker`` die abruptly (``os._exit``)."""
        try:
            self._conns[worker].send_bytes(pickle.dumps(("die",)))
        except (BrokenPipeError, OSError):
            pass
        self._procs[worker].join(timeout=5.0)

    def hang_worker(self, worker: int, seconds: float = 3600.0) -> None:
        """Test hook: make ``worker`` go quiet for ``seconds`` (no reply).

        The next call's per-worker deadline (``timeout``) is what must
        notice; supervised clusters then terminate and recover the
        hung incarnation.
        """
        try:
            self._conns[worker].send_bytes(
                pickle.dumps(("hang", float(seconds))))
        except (BrokenPipeError, OSError):
            pass

    def close(self) -> None:
        """Stop the workers and release every shared segment (idempotent)."""
        if self._closed:
            return
        self._closed = True
        if self.failure is None:
            payload = pickle.dumps(("exit",))
            for worker in range(self.nodes):
                try:
                    self._conns[worker].send_bytes(payload)
                except (BrokenPipeError, OSError):
                    pass
            for proc in self._procs:
                proc.join(timeout=2.0)
        self._finalizer()


__all__ = [
    "DEFAULT_BACKOFF",
    "DEFAULT_BACKOFF_CAP",
    "DEFAULT_MAX_RETRIES",
    "DEFAULT_OPLOG_LIMIT",
    "DEFAULT_TIMEOUT",
    "ProcessCluster",
    "RecoveryEvent",
    "WorkerFailedError",
    "tile_add_lowrank",
    "tile_matT_lowrank",
    "tile_mat_lowrank",
    "tile_matmul",
]
