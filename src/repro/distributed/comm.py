"""Communication ledger for the cluster simulator (Section 6 analysis).

The paper's distributed argument is about *traffic class*, not just
volume: re-evaluation reshuffles ``O(n^2)`` tiles per product, while
incremental maintenance "minimize[s] the communication cost as less
data has to be shipped over the network" — only ``O(nk)`` broadcast
factors and gathered thin results.  :class:`CommLog` keeps that
classification explicit so tests and the partitioning ablation can
assert it (bytes shuffled vs broadcast vs gathered, per operation
label), independently of the BSP clock in
:mod:`repro.distributed.cluster`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Traffic classes.
SHUFFLE = "shuffle"        # tile-to-tile redistribution (dense products)
BROADCAST = "broadcast"    # master -> all workers (low-rank factors)
GATHER = "gather"          # workers -> master (thin partial results)

_KINDS = (SHUFFLE, BROADCAST, GATHER)


@dataclass(frozen=True)
class CommEvent:
    """One communication action: ``bytes`` moved in ``messages`` sends.

    ``seconds`` is the measured wall time of the transfer — 0.0 for
    simulated traffic, real pipe latency for the multiprocess engine.
    """

    kind: str
    label: str
    nbytes: int
    messages: int
    seconds: float = 0.0


@dataclass
class CommLog:
    """Classified traffic tallies for one simulated or real execution."""

    events: list[CommEvent] = field(default_factory=list)

    def record(self, kind: str, label: str, nbytes: int, messages: int = 1,
               seconds: float = 0.0) -> None:
        """Append one traffic event (``kind`` must be a known class)."""
        if kind not in _KINDS:
            raise ValueError(f"unknown traffic kind {kind!r}; use one of {_KINDS}")
        if nbytes < 0 or messages < 0 or seconds < 0:
            raise ValueError("traffic cannot be negative")
        self.events.append(
            CommEvent(kind, label, int(nbytes), int(messages), float(seconds))
        )

    def bytes_by_kind(self) -> dict[str, int]:
        """Total bytes per traffic class (all classes always present)."""
        totals = {kind: 0 for kind in _KINDS}
        for event in self.events:
            totals[event.kind] += event.nbytes
        return totals

    def bytes_by_label(self) -> dict[str, int]:
        """Total bytes per operation label."""
        totals: dict[str, int] = {}
        for event in self.events:
            totals[event.label] = totals.get(event.label, 0) + event.nbytes
        return totals

    def messages_by_kind(self) -> dict[str, int]:
        """Total message count per traffic class."""
        totals = {kind: 0 for kind in _KINDS}
        for event in self.events:
            totals[event.kind] += event.messages
        return totals

    def seconds_by_kind(self) -> dict[str, float]:
        """Measured transfer wall time per traffic class."""
        totals = {kind: 0.0 for kind in _KINDS}
        for event in self.events:
            totals[event.kind] += event.seconds
        return totals

    def as_dict(self) -> dict:
        """JSON-ready summary (the ``comm`` block schema — see
        ``benchmarks/conftest.py``)."""
        return {
            "bytes": self.bytes_by_kind(),
            "messages": self.messages_by_kind(),
            "seconds": self.seconds_by_kind(),
            "bytes_by_label": self.bytes_by_label(),
            "total_bytes": self.total_bytes,
            "total_messages": self.total_messages,
        }

    @property
    def shuffled_bytes(self) -> int:
        """Bytes moved tile-to-tile (the REEVAL-dominant class)."""
        return self.bytes_by_kind()[SHUFFLE]

    @property
    def broadcast_bytes(self) -> int:
        """Bytes broadcast master-to-workers (the INCR-dominant class)."""
        return self.bytes_by_kind()[BROADCAST]

    @property
    def gathered_bytes(self) -> int:
        """Bytes gathered workers-to-master."""
        return self.bytes_by_kind()[GATHER]

    @property
    def total_bytes(self) -> int:
        """All traffic regardless of class."""
        return sum(event.nbytes for event in self.events)

    @property
    def total_messages(self) -> int:
        """Total message count (latency proxy)."""
        return sum(event.messages for event in self.events)

    def reset(self) -> None:
        """Clear the ledger."""
        self.events.clear()


__all__ = ["BROADCAST", "CommEvent", "CommLog", "GATHER", "SHUFFLE"]
