"""Matrix partitioning schemes (Section 6, "Data Partitioning").

:class:`GridPartitioner` tiles an ``(n x m)`` matrix over a ``g x g``
worker grid — worker ``(bi, bj)`` owns tile ``(bi, bj)`` — the layout
the paper uses for its Spark matrix multiplication.

The paper's *hybrid* scheme additionally gives every node one block of
rows and one block of columns of each large matrix ("doubles the memory
consumption" but keeps products with small delta matrices strictly
local).  The simulator models that as zero-shuffle row/column access in
:mod:`repro.distributed.engine`; :func:`hybrid_extra_bytes` reports the
memory price.
"""

from __future__ import annotations

import numpy as np


class GridPartitioner:
    """Balanced ``g x g`` tiling of matrix indices.

    Tile boundaries put ``ceil`` remainders on the leading tiles so any
    ``n >= g`` splits without padding.
    """

    def __init__(self, n_rows: int, n_cols: int, grid: int):
        if grid < 1:
            raise ValueError(f"grid must be >= 1, got {grid}")
        if n_rows < grid or n_cols < grid:
            raise ValueError(
                f"matrix ({n_rows} x {n_cols}) too small for a {grid}x{grid} grid"
            )
        self.n_rows = n_rows
        self.n_cols = n_cols
        self.grid = grid
        self.row_bounds = self._bounds(n_rows, grid)
        self.col_bounds = self._bounds(n_cols, grid)

    @staticmethod
    def _bounds(total: int, parts: int) -> list[tuple[int, int]]:
        base, extra = divmod(total, parts)
        bounds = []
        start = 0
        for i in range(parts):
            size = base + (1 if i < extra else 0)
            bounds.append((start, start + size))
            start += size
        return bounds

    def tile_shape(self, bi: int, bj: int) -> tuple[int, int]:
        """Shape of tile ``(bi, bj)``."""
        r0, r1 = self.row_bounds[bi]
        c0, c1 = self.col_bounds[bj]
        return r1 - r0, c1 - c0

    def split(self, dense: np.ndarray) -> dict[tuple[int, int], np.ndarray]:
        """Tile a dense matrix into the grid layout (copies)."""
        if dense.shape != (self.n_rows, self.n_cols):
            raise ValueError(
                f"expected ({self.n_rows} x {self.n_cols}), got {dense.shape}"
            )
        tiles = {}
        for bi, (r0, r1) in enumerate(self.row_bounds):
            for bj, (c0, c1) in enumerate(self.col_bounds):
                tiles[(bi, bj)] = dense[r0:r1, c0:c1].copy()
        return tiles

    def assemble(self, tiles: dict[tuple[int, int], np.ndarray]) -> np.ndarray:
        """Reassemble a dense matrix from grid tiles."""
        out = np.empty((self.n_rows, self.n_cols))
        for bi, (r0, r1) in enumerate(self.row_bounds):
            for bj, (c0, c1) in enumerate(self.col_bounds):
                out[r0:r1, c0:c1] = tiles[(bi, bj)]
        return out

    def max_tile_elements(self) -> int:
        """Element count of the largest tile (critical-path sizing)."""
        r = self.row_bounds[0][1] - self.row_bounds[0][0]
        c = self.col_bounds[0][1] - self.col_bounds[0][0]
        return r * c


def hybrid_extra_bytes(n_rows: int, n_cols: int, itemsize: int = 8) -> int:
    """Extra memory of the hybrid row+column replication (one full copy).

    Each node holding one block-row *and* one block-column of a matrix
    doubles the aggregate footprint: ``g`` nodes x (n/g) rows is one full
    copy, likewise for columns.
    """
    return n_rows * n_cols * itemsize
