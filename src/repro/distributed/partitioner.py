"""Matrix partitioning schemes (Section 6, "Data Partitioning").

:class:`GridPartitioner` tiles an ``(n x m)`` matrix over a ``g x g``
worker grid — worker ``(bi, bj)`` owns tile ``(bi, bj)`` — the layout
the paper uses for its Spark matrix multiplication.

The paper's *hybrid* scheme additionally gives every node one block of
rows and one block of columns of each large matrix ("doubles the memory
consumption" but keeps products with small delta matrices strictly
local).  The simulator models that as zero-shuffle row/column access in
:mod:`repro.distributed.engine`; :func:`hybrid_extra_bytes` reports the
memory price.
"""

from __future__ import annotations

import numpy as np


class GridPartitioner:
    """Balanced ``g x g`` tiling of matrix indices.

    Tile boundaries put ``ceil`` remainders on the leading tiles so any
    ``n >= g`` splits without padding.
    """

    def __init__(self, n_rows: int, n_cols: int, grid: int):
        if grid < 1:
            raise ValueError(f"grid must be >= 1, got {grid}")
        if n_rows < grid or n_cols < grid:
            raise ValueError(
                f"matrix ({n_rows} x {n_cols}) too small for a {grid}x{grid} grid"
            )
        self.n_rows = n_rows
        self.n_cols = n_cols
        self.grid = grid
        self.row_bounds = self._bounds(n_rows, grid)
        self.col_bounds = self._bounds(n_cols, grid)

    @staticmethod
    def _bounds(total: int, parts: int) -> list[tuple[int, int]]:
        base, extra = divmod(total, parts)
        bounds = []
        start = 0
        for i in range(parts):
            size = base + (1 if i < extra else 0)
            bounds.append((start, start + size))
            start += size
        return bounds

    def tile_shape(self, bi: int, bj: int) -> tuple[int, int]:
        """Shape of tile ``(bi, bj)``."""
        r0, r1 = self.row_bounds[bi]
        c0, c1 = self.col_bounds[bj]
        return r1 - r0, c1 - c0

    def split(self, dense: np.ndarray) -> dict[tuple[int, int], np.ndarray]:
        """Tile a dense matrix into the grid layout (copies)."""
        if dense.shape != (self.n_rows, self.n_cols):
            raise ValueError(
                f"expected ({self.n_rows} x {self.n_cols}), got {dense.shape}"
            )
        tiles = {}
        for bi, (r0, r1) in enumerate(self.row_bounds):
            for bj, (c0, c1) in enumerate(self.col_bounds):
                tiles[(bi, bj)] = dense[r0:r1, c0:c1].copy()
        return tiles

    def assemble(self, tiles: dict[tuple[int, int], np.ndarray]) -> np.ndarray:
        """Reassemble a dense matrix from grid tiles."""
        out = np.empty((self.n_rows, self.n_cols))
        for bi, (r0, r1) in enumerate(self.row_bounds):
            for bj, (c0, c1) in enumerate(self.col_bounds):
                out[r0:r1, c0:c1] = tiles[(bi, bj)]
        return out

    def max_tile_elements(self) -> int:
        """Element count of the largest tile (critical-path sizing)."""
        r = self.row_bounds[0][1] - self.row_bounds[0][0]
        c = self.col_bounds[0][1] - self.col_bounds[0][0]
        return r * c


class RowShardPartitioner:
    """Fixed row-tile decomposition sharded over ``nodes`` workers.

    The tile boundaries depend only on ``(n, tile_rows)`` — never on the
    node count or the sharding strategy — so every execution path
    (1 worker or N, ``hash`` or ``range`` assignment, in-process or
    multi-process) performs *bitwise identical* per-tile kernels.
    Changing ``nodes`` or ``strategy`` only changes which worker runs
    each tile, which is why sharded maintenance can promise bit-equality
    with the single-process reference instead of mere ``allclose``.

    Strategies (Section 6 "Data Partitioning", extended per the ISSUE):

    * ``range`` — contiguous balanced runs of tiles per worker (the
      paper's block-row layout);
    * ``hash`` — tile index modulo node count (round-robin), which
      balances skewed per-tile cost at the price of locality.

    Degenerate shapes are all legal: ``nodes=1`` (single-node cluster),
    ``nodes > n_tiles`` (trailing workers own zero tiles — empty block
    rows), and ``n`` not divisible by ``tile_rows`` (a short last tile).
    """

    STRATEGIES = ("range", "hash")

    #: Default tile height; a function of nothing but this constant so
    #: that two partitioners over the same ``n`` agree on boundaries.
    DEFAULT_TILE_ROWS = 64

    def __init__(self, n: int, nodes: int, strategy: str = "range",
                 tile_rows: int | None = None):
        if n < 1:
            raise ValueError(f"matrix dimension must be >= 1, got {n}")
        if nodes < 1:
            raise ValueError(f"nodes must be >= 1, got {nodes}")
        if strategy not in self.STRATEGIES:
            raise ValueError(
                f"unknown shard strategy {strategy!r}; use one of {self.STRATEGIES}"
            )
        if tile_rows is None:
            tile_rows = min(n, self.DEFAULT_TILE_ROWS)
        if tile_rows < 1:
            raise ValueError(f"tile_rows must be >= 1, got {tile_rows}")
        self.n = n
        self.nodes = nodes
        self.strategy = strategy
        self.tile_rows = tile_rows
        self.tile_bounds: list[tuple[int, int]] = [
            (start, min(n, start + tile_rows)) for start in range(0, n, tile_rows)
        ]
        self.n_tiles = len(self.tile_bounds)
        if strategy == "hash":
            self.owners = [t % nodes for t in range(self.n_tiles)]
        else:
            runs = GridPartitioner._bounds(self.n_tiles, nodes)
            self.owners = [0] * self.n_tiles
            for worker, (t0, t1) in enumerate(runs):
                for t in range(t0, t1):
                    self.owners[t] = worker
        self.shards: list[tuple[int, ...]] = [
            tuple(t for t in range(self.n_tiles) if self.owners[t] == w)
            for w in range(nodes)
        ]

    def shard_rows(self, worker: int) -> int:
        """Row count owned by ``worker`` (0 for an empty shard)."""
        return sum(r1 - r0 for r0, r1 in
                   (self.tile_bounds[t] for t in self.shards[worker]))

    def max_tile_rows(self) -> int:
        """Height of the tallest tile (per-tile scratch sizing)."""
        return max(r1 - r0 for r0, r1 in self.tile_bounds)

    def describe(self) -> dict:
        """Shard layout summary for bench/CLI artifacts."""
        return {
            "n": self.n,
            "nodes": self.nodes,
            "strategy": self.strategy,
            "tile_rows": self.tile_rows,
            "n_tiles": self.n_tiles,
            "shard_rows": [self.shard_rows(w) for w in range(self.nodes)],
        }


def hybrid_extra_bytes(n_rows: int, n_cols: int, itemsize: int = 8) -> int:
    """Extra memory of the hybrid row+column replication (one full copy).

    Each node holding one block-row *and* one block-column of a matrix
    doubles the aggregate footprint: ``g`` nodes x (n/g) rows is one full
    copy, likewise for columns.
    """
    return n_rows * n_cols * itemsize
