"""Distributed general-form maintainers ``T_{i+1} = A T_i + B`` (Fig. 3g/3h).

The paper's Fig. 3g and 3h run the general form on Spark with thin
iterates (``p`` from 1 to 1000, ``n = 30K``).  The natural distributed
layout in that regime keeps ``A`` grid-partitioned while the thin
``T_i``/``B`` (and all deltas) live master-side and are broadcast for
the block-row-local products — exactly the engine's ``mat_lowrank``
path.  All three strategies use the linear model, the paper's choice
when ``p << n`` (Section 5.3.2: "the Lin model incurs the lowest time
complexity when p << n"):

* :class:`DistributedReevalGeneral` — ``k`` broadcast-multiply rounds
  over the *updated* ``A`` per refresh;
* :class:`DistributedIncrementalGeneral` — factored iterate deltas
  ``dT_i = U_i V_i'`` (Appendix B, widths grow by 1 per step);
* :class:`DistributedHybridGeneral` — dense ``(n x p)`` iterate deltas
  (Section 5.3.2's winner at ``p = 1``).
"""

from __future__ import annotations

import numpy as np

from ..iterative.models import Model
from .blockmatrix import BlockMatrix
from .cluster import Cluster
from .engine import DistributedEngine


class _DistributedGeneralBase:
    """Shared setup: grid-partitioned A, master-side thin T_i and B."""

    def __init__(
        self,
        a: np.ndarray,
        b: np.ndarray | None,
        t0: np.ndarray,
        k: int,
        cluster: Cluster,
    ):
        if k < 1:
            raise ValueError("need at least one iteration")
        a = np.asarray(a, dtype=np.float64)
        t0 = np.asarray(t0, dtype=np.float64)
        if t0.ndim == 1:
            t0 = t0.reshape(-1, 1)
        n = a.shape[0]
        if a.shape != (n, n) or t0.shape[0] != n:
            raise ValueError(f"inconsistent shapes A {a.shape}, T0 {t0.shape}")
        self.b = None if b is None else np.asarray(b, dtype=np.float64)
        if self.b is not None and self.b.shape != t0.shape:
            raise ValueError(f"B {self.b.shape} must match T {t0.shape}")
        self.k = k
        self.model = Model.linear()
        self.cluster = cluster
        self.engine = DistributedEngine(cluster)
        self.a = BlockMatrix.from_dense(a, cluster.config.grid)
        self.t0 = t0
        # Master-side initial materialization (preloaded, untimed).
        self.iterates: dict[int, np.ndarray] = {0: t0}
        current = t0
        for i in range(1, k + 1):
            current = a @ current
            if self.b is not None:
                current = current + self.b
            self.iterates[i] = current

    def result(self) -> np.ndarray:
        """The maintained ``T_k``."""
        return self.iterates[self.k]

    def _step(self, t_prev: np.ndarray) -> np.ndarray:
        product = self.engine.mat_lowrank(self.a, t_prev)
        return product if self.b is None else product + self.b


class DistributedReevalGeneral(_DistributedGeneralBase):
    """REEVAL: update A, then re-run all ``k`` broadcast-multiply rounds."""

    def refresh(self, u: np.ndarray, v: np.ndarray) -> None:
        """Apply ``A += u v'`` and recompute ``T_1 .. T_k``."""
        self.engine.add_lowrank(self.a, u, v)
        current = self.t0
        for i in range(1, self.k + 1):
            current = self._step(current)
            self.iterates[i] = current


class DistributedIncrementalGeneral(_DistributedGeneralBase):
    """INCR: factored iterate deltas, Appendix B linear recurrence.

    ``dT_i = [u | A U_{i-1} + u (v' U_{i-1})] @ [T_{i-1}' v | V_{i-1}]'``
    — the ``A U`` product is the only distributed step per iteration.
    """

    def refresh(self, u: np.ndarray, v: np.ndarray) -> None:
        """Maintain every iterate with broadcast factored deltas."""
        engine = self.engine
        u = u.reshape(len(u), -1)
        v = v.reshape(len(v), -1)
        left = u
        right = self.iterates[0].T @ v
        deltas: dict[int, tuple[np.ndarray, np.ndarray]] = {1: (left, right)}
        for i in range(2, self.k + 1):
            prev_left, prev_right = deltas[i - 1]
            au = engine.mat_lowrank(self.a, prev_left)
            cross = u @ (v.T @ prev_left)
            self.cluster.record_step(
                "master_small", 2 * v.size * prev_left.shape[1], 0, rounds=0
            )
            deltas[i] = (
                np.hstack([u, au + cross]),
                np.hstack([self.iterates[i - 1].T @ v, prev_right]),
            )
        engine.add_lowrank(self.a, u, v)
        for i in range(1, self.k + 1):
            big_u, big_v = deltas[i]
            self.iterates[i] = self.iterates[i] + big_u @ big_v.T
            # Outer-product application: 2 * n * width * p FLOPs.
            self.cluster.record_step(
                "master_small", 2 * big_u.size * big_v.shape[0], 0, rounds=0
            )


class DistributedHybridGeneral(_DistributedGeneralBase):
    """HYBRID: dense ``(n x p)`` iterate deltas (best at ``p ~ 1``).

    ``dT_i = u (v' T_{i-1}) + A dT_{i-1} + u (v' dT_{i-1})`` — one
    broadcast-multiply per iteration with a *fixed-width* operand, so
    the per-update work is ``O(p n^2 k / workers)`` with no factor
    growth (Table 2's hybrid column).
    """

    def refresh(self, u: np.ndarray, v: np.ndarray) -> None:
        """Maintain every iterate with dense thin deltas."""
        engine = self.engine
        u = u.reshape(len(u), -1)
        v = v.reshape(len(v), -1)
        delta = u @ (v.T @ self.iterates[0])
        new_iterates = {1: self.iterates[1] + delta}
        for i in range(2, self.k + 1):
            a_delta = engine.mat_lowrank(self.a, delta)
            delta = u @ (v.T @ self.iterates[i - 1]) + a_delta + u @ (v.T @ delta)
            self.cluster.record_step(
                "master_small", 4 * v.size * delta.shape[1], 0, rounds=0
            )
            new_iterates[i] = self.iterates[i] + delta
        engine.add_lowrank(self.a, u, v)
        self.iterates.update(new_iterates)


def make_distributed_general(
    strategy: str,
    a: np.ndarray,
    b: np.ndarray | None,
    t0: np.ndarray,
    k: int,
    cluster: Cluster,
):
    """Distributed general-form maintainer for a strategy name."""
    classes = {
        "REEVAL": DistributedReevalGeneral,
        "INCR": DistributedIncrementalGeneral,
        "HYBRID": DistributedHybridGeneral,
    }
    try:
        cls = classes[strategy]
    except KeyError:
        raise ValueError(f"unknown strategy {strategy!r}") from None
    return cls(a, b, t0, k, cluster)


__all__ = [
    "DistributedHybridGeneral",
    "DistributedIncrementalGeneral",
    "DistributedReevalGeneral",
    "make_distributed_general",
]
