"""Distributed sums-of-powers maintainers (the Fig. 3d Spark series).

Mirrors :mod:`repro.iterative.sums` on the cluster simulator, using the
exponential model's recurrence (Table 1)::

    S_1 = I;   S_i = P_{i/2} S_{i/2} + S_{i/2}

* :class:`DistributedReevalPowerSums` re-runs the scheduled dense
  products through the SUMMA engine per refresh (shuffle-heavy);
* :class:`DistributedIncrementalPowerSums` broadcasts factored deltas:
  with ``dP_h = Q R'`` and ``dS_h = Z W'``, the sum delta is

      dS_i = [Q | P_h Z + Q (R' Z) + Z] @ [S_h' R | W]'

  — block-row local products against broadcast thin factors only
  (Appendix A's construction; the ``dS_h`` tail folds into the middle
  block because the exponential model has ``h = j``).

The linear model is supported for re-evaluation (it never needs power
views); the incremental path supports the exponential model, which is
the configuration the paper benchmarks (Fig. 3d runs EXP only).
"""

from __future__ import annotations

import numpy as np

from ..iterative.models import Model
from .blockmatrix import BlockMatrix
from .cluster import Cluster
from .engine import DistributedEngine
from .powers import DistributedIncrementalPowers, DistributedReevalPowers


def _check_model(model: Model, incremental: bool) -> None:
    if incremental and model.kind != Model.EXPONENTIAL:
        raise ValueError(
            "distributed incremental sums support the exponential model "
            f"(the Fig. 3d configuration), got {model.name}"
        )
    if not incremental and model.kind == Model.SKIP:
        raise ValueError("distributed re-eval sums support LIN and EXP models")


class DistributedReevalPowerSums:
    """REEVAL strategy for ``S_k`` on the simulated cluster."""

    def __init__(self, a: np.ndarray, k: int, model: Model, cluster: Cluster):
        _check_model(model, incremental=False)
        model.validate_k(k)
        self.model = model
        self.k = k
        self.schedule = model.schedule(k)
        self.cluster = cluster
        self.engine = DistributedEngine(cluster)
        grid = cluster.config.grid
        n = a.shape[0]
        self._eye = BlockMatrix.from_dense(np.eye(n), grid)
        self.a = BlockMatrix.from_dense(a, grid)
        self._powers = (
            DistributedReevalPowers(a, max(k // 2, 1), model, cluster)
            if model.kind == Model.EXPONENTIAL and k > 1
            else None
        )
        self.sums: dict[int, BlockMatrix] = {}
        self._recompute()

    def _recompute(self) -> None:
        engine = self.engine
        self.sums = {1: self._eye.copy()}
        for i in self.schedule[1:]:
            j = self.model.predecessor(i)
            h = i - j
            if self.model.kind == Model.LINEAR:
                self.sums[i] = engine.add(
                    engine.matmul(self.a, self.sums[i - 1]), self._eye
                )
            else:
                self.sums[i] = engine.add(
                    engine.matmul(self._powers.powers[h], self.sums[j]),
                    self.sums[h],
                )

    def refresh(self, u: np.ndarray, v: np.ndarray) -> None:
        """Apply ``A += u v'`` and recompute every scheduled sum."""
        self.engine.add_lowrank(self.a, u, v)
        if self._powers is not None:
            # The powers maintainer holds its own copy of A; refresh it
            # (this re-applies the low-rank update to that copy).
            self._powers.refresh(u, v)
        self._recompute()

    def result(self) -> np.ndarray:
        """The maintained ``S_k`` (gathered dense)."""
        return self.sums[self.k].to_dense()


class DistributedIncrementalPowerSums:
    """INCR strategy for ``S_k`` on the simulated cluster (Appendix A)."""

    def __init__(self, a: np.ndarray, k: int, model: Model, cluster: Cluster):
        _check_model(model, incremental=True)
        model.validate_k(k)
        self.model = model
        self.k = k
        self.schedule = model.schedule(k)
        self.cluster = cluster
        self.engine = DistributedEngine(cluster)
        grid = cluster.config.grid
        n = a.shape[0]
        self._powers = (
            DistributedIncrementalPowers(a, max(k // 2, 1), model, cluster)
            if k > 1
            else None
        )
        # Initial materialization is master-side (untimed preload, like
        # the paper's "precompute the initial values of all auxiliary
        # views and preload [them] before the actual computation").
        dense_a = np.asarray(a, dtype=np.float64)
        dense_sums = {1: np.eye(n)}
        dense_powers = {1: dense_a}
        for i in self.schedule[1:]:
            h = i - self.model.predecessor(i)
            if h not in dense_powers:
                dense_powers[h] = dense_powers[h // 2] @ dense_powers[h // 2]
            dense_sums[i] = dense_powers[h] @ dense_sums[i - h] + dense_sums[h]
        self.sums = {
            i: BlockMatrix.from_dense(m, grid) for i, m in dense_sums.items()
        }

    def refresh(self, u: np.ndarray, v: np.ndarray) -> None:
        """Maintain every scheduled sum with broadcast factored deltas."""
        engine = self.engine
        u = u.reshape(len(u), -1)
        v = v.reshape(len(v), -1)

        power_factors: dict[int, tuple[np.ndarray, np.ndarray]] = {1: (u, v)}
        if self._powers is not None:
            # Recompute the power deltas exactly as the powers maintainer
            # will, but against its *current* (old) views.
            for i in self._powers.schedule[1:]:
                j = self._powers.model.predecessor(i)
                h = i - j
                u_h, v_h = power_factors[h]
                u_j, v_j = power_factors[j]
                ph_uj = engine.mat_lowrank(self._powers.powers[h], u_j)
                cross = u_h @ (v_h.T @ u_j)
                self.cluster.record_step(
                    "master_small", 2 * v_h.size * u_j.shape[1], 0, rounds=0
                )
                left = np.hstack([u_h, ph_uj + cross])
                right = np.hstack(
                    [engine.matT_lowrank(self._powers.powers[j], v_h), v_j]
                )
                power_factors[i] = (left, right)

        sum_factors: dict[int, tuple[np.ndarray, np.ndarray] | None] = {1: None}
        for i in self.schedule[1:]:
            h = i - self.model.predecessor(i)
            q, r = power_factors[h]
            prev = sum_factors[h]
            blocks_left = [q]
            blocks_right = [engine.matT_lowrank(self.sums[h], r)]
            if prev is not None:
                big_z, big_w = prev
                middle = engine.mat_lowrank(
                    self._power_view(h), big_z
                ) + q @ (r.T @ big_z) + big_z
                self.cluster.record_step(
                    "master_small", 2 * r.size * big_z.shape[1], 0, rounds=0
                )
                blocks_left.append(middle)
                blocks_right.append(big_w)
            sum_factors[i] = (np.hstack(blocks_left), np.hstack(blocks_right))

        for i in self.schedule[1:]:
            entry = sum_factors[i]
            if entry is not None:
                engine.add_lowrank(self.sums[i], entry[0], entry[1])
        if self._powers is not None:
            for i in self._powers.schedule:
                q, r = power_factors[i]
                engine.add_lowrank(self._powers.powers[i], q, r)

    def _power_view(self, i: int) -> BlockMatrix:
        assert self._powers is not None
        return self._powers.powers[i]

    def result(self) -> np.ndarray:
        """The maintained ``S_k`` (gathered dense)."""
        return self.sums[self.k].to_dense()

    def memory_bytes(self) -> int:
        """Footprint of the sum views plus the embedded power views."""
        total = sum(s.nbytes() for s in self.sums.values())
        if self._powers is not None:
            total += self._powers.memory_bytes()
        return total


__all__ = ["DistributedIncrementalPowerSums", "DistributedReevalPowerSums"]
