"""Distributed matrix-powers maintainers (the Fig. 3f experiment).

Mirrors :mod:`repro.iterative.powers` on top of the cluster simulator:

* :class:`DistributedReevalPowers` — every refresh re-runs the scheduled
  dense products through the SUMMA engine, reshuffling ``O(n^2/g)``
  bytes per worker per product;
* :class:`DistributedIncrementalPowers` — every refresh broadcasts the
  ``O(n k)`` delta factors and performs only matrix–(thin)block products
  and tile-local low-rank updates.

Both report ``cluster.elapsed`` as simulated wall-clock, reproducing
Fig. 3f's finding: re-evaluation speeds up with more workers while the
incremental strategy is largely insensitive to cluster size (its time is
dominated by broadcasting small factors, not by compute).
"""

from __future__ import annotations

import numpy as np

from ..iterative.models import Model
from .blockmatrix import BlockMatrix
from .cluster import Cluster
from .engine import DistributedEngine


class DistributedReevalPowers:
    """REEVAL strategy for ``A^k`` on the simulated cluster."""

    def __init__(self, a: np.ndarray, k: int, model: Model, cluster: Cluster):
        self.model = model
        self.k = k
        self.schedule = model.schedule(k)
        self.cluster = cluster
        self.engine = DistributedEngine(cluster)
        self.a = BlockMatrix.from_dense(a, cluster.config.grid)
        self.powers: dict[int, BlockMatrix] = {}
        self._recompute()

    def _recompute(self) -> None:
        self.powers = {1: self.a}
        for i in self.schedule[1:]:
            j = self.model.predecessor(i)
            self.powers[i] = self.engine.matmul(self.powers[i - j], self.powers[j])

    def refresh(self, u: np.ndarray, v: np.ndarray) -> None:
        """Apply ``A += u v'`` and recompute all scheduled powers."""
        self.engine.add_lowrank(self.a, u, v)
        self._recompute()

    def result(self) -> np.ndarray:
        """The maintained ``A^k`` (gathered dense)."""
        return self.powers[self.k].to_dense()


class DistributedIncrementalPowers:
    """INCR strategy for ``A^k`` on the simulated cluster (Appendix A)."""

    def __init__(self, a: np.ndarray, k: int, model: Model, cluster: Cluster):
        self.model = model
        self.k = k
        self.schedule = model.schedule(k)
        self.cluster = cluster
        self.engine = DistributedEngine(cluster)
        grid = cluster.config.grid
        self.powers: dict[int, BlockMatrix] = {1: BlockMatrix.from_dense(a, grid)}
        dense = {1: np.asarray(a, dtype=np.float64)}
        for i in self.schedule[1:]:
            j = self.model.predecessor(i)
            dense[i] = dense[i - j] @ dense[j]  # initial build, master-side
            self.powers[i] = BlockMatrix.from_dense(dense[i], grid)

    def refresh(self, u: np.ndarray, v: np.ndarray) -> None:
        """Maintain all scheduled powers with broadcast factored deltas."""
        engine = self.engine
        u = u.reshape(len(u), -1)
        v = v.reshape(len(v), -1)
        factors: dict[int, tuple[np.ndarray, np.ndarray]] = {1: (u, v)}
        for i in self.schedule[1:]:
            j = self.model.predecessor(i)
            h = i - j
            u_h, v_h = factors[h]
            u_j, v_j = factors[j]
            # P_h @ U_j runs distributed; the k x k correction is master-local.
            ph_uj = engine.mat_lowrank(self.powers[h], u_j)
            cross = u_h @ (v_h.T @ u_j)
            self.cluster.record_step(
                "master_small", 2 * v_h.size * u_j.shape[1], 0, rounds=0
            )
            left = np.hstack([u_h, ph_uj + cross])
            right = np.hstack([engine.matT_lowrank(self.powers[j], v_h), v_j])
            factors[i] = (left, right)
        for i in self.schedule:
            u_i, v_i = factors[i]
            engine.add_lowrank(self.powers[i], u_i, v_i)

    def result(self) -> np.ndarray:
        """The maintained ``A^k`` (gathered dense)."""
        return self.powers[self.k].to_dense()

    def memory_bytes(self) -> int:
        """Footprint of all materialized distributed powers."""
        return sum(p.nbytes() for p in self.powers.values())
