"""Sharded maintenance over the fixed-tile decomposition.

Two engines expose the same four operations (``add_lowrank``,
``mat_lowrank``, ``matT_lowrank``, ``matmul``) over views stored under
names:

* :class:`ShardedEngine` — real multiprocess execution: views live in
  shared-memory segments, each :class:`~repro.distributed.workers.ProcessCluster`
  worker runs the per-tile kernels on its shard, factors move over
  pipes and are measured in ``engine.comm``; a parallel ``engine.model``
  ledger records what the planner's cost model *predicts* the same
  traffic to be, so tests can assert modeled-vs-measured agreement.
* :class:`LocalShardEngine` — the single-process reference: identical
  per-tile kernels over the identical tile decomposition, in one
  process.  Because both engines execute the same kernel calls in the
  same tile order, their results are **bitwise equal**, which is what
  the differential suite asserts.

:func:`sharded_refresh` implements the factored chain recurrence
(paper Appendix A): for a statement ``T := L * R`` with pending factored
deltas ``(uL, vL)`` and ``(uR, vR)``,

    ``U_T = [uL | L_old @ uR + uL (vL' uR)]``,  ``V_T = [R_old' vL | vR]``

— all products on *old* view values, in statement order, then every
view (input included) absorbs its rank-widened delta.  Only thin
``(n x k)`` blocks ever cross a pipe.
"""

from __future__ import annotations

import numpy as np

from ..expr.ast import MatMul, MatrixSymbol
from ..runtime.workspace import Workspace
from .comm import BROADCAST, GATHER, SHUFFLE, CommLog
from .partitioner import RowShardPartitioner
from .workers import (
    DEFAULT_TIMEOUT,
    ProcessCluster,
    tile_add_lowrank,
    tile_matT_lowrank,
    tile_mat_lowrank,
    tile_matmul,
)


def _factor(x: np.ndarray) -> np.ndarray:
    """Normalize a factor block to C-contiguous float64 ``(n, k)``."""
    arr = np.ascontiguousarray(np.asarray(x, dtype=np.float64))
    if arr.ndim == 1:
        arr = arr.reshape(-1, 1)
    return arr


class ShardedEngine:
    """Multiprocess coordinator: named views in shm, ops fanned out.

    ``comm`` holds measured traffic (real pickled bytes, real seconds);
    ``model`` holds what the planner's comm model predicts for the same
    operations (satellite: modeled-vs-measured agreement).
    """

    def __init__(self, partitioner: RowShardPartitioner,
                 start_method: str = "spawn",
                 timeout: float = DEFAULT_TIMEOUT, supervise: bool = False):
        self.part = partitioner
        self.comm = CommLog()
        self.model = CommLog()
        self.cluster = ProcessCluster(partitioner, start_method,
                                      comm=self.comm, timeout=timeout,
                                      supervise=supervise)

    @property
    def nodes(self) -> int:
        return self.part.nodes

    @property
    def recoveries(self) -> list:
        """Logged worker recoveries (supervised clusters only)."""
        return self.cluster.recoveries

    def put(self, name: str, value: np.ndarray) -> np.ndarray:
        return self.cluster.put(name, value)

    def alloc(self, name: str, shape: tuple[int, int]) -> np.ndarray:
        return self.cluster.alloc(name, shape)

    def get(self, name: str) -> np.ndarray:
        return self.cluster.get(name)

    def free(self, name: str) -> None:
        self.cluster.free(name)

    def add_lowrank(self, name: str, u: np.ndarray, v: np.ndarray) -> None:
        """``view += u @ v.T`` on every shard (factor pair broadcast)."""
        u, v = _factor(u), _factor(v)
        self.model.record(BROADCAST, "add_lowrank",
                          (u.nbytes + v.nbytes) * self.nodes,
                          messages=self.nodes)
        self.cluster.roundtrip(("add_lowrank", name, u, v),
                               BROADCAST, "add_lowrank")

    def mat_lowrank(self, name: str, u: np.ndarray) -> np.ndarray:
        """``view @ u`` — broadcast ``u``, gather per-tile partial rows."""
        u = _factor(u)
        n, k = self.part.n, u.shape[1]
        self.model.record(BROADCAST, "mat_lowrank", u.nbytes * self.nodes,
                          messages=self.nodes)
        self.model.record(GATHER, "mat_lowrank", n * k * 8,
                          messages=self.nodes)
        replies = self.cluster.roundtrip(("mat_lowrank", name, u),
                                         BROADCAST, "mat_lowrank")
        out = np.empty((n, k))
        for partials in replies.values():
            for t, block in partials.items():
                r0, r1 = self.part.tile_bounds[t]
                out[r0:r1] = block
        return out

    def matT_lowrank(self, name: str, v: np.ndarray) -> np.ndarray:
        """``view.T @ v`` — per *column* tile, full-height reduction.

        Each tile's partial is a complete ``(c1-c0, k)`` slice of the
        result (no cross-worker summation), which keeps the reduction
        order fixed and the result bitwise stable.
        """
        v = _factor(v)
        n, k = self.part.n, v.shape[1]
        self.model.record(BROADCAST, "matT_lowrank", v.nbytes * self.nodes,
                          messages=self.nodes)
        self.model.record(GATHER, "matT_lowrank", n * k * 8,
                          messages=self.nodes)
        replies = self.cluster.roundtrip(("matT_lowrank", name, v),
                                         BROADCAST, "matT_lowrank")
        out = np.empty((n, k))
        for partials in replies.values():
            for t, block in partials.items():
                c0, c1 = self.part.tile_bounds[t]
                out[c0:c1] = block
        return out

    def matmul(self, out_name: str, a_name: str, b_name: str) -> None:
        """``out = a @ b`` sharded by output row tiles (REEVAL path).

        The big operands move through shared memory (zero-copy), so the
        only pipe traffic is the op message itself — the honest measure
        of what single-machine sharding ships.
        """
        if out_name in (a_name, b_name):
            raise ValueError("matmul output must not alias an operand")
        self.cluster.roundtrip(("matmul", out_name, a_name, b_name),
                               SHUFFLE, "matmul")

    def worker_seconds(self) -> list[float]:
        """Cumulative in-worker compute wall time, per worker."""
        return list(self.cluster.worker_seconds)

    def close(self) -> None:
        self.cluster.close()


class LocalShardEngine:
    """Single-process reference: same tiles, same kernels, no workers."""

    def __init__(self, partitioner: RowShardPartitioner):
        self.part = partitioner
        self.comm = CommLog()
        self.model = CommLog()
        self.workspace = Workspace()
        self._views: dict[str, np.ndarray] = {}

    @property
    def nodes(self) -> int:
        return 1

    def put(self, name: str, value: np.ndarray) -> np.ndarray:
        arr = np.ascontiguousarray(value, dtype=np.float64)
        if name in self._views:
            self._views[name][...] = arr
        else:
            self._views[name] = arr.copy() if arr is value else arr
        return self._views[name]

    def alloc(self, name: str, shape: tuple[int, int]) -> np.ndarray:
        return self.put(name, np.zeros(shape))

    def get(self, name: str) -> np.ndarray:
        return self._views[name]

    def free(self, name: str) -> None:
        self._views.pop(name, None)

    def add_lowrank(self, name: str, u: np.ndarray, v: np.ndarray) -> None:
        u, v = _factor(u), _factor(v)
        view, vt = self._views[name], v.T
        with self.workspace.frame():
            for r0, r1 in self.part.tile_bounds:
                tile_add_lowrank(view, r0, r1, u, vt, self.workspace)

    def mat_lowrank(self, name: str, u: np.ndarray) -> np.ndarray:
        u = _factor(u)
        view = self._views[name]
        out = np.empty((self.part.n, u.shape[1]))
        with self.workspace.frame():
            for r0, r1 in self.part.tile_bounds:
                buf = self.workspace.lease(r1 - r0, u.shape[1])
                tile_mat_lowrank(view, r0, r1, u, buf)
                out[r0:r1] = buf
        return out

    def matT_lowrank(self, name: str, v: np.ndarray) -> np.ndarray:
        v = _factor(v)
        view = self._views[name]
        out = np.empty((self.part.n, v.shape[1]))
        with self.workspace.frame():
            for c0, c1 in self.part.tile_bounds:
                buf = self.workspace.lease(c1 - c0, v.shape[1])
                tile_matT_lowrank(view, c0, c1, v, buf)
                out[c0:c1] = buf
        return out

    def matmul(self, out_name: str, a_name: str, b_name: str) -> None:
        if out_name in (a_name, b_name):
            raise ValueError("matmul output must not alias an operand")
        out, a, b = (self._views[out_name], self._views[a_name],
                     self._views[b_name])
        for r0, r1 in self.part.tile_bounds:
            tile_matmul(out, a, b, r0, r1)

    def worker_seconds(self) -> list[float]:
        return [0.0]

    def close(self) -> None:
        self._views.clear()


# -- chain programs ------------------------------------------------------

def chain_steps(program):
    """``(input_name, [(target, left, right), ...])`` for a chain-shaped
    program, or ``None`` when the program cannot be sharded.

    Shardable means: exactly one input, and every statement is a product
    of two already-known views (the matrix-power / chain form of the
    paper's Appendix A, e.g. ``B := A*A; C := A*B``).
    """
    if len(program.inputs) != 1:
        return None
    input_name = program.inputs[0].name
    known = {input_name}
    steps = []
    for stmt in program.statements:
        expr = stmt.expr
        if not isinstance(expr, MatMul) or len(expr.children) != 2:
            return None
        left, right = expr.children
        if not (isinstance(left, MatrixSymbol) and isinstance(right, MatrixSymbol)):
            return None
        if left.name not in known or right.name not in known:
            return None
        known.add(stmt.target.name)
        steps.append((stmt.target.name, left.name, right.name))
    return input_name, steps


def power_chain(k: int) -> list[tuple[str, str, str]]:
    """The linear power chain ``P2 := A*A; P3 := A*P2; ...`` up to ``A^k``."""
    if k < 2:
        raise ValueError(f"need k >= 2, got {k}")
    steps = [("P2", "A", "A")]
    for i in range(3, k + 1):
        steps.append((f"P{i}", "A", f"P{i - 1}"))
    return steps


def sharded_refresh(engine, input_name: str, steps, u, v,
                    progress: list | None = None) -> dict:
    """Propagate one factored update ``A += u v'`` through the chain.

    All ``mat/matT`` products read *old* view values in statement
    order; then every view absorbs its factored delta.  Identical
    arithmetic on every engine, so the results are bitwise equal
    across :class:`ShardedEngine` / :class:`LocalShardEngine` and any
    shard strategy.  Returns the per-view ``(U, V)`` factor map.

    ``progress`` (a caller-owned list) receives checkpoints as the
    refresh advances — ``("factors", factor_map)`` once every product
    of old values is computed, then ``("adding", name)`` /
    ``("added", name)`` around each view's absorption.  On a worker
    failure, the caller can read exactly how far durable state got:
    views before the last ``"adding"`` entry absorbed their deltas,
    the named one may be torn, later ones are untouched
    (:meth:`ShardedChainSession._reeval_recover
    <repro.runtime.session.ShardedChainSession>` keys its fallback off
    this).
    """
    u, v = _factor(u), _factor(v)
    factors = {input_name: (u, v)}
    for target, left, right in steps:
        ul, vl = factors[left]
        ur, vr = factors[right]
        left_ur = engine.mat_lowrank(left, ur)
        cross = ul @ (vl.T @ ur)
        rightT_vl = engine.matT_lowrank(right, vl)
        factors[target] = (
            np.hstack([ul, left_ur + cross]),
            np.hstack([rightT_vl, vr]),
        )
    if progress is not None:
        progress.append(("factors", factors))
    for name, (fu, fv) in factors.items():
        if progress is not None:
            progress.append(("adding", name))
        engine.add_lowrank(name, fu, fv)
        if progress is not None:
            progress.append(("added", name))
    return factors


def sharded_reeval_refresh(engine, input_name: str, steps, u, v) -> None:
    """REEVAL under sharding: apply the delta, re-multiply every product."""
    engine.add_lowrank(input_name, _factor(u), _factor(v))
    for target, left, right in steps:
        engine.matmul(target, left, right)


class ShardedChainMaintainer:
    """A chain of products of one square input, maintained on a shard
    engine — the bench / differential-harness entry point.

    ``nodes=1`` (or ``process=False``) uses the in-process reference
    engine; otherwise a :class:`ProcessCluster` is spawned.  Initial
    views are materialized through the engine's own tiled ``matmul``,
    so the whole trajectory — setup included — is bitwise comparable
    across engines and shard strategies.
    """

    def __init__(self, a: np.ndarray, steps=None, *, input_name: str = "A",
                 nodes: int = 1, strategy: str = "range",
                 tile_rows: int | None = None, process: bool | None = None,
                 start_method: str = "spawn", reeval: bool = False,
                 timeout: float = DEFAULT_TIMEOUT, supervise: bool = False):
        a = np.ascontiguousarray(a, dtype=np.float64)
        if a.ndim != 2 or a.shape[0] != a.shape[1]:
            raise ValueError(f"need a square input, got shape {a.shape}")
        self.input_name = input_name
        self.steps = list(steps) if steps is not None else power_chain(3)
        self.reeval = reeval
        part = RowShardPartitioner(a.shape[0], nodes, strategy, tile_rows)
        if process is None:
            process = nodes > 1
        if process:
            self.engine = ShardedEngine(part, start_method, timeout=timeout,
                                        supervise=supervise)
        else:
            self.engine = LocalShardEngine(part)
        self.engine.put(input_name, a)
        for target, left, right in self.steps:
            self.engine.alloc(target, (a.shape[0], a.shape[0]))
            self.engine.matmul(target, left, right)

    def reset(self, a: np.ndarray) -> None:
        """Re-seed the input and re-materialize the chain in place."""
        self.engine.put(self.input_name, a)
        for target, left, right in self.steps:
            self.engine.matmul(target, left, right)

    def refresh(self, u: np.ndarray, v: np.ndarray) -> None:
        """Absorb one factored update ``A += u v'``."""
        if self.reeval:
            sharded_reeval_refresh(self.engine, self.input_name,
                                   self.steps, u, v)
        else:
            sharded_refresh(self.engine, self.input_name, self.steps, u, v)

    def result(self, name: str | None = None) -> np.ndarray:
        """A private copy of one maintained view (default: last target)."""
        if name is None:
            name = self.steps[-1][0]
        return np.array(self.engine.get(name))

    def close(self) -> None:
        self.engine.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False


__all__ = [
    "LocalShardEngine",
    "ShardedChainMaintainer",
    "ShardedEngine",
    "chain_steps",
    "power_chain",
    "sharded_reeval_refresh",
    "sharded_refresh",
]
