"""Simulated distributed backend (the paper's Spark substitute).

Executes real block-matrix algebra in process while charging a BSP cost
model (per-worker FLOPs, per-worker bytes, latency rounds) to a
simulated cluster clock.  See DESIGN.md for why this preserves the
paper's distributed findings.
"""

from .blockmatrix import BlockMatrix
from .cluster import Cluster, ClusterConfig, StepCost
from .comm import BROADCAST, GATHER, SHUFFLE, CommEvent, CommLog
from .general import (
    DistributedHybridGeneral,
    DistributedIncrementalGeneral,
    DistributedReevalGeneral,
    make_distributed_general,
)
from .engine import DistributedEngine
from .partitioner import GridPartitioner, hybrid_extra_bytes
from .powers import DistributedIncrementalPowers, DistributedReevalPowers
from .sums import DistributedIncrementalPowerSums, DistributedReevalPowerSums

__all__ = [
    "BROADCAST",
    "BlockMatrix",
    "CommEvent",
    "CommLog",
    "Cluster",
    "ClusterConfig",
    "DistributedEngine",
    "DistributedHybridGeneral",
    "DistributedIncrementalGeneral",
    "DistributedIncrementalPowerSums",
    "DistributedIncrementalPowers",
    "DistributedReevalGeneral",
    "DistributedReevalPowerSums",
    "DistributedReevalPowers",
    "GATHER",
    "GridPartitioner",
    "SHUFFLE",
    "StepCost",
    "make_distributed_general",
    "hybrid_extra_bytes",
]
