"""Distributed backends: the BSP cost simulator and the real engine.

Two layers share the :class:`~repro.distributed.comm.CommLog` traffic
ledger:

* the **simulator** (:class:`DistributedEngine` over
  :class:`BlockMatrix`) executes block algebra in process while
  charging a BSP cost model — see DESIGN.md for why this preserves the
  paper's distributed findings at any node count;
* the **real engine** (:class:`ShardedEngine` over
  :class:`ProcessCluster`) spawns persistent workers with views in
  ``multiprocessing.shared_memory`` segments, so the same traffic
  classes are measured in real bytes and real seconds.
"""

from .blockmatrix import BlockMatrix
from .cluster import Cluster, ClusterConfig, StepCost
from .comm import BROADCAST, GATHER, SHUFFLE, CommEvent, CommLog
from .general import (
    DistributedHybridGeneral,
    DistributedIncrementalGeneral,
    DistributedReevalGeneral,
    make_distributed_general,
)
from .engine import DistributedEngine
from .partitioner import GridPartitioner, RowShardPartitioner, hybrid_extra_bytes
from .powers import DistributedIncrementalPowers, DistributedReevalPowers
from .sharded import (
    LocalShardEngine,
    ShardedChainMaintainer,
    ShardedEngine,
    chain_steps,
    power_chain,
    sharded_reeval_refresh,
    sharded_refresh,
)
from .shm import SharedArray, SharedMemoryBudgetError
from .sums import DistributedIncrementalPowerSums, DistributedReevalPowerSums
from .workers import ProcessCluster, RecoveryEvent, WorkerFailedError

__all__ = [
    "BROADCAST",
    "BlockMatrix",
    "CommEvent",
    "CommLog",
    "Cluster",
    "ClusterConfig",
    "DistributedEngine",
    "DistributedHybridGeneral",
    "DistributedIncrementalGeneral",
    "DistributedIncrementalPowerSums",
    "DistributedIncrementalPowers",
    "DistributedReevalGeneral",
    "DistributedReevalPowerSums",
    "DistributedReevalPowers",
    "GATHER",
    "GridPartitioner",
    "LocalShardEngine",
    "ProcessCluster",
    "RecoveryEvent",
    "RowShardPartitioner",
    "SHUFFLE",
    "SharedArray",
    "SharedMemoryBudgetError",
    "ShardedChainMaintainer",
    "ShardedEngine",
    "StepCost",
    "WorkerFailedError",
    "chain_steps",
    "make_distributed_general",
    "hybrid_extra_bytes",
    "power_chain",
    "sharded_reeval_refresh",
    "sharded_refresh",
]
