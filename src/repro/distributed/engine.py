"""Distributed matrix operations with BSP cost accounting.

Implements the operations the paper's generated Spark code performs,
executing the real block algebra locally while charging the simulated
cluster (see :mod:`repro.distributed.cluster`):

* :meth:`DistributedEngine.matmul` — "the simple parallel algorithm"
  [Grama et al.] the paper cites: ``g`` SUMMA-like broadcast rounds; each
  worker receives ``2 (g-1)`` remote tiles (``O(n^2/g)`` bytes) and
  multiplies ``g`` tile pairs (``2 n^3 / g^2`` FLOPs).
* :meth:`DistributedEngine.add_lowrank` — the incremental path: the
  ``(n x k)`` factors are broadcast to all workers ("only small delta
  vectors or low-rank matrices [are] communicated", Section 6); each
  worker updates its tile locally.
* :meth:`DistributedEngine.mat_lowrank` — ``A @ U`` for a low-rank
  block ``U``: with the paper's hybrid row/column partitioning the
  product is strictly local per block-row, then the ``(n x k)`` result
  is gathered at the master.
* :meth:`DistributedEngine.add` / :meth:`DistributedEngine.scale` —
  tile-local element-wise work, no communication.

The cost asymmetry these primitives expose — REEVAL reshuffles
``O(n^2)`` tiles per product while INCR broadcasts ``O(nk)`` factors —
is exactly the Section 7 finding that re-evaluation "has a more dynamic
model of memory usage ... as the data gets shuffled among nodes".
"""

from __future__ import annotations

import numpy as np

from .blockmatrix import BlockMatrix
from .cluster import Cluster
from .comm import BROADCAST, GATHER, SHUFFLE


class DistributedEngine:
    """Executes block-matrix operations against a simulated cluster."""

    def __init__(self, cluster: Cluster):
        self.cluster = cluster

    # -- dense operations --------------------------------------------------
    def matmul(self, a: BlockMatrix, b: BlockMatrix) -> BlockMatrix:
        """Grid matrix product via ``g`` broadcast rounds (SUMMA)."""
        if a.shape[1] != b.shape[0]:
            raise ValueError(f"shape mismatch: {a.shape} @ {b.shape}")
        if a.grid != b.grid:
            raise ValueError("operands must share one grid")
        g = a.grid
        out_part = _result_partitioner(a, b)
        tiles: dict[tuple[int, int], np.ndarray] = {}
        max_flops = 0
        max_bytes = 0
        total_flops = 0
        for bi in range(g):
            for bj in range(g):
                acc = np.zeros(out_part.tile_shape(bi, bj))
                worker_flops = 0
                worker_bytes = 0
                for bk in range(g):
                    left = a.tiles[(bi, bk)]
                    right = b.tiles[(bk, bj)]
                    acc += left @ right
                    worker_flops += 2 * left.shape[0] * left.shape[1] * right.shape[1]
                    if bk != bj:  # remote A tile received this round
                        worker_bytes += left.nbytes
                    if bk != bi:  # remote B tile received this round
                        worker_bytes += right.nbytes
                tiles[(bi, bj)] = acc
                max_flops = max(max_flops, worker_flops)
                max_bytes = max(max_bytes, worker_bytes)
                total_flops += worker_flops
        self.cluster.record_step(
            "matmul", max_flops, max_bytes, rounds=g,
            total_flops=total_flops, total_bytes=max_bytes * g * g,
        )
        self.cluster.comm.record(
            SHUFFLE, "matmul", max_bytes * g * g, messages=2 * g * g * (g - 1)
        )
        return BlockMatrix(out_part, tiles)

    def add(self, a: BlockMatrix, b: BlockMatrix) -> BlockMatrix:
        """Tile-local element-wise sum (no communication)."""
        if a.shape != b.shape or a.grid != b.grid:
            raise ValueError("operands must share shape and grid")
        tiles = {k: a.tiles[k] + b.tiles[k] for k in a.tiles}
        per_worker = a.partitioner.max_tile_elements()
        self.cluster.record_step(
            "add", per_worker, 0, rounds=0,
            total_flops=a.shape[0] * a.shape[1], total_bytes=0,
        )
        return BlockMatrix(a.partitioner, tiles)

    def scale(self, coeff: float, a: BlockMatrix) -> BlockMatrix:
        """Tile-local scaling (no communication)."""
        tiles = {k: coeff * t for k, t in a.tiles.items()}
        per_worker = a.partitioner.max_tile_elements()
        self.cluster.record_step(
            "scale", per_worker, 0, rounds=0,
            total_flops=a.shape[0] * a.shape[1], total_bytes=0,
        )
        return BlockMatrix(a.partitioner, tiles)

    # -- low-rank (incremental) operations ----------------------------------
    def broadcast_cost(self, *blocks: np.ndarray) -> int:
        """Bytes each worker receives for a broadcast of the blocks."""
        return sum(b.nbytes for b in blocks)

    def add_lowrank(self, a: BlockMatrix, u: np.ndarray, v: np.ndarray) -> None:
        """In-place ``A += U V'`` with broadcast factors (INCR update path)."""
        n_rows, n_cols = a.shape
        u = u.reshape(n_rows, -1)
        v = v.reshape(n_cols, -1)
        k = u.shape[1]
        part = a.partitioner
        for bi, (r0, r1) in enumerate(part.row_bounds):
            for bj, (c0, c1) in enumerate(part.col_bounds):
                a.tiles[(bi, bj)] += u[r0:r1] @ v[c0:c1].T
        tile_elems = part.max_tile_elements()
        per_worker_flops = 2 * tile_elems * k + tile_elems
        bytes_in = self.broadcast_cost(u, v)
        self.cluster.record_step(
            "lowrank_update", per_worker_flops, bytes_in, rounds=1,
            total_flops=(2 * k + 1) * n_rows * n_cols,
            total_bytes=bytes_in * part.grid * part.grid,
        )
        self.cluster.comm.record(
            BROADCAST, "lowrank_update", bytes_in * part.grid * part.grid,
            messages=part.grid * part.grid,
        )

    def mat_lowrank(self, a: BlockMatrix, u: np.ndarray) -> np.ndarray:
        """``A @ U`` for a broadcast ``(n x k)`` block, gathered at master.

        With hybrid partitioning each worker owns a block-row of ``A``,
        so the product runs without reshuffling ``A``; only ``U`` (in)
        and the ``(n/g x k)`` partial results (out) move.
        """
        n_rows, n_cols = a.shape
        u = u.reshape(n_cols, -1)
        k = u.shape[1]
        dense_rows = []
        part = a.partitioner
        for bi in range(part.grid):
            strip = np.hstack([a.tiles[(bi, bj)] for bj in range(part.grid)])
            dense_rows.append(strip @ u)
        result = np.vstack(dense_rows)
        # Cost model: the row strips are split across *all* g^2 workers
        # ("we split the data horizontally among all available nodes").
        workers = part.grid * part.grid
        strip_rows = -(-n_rows // workers)  # ceil
        per_worker_flops = 2 * strip_rows * n_cols * k
        bytes_in = u.nbytes + strip_rows * k * 8  # broadcast in + gather out
        self.cluster.record_step(
            "mat_lowrank", per_worker_flops, bytes_in, rounds=2,
            total_flops=2 * n_rows * n_cols * k,
            total_bytes=bytes_in * workers,
        )
        self.cluster.comm.record(
            BROADCAST, "mat_lowrank", u.nbytes * workers, messages=workers
        )
        self.cluster.comm.record(
            GATHER, "mat_lowrank", n_rows * k * 8, messages=workers
        )
        return result

    def matT_lowrank(self, a: BlockMatrix, v: np.ndarray) -> np.ndarray:
        """``A' @ V`` — the column-replica path of hybrid partitioning."""
        n_rows, n_cols = a.shape
        v = v.reshape(n_rows, -1)
        k = v.shape[1]
        part = a.partitioner
        dense_cols = []
        for bj in range(part.grid):
            strip = np.vstack([a.tiles[(bi, bj)] for bi in range(part.grid)])
            dense_cols.append(strip.T @ v)
        result = np.vstack(dense_cols)
        workers = part.grid * part.grid
        strip_cols = -(-n_cols // workers)  # ceil
        per_worker_flops = 2 * strip_cols * n_rows * k
        bytes_in = v.nbytes + strip_cols * k * 8
        self.cluster.record_step(
            "mat_lowrank", per_worker_flops, bytes_in, rounds=2,
            total_flops=2 * n_rows * n_cols * k,
            total_bytes=bytes_in * workers,
        )
        self.cluster.comm.record(
            BROADCAST, "mat_lowrank", v.nbytes * workers, messages=workers
        )
        self.cluster.comm.record(
            GATHER, "mat_lowrank", n_cols * k * 8, messages=workers
        )
        return result


def _result_partitioner(a: BlockMatrix, b: BlockMatrix):
    """Partitioner of ``A @ B`` (A's rows x B's cols on A's grid)."""
    from .partitioner import GridPartitioner

    return GridPartitioner(a.shape[0], b.shape[1], a.grid)
