"""Distributed matrix operations with BSP cost accounting.

Implements the operations the paper's generated Spark code performs,
executing the real block algebra locally while charging the simulated
cluster (see :mod:`repro.distributed.cluster`):

* :meth:`DistributedEngine.matmul` — "the simple parallel algorithm"
  [Grama et al.] the paper cites: ``g`` SUMMA-like broadcast rounds; each
  worker receives ``2 (g-1)`` remote tiles (``O(n^2/g)`` bytes) and
  multiplies ``g`` tile pairs (``2 n^3 / g^2`` FLOPs).
* :meth:`DistributedEngine.add_lowrank` — the incremental path: the
  ``(n x k)`` factors are broadcast to all workers ("only small delta
  vectors or low-rank matrices [are] communicated", Section 6); each
  worker updates its tile locally.
* :meth:`DistributedEngine.mat_lowrank` — ``A @ U`` for a low-rank
  block ``U``: with the paper's hybrid row/column partitioning the
  product is strictly local per block-row, then the ``(n x k)`` result
  is gathered at the master.
* :meth:`DistributedEngine.add` / :meth:`DistributedEngine.scale` —
  tile-local element-wise work, no communication.

The cost asymmetry these primitives expose — REEVAL reshuffles
``O(n^2)`` tiles per product while INCR broadcasts ``O(nk)`` factors —
is exactly the Section 7 finding that re-evaluation "has a more dynamic
model of memory usage ... as the data gets shuffled among nodes".
"""

from __future__ import annotations

import numpy as np

from ..backends import get_backend
from ..cost.ops import outer_update_flops
from .blockmatrix import BlockMatrix
from .cluster import Cluster
from .comm import BROADCAST, GATHER, SHUFFLE


class DistributedEngine:
    """Executes block-matrix operations against a simulated cluster.

    ``backend`` selects the tile kernel (dense NumPy by default; pass
    ``"sparse"`` to run CSR tiles — build the operands with
    ``BlockMatrix.from_dense(..., backend=...)`` so tiles arrive in
    that representation).  Communication costs are charged from the
    bytes the representation actually ships.
    """

    def __init__(self, cluster: Cluster, backend=None):
        self.cluster = cluster
        self.backend = get_backend(backend)

    def _check_tiles(self, *operands: BlockMatrix) -> None:
        """Fail fast when tile representation and engine backend diverge.

        Every tile is checked: a sparse-built block matrix may legally
        hold a *mix* of CSR and dense tiles (the representation policy
        keeps small or filled-in tiles dense), so sampling one tile
        could pass and then crash mid-operation.
        """
        for block in operands:
            for tile in block.tiles.values():
                if not self.backend.is_native(tile):
                    raise ValueError(
                        f"operand tile ({type(tile).__name__}) does not match "
                        f"the {self.backend.name!r} engine backend; build the "
                        f"BlockMatrix with the same backend"
                    )

    # -- dense operations --------------------------------------------------
    def matmul(self, a: BlockMatrix, b: BlockMatrix) -> BlockMatrix:
        """Grid matrix product via ``g`` broadcast rounds (SUMMA)."""
        if a.shape[1] != b.shape[0]:
            raise ValueError(f"shape mismatch: {a.shape} @ {b.shape}")
        if a.grid != b.grid:
            raise ValueError("operands must share one grid")
        self._check_tiles(a, b)
        g = a.grid
        be = self.backend
        out_part = _result_partitioner(a, b)
        tiles: dict[tuple[int, int], np.ndarray] = {}
        max_flops = 0
        max_bytes = 0
        total_flops = 0
        for bi in range(g):
            for bj in range(g):
                acc = None
                worker_flops = 0
                worker_bytes = 0
                for bk in range(g):
                    left = a.tiles[(bi, bk)]
                    right = b.tiles[(bk, bj)]
                    term = be.matmul(left, right)
                    acc = term if acc is None else be.add_inplace(acc, term)
                    worker_flops += be.matmul_flops(left, right)
                    if bk != bj:  # remote A tile received this round
                        worker_bytes += be.nbytes(left)
                    if bk != bi:  # remote B tile received this round
                        worker_bytes += be.nbytes(right)
                tiles[(bi, bj)] = (
                    acc if acc is not None
                    else be.zeros(*out_part.tile_shape(bi, bj))
                )
                max_flops = max(max_flops, worker_flops)
                max_bytes = max(max_bytes, worker_bytes)
                total_flops += worker_flops
        self.cluster.record_step(
            "matmul", max_flops, max_bytes, rounds=g,
            total_flops=total_flops, total_bytes=max_bytes * g * g,
        )
        self.cluster.comm.record(
            SHUFFLE, "matmul", max_bytes * g * g, messages=2 * g * g * (g - 1)
        )
        return BlockMatrix(out_part, tiles, backend=self.backend)

    def add(self, a: BlockMatrix, b: BlockMatrix) -> BlockMatrix:
        """Tile-local element-wise sum (no communication)."""
        if a.shape != b.shape or a.grid != b.grid:
            raise ValueError("operands must share shape and grid")
        self._check_tiles(a, b)
        be = self.backend
        tiles = {k: be.add(a.tiles[k], b.tiles[k]) for k in a.tiles}
        tile_flops = [be.add_flops(t) for t in a.tiles.values()]
        self.cluster.record_step(
            "add", max(tile_flops), 0, rounds=0,
            total_flops=sum(tile_flops), total_bytes=0,
        )
        return BlockMatrix(a.partitioner, tiles, backend=self.backend)

    def scale(self, coeff: float, a: BlockMatrix) -> BlockMatrix:
        """Tile-local scaling (no communication)."""
        self._check_tiles(a)
        be = self.backend
        tiles = {k: be.scale(coeff, t) for k, t in a.tiles.items()}
        tile_flops = [be.scale_flops(t) for t in a.tiles.values()]
        self.cluster.record_step(
            "scale", max(tile_flops), 0, rounds=0,
            total_flops=sum(tile_flops), total_bytes=0,
        )
        return BlockMatrix(a.partitioner, tiles, backend=self.backend)

    # -- low-rank (incremental) operations ----------------------------------
    def broadcast_cost(self, *blocks: np.ndarray) -> int:
        """Bytes each worker receives for a broadcast of the blocks."""
        return sum(self.backend.nbytes(b) for b in blocks)

    def add_lowrank(self, a: BlockMatrix, u: np.ndarray, v: np.ndarray) -> None:
        """In-place ``A += U V'`` with broadcast factors (INCR update path)."""
        self._check_tiles(a)
        n_rows, n_cols = a.shape
        u = u.reshape(n_rows, -1)
        v = v.reshape(n_cols, -1)
        part = a.partitioner
        be = self.backend
        tile_flops = []
        for bi, (r0, r1) in enumerate(part.row_bounds):
            for bj, (c0, c1) in enumerate(part.col_bounds):
                tile = a.tiles[(bi, bj)]
                u_slice, v_slice = u[r0:r1], v[c0:c1]
                tile_flops.append(
                    outer_update_flops(be, tile, u_slice, v_slice)
                    + be.add_flops(tile)
                )
                a.tiles[(bi, bj)] = be.add_outer(tile, u_slice, v_slice)
        bytes_in = self.broadcast_cost(u, v)
        # The factor pair is broadcast once per *node* (the cluster's
        # worker count), not once per tile: a node owning several tiles
        # still receives one copy.  `broadcast_cost` stays per-worker.
        nodes = self.cluster.config.workers
        self.cluster.record_step(
            "lowrank_update", max(tile_flops), bytes_in, rounds=1,
            total_flops=sum(tile_flops),
            total_bytes=bytes_in * nodes,
        )
        self.cluster.comm.record(
            BROADCAST, "lowrank_update", bytes_in * nodes, messages=nodes,
        )

    def mat_lowrank(self, a: BlockMatrix, u: np.ndarray) -> np.ndarray:
        """``A @ U`` for a broadcast ``(n x k)`` block, gathered at master.

        With hybrid partitioning each worker owns a block-row of ``A``,
        so the product runs without reshuffling ``A``; only ``U`` (in)
        and the ``(n/g x k)`` partial results (out) move.
        """
        n_rows, n_cols = a.shape
        u = u.reshape(n_cols, -1)
        k = u.shape[1]
        dense_rows = []
        part = a.partitioner
        be = self.backend
        for bi in range(part.grid):
            strip = be.hstack([a.tiles[(bi, bj)] for bj in range(part.grid)])
            dense_rows.append(be.materialize(be.matmul(strip, u)))
        result = np.vstack(dense_rows)
        # Cost model: the row strips are split across all available
        # nodes ("we split the data horizontally among all available
        # nodes") — the cluster's worker count, not the tile count.
        workers = self.cluster.config.workers
        strip_rows = -(-n_rows // workers)  # ceil
        per_worker_flops = 2 * strip_rows * n_cols * k
        bytes_in = u.nbytes + strip_rows * k * 8  # broadcast in + gather out
        self.cluster.record_step(
            "mat_lowrank", per_worker_flops, bytes_in, rounds=2,
            total_flops=2 * n_rows * n_cols * k,
            total_bytes=bytes_in * workers,
        )
        self.cluster.comm.record(
            BROADCAST, "mat_lowrank", u.nbytes * workers, messages=workers
        )
        self.cluster.comm.record(
            GATHER, "mat_lowrank", n_rows * k * 8, messages=workers
        )
        return result

    def matT_lowrank(self, a: BlockMatrix, v: np.ndarray) -> np.ndarray:
        """``A' @ V`` — the column-replica path of hybrid partitioning."""
        n_rows, n_cols = a.shape
        v = v.reshape(n_rows, -1)
        k = v.shape[1]
        part = a.partitioner
        be = self.backend
        dense_cols = []
        for bj in range(part.grid):
            strip = be.vstack([a.tiles[(bi, bj)] for bi in range(part.grid)])
            dense_cols.append(be.materialize(be.matmul(be.transpose(strip), v)))
        result = np.vstack(dense_cols)
        workers = self.cluster.config.workers
        strip_cols = -(-n_cols // workers)  # ceil
        per_worker_flops = 2 * strip_cols * n_rows * k
        bytes_in = v.nbytes + strip_cols * k * 8
        self.cluster.record_step(
            "mat_lowrank", per_worker_flops, bytes_in, rounds=2,
            total_flops=2 * n_rows * n_cols * k,
            total_bytes=bytes_in * workers,
        )
        self.cluster.comm.record(
            BROADCAST, "mat_lowrank", v.nbytes * workers, messages=workers
        )
        self.cluster.comm.record(
            GATHER, "mat_lowrank", n_cols * k * 8, messages=workers
        )
        return result


def _result_partitioner(a: BlockMatrix, b: BlockMatrix):
    """Partitioner of ``A @ B`` (A's rows x B's cols on A's grid)."""
    from .partitioner import GridPartitioner

    return GridPartitioner(a.shape[0], b.shape[1], a.grid)
