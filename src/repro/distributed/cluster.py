"""Cluster model for the distributed-execution simulator (Section 6).

The paper's large-scale experiments run generated Spark code on a
``g x g`` grid of workers.  This simulator executes the same block
algebra *in process* while accounting, per parallel step, for

* **compute** — FLOPs per worker, converted to time by ``flop_rate``;
* **communication** — bytes received per worker over a non-blocking
  network, converted by ``bandwidth``; plus a per-round ``latency``.

Simulated wall-clock accumulates ``max_over_workers(compute) +
max_over_workers(bytes)/bandwidth + rounds * latency`` for every step —
a standard BSP cost model.  Defaults approximate one EC2 c3.8xlarge
worker of the paper's cluster (tens of GFLOP/s, 10 GbE), but all
experiments report *relative* behaviour, which is rate-independent.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .comm import CommLog


@dataclass(frozen=True)
class ClusterConfig:
    """Shape and speed of the simulated cluster."""

    grid: int = 10                  # g: workers form a g x g grid
    flop_rate: float = 2.0e10       # FLOP/s per worker
    bandwidth: float = 1.25e9       # bytes/s per worker link (10 GbE)
    latency: float = 5.0e-4         # seconds per communication round

    @property
    def workers(self) -> int:
        """Total worker count ``g^2``."""
        return self.grid * self.grid

    @staticmethod
    def laptop_scale(grid: int) -> "ClusterConfig":
        """Rates calibrated for laptop-scale matrices (n of a few hundred).

        The paper's regime (n = 30K on EC2) has per-worker *compute*
        dominating latency, with shuffle traffic a visible second-order
        term.  Scaling n down by ~75x scales matmul work by ~4e5 and
        traffic by ~5e3; these rates shrink proportionally so small
        matrices exercise the same operating regime — who-wins and the
        node-count trends are preserved (see DESIGN.md substitutions).
        """
        return ClusterConfig(
            grid=grid, flop_rate=5.0e7, bandwidth=2.0e7, latency=2.0e-5
        )


@dataclass
class StepCost:
    """Accounting record for one BSP step."""

    label: str
    max_flops: int = 0
    max_bytes_in: int = 0
    rounds: int = 0

    def time(self, config: ClusterConfig) -> float:
        """Simulated duration of this step."""
        return (
            self.max_flops / config.flop_rate
            + self.max_bytes_in / config.bandwidth
            + self.rounds * config.latency
        )


@dataclass
class Cluster:
    """A simulated cluster: accumulates per-step costs into a clock."""

    config: ClusterConfig = field(default_factory=ClusterConfig)
    steps: list[StepCost] = field(default_factory=list)
    total_flops: int = 0
    total_bytes: int = 0
    comm: CommLog = field(default_factory=CommLog)

    def record_step(
        self, label: str, max_flops: int, max_bytes_in: int, rounds: int = 1,
        total_flops: int | None = None, total_bytes: int | None = None,
    ) -> None:
        """Account one parallel step (critical-path flops and bytes)."""
        self.steps.append(StepCost(label, max_flops, max_bytes_in, rounds))
        self.total_flops += total_flops if total_flops is not None else max_flops
        self.total_bytes += total_bytes if total_bytes is not None else max_bytes_in

    @property
    def elapsed(self) -> float:
        """Simulated wall-clock over all recorded steps."""
        return sum(step.time(self.config) for step in self.steps)

    def reset(self) -> None:
        """Clear the clock and tallies (state arrays are unaffected)."""
        self.steps.clear()
        self.total_flops = 0
        self.total_bytes = 0
        self.comm.reset()

    def breakdown(self) -> dict[str, float]:
        """Elapsed time per step label (for the communication analyses)."""
        by_label: dict[str, float] = {}
        for step in self.steps:
            by_label[step.label] = by_label.get(step.label, 0.0) + step.time(
                self.config
            )
        return by_label
