"""Block matrices over a grid partitioning."""

from __future__ import annotations

import numpy as np

from ..backends import get_backend
from .partitioner import GridPartitioner


class BlockMatrix:
    """A matrix stored as ``g x g`` tiles on the simulated cluster.

    Purely a data container — all distributed *operations* (and their
    cost accounting) live in :mod:`repro.distributed.engine`.  The
    ``backend`` names the tiles' representation (dense NumPy by
    default, CSR under ``"sparse"``) and must match the engine
    operating on them.
    """

    def __init__(self, partitioner: GridPartitioner,
                 tiles: dict[tuple[int, int], np.ndarray],
                 backend=None):
        self.partitioner = partitioner
        self.backend = get_backend(backend)
        expected = {
            (bi, bj)
            for bi in range(partitioner.grid)
            for bj in range(partitioner.grid)
        }
        if set(tiles) != expected:
            raise ValueError("tile index set does not match the grid")
        for key, tile in tiles.items():
            if tile.shape != partitioner.tile_shape(*key):
                raise ValueError(
                    f"tile {key} has shape {tile.shape}, "
                    f"expected {partitioner.tile_shape(*key)}"
                )
        self.tiles = tiles

    @classmethod
    def from_dense(
        cls, dense: np.ndarray, grid: int, backend=None
    ) -> "BlockMatrix":
        """Partition a dense matrix onto a ``g x g`` grid.

        With ``backend`` set, each tile is converted to that backend's
        representation (e.g. CSR under ``"sparse"``) before storage.
        A ``scipy.sparse`` source is routed through :meth:`from_sparse`
        so it never materializes densely.
        """
        if not isinstance(dense, np.ndarray) and hasattr(dense, "tocsr"):
            return cls.from_sparse(dense, grid, backend=backend or "sparse")
        partitioner = GridPartitioner(dense.shape[0], dense.shape[1], grid)
        tiles = partitioner.split(np.asarray(dense, dtype=np.float64))
        be = get_backend(backend)
        if backend is not None:
            tiles = {key: be.asarray(tile) for key, tile in tiles.items()}
        return cls(partitioner, tiles, backend=be)

    @classmethod
    def from_sparse(
        cls, matrix, grid: int, backend="sparse"
    ) -> "BlockMatrix":
        """Partition a ``scipy.sparse`` matrix without densifying it.

        Tiles are sliced straight from the CSR structure — the full
        dense image is never materialized, so graph-scale inputs
        (``nnz << n^2``) partition in ``O(nnz)`` memory.  Each tile is
        then normalized through ``backend`` (default ``"sparse"``),
        whose representation policy may densify *small* tiles where
        BLAS wins.
        """
        if not hasattr(matrix, "tocsr"):
            raise TypeError(
                f"from_sparse needs a scipy.sparse matrix, got {type(matrix)!r}"
            )
        csr = matrix.tocsr()
        partitioner = GridPartitioner(csr.shape[0], csr.shape[1], grid)
        be = get_backend(backend)
        tiles = {}
        for bi, (r0, r1) in enumerate(partitioner.row_bounds):
            row_band = csr[r0:r1]
            for bj, (c0, c1) in enumerate(partitioner.col_bounds):
                tile = row_band[:, c0:c1]
                if not be.is_native(tile):
                    # e.g. backend="dense": materialize the (small) tile.
                    tile = np.asarray(tile.todense(), dtype=np.float64)
                tiles[(bi, bj)] = be.asarray(tile)
        return cls(partitioner, tiles, backend=be)

    def to_dense(self) -> np.ndarray:
        """Gather all tiles into one dense matrix."""
        tiles = {
            key: self.backend.materialize(t) for key, t in self.tiles.items()
        }
        return self.partitioner.assemble(tiles)

    @property
    def shape(self) -> tuple[int, int]:
        """Global (rows, cols)."""
        return (self.partitioner.n_rows, self.partitioner.n_cols)

    @property
    def grid(self) -> int:
        """Grid side length ``g``."""
        return self.partitioner.grid

    def copy(self) -> "BlockMatrix":
        """Deep copy (fresh tile arrays)."""
        return BlockMatrix(
            self.partitioner, {k: t.copy() for k, t in self.tiles.items()},
            backend=self.backend,
        )

    def nbytes(self) -> int:
        """Total bytes across tiles (index structures included for CSR)."""
        return sum(self.backend.nbytes(t) for t in self.tiles.values())

    def __repr__(self) -> str:
        return f"BlockMatrix({self.shape[0]}x{self.shape[1]}, grid={self.grid})"
