"""Shared-memory block storage for the multiprocess engine.

Each maintained view lives in one POSIX shared-memory segment
(`multiprocessing.shared_memory.SharedMemory`); coordinator and workers
map NumPy views over the same buffer, so a worker's dgemm on its shard
reads and writes the view in place — zero bytes cross a pipe for the
big blocks, only thin rank-k factors do.

Lifecycle protocol (validated against CPython's ``resource_tracker``
semantics — getting this wrong either leaks ``/dev/shm`` blocks or
corrupts the tracker's registry):

* the **creating** process owns the segment: it alone calls
  :meth:`SharedArray.unlink` (after :meth:`close`);
* **attaching** processes (spawned workers) only :meth:`close` their
  mapping — they must never unlink or unregister.
"""

from __future__ import annotations

import errno
import sys
from multiprocessing import shared_memory

import numpy as np

from ..testing import faults


class SharedMemoryBudgetError(OSError):
    """Shared-memory allocation failed for lack of space.

    Raised by :meth:`SharedArray.create` when the kernel refuses the
    segment (``ENOSPC``/``ENOMEM`` — a full ``/dev/shm`` tmpfs being
    the common cause), so callers see a typed, actionable error instead
    of a raw ``OSError`` from deep inside worker spawn.
    :func:`repro.runtime.session.open_session` catches it and falls
    back to a single-process plan with a warning.
    """

    def __init__(self, nbytes: int, cause: OSError):
        super().__init__(
            cause.errno,
            f"cannot allocate a {nbytes}-byte shared-memory segment: "
            f"{cause.strerror or cause} (is /dev/shm full?)",
        )
        self.nbytes = nbytes


#: Mappings kept alive past their :class:`SharedArray`'s lifetime
#: because an outside ndarray still points into them (see
#: :meth:`SharedArray.close`).  ``SharedMemory.__del__`` unmaps, so
#: dropping the object here would leave those arrays dangling; pinned
#: mappings persist until process exit (their *names* are unlinked, so
#: nothing outlives the process).
_pinned_mappings: list = []


class SharedArray:
    """A C-contiguous float64 matrix backed by a shared-memory segment."""

    def __init__(self, shm: shared_memory.SharedMemory,
                 shape: tuple[int, int], owner: bool):
        self._shm = shm
        self.shape = tuple(shape)
        self.owner = owner
        self._pinned = False
        self.array: np.ndarray | None = np.ndarray(
            self.shape, dtype=np.float64, buffer=shm.buf
        )

    @classmethod
    def create(cls, shape: tuple[int, int]) -> "SharedArray":
        """Allocate a new (zero-filled) segment sized for ``shape``.

        Raises :class:`SharedMemoryBudgetError` when the system is out
        of shared-memory space (``ENOSPC``/``ENOMEM``); other errors
        propagate untouched.
        """
        rows, cols = shape
        size = max(8 * rows * cols, 1)
        try:
            faults.fire("shm.create", nbytes=size, shape=shape)
            shm = shared_memory.SharedMemory(create=True, size=size)
        except OSError as exc:
            if exc.errno in (errno.ENOSPC, errno.ENOMEM):
                raise SharedMemoryBudgetError(size, exc) from exc
            raise
        return cls(shm, shape, owner=True)

    @classmethod
    def attach(cls, name: str, shape: tuple[int, int]) -> "SharedArray":
        """Map an existing segment by name (worker side)."""
        return cls(shared_memory.SharedMemory(name=name), shape, owner=False)

    @property
    def name(self) -> str:
        """The segment's system-wide name (what workers attach by)."""
        return self._shm.name

    def close(self) -> None:
        """Drop this process's mapping (idempotent).

        Only unmaps when no other object references the array: NumPy
        keeps a plain object reference to the buffer, **not** a live
        buffer export, so ``mmap.close()`` would succeed and leave any
        surviving ``ndarray`` a dangling pointer (a segfault on next
        read).  When outside references exist the mapping stays alive
        until process exit, which is safe — ``unlink`` removes the
        name, so nothing leaks past the process either way.
        """
        array, self.array = self.array, None
        if array is not None and sys.getrefcount(array) > 2:
            # Held by a session view, a caller, or a derived slice:
            # keep the mapping; the name is (or will be) unlinked.  Pin
            # the SharedMemory object too — its __del__ unmaps, which
            # would dangle the surviving array once this SharedArray is
            # garbage-collected (e.g. cluster teardown on a worker
            # failure, with the session about to copy its views out).
            _pinned_mappings.append(self._shm)
            self._pinned = True
            return
        del array
        if self._pinned:
            return
        try:
            self._shm.close()
        except BufferError:
            pass

    def unlink(self) -> None:
        """Remove the segment system-wide (owner only; idempotent)."""
        if not self.owner:
            return
        try:
            self._shm.unlink()
        except FileNotFoundError:
            pass


__all__ = ["SharedArray", "SharedMemoryBudgetError"]
